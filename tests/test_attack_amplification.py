"""The Figure 5 amplification gadget: preconditions and timing."""

from repro.attacks.amplification import (
    GadgetLayout, build_timing_probe, plant_flush_pointer,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def measure(store_value, leftover, sq_size=5, with_plugin=True):
    memory = FlatMemory(1 << 20)
    memory.write(0x8000, leftover, 2)
    l1 = Cache(num_sets=64, ways=4)
    hierarchy = MemoryHierarchy(memory, l1=l1,
                                latencies=MemoryLatencies())
    layout = GadgetLayout(target_addr=0x8000, delay_ptr_addr=0x4_0000,
                          flush_area_base=0x5_0000)
    plant_flush_pointer(memory, layout, l1)
    program = build_timing_probe(layout, l1, store_value)
    plugins = [SilentStorePlugin()] if with_plugin else []
    cpu = CPU(program, hierarchy,
              config=CPUConfig(store_queue_size=sq_size),
              plugins=plugins)
    cpu.run()
    return cpu


def test_flush_addresses_share_the_target_set():
    l1 = Cache(num_sets=64, ways=4)
    layout = GadgetLayout(target_addr=0x8000, delay_ptr_addr=0x4_0000,
                          flush_area_base=0x5_0000)
    addresses = layout.flush_addresses(l1)
    target_set = l1.set_index(0x8000)
    assert len(addresses) == l1.ways
    assert all(l1.set_index(addr) == target_set for addr in addresses)
    assert len(set(addresses)) == l1.ways


def test_plant_flush_pointer_writes_first_flush_address():
    memory = FlatMemory(1 << 20)
    l1 = Cache(num_sets=64, ways=4)
    layout = GadgetLayout(target_addr=0x8000, delay_ptr_addr=0x4_0000,
                          flush_area_base=0x5_0000)
    addresses = plant_flush_pointer(memory, layout, l1)
    assert memory.read(0x4_0000) == addresses[0]


def test_silent_vs_nonsilent_gap_exceeds_100_cycles():
    """The paper's headline: a single dynamic store's silence creates a
    large (> 100 cycles) end-to-end timing difference (Figure 6)."""
    silent = measure(store_value=0x1234, leftover=0x1234)
    nonsilent = measure(store_value=0x1234, leftover=0x4321)
    assert silent.stats.silent_stores == 1
    assert nonsilent.stats.silent_stores == 0
    gap = nonsilent.stats.cycles - silent.stats.cycles
    assert gap > 100


def test_gadget_depends_on_silent_store_hardware():
    """Without the optimization, matching and non-matching stores time
    identically — the baseline machine is constant time here."""
    match = measure(0x1234, 0x1234, with_plugin=False)
    differ = measure(0x1234, 0x4321, with_plugin=False)
    assert match.stats.cycles == differ.stats.cycles


def test_memory_correct_under_both_outcomes():
    silent = measure(0x1234, 0x1234)
    assert silent.memory.read(0x8000, 2) == 0x1234
    nonsilent = measure(0xBEEF, 0x1234)
    assert nonsilent.memory.read(0x8000, 2) == 0xBEEF


def test_gap_scales_with_memory_latency():
    def measure_with_latency(store_value, leftover, mem_latency):
        memory = FlatMemory(1 << 20)
        memory.write(0x8000, leftover, 2)
        l1 = Cache(num_sets=64, ways=4)
        hierarchy = MemoryHierarchy(
            memory, l1=l1,
            latencies=MemoryLatencies(memory=mem_latency))
        layout = GadgetLayout(target_addr=0x8000,
                              delay_ptr_addr=0x4_0000,
                              flush_area_base=0x5_0000)
        plant_flush_pointer(memory, layout, l1)
        cpu = CPU(build_timing_probe(layout, l1, store_value), hierarchy,
                  config=CPUConfig(store_queue_size=5),
                  plugins=[SilentStorePlugin()])
        cpu.run()
        return cpu.stats.cycles

    gaps = {}
    for latency in (80, 200):
        silent = measure_with_latency(1, 1, latency)
        nonsilent = measure_with_latency(1, 2, latency)
        gaps[latency] = nonsilent - silent
    assert gaps[200] > gaps[80]
