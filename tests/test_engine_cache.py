"""Content-addressed result cache: hits, misses, bypass, persistence."""

import dataclasses

from repro.engine import (
    CacheSpec, HierarchySpec, PluginSpec, ResultCache, SimSpec,
    run_batch, run_spec,
)
from repro.isa.assembler import Assembler
from repro.pipeline.config import CPUConfig


def probe_spec(**changes):
    asm = Assembler()
    asm.li(1, 0x2000)
    asm.load(2, 1, 0)
    asm.fence()
    asm.li(3, 9)
    asm.store(3, 1, 0)
    asm.halt()
    spec = SimSpec(program=asm.assemble(),
                   config=CPUConfig(store_queue_size=5),
                   hierarchy=HierarchySpec(memory_size=1 << 16),
                   plugins=(PluginSpec.of("silent-stores"),),
                   mem_writes=((0x2000, 9, 8),))
    return dataclasses.replace(spec, **changes) if changes else spec


def test_hit_on_identical_spec():
    cache = ResultCache()
    first = run_spec(probe_spec(), cache=cache)
    second = run_spec(probe_spec(), cache=cache)
    assert not first.cached
    assert second.cached
    assert cache.hits == 1 and len(cache) == 1
    assert second.cycles == first.cycles
    assert second.observations == first.observations


def test_miss_on_any_meaningful_change():
    base = probe_spec()
    changed = [
        probe_spec(config=CPUConfig(store_queue_size=8)),
        probe_spec(plugins=()),
        probe_spec(plugins=(PluginSpec.of("silent-stores"),
                            PluginSpec.of("operand-packing"))),
        probe_spec(mem_writes=((0x2000, 10, 8),)),
        probe_spec(mem_blobs=((0x3000, b"\x01\x02"),)),
        probe_spec(regs=((4, 1),)),
        probe_spec(seed=1),
        probe_spec(hierarchy=HierarchySpec(
            memory_size=1 << 16, l1=CacheSpec(ways=8))),
    ]
    # A different program text also misses.
    asm = Assembler()
    asm.li(1, 0x2000)
    asm.halt()
    changed.append(probe_spec(program=asm.assemble()))

    fingerprints = {spec.fingerprint() for spec in changed}
    fingerprints.add(base.fingerprint())
    assert len(fingerprints) == len(changed) + 1  # all distinct

    cache = ResultCache()
    run_spec(base, cache=cache)
    for spec in changed:
        assert run_spec(spec, cache=cache).cached is False


def test_label_and_meta_do_not_affect_fingerprint():
    base = probe_spec()
    relabeled = probe_spec(label="x", meta=(("k", "v"),))
    assert base.fingerprint() == relabeled.fingerprint()
    cache = ResultCache()
    run_spec(base, cache=cache)
    assert run_spec(relabeled, cache=cache).cached


def test_bypass_flag_skips_lookup_but_refreshes():
    cache = ResultCache()
    run_spec(probe_spec(), cache=cache)
    fresh = run_spec(probe_spec(), cache=cache, bypass_cache=True)
    assert not fresh.cached
    assert cache.hits == 0
    # The bypassing run still deposits its (re-computed) result.
    assert run_spec(probe_spec(), cache=cache).cached


def test_batch_mixes_hits_and_misses():
    cache = ResultCache()
    run_spec(probe_spec(), cache=cache)
    results = run_batch([probe_spec(), probe_spec(seed=2)], cache=cache)
    assert [r.cached for r in results] == [True, False]
    assert len(cache) == 2


def test_persistent_cache_survives_reload(tmp_path):
    path = str(tmp_path / "cache")
    first = run_spec(probe_spec(), cache=ResultCache(path=path))
    reloaded = ResultCache(path=path)
    hit = run_spec(probe_spec(), cache=reloaded)
    assert hit.cached
    assert hit.cycles == first.cycles
    assert hit.stats == first.stats
    assert hit.observations == first.observations


def test_clear_empties_cache():
    cache = ResultCache()
    run_spec(probe_spec(), cache=cache)
    cache.clear()
    assert len(cache) == 0
    assert not run_spec(probe_spec(), cache=cache).cached
