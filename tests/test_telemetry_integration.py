"""Fleet telemetry against the real engine: merge, isolation, cache.

Three contracts:

* **merge** — a 4-worker pool fan-out's merged snapshot agrees with a
  serial run on every scheduling-independent total (trials, batches,
  cache traffic, phase observation counts); only durations and worker
  labels may differ.
* **isolation** — telemetry on vs off changes *nothing* simulated:
  fingerprints and serialized results are bitwise identical, on the
  serial and the lockstep backend alike.
* **self-healing cache** — a corrupted persisted entry is a counted
  miss, never an exception mid-batch, and the re-executed result
  overwrites it.
"""

import os

import pytest

from tests.spec_catalog import attack_specs

from repro import telemetry
from repro.engine import ResultCache, run_batch
from repro.telemetry import PHASE_METRIC


@pytest.fixture
def registry(monkeypatch):
    """The process registry, clean before and after the test.

    Also neutralizes ``REPRO_BACKEND`` (the CI lockstep leg sets it
    suite-wide): these tests assert on per-backend labels, so they
    must control backend selection themselves.
    """
    from repro.engine import REPRO_BACKEND_ENV
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    telemetry.REGISTRY.reset()
    saved = telemetry.REGISTRY.enabled
    telemetry.REGISTRY.set_enabled(True)
    try:
        yield telemetry.REGISTRY
    finally:
        telemetry.REGISTRY.set_enabled(saved)
        telemetry.REGISTRY.reset()


def _run_catalog(workers):
    """Run the attack-spec catalog twice against a fresh cache and
    return the resulting snapshot (registry reset first)."""
    telemetry.REGISTRY.reset()
    specs = list(attack_specs().values())
    cache = ResultCache()
    results = run_batch(specs, workers=workers, cache=cache)
    run_batch(specs, workers=workers, cache=cache)
    return telemetry.REGISTRY.snapshot(), results


def _phase_counts(snapshot):
    """{(layer, phase): observation count} from a snapshot."""
    counts = {}
    for key, value in snapshot.get(PHASE_METRIC, {}).get("samples", ()):
        labels = dict(tuple(item) for item in key)
        counts[labels["layer"], labels["phase"]] = value["count"]
    return counts


def _totals(snapshot, name):
    payload = snapshot.get(name)
    if payload is None:
        return 0
    total = 0
    for _, value in payload["samples"]:
        total += value["count"] if isinstance(value, dict) else value
    return total


def test_serial_and_pool_snapshots_agree_on_totals(registry):
    serial_snap, serial_results = _run_catalog(workers=1)
    pool_snap, pool_results = _run_catalog(workers=4)

    # The simulated outcomes are the ground truth both must match.
    assert [r.to_json() for r in serial_results] \
        == [r.to_json() for r in pool_results]

    # Scheduling-independent totals are identical...
    for name in ("repro_backend_trials_total",
                 "repro_backend_batches_total",
                 "repro_cache_hits_total", "repro_cache_misses_total",
                 "repro_trial_seconds"):
        assert _totals(serial_snap, name) == _totals(pool_snap, name), \
            name
    assert _phase_counts(serial_snap) == _phase_counts(pool_snap)

    # ... while the backend label reflects who actually ran them.
    specs = len(attack_specs())
    assert serial_snap["repro_backend_trials_total"]["samples"] \
        == [[[["backend", "serial"]], specs]]
    assert pool_snap["repro_backend_trials_total"]["samples"] \
        == [[[["backend", "pool"]], specs]]


def test_pool_workers_ship_heartbeats_and_queue_wait(registry):
    pool_snap, _ = _run_catalog(workers=4)
    specs = len(attack_specs())

    # Every executed job produced one heartbeat in some worker; the
    # per-pid counters merge back to the full job count.
    heartbeats = pool_snap["repro_worker_trials_total"]["samples"]
    assert sum(value for _, value in heartbeats) == specs
    for key, _ in heartbeats:
        (label, pid), = [tuple(item) for item in key]
        assert label == "pid" and pid.isdigit()
        assert pid != str(os.getpid())    # recorded in a worker, not here

    gauges = pool_snap["repro_worker_heartbeat_timestamp_seconds"]
    assert {tuple(key[0])[1] for key, _ in gauges["samples"]} \
        == {tuple(key[0])[1] for key, _ in heartbeats}

    # The parent observed one queue-wait sample per executed trial.
    waits = pool_snap["repro_backend_queue_wait_seconds"]["samples"]
    ((key, value),) = waits
    assert dict(tuple(item) for item in key) == {"backend": "pool"}
    assert value["count"] == specs


@pytest.mark.parametrize("backend", ["serial", "lockstep"])
def test_telemetry_never_changes_simulated_outcomes(registry, backend):
    specs = list(attack_specs().values())
    fingerprints = [spec.fingerprint() for spec in specs]

    telemetry.set_enabled(True)
    on_results = run_batch(specs, backend=backend)
    telemetry.set_enabled(False)
    off_results = run_batch(specs, backend=backend)
    telemetry.set_enabled(True)

    assert [spec.fingerprint() for spec in specs] == fingerprints
    assert [r.to_json() for r in on_results] \
        == [r.to_json() for r in off_results]
    assert [r.cycles for r in on_results] \
        == [r.cycles for r in off_results]


def test_corrupt_cache_entry_is_a_counted_miss(registry, tmp_path):
    import dataclasses

    def uncached(results):
        return [dataclasses.replace(r, cached=False).to_json()
                for r in results]

    specs = list(attack_specs().values())[:3]
    store = str(tmp_path / "cache")
    cache = ResultCache(path=store)
    first = run_batch(specs, cache=cache)

    # Corrupt one persisted entry three ways across re-runs: truncated
    # JSON, non-JSON garbage, and valid JSON that is not a RunResult.
    victim = os.path.join(store, f"{specs[0].fingerprint()}.json")
    for garbage in ('{"label": "trunc', "not json at all", '{"a": 1}'):
        with open(victim, "w") as handle:
            handle.write(garbage)
        telemetry.REGISTRY.reset()
        fresh = ResultCache(path=store)
        results = run_batch(specs, cache=fresh)
        # The batch completed, the corrupt entry re-executed, the two
        # intact entries hit.
        assert uncached(results) == uncached(first)
        assert fresh.corrupt == 1
        assert fresh.hits == 2 and fresh.misses == 1
        assert registry.total("repro_cache_corrupt_total") == 1
        assert registry.total("repro_cache_misses_total") == 1
        # ... and put() healed the store: the entry is valid again.
        healed = ResultCache(path=store)
        assert healed.get(specs[0].fingerprint()) is not None
        assert healed.corrupt == 0
