"""Unit tests for the repro.stats record types and merge semantics."""

import pickle

import pytest

from repro.stats import (
    NULL_STATS, Histogram, NullStats, SimStats, merge_all,
)
from repro.stats.report import (
    extract_stats_blocks, render_stats, sparkline,
)

# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------


def test_histogram_binning_and_moments():
    hist = Histogram(bin_width=10)
    for value in (0, 5, 9, 10, 25, 25):
        hist.add(value)
    assert hist.bins == {0: 3, 10: 1, 20: 2}
    assert hist.count == 6
    assert hist.total == 74
    assert (hist.min, hist.max) == (0, 25)
    assert hist.mean == pytest.approx(74 / 6)
    assert hist.percentile(0.5) == 0
    assert hist.percentile(1.0) == 20


def test_histogram_merge_sums_bins_and_tracks_extremes():
    a = Histogram(bin_width=10)
    b = Histogram(bin_width=10)
    a.add(5)
    a.add(15)
    b.add(15)
    b.add(95)
    a.merge(b)
    assert a.bins == {0: 1, 10: 2, 90: 1}
    assert (a.count, a.min, a.max) == (4, 5, 95)


def test_histogram_merge_rejects_mismatched_bin_width():
    with pytest.raises(ValueError, match="bin width"):
        Histogram(bin_width=10).merge(Histogram(bin_width=16))


def test_histogram_dict_roundtrip_and_equality():
    hist = Histogram(bin_width=8)
    hist.add(3)
    hist.add(200, weight=4)
    rebuilt = Histogram.from_dict(hist.as_dict())
    assert rebuilt == hist
    assert rebuilt.as_dict() == hist.as_dict()


def test_empty_histogram_defaults():
    hist = Histogram()
    assert hist.mean == 0.0
    assert hist.percentile(0.5) is None
    assert Histogram.from_dict(hist.as_dict()) == hist


# ----------------------------------------------------------------------
# SimStats
# ----------------------------------------------------------------------


def sample_stats(scale=1):
    stats = SimStats()
    stats.inc("pipeline.cycles", 100 * scale)
    stats.inc("mem.l1.hits")
    stats.peak("pipeline.rob.high_water", 10 * scale)
    stats.observe("mem.miss_latency", 120, bin_width=8)
    stats.observe("mem.miss_latency", 12 * scale, bin_width=8)
    return stats


def test_counter_peak_and_get_semantics():
    stats = SimStats()
    stats.inc("a")
    stats.inc("a", 4)
    stats.peak("hw", 3)
    stats.peak("hw", 2)  # lower value never wins
    assert stats.get("a") == 5
    assert stats.get("hw") == 3
    assert stats.get("missing") == 0
    assert stats.get("missing", default=-1) == -1
    assert stats.histogram("missing") is None
    assert bool(stats) and not bool(SimStats())


def test_merge_is_commutative_and_associative():
    def build(*scales):
        merged = SimStats()
        for scale in scales:
            merged.merge(sample_stats(scale))
        return merged

    assert build(1, 2, 3) == build(3, 1, 2)
    left = build(1, 2).merge(sample_stats(3))
    right = SimStats().merge(sample_stats(1)).merge(build(2, 3))
    assert left == right
    assert left.counters["pipeline.cycles"] == 600
    assert left.maxima["pipeline.rob.high_water"] == 30


def test_merge_accepts_dict_payloads_and_empties():
    stats = sample_stats()
    assert stats.merge(None) is stats
    assert stats.merge({}) is stats
    merged = SimStats().merge(sample_stats().as_dict()) \
                       .merge(sample_stats())
    assert merged.counters["pipeline.cycles"] == 200
    assert merged.histograms["mem.miss_latency"].count == 4


def test_merge_does_not_alias_source_histograms():
    source = sample_stats()
    merged = SimStats().merge(source)
    merged.observe("mem.miss_latency", 500, bin_width=8)
    assert source.histograms["mem.miss_latency"].count == 2


def test_as_dict_roundtrip_and_json_determinism():
    stats = sample_stats()
    rebuilt = SimStats.from_dict(stats.as_dict())
    assert rebuilt == stats
    assert rebuilt.to_json() == stats.to_json()
    assert stats == stats.as_dict()  # dict comparison supported


def test_simstats_pickles():
    stats = sample_stats()
    clone = pickle.loads(pickle.dumps(stats))
    assert clone == stats
    clone.inc("pipeline.cycles")
    assert clone != stats


def test_merge_all_over_mixed_records():
    records = [sample_stats(), sample_stats(2).as_dict(), None, {}]
    merged = merge_all(records)
    assert merged.counters["pipeline.cycles"] == 300
    assert merged.maxima["pipeline.rob.high_water"] == 20
    assert merge_all([]) == SimStats()


# ----------------------------------------------------------------------
# NullStats / disabled mode
# ----------------------------------------------------------------------


def test_null_stats_is_a_noop_record():
    null = NullStats()
    null.inc("a", 5)
    null.peak("b", 5)
    null.observe("c", 5)
    null.merge(sample_stats())
    assert not null
    assert null.as_dict() == {}
    assert not null.enabled and SimStats.enabled
    assert not NULL_STATS  # the shared singleton stays empty too


def test_enabled_stats_can_absorb_null():
    stats = sample_stats()
    stats.merge(NULL_STATS)
    assert stats == sample_stats()


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------


def test_render_stats_groups_by_prefix():
    report = render_stats(sample_stats(), title="trial")
    assert "== trial ==" in report
    assert "[pipeline]" in report and "[mem]" in report
    assert "pipeline.rob.high_water" in report and "(peak)" in report
    assert "mem.miss_latency" in report


def test_render_stats_handles_empty_record():
    assert "no recorded metrics" in render_stats(SimStats())


def test_sparkline_shape():
    hist = Histogram(bin_width=1)
    for value in (0, 0, 0, 31):
        hist.add(value)
    line = sparkline(hist, width=32)
    assert len(line) == 32
    assert line[0] == "█"
    assert sparkline(Histogram()) == ""


def test_extract_stats_blocks_variants():
    record = sample_stats().as_dict()
    assert extract_stats_blocks({"stats": record}, "bench") == \
        [("bench:stats", record)]
    labelled = extract_stats_blocks(
        {"stats": {"correct": record, "incorrect": record}}, "fig6")
    assert [label for label, _ in labelled] == \
        ["fig6:correct", "fig6:incorrect"]
    assert extract_stats_blocks({"metrics": record, "label": "run/0"}) \
        == [("run/0", record)]
    assert extract_stats_blocks(record, "bare") == [("bare", record)]
    assert extract_stats_blocks({"cycles": 5}) == []
    assert extract_stats_blocks([1, 2]) == []


def test_extract_stats_blocks_prefers_metrics_over_legacy_stats():
    # A serialized RunResult carries BOTH a legacy core-stats dict
    # ("stats") and the SimStats payload ("metrics"); only the latter
    # is a renderable record.
    record = sample_stats().as_dict()
    payload = {"label": "probe", "metrics": record,
               "stats": {"cycles": 10, "dispatch_stalls": {"rob": 1}}}
    assert extract_stats_blocks(payload) == [("probe", record)]
    # The legacy dict alone yields nothing (its values are not records).
    assert extract_stats_blocks(
        {"stats": {"cycles": 10, "dispatch_stalls": {"rob": 1}}}) == []
