"""Property suite for the seeded synthesis program generator.

Every case :mod:`repro.lint.progen` can emit — trigger templates and
generic straight-line fuzz, across seeds and budgets — must uphold the
contracts the synthesizer builds on: the program assembles and
round-trips through both serialization boundaries with its ``.secret``
directives intact, it terminates architecturally well inside the trial
cycle ceiling, and it declares at least one secret operand (a case
with no secrets produces a vacuous cohort the fuzzer learns nothing
from).  ``derandomize=True`` keeps the suite deterministic in CI.
"""

from hypothesis import HealthCheck, given, settings

from repro.engine import PluginSpec, SimSpec
from repro.isa import decode_program
from repro.isa.interpreter import run_program
from repro.isa.text import assemble_source, render_source
from repro.lint.progen import (
    CaseGenerator, TRIAL_MAX_CYCLES, TRIGGER_TEMPLATES, generated_cases,
)
from repro.memory.flatmem import FlatMemory

BOUNDED = settings(max_examples=60, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# properties over every generatable case
# ----------------------------------------------------------------------

@BOUNDED
@given(case=generated_cases())
def test_cases_assemble_and_roundtrip_with_directives(case):
    """Wire form and text form both reproduce the program bitwise,
    ``.secret`` / ``.public`` directives included."""
    blob = case.program.encode()
    decoded = decode_program(blob)
    assert decoded.encode() == blob
    assert decoded.secret_regions == case.program.secret_regions
    assert decoded.public_regions == case.program.public_regions
    rendered = render_source(case.program)
    assert assemble_source(rendered).encode() == blob


@BOUNDED
@given(case=generated_cases())
def test_cases_terminate_within_the_trial_limit(case):
    """The golden-model interpreter retires HALT well inside the
    synthesizer's per-trial cycle ceiling — termination is structural
    (loop counters), never ceiling-dependent."""
    memory = FlatMemory()
    for addr, value, width in case.mem_writes:
        memory.write(addr, value, width)
    for addr, data in case.mem_blobs:
        memory.write_bytes(addr, data)
    state = run_program(case.program, memory=memory,
                        regs=dict(case.regs),
                        max_steps=TRIAL_MAX_CYCLES)
    assert state.halted


@BOUNDED
@given(case=generated_cases())
def test_cases_declare_at_least_one_secret_operand(case):
    regions, regs = case.secret_operands()
    assert regions or regs
    for start, end in regions:
        assert end > start >= 0
    assert all(0 < index < 32 for index in regs)


@BOUNDED
@given(case=generated_cases())
def test_cases_never_write_produced_results_to_x0(case):
    """The invariant the signature extractor relies on: the checker
    discards x0 results for any-producing-op rows, and
    ``tainted_tap_pairs`` mirrors that only because generated programs
    never produce into x0."""
    from repro.isa.opcodes import writes_register
    for inst in case.program:
        if writes_register(inst.op):
            assert inst.rd != 0, case.name


@BOUNDED
@given(case=generated_cases())
def test_case_specs_are_runnable_sim_specs(case):
    control = case.spec()
    cohort = case.spec(plugins=(PluginSpec.of("silent-stores"),))
    assert isinstance(control, SimSpec)
    assert control.plugins == ()
    assert control.label == case.name
    assert cohort.plugins[0].name == "silent-stores"
    assert control.max_cycles == TRIAL_MAX_CYCLES
    # The spec JSON form round-trips (cache keys depend on it).
    assert SimSpec.from_json(control.to_json()).fingerprint() == \
        control.fingerprint()


# ----------------------------------------------------------------------
# the generator itself
# ----------------------------------------------------------------------

def test_generator_is_deterministic_per_seed():
    for plugin in sorted(TRIGGER_TEMPLATES):
        first = CaseGenerator(seed=7).cases_for(plugin, 9)
        again = CaseGenerator(seed=7).cases_for(plugin, 9)
        assert [c.name for c in first] == [c.name for c in again]
        assert [c.program.encode() for c in first] == \
            [c.program.encode() for c in again]
        assert [(c.mem_writes, c.regs) for c in first] == \
            [(c.mem_writes, c.regs) for c in again]


def test_generator_cycles_templates_and_mixes_generic_fuzz():
    for plugin, templates in TRIGGER_TEMPLATES.items():
        budget = len(templates) + 2
        cases = CaseGenerator(seed=0).cases_for(plugin, budget)
        assert len(cases) == budget
        names = [case.name for case in cases]
        assert len(set(names)) == budget        # '#cursor' disambiguates
        assert any(name.startswith("generic/") for name in names)
        # Second pass restarts the template cycle.
        assert names[-1].split("#")[0] == names[0].split("#")[0]


def test_generator_rejects_unknown_plugins():
    import pytest
    with pytest.raises(KeyError):
        CaseGenerator().cases_for("branch-predictor", 4)


def test_every_contracted_plugin_has_trigger_templates():
    from repro.lint.contracts import contracted_plugin_names
    assert set(contracted_plugin_names()) == set(TRIGGER_TEMPLATES)
