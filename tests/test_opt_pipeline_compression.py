"""Operand packing and early-terminating multiplication."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.pipeline_compression import (
    EarlyTerminatingMultiplierPlugin, OperandPackingPlugin,
    operand_values,
)
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU
from repro.pipeline.dyninst import DynInst
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def make_dyn(op, v1=0, v2=0, imm=0):
    dyn = DynInst(0, Instruction(op=op, rd=1, rs1=2, rs2=3, imm=imm))
    dyn.src_values = [v1, v2]
    return dyn


def test_operand_values_register_register():
    dyn = make_dyn(Op.ADD, 5, 9)
    assert operand_values(dyn) == (5, 9)


def test_operand_values_immediate_forms():
    dyn = make_dyn(Op.ADDI, 5, 0, imm=77)
    assert operand_values(dyn) == (5, 77)
    dyn = make_dyn(Op.LI, imm=12)
    assert operand_values(dyn) == (12,)


def test_pack_pair_requires_all_four_narrow():
    plugin = OperandPackingPlugin()
    narrow = make_dyn(Op.ADD, 10, 20)
    wide = make_dyn(Op.ADD, 1 << 20, 3)
    assert plugin.pack_pair(narrow, make_dyn(Op.ADD, 1, 2))
    assert not plugin.pack_pair(narrow, wide)
    assert not plugin.pack_pair(wide, narrow)


def test_pack_pair_rejects_non_alu():
    plugin = OperandPackingPlugin()
    narrow = make_dyn(Op.ADD, 1, 2)
    branch = make_dyn(Op.BEQ, 1, 2)
    assert not plugin.pack_pair(narrow, branch)
    assert not plugin.pack_pair(branch, narrow)


def test_boundary_is_16_bits():
    plugin = OperandPackingPlugin()
    at_boundary = make_dyn(Op.ADD, 0xFFFF, 0xFFFF)
    over = make_dyn(Op.ADD, 0x10000, 1)
    assert plugin.pack_pair(at_boundary, at_boundary)
    assert not plugin.pack_pair(at_boundary, over)


def run_alu_burst(value, pairs=24):
    asm = Assembler()
    asm.li(1, value)
    asm.li(2, 3)
    for _ in range(pairs):
        asm.add(3, 1, 1)
        asm.add(4, 2, 2)
        asm.xor(5, 2, 2)
    asm.halt()
    mem = FlatMemory(1 << 14)
    plugin = OperandPackingPlugin()
    config = CPUConfig(num_alu_ports=1, issue_width=4, dispatch_width=4,
                       fetch_width=4, commit_width=4)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=config, plugins=[plugin])
    cpu.run()
    return cpu, plugin


def test_packing_improves_throughput_for_narrow_values():
    narrow_cpu, narrow_plugin = run_alu_burst(7)
    wide_cpu, wide_plugin = run_alu_burst(1 << 30)
    assert narrow_plugin.stats["packs"] > wide_plugin.stats["packs"]
    assert narrow_cpu.stats.cycles < wide_cpu.stats.cycles
    assert narrow_cpu.stats.packed_alu_pairs > 0


def test_packing_does_not_change_results():
    narrow_cpu, _ = run_alu_burst(7, pairs=4)
    assert narrow_cpu.arch_reg(3) == 14


def test_early_terminating_multiplier_latency_ordering():
    plugin = EarlyTerminatingMultiplierPlugin(digit_bytes=2)
    small = make_dyn(Op.MUL, 3, 0xFF)
    large = make_dyn(Op.MUL, 3, 0xFFFFFFFFFFFF)
    lat_small = plugin.execute_latency(small, 8)
    lat_large = plugin.execute_latency(large, 8)
    assert lat_small < lat_large <= 8
    assert plugin.stats["early_terminations"] >= 1


def test_early_termination_only_for_mul():
    plugin = EarlyTerminatingMultiplierPlugin()
    dyn = make_dyn(Op.ADD, 1, 1)
    assert plugin.execute_latency(dyn, 8) == 8


def test_early_termination_never_exceeds_default():
    plugin = EarlyTerminatingMultiplierPlugin(digit_bytes=1)
    wide = make_dyn(Op.MUL, 3, (1 << 64) - 1)
    assert plugin.execute_latency(wide, 4) == 4
