"""The URG receiver works under every replacement policy.

Figure 2's Example 3 models the *random*-replacement cache explicitly;
the attack's Prime+Probe receiver must survive all of LRU/FIFO/random
(the victim's fill evicts *some* attacker way in the right set either
way)."""

import pytest

from repro.attacks.dmp_attack import DMPSandboxAttack, URGAttackConfig

SECRET = b"\x42\xa7"


@pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
def test_urg_leak_under_policy(policy):
    attack = DMPSandboxAttack(URGAttackConfig(l1_policy=policy))
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, SECRET)
    results = attack.leak_bytes(attack.config.kernel_secret_base,
                                len(SECRET))
    assert all(result.correct for result in results), policy
