"""The ``python -m repro`` command-line surface."""

from repro.__main__ import COMMANDS, main


def test_default_prints_tables(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "DMP" in out
    assert "memory-centric" in out


def test_unknown_command_shows_usage(capsys):
    assert main(["nope"]) == 1
    out = capsys.readouterr().out
    assert "Commands" in out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "separation" in out


def test_urg_command(capsys):
    assert main(["urg"]) == 0
    out = capsys.readouterr().out
    assert "accuracy: 12/12" in out


def test_command_registry_complete():
    assert set(COMMANDS) == {"tables", "urg", "fig6", "audit", "stats",
                             "trace", "bench", "lint", "synthesize",
                             "precision", "backends", "serve-metrics",
                             "report"}


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("serial", "pool", "lockstep", "REPRO_BACKEND"):
        assert name in out


def test_global_backend_flag(capsys, monkeypatch):
    import os
    from repro.engine import REPRO_BACKEND_ENV
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    assert main(["backends", "--backend", "lockstep"]) == 0
    assert os.environ.get(REPRO_BACKEND_ENV) == "lockstep"
    # Drop the value main() just exported directly — a second
    # monkeypatch.delenv would record "lockstep" as the state to
    # restore and re-export it at teardown, polluting later tests.
    os.environ.pop(REPRO_BACKEND_ENV, None)
    assert main(["backends", "--backend", "warp-drive"]) == 1
    assert "unknown backend" in capsys.readouterr().out


def test_bench_command(tmp_path, capsys):
    import json
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "KIPS" in out
    assert "speedup" in out
    report = json.loads(out_path.read_text())
    for entry in report["workloads"].values():
        assert entry["identical"]
        assert entry["fastpath"]["instructions"] > 0


def test_lint_command_flags_leaky_program(tmp_path, capsys):
    prog = tmp_path / "leaky.s"
    prog.write_text(
        ".secret 0x1000 +8\n"
        "    li x1, 0x1000\n"
        "    load x2, 0(x1)\n"
        "    store x2, 0(x1)\n"
        "    halt\n")
    assert main(["lint", str(prog)]) == 1
    out = capsys.readouterr().out
    assert "LEAKS(silent-stores, store_silence)" in out
    assert "=> LEAKS" in out


def test_lint_command_clean_program_and_opts(tmp_path, capsys):
    prog = tmp_path / "clean.s"
    prog.write_text(
        ".secret 0x1000 +8\n"
        "    li x1, 0x2000\n"
        "    store x1, 0(x1)\n"
        "    halt\n")
    assert main(["lint", str(prog), "--opts", "silent-stores"]) == 0
    out = capsys.readouterr().out
    assert "=> CLEAN" in out
    assert "[contracts: silent-stores]" in out


def test_lint_command_json_out(tmp_path, capsys):
    import json
    prog = tmp_path / "leaky.s"
    prog.write_text(
        ".secret 0x1000 +8\n"
        "    li x1, 0x1000\n"
        "    load x2, 0(x1)\n"
        "    store x2, 0(x1)\n"
        "    halt\n")
    out_path = tmp_path / "report.json"
    assert main(["lint", str(prog), "--json",
                 "--out", str(out_path)]) == 1
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    (report,) = payload["reports"]
    assert report["findings"]
    verdicts = {entry["pc"]: entry["verdict"]
                for entry in report["verdicts"]}
    assert verdicts[0] == "SAFE"
    assert "silent-stores" in verdicts[2] or "silent-stores" in \
        verdicts[1]


def test_lint_command_rejects_bad_input(tmp_path, capsys):
    # Bad input is exit 2 — distinct from "LEAKS found" (exit 1).
    assert main(["lint"]) == 2
    assert "usage" in capsys.readouterr().out
    assert main(["lint", str(tmp_path / "missing.s")]) == 2
    assert "lint:" in capsys.readouterr().out
    prog = tmp_path / "ok.s"
    prog.write_text("    halt\n")
    assert main(["lint", str(prog), "--opts", "not-a-plugin"]) == 2
    assert "bad --opts" in capsys.readouterr().out
    bad = tmp_path / "bad.s"
    bad.write_text("    frobnicate x1, x2\n")
    assert main(["lint", str(bad)]) == 2
    assert "lint:" in capsys.readouterr().out


def test_lint_command_sticky_flag_restores_baseline(tmp_path, capsys):
    """A branch-gated but dynamically silent store: SAFE under the
    path-sensitive default, LEAKS under ``--sticky``."""
    prog = tmp_path / "gated.s"
    prog.write_text(
        ".secret 0x140 +8\n"
        "    li x1, 0x140\n"
        "    load x3, 0(x1)\n"
        "    beq x3, x3, join\n"
        "    addi x9, x0, 1\n"
        "join:\n"
        "    li x6, 9\n"
        "    store x6, 0x100(x0)\n"
        "    halt\n")
    args = ["lint", str(prog), "--opts", "silent-stores"]
    assert main(args) == 0
    assert "=> CLEAN" in capsys.readouterr().out
    assert main(args + ["--sticky"]) == 1
    out = capsys.readouterr().out
    assert "LEAKS(silent-stores" in out


def test_precision_command_smoke(tmp_path, capsys):
    import json
    out_path = tmp_path / "precision.json"
    assert main(["precision", "--budget", "1", "--json",
                 "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is True            # no soundness escapes
    assert payload["outcomes"]
    assert payload["false_positives"] <= \
        payload["sticky_false_positives"]
    for row in payload["plugins"].values():
        assert {"trials", "confirmed", "false_positives"} <= set(row)


def test_precision_command_rejects_bad_input(capsys):
    assert main(["precision", "--budget", "zero"]) == 2
    assert "usage" in capsys.readouterr().out
    assert main(["precision", "--opt", "not-a-plugin"]) == 2
    assert "no contract" in capsys.readouterr().out


def test_precision_command_ratchet(capsys):
    assert main(["precision", "--budget", "1",
                 "--max-false-positives", "0"]) == 1
    out = capsys.readouterr().out
    assert "exceed the pinned ratchet" in out


def _clean_enabled_registry():
    """Reset the process registry and force-enable recording, so the
    CLI tests hold regardless of the ambient REPRO_TELEMETRY value.
    Returns the enabled flag to restore."""
    from repro import telemetry
    telemetry.REGISTRY.reset()
    saved = telemetry.REGISTRY.enabled
    telemetry.REGISTRY.set_enabled(True)
    return saved


def _restore_registry(saved):
    from repro import telemetry
    telemetry.REGISTRY.set_enabled(saved)
    telemetry.REGISTRY.reset()


def test_serve_metrics_once(capsys):
    saved = _clean_enabled_registry()
    try:
        assert main(["serve-metrics", "--once"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_backend_trials_total counter" in out
        assert "repro_cache_hits_total" in out
        assert 'repro_phase_seconds_bucket{layer="engine.runner"' in out
    finally:
        _restore_registry(saved)


def test_serve_metrics_rejects_bad_flags(capsys):
    assert main(["serve-metrics", "--port", "not-a-port",
                 "--once"]) == 1
    assert "usage" in capsys.readouterr().out
    assert main(["serve-metrics", "--bogus"]) == 1
    assert "usage" in capsys.readouterr().out


def test_report_command(capsys):
    saved = _clean_enabled_registry()
    try:
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "phase profile" in out
        assert "engine.runner" in out
        assert "repro_cache_hits_total" in out
        assert "simulated metrics" in out
    finally:
        _restore_registry(saved)


def test_report_command_json_out(tmp_path, capsys):
    import json
    from repro.telemetry import PHASE_METRIC
    saved = _clean_enabled_registry()
    out_path = tmp_path / "report.json"
    try:
        assert main(["report", "--json", "--out", str(out_path),
                     "--perf", str(tmp_path / "missing.json")]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["bench_perf"] is None
        assert PHASE_METRIC in payload["telemetry"]
        assert "repro_cache_misses_total" in payload["telemetry"]
        assert payload["simulated"]
    finally:
        _restore_registry(saved)


def test_trace_command(tmp_path, capsys):
    import json
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "SQ head-of-line stalls" in out
    assert "!" in out
    assert "perfetto" in out.lower()
    document = json.loads(out_path.read_text())
    assert document["traceEvents"]
    assert {event["ph"] for event in document["traceEvents"]} <= \
        {"X", "i", "M"}
