"""The ``python -m repro`` command-line surface."""

from repro.__main__ import COMMANDS, main


def test_default_prints_tables(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "DMP" in out
    assert "memory-centric" in out


def test_unknown_command_shows_usage(capsys):
    assert main(["nope"]) == 1
    out = capsys.readouterr().out
    assert "Commands" in out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "separation" in out


def test_urg_command(capsys):
    assert main(["urg"]) == 0
    out = capsys.readouterr().out
    assert "accuracy: 12/12" in out


def test_command_registry_complete():
    assert set(COMMANDS) == {"tables", "urg", "fig6", "audit", "stats",
                             "trace", "bench"}


def test_bench_command(tmp_path, capsys):
    import json
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "KIPS" in out
    assert "speedup" in out
    report = json.loads(out_path.read_text())
    for entry in report["workloads"].values():
        assert entry["identical"]
        assert entry["fastpath"]["instructions"] > 0


def test_trace_command(tmp_path, capsys):
    import json
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "SQ head-of-line stalls" in out
    assert "!" in out
    assert "perfetto" in out.lower()
    document = json.loads(out_path.read_text())
    assert document["traceEvents"]
    assert {event["ph"] for event in document["traceEvents"]} <= \
        {"X", "i", "M"}
