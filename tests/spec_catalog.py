"""One representative engine spec per attack module.

The differential (serial vs pooled) and golden-fingerprint tests both
need "every attack, as a spec" — this catalog is the single place that
enumerates them, so adding an attack module with a spec factory means
adding one line here and both test families pick it up.

Each entry is deliberately small (one probe, not a sweep): the
differential test runs every spec several times in two scheduling
modes, and the golden test only hashes them.
"""

from repro.attacks.amplification import amplified_probe_spec
from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.attacks.compsimp_attack import ZeroSkipAttack
from repro.attacks.packing_attack import OperandPackingAttack
from repro.attacks.replay import SilentStoreWidthOracle
from repro.attacks.reuse_attack import ComputationReuseAttack
from repro.attacks.rfc_attack import RegisterFileCompressionAttack
from repro.attacks.vp_attack import ValuePredictionAttack

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def attack_specs():
    """``{attack_name: SimSpec}`` — one probe spec per attack module."""
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    bsaes = BSAESSilentStoreAttack(server, bytes(range(16, 32)))
    return {
        "amplification": amplified_probe_spec(
            0x1234, 0x4321, gadget=True, label="amp_nonsilent"),
        "bsaes": bsaes.measure_spec(
            [(37 * (slot + 3)) & 0xFFFF for slot in range(8)],
            target_slot=4, label="bsaes_probe"),
        "compsimp": ZeroSkipAttack().measure_spec(0, 1),
        "packing": OperandPackingAttack().measure_spec(5),
        "replay": SilentStoreWidthOracle(0xAABBCCDD)._measure_spec(
            0xDD, 0, 1),
        "reuse": ComputationReuseAttack(41).measure_spec(41),
        "rfc": RegisterFileCompressionAttack().measure_spec(1),
        "vp": ValuePredictionAttack(0x42).measure_spec(0x42),
    }
