"""The precision harness (lint/precision.py) — the dual of soundness.

Soundness asks "was every dynamic divergence statically flagged?";
precision asks "was every static flag dynamically confirmed?".  These
tests pin the two properties the harness exists to measure:

* **no soundness escapes** — a confirmed divergence that the checker
  did not flag would be a lint bug, so ``missed`` must be zero for
  both the path-sensitive analysis and the sticky baseline;
* **path-sensitivity strictly helps** — on a corpus that includes the
  gated (tainted-but-always-taken branch) cases, the path-sensitive
  analysis must produce strictly fewer false positives than the
  sticky baseline while confirming exactly the same true positives.
"""

import json
import os

import pytest

from repro.lint.precision import (
    PrecisionReport, check_precision, example_cases,
)
from repro.lint.progen import gated_case

BUDGET = 2
SEED = 0


@pytest.fixture(scope="module")
def report():
    return check_precision(budget=BUDGET, seed=SEED)


def test_no_soundness_escapes(report):
    assert report.ok
    assert report.missed == 0
    # The sticky baseline over-approximates the scoped analysis, so
    # anything the scoped analysis flags the baseline flags too.
    for out in report.outcomes:
        if out.flagged:
            assert out.sticky_flagged, (out.case, out.plugin)


def test_path_sensitivity_strictly_reduces_false_positives(report):
    assert report.false_positives < report.sticky_false_positives
    # ... without losing a single confirmed divergence: every
    # confirmed trial is flagged by both analyses (missed == 0 above
    # covers the scoped side; sticky follows by over-approximation).
    assert report.confirmed > 0


def test_gated_cases_are_the_separating_corpus(report):
    """The sticky-only false positives come from the gated cases: a
    tainted always-taken branch whose public tail the baseline poisons
    forever but the scoped analysis clears at the join."""
    separating = [out for out in report.outcomes
                  if out.sticky_false_positive
                  and not out.false_positive]
    assert separating
    assert all(out.case.startswith("gated/") or out.source == "example"
               for out in separating)


def test_example_program_outcome_present(report):
    gated = [out for out in report.outcomes
             if out.source == "example"
             and "gated_store" in out.case]
    assert gated
    # The control-flow false positive: sticky flags the public store
    # after the tainted branch; the scoped analysis proves it SAFE.
    (ss,) = [out for out in gated if out.plugin == "silent-stores"]
    assert ss.sticky_flagged and not ss.flagged
    assert ss.sticky_false_positive and not ss.false_positive


def test_per_plugin_table_is_consistent(report):
    table = report.per_plugin()
    assert sum(row["trials"] for row in table.values()) == \
        len(report.outcomes)
    assert sum(row["false_positives"] for row in table.values()) == \
        report.false_positives
    assert all(row["missed"] == 0 for row in table.values())


def test_report_json_roundtrip(report):
    payload = report.to_json_dict()
    json.dumps(payload)
    assert payload["budget"] == BUDGET
    assert payload["ok"] is True
    assert payload["false_positives"] == report.false_positives
    assert len(payload["outcomes"]) == len(report.outcomes)
    rendered = report.render()
    assert "sticky false positives" in rendered
    assert "soundness escapes: 0" in rendered


def test_determinism(report):
    again = check_precision(budget=BUDGET, seed=SEED)
    assert [out.__dict__ for out in again.outcomes] == \
        [out.__dict__ for out in report.outcomes]


def test_gated_case_shape():
    import random
    case = gated_case(random.Random("precision/test"), index=3)
    assert case.name == "gated/public-tail-3"
    ops = [inst.op.value for inst in case.program]
    assert "beq" in ops and "store" in ops
    assert case.program.secret_regions
    # The branch compares a register against itself: always taken,
    # so the two secret variants execute identical paths.
    branch = next(inst for inst in case.program
                  if inst.op.value == "beq")
    assert branch.rs1 == branch.rs2


def test_example_cases_cover_shipped_programs():
    cases = example_cases(seed=SEED)
    names = {os.path.basename(case.name) for case in cases}
    assert {"gated_store.s", "ss_probe.s", "leaky_window.s"} <= names
    for case in cases:
        assert case.program.secret_regions or True  # assembles at all


def test_empty_report_is_ok():
    empty = PrecisionReport(budget=0, seed=0)
    assert empty.ok and empty.false_positives == 0
    assert empty.per_plugin() == {}
