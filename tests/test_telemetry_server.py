"""The /metrics + /healthz HTTP endpoint over a live registry."""

import json
import urllib.request

import pytest

from repro.telemetry import CONTENT_TYPE, MetricsRegistry
from repro.telemetry.server import start_metrics_server


@pytest.fixture
def served():
    """(registry, base-url) for a server on an ephemeral port."""
    registry = MetricsRegistry()
    server = start_metrics_server(port=0, registry=registry)
    try:
        yield registry, server.url
    finally:
        server.shutdown()


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def test_metrics_serves_prometheus_text(served):
    registry, url = served
    registry.inc("repro_cache_hits_total", 2)
    status, content_type, body = _get(url + "/metrics")
    assert status == 200
    assert content_type == CONTENT_TYPE
    assert "# TYPE repro_cache_hits_total counter" in body
    assert "repro_cache_hits_total 2" in body


def test_metrics_sees_live_engine_traffic(served, monkeypatch):
    """A scrape during real run_batch traffic shows the fleet metrics
    the acceptance criterion names: cache hits/misses, per-backend
    trial counters, and the phase wall-clock histograms."""
    from tests.spec_catalog import attack_specs
    from repro.engine import REPRO_BACKEND_ENV, ResultCache, run_batch
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    registry, url = served
    import repro.telemetry as telemetry
    saved = telemetry.REGISTRY
    telemetry.REGISTRY = registry
    try:
        specs = list(attack_specs().values())[:3]
        cache = ResultCache()
        run_batch(specs, cache=cache)
        run_batch(specs, cache=cache)
    finally:
        telemetry.REGISTRY = saved
    _, _, body = _get(url + "/metrics")
    assert "repro_cache_hits_total 3" in body
    assert "repro_cache_misses_total 3" in body
    assert 'repro_backend_trials_total{backend="serial"} 3' in body
    assert 'repro_backend_batches_total{backend="serial"} 2' in body
    assert ('repro_phase_seconds_bucket{layer="engine.runner",'
            'phase="probe",le="+Inf"} 2') in body
    assert 'repro_trial_seconds_count{backend="serial"} 3' in body


def test_healthz_reports_registry_shape(served):
    registry, url = served
    registry.inc("repro_test_total", backend="a")
    registry.inc("repro_test_total", backend="b")
    status, content_type, body = _get(url + "/healthz")
    assert status == 200
    assert content_type == "application/json"
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["telemetry_enabled"] is True
    assert payload["families"] == 1
    assert payload["samples"] == 2
    # /health is an alias.
    assert json.loads(_get(url + "/health")[2]) == payload


def test_unknown_path_is_a_json_404(served):
    _, url = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(url + "/nope")
    assert excinfo.value.code == 404
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    assert payload["paths"] == ["/metrics", "/healthz"]


def test_disabled_registry_serves_empty_exposition(served):
    registry, url = served
    registry.set_enabled(False)
    registry.inc("repro_test_total")
    _, _, body = _get(url + "/metrics")
    assert body == "\n"
    payload = json.loads(_get(url + "/healthz")[2])
    assert payload["telemetry_enabled"] is False
    assert payload["families"] == 0
