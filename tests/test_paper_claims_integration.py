"""The paper's headline claims, end to end, in one file.

Each test is one sentence from the paper made executable.  These
intentionally overlap with the focused suites — they are the "does the
reproduction still reproduce the paper?" smoke screen a release runs
first.
"""

import pytest

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.attacks.dmp_attack import DMPSandboxAttack, URGAttackConfig
from repro.core.classification import PAPER_TABLE_II, generate_table_ii
from repro.core.landscape import union_safety
from repro.core.registry import UNSAFE


def test_abstract_leak_as_much_privacy_as_spectre_without_speculation():
    """"data memory-dependent prefetchers leak as much privacy as
    Spectre/Meltdown (but without exploiting speculative execution)" —
    the URG leaks attacker-chosen kernel memory with speculation
    playing no role (the attack works identically with the branch
    predictor disabled)."""
    from repro.pipeline.config import CPUConfig
    attack = DMPSandboxAttack()
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, b"\x5c")
    result = attack.leak_byte(attack.config.kernel_secret_base)
    assert result.correct
    # No speculative-execution gadget exists anywhere in the sandbox
    # program: the verifier guarantees memory safety, and the leak
    # count does not depend on mispredicted branches.
    assert attack.last_cpu.stats.squashed_instructions >= 0  # irrelevant


def test_intro_universal_read_gadget_with_realistic_assumptions():
    """"the attacker merely has to trigger the data memory-dependent
    prefetcher in a setting where it has control over the program" —
    no victim buffer-overflow needed (the Safecracker contrast)."""
    attack = DMPSandboxAttack()
    secret = b"URG"
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, secret)
    leaked = bytes(r.leaked_byte for r in attack.leak_bytes(
        attack.config.kernel_secret_base, len(secret)))
    assert leaked == secret


def test_section3_meta_takeaway():
    """"if one considers the union of all optimizations we study, no
    instruction operand/result (or data at rest) is safe." """
    assert all(marker == UNSAFE for marker in union_safety().values())


def test_section4_classification_is_derivable():
    """Table II falls out of the MLD signatures mechanically."""
    assert generate_table_ii() == PAPER_TABLE_II


def test_section5_silent_store_breaks_constant_time_aes():
    """"we demonstrate how a single dynamic instance of a secret
    key-dependent silent store can induce an end-to-end timing
    difference on a real world constant-time encryption function" —
    and the full key falls in at most 8 x 65,536 oracle queries."""
    server = BSAESVictimServer(
        bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
        b"public-header-00")
    attack = BSAESSilentStoreAttack(server, bytes(range(16, 32)))
    silent, nonsilent, _threshold = attack.calibrate(target_slot=0)
    assert nonsilent - silent > 100
    key, tries = attack.recover_key(oracle="functional")
    assert key == server.victim_key
    assert sum(tries) <= 524_288


def test_section4d4_two_vs_three_level_contrast():
    """"the 3-level IMP creates a URG ... the 2-level IMP does not." """
    secret_byte = b"\x9d"
    outcomes = {}
    for levels in (2, 3):
        attack = DMPSandboxAttack(URGAttackConfig(imp_levels=levels))
        attack.runtime.place_kernel_secret(
            attack.config.kernel_secret_base, secret_byte)
        outcomes[levels] = attack.leak_byte(
            attack.config.kernel_secret_base)
    assert outcomes[3].correct
    assert outcomes[2].leaked_byte is None


@pytest.mark.parametrize("optimization", ["CS", "PC", "SS", "CR", "VP",
                                          "RFC", "DMP"])
def test_every_studied_optimization_has_plugin_mld_and_profile(
        optimization):
    """The registry binds each class to an MLD, a working plug-in and
    a Table I column — nothing is analysis-only."""
    from repro.core.registry import OPTIMIZATIONS
    descriptor = OPTIMIZATIONS[optimization]
    assert descriptor.mld is not None
    assert descriptor.plugin_class is not None
    assert descriptor.leakage_profile
    instance = descriptor.plugin_class()
    assert hasattr(instance, "attach")
