"""Seeded memory-latency jitter: reproducible, bounded, channel-safe."""

from repro.attacks.bsaes_attack import (
    BSAESAttackConfig, BSAESSilentStoreAttack, BSAESVictimServer,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies


def test_no_jitter_is_deterministic_constant():
    latencies = MemoryLatencies()
    assert latencies.memory_latency() == latencies.memory


def test_jitter_is_bounded_and_seeded():
    a = MemoryLatencies(jitter=10, seed=5)
    b = MemoryLatencies(jitter=10, seed=5)
    seq_a = [a.memory_latency() for _ in range(50)]
    seq_b = [b.memory_latency() for _ in range(50)]
    assert seq_a == seq_b
    assert all(110 <= x <= 130 for x in seq_a)
    assert len(set(seq_a)) > 1


def test_hierarchy_applies_jitter_to_memory_accesses_only():
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(
        memory, l1=Cache(),
        latencies=MemoryLatencies(jitter=10, seed=1))
    _v, miss_latency, level = hierarchy.read(0x1000)
    assert level == "mem" and 110 <= miss_latency <= 130
    _v, hit_latency, level = hierarchy.read(0x1000)
    assert level == "l1" and hit_latency == 2   # hits stay crisp


def test_bsaes_channel_survives_memory_jitter():
    """The amplified silent-store gap is ~one memory round trip; ±10
    cycles of DRAM jitter cannot close it (Figure 6's robustness)."""
    server = BSAESVictimServer(bytes(range(16)), b"public-header-00")
    config = BSAESAttackConfig(
        latencies=MemoryLatencies(jitter=10, seed=3))
    attack = BSAESSilentStoreAttack(server, bytes(range(16, 32)),
                                    config=config)
    samples = attack.histogram_runs(runs_per_type=6, target_slot=2)
    assert max(samples["correct"]) < min(samples["incorrect"])
    # The jitter actually shows: runs are no longer all identical.
    assert len(set(samples["correct"] + samples["incorrect"])) > 2
