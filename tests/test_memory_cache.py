"""Set-associative cache model: geometry, policies, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, ReplacementPolicy


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache(line_size=48)
    with pytest.raises(ValueError):
        Cache(num_sets=48)


def test_addressing_helpers():
    cache = Cache(num_sets=64, ways=4, line_size=64)
    assert cache.line_of(0x12345) == 0x12340
    assert cache.set_index(0) == 0
    assert cache.set_index(64) == 1
    assert cache.set_index(64 * 64) == 0
    assert cache.tag_of(64 * 64) == 1
    assert cache.capacity_bytes == 64 * 4 * 64


def test_hit_and_fill():
    cache = Cache(num_sets=4, ways=2)
    hit, evicted = cache.access(0x100)
    assert not hit and evicted is None
    hit, _ = cache.access(0x100)
    assert hit
    assert cache.contains(0x100)
    assert cache.contains(0x13F)         # same line
    assert not cache.contains(0x140)     # next line


def test_lru_eviction_order():
    cache = Cache(num_sets=1, ways=2, policy=ReplacementPolicy.LRU)
    cache.access(0x000)
    cache.access(0x040)
    cache.access(0x000)      # promotes line 0
    _hit, evicted = cache.access(0x080)
    assert evicted == 0x040


def test_fifo_ignores_recency():
    cache = Cache(num_sets=1, ways=2, policy=ReplacementPolicy.FIFO)
    cache.access(0x000)
    cache.access(0x040)
    cache.access(0x000)      # touch does NOT promote under FIFO
    _hit, evicted = cache.access(0x080)
    assert evicted == 0x000


def test_random_policy_is_seeded_deterministic():
    results = []
    for _ in range(2):
        cache = Cache(num_sets=1, ways=2,
                      policy=ReplacementPolicy.RANDOM, seed=7)
        cache.access(0x000)
        cache.access(0x040)
        _hit, evicted = cache.access(0x080)
        results.append(evicted)
    assert results[0] == results[1]
    assert results[0] in (0x000, 0x040)


def test_no_fill_access_leaves_state():
    cache = Cache(num_sets=4, ways=2)
    hit, evicted = cache.access(0x100, fill=False)
    assert not hit and evicted is None
    assert not cache.contains(0x100)


def test_invalidate():
    cache = Cache()
    cache.access(0x100)
    assert cache.invalidate(0x100)
    assert not cache.contains(0x100)
    assert not cache.invalidate(0x100)


def test_flush_empties_everything():
    cache = Cache(num_sets=2, ways=2)
    for addr in (0x000, 0x040, 0x080):
        cache.access(addr)
    cache.flush()
    assert cache.resident_lines() == []


def test_resident_lines_reports_line_addresses():
    cache = Cache(num_sets=4, ways=2, line_size=64)
    cache.access(0x1234)
    assert cache.resident_lines() == [0x1200]


def test_eviction_stats():
    cache = Cache(num_sets=1, ways=1)
    cache.access(0x000)
    cache.access(0x040)
    assert cache.stats["evictions"] == 1
    assert cache.stats["misses"] == 2


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=200))
def test_occupancy_never_exceeds_ways(addresses):
    cache = Cache(num_sets=4, ways=3)
    for addr in addresses:
        cache.access(addr)
    for set_index in range(cache.num_sets):
        assert cache.set_occupancy(set_index) <= cache.ways


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=100))
def test_most_recent_access_always_resident(addresses):
    cache = Cache(num_sets=2, ways=2)
    for addr in addresses:
        cache.access(addr)
        assert cache.contains(addr)
