"""Assembler: label resolution, register parsing, error reporting."""

import pytest

from repro.isa.assembler import Assembler, AssemblyError, parse_reg
from repro.isa.opcodes import Op


def test_parse_reg_forms():
    assert parse_reg("x0") == 0
    assert parse_reg("x31") == 31
    assert parse_reg(7) == 7


def test_parse_reg_errors():
    with pytest.raises(AssemblyError):
        parse_reg("y1")
    with pytest.raises(AssemblyError):
        parse_reg(32)
    with pytest.raises(AssemblyError):
        parse_reg(-1)


def test_forward_and_backward_labels():
    asm = Assembler()
    asm.label("start")
    asm.beq("x1", "x2", "end")      # forward reference
    asm.jmp("start")                 # backward reference
    asm.label("end")
    asm.halt()
    program = asm.assemble()
    assert program[0].target == 2
    assert program[1].target == 0


def test_unresolved_label_rejected():
    asm = Assembler()
    asm.jmp("nowhere")
    with pytest.raises(AssemblyError, match="nowhere"):
        asm.assemble()


def test_duplicate_label_rejected():
    asm = Assembler()
    asm.label("a")
    with pytest.raises(AssemblyError, match="duplicate"):
        asm.label("a")


def test_pc_assignment_sequential():
    asm = Assembler()
    asm.li(1, 5).addi(2, 1, 1).halt()
    program = asm.assemble()
    assert [inst.pc for inst in program] == [0, 1, 2]


def test_store_operand_encoding():
    asm = Assembler()
    asm.store("x3", "x4", 16, width=2)
    program = asm.assemble()
    inst = program[0]
    assert inst.op is Op.STORE
    assert inst.rs2 == 3 and inst.rs1 == 4
    assert inst.imm == 16 and inst.width == 2


def test_load_operand_encoding():
    asm = Assembler()
    asm.load("x5", "x6", -8, width=4)
    inst = asm.assemble()[0]
    assert inst.op is Op.LOAD
    assert inst.rd == 5 and inst.rs1 == 6
    assert inst.imm == -8 and inst.width == 4


def test_mv_is_addi_zero():
    asm = Assembler()
    asm.mv(2, 3)
    inst = asm.assemble()[0]
    assert inst.op is Op.ADDI and inst.imm == 0


def test_annotation_attaches_to_next_instruction():
    asm = Assembler()
    asm.annotate("the target store")
    asm.store(1, 2, 0)
    asm.nop()
    program = asm.assemble()
    assert program[0].annotation == "the target store"
    assert program[1].annotation == ""


def test_listing_contains_labels_and_pcs():
    asm = Assembler()
    asm.label("loop")
    asm.addi(1, 1, 1)
    asm.jmp("loop")
    text = asm.assemble().listing()
    assert "loop:" in text
    assert "addi" in text
