"""Unit suite for the shared secret-pair XOR perturbation helper.

Both differential harnesses (``lint.soundness`` and
``lint.synthesize``) build their cohorts with :mod:`repro.lint.perturb`
— these tests pin the construction at its edges: the zero pattern is
the identity (skipped, never run as a fake variant), the full-width
``0xFF`` flip complements every secret byte, region boundaries are
byte-precise, and register perturbation XORs the replicated pattern
across the full 64-bit width.  The soundness module's historical
surface (``secret_variants`` and friends) must keep re-exporting the
shared implementation so the harnesses cannot drift apart.
"""

import pytest

from repro.engine import SimSpec, TaintSpec
from repro.isa.assembler import Assembler
from repro.lint.perturb import (
    DEFAULT_PATTERNS, REG_WIDTH, perturb_spec, replicate,
    secret_regions_of, secret_regs_of, secret_variants, xor_blob,
    xor_regs, xor_write,
)

SECRET = 0x100
WORD = (1 << 64) - 1


def _spec(**overrides):
    asm = Assembler()
    asm.secret(SECRET, SECRET + 8)
    asm.load(1, 0, SECRET)
    asm.halt()
    spec = SimSpec(program=asm.assemble(),
                   mem_writes=((SECRET, 0x1234, 8),),
                   label="perturb-case")
    return spec.replace(**overrides) if overrides else spec


# ----------------------------------------------------------------------
# replicate
# ----------------------------------------------------------------------

def test_replicate_spreads_the_pattern_byte():
    assert replicate(0xA5) == 0xA5A5A5A5A5A5A5A5
    assert replicate(0xFF) == WORD
    assert replicate(0x5A, width=2) == 0x5A5A


def test_replicate_zero_is_the_identity_mask():
    assert replicate(0x00) == 0
    # Patterns are byte-valued; high bits are discarded, so 0x100
    # degenerates to the zero (identity) mask too.
    assert replicate(0x100) == 0


# ----------------------------------------------------------------------
# memory perturbation: byte-precise region intersection
# ----------------------------------------------------------------------

def test_xor_write_flips_only_in_region_bytes():
    regions = ((SECRET + 4, SECRET + 8),)
    addr, value, width = xor_write((SECRET, 0, 8), regions, 0xFF)
    assert (addr, width) == (SECRET, 8)
    assert value == 0xFFFFFFFF_00000000


def test_xor_write_outside_every_region_is_untouched():
    entry = (0x40, 0xDEAD, 8)
    assert xor_write(entry, ((SECRET, SECRET + 8),), 0xA5) == entry


def test_xor_write_full_width_flip_complements_the_word():
    _, value, _ = xor_write((SECRET, 0x1234, 8),
                            ((SECRET, SECRET + 8),), 0xFF)
    assert value == 0x1234 ^ WORD


def test_xor_blob_flips_only_in_region_bytes():
    regions = ((SECRET + 1, SECRET + 3),)
    addr, data = xor_blob((SECRET, b"\x00" * 4), regions, 0xFF)
    assert addr == SECRET
    assert data == b"\x00\xff\xff\x00"


# ----------------------------------------------------------------------
# register perturbation: replicated full-width masks
# ----------------------------------------------------------------------

def test_xor_regs_flips_only_secret_indices():
    regs = ((5, 0), (6, 0x1234))
    flipped = xor_regs(regs, {6}, 0xA5)
    assert flipped == ((5, 0), (6, 0x1234 ^ replicate(0xA5)))


def test_xor_regs_full_width_flip_wraps_in_register_width():
    (_, value), = xor_regs(((6, WORD),), {6}, 0xFF)
    assert value == 0
    assert REG_WIDTH == 8


def test_xor_regs_without_secret_regs_is_the_identity():
    regs = ((5, 1), (6, 2))
    assert xor_regs(regs, (), 0xFF) == regs


# ----------------------------------------------------------------------
# spec-level perturbation
# ----------------------------------------------------------------------

def test_zero_pattern_is_the_identity_and_returns_none():
    assert perturb_spec(_spec(), 0x00) is None


def test_secret_absent_from_the_image_returns_none():
    # The declared region never intersects the initial image: there is
    # nothing to flip, so no variant is produced for any pattern.
    spec = _spec(mem_writes=((0x40, 7, 8),))
    for pattern in DEFAULT_PATTERNS:
        assert perturb_spec(spec, pattern) is None
    assert secret_variants(spec) == [spec]


def test_perturb_spec_flips_memory_and_labels_the_variant():
    variant = perturb_spec(_spec(), 0xFF)
    assert variant.mem_writes == ((SECRET, 0x1234 ^ WORD, 8),)
    assert variant.label == "perturb-case/secret^0xff"


def test_perturb_spec_flips_secret_register_preloads():
    spec = _spec(mem_writes=(), regs=((6, 0x77),),
                 taint=TaintSpec.of(secret_regs=(6,)))
    variant = perturb_spec(spec, 0x5A)
    assert variant.regs == ((6, 0x77 ^ replicate(0x5A)),)


def test_secret_variants_cohort_shape():
    spec = _spec()
    variants = secret_variants(spec)
    assert variants[0] is spec          # baseline is the spec itself
    assert len(variants) == 1 + len(DEFAULT_PATTERNS)
    assert len({v.label for v in variants}) == len(variants)


def test_secret_variants_without_secrets_is_baseline_only():
    asm = Assembler()
    asm.load(1, 0, SECRET)
    asm.halt()
    spec = SimSpec(program=asm.assemble(),
                   mem_writes=((SECRET, 9, 8),), label="no-secrets")
    assert secret_variants(spec) == [spec]


# ----------------------------------------------------------------------
# secret-operand discovery
# ----------------------------------------------------------------------

def test_secret_regions_merge_directives_and_taint():
    spec = _spec(taint=TaintSpec.of(secret=((0x200, 0x208),)))
    assert secret_regions_of(spec) == \
        ((SECRET, SECRET + 8), (0x200, 0x208))


def test_secret_regs_come_sorted_from_taint():
    spec = _spec(taint=TaintSpec.of(secret_regs=(9, 3)))
    assert secret_regs_of(spec) == (3, 9)
    assert secret_regs_of(_spec()) == ()


# ----------------------------------------------------------------------
# backward compatibility: soundness re-exports the shared helper
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", [
    "DEFAULT_PATTERNS", "secret_regions_of", "secret_variants",
])
def test_soundness_reexports_the_shared_implementation(name):
    import repro.lint.perturb as perturb
    import repro.lint.soundness as soundness
    assert getattr(soundness, name) is getattr(perturb, name)
