"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def memory():
    return FlatMemory(1 << 18)


@pytest.fixture
def hierarchy(memory):
    return MemoryHierarchy(memory, l1=Cache(num_sets=64, ways=4))


def make_hierarchy(memory_size=1 << 18, num_sets=64, ways=4, l2=False,
                   prefetch_buffer_size=0):
    """Standalone builder used by tests needing custom geometry."""
    mem = FlatMemory(memory_size)
    l2_cache = Cache(num_sets=2 * num_sets, ways=8) if l2 else None
    return MemoryHierarchy(
        mem, l1=Cache(num_sets=num_sets, ways=ways), l2=l2_cache,
        prefetch_buffer_size=prefetch_buffer_size)
