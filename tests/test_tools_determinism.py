"""The determinism lint tool (tools/lint_determinism.py)."""

import importlib.util
import os
import sys

import pytest

TOOL = os.path.join(os.path.dirname(__file__), os.pardir, "tools",
                    "lint_determinism.py")


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("lint_determinism",
                                                  TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_source(tool, tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(source)
    return tool.check_file(str(path))


def test_core_packages_are_clean(tool, capsys):
    assert tool.main([]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out


def test_default_roots_include_benchmarks_and_examples(tool, capsys):
    """The no-argument run must cover benchmarks/ and examples/ too —
    more files than the four core packages alone."""
    assert tool.main([]) == 0
    default_count = int(capsys.readouterr().out.split()[1])
    repo = os.path.normpath(os.path.join(os.path.dirname(TOOL),
                                         os.pardir))
    core = [os.path.join(repo, "src", "repro", package)
            for package in tool.CORE_PACKAGES]
    assert tool.main(core) == 0
    core_count = int(capsys.readouterr().out.split()[1])
    assert default_count > core_count
    extras = [os.path.join(repo, extra) for extra in tool.EXTRA_ROOTS]
    assert all(os.path.isdir(extra) for extra in extras)
    assert tool.main(core + extras) == 0
    assert int(capsys.readouterr().out.split()[1]) == default_count


def test_extra_roots_catch_violations(tool, tmp_path, monkeypatch,
                                      capsys):
    """A wall-clock read under an extra root fails the default run."""
    repo = tmp_path
    (repo / "tools").mkdir()
    for package in tool.CORE_PACKAGES:
        (repo / "src" / "repro" / package).mkdir(parents=True)
    (repo / "benchmarks").mkdir()
    (repo / "benchmarks" / "bench_bad.py").write_text(
        "import time\nx = time.time()\n")
    monkeypatch.setattr(tool.os.path, "abspath",
                        lambda _: str(repo / "tools" / "x.py"))
    assert tool.main([]) == 1
    assert "time.time" in capsys.readouterr().out


@pytest.mark.parametrize("source,needle", [
    ("import time\nx = time.time()\n", "time.time"),
    ("import time as t\nx = t.time_ns()\n", "time.time_ns"),
    ("from time import time\nx = time()\n", "time.time"),
    ("import random\nx = random.random()\n", "random.random"),
    ("import random\nx = random.randint(1, 6)\n", "random.randint"),
    ("from random import shuffle\nshuffle([])\n", "random.shuffle"),
    ("import datetime\nx = datetime.datetime.now()\n", "now"),
    ("from datetime import datetime\nx = datetime.utcnow()\n",
     "utcnow"),
])
def test_banned_calls_are_flagged(tool, tmp_path, source, needle):
    violations = check_source(tool, tmp_path, source)
    assert len(violations) == 1
    assert needle in violations[0]


@pytest.mark.parametrize("source", [
    "import time\nx = time.perf_counter()\n",       # host measurement
    "import time\nx = time.perf_counter_ns()\n",
    "import random\nrng = random.Random(42)\n",      # seeded instance
    "import random\nrng = random.Random(0)\nrng.random()\n",
    "x = time.time()\n",                             # no import: n/a
    "class C:\n    def time(self):\n        return 0\n",
])
def test_sanctioned_idioms_pass(tool, tmp_path, source):
    assert check_source(tool, tmp_path, source) == []


def test_allow_marker_suppresses(tool, tmp_path):
    source = "import time\nx = time.time()  # det-lint: allow\n"
    assert check_source(tool, tmp_path, source) == []
    # but only on the marked line
    source += "y = time.time()\n"
    assert len(check_source(tool, tmp_path, source)) == 1


def test_syntax_errors_are_reported(tool, tmp_path):
    violations = check_source(tool, tmp_path, "def broken(:\n")
    assert violations and "syntax error" in violations[0]


def test_main_exit_code_on_violation(tool, tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n")
    assert tool.main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 violation(s)" in out
