"""Differential suite: the fast-path kernel must be bitwise-exact.

:class:`~repro.pipeline.fastpath.FastPathCPU` buys wall-clock speed
from a decoded-template cache, idle-cycle fast-forward and issue
work-lists — none of which may change a single observable.  This suite
pins that contract three ways:

* every catalog spec (one per attack module) runs under both kernels
  and the full serialized :class:`RunResult` — cycles, retired stream,
  stats, metrics, fingerprint — must match byte for byte;
* the same holds with event tracing on (fast-forwarded spans must
  synthesize the exact per-cycle stall events the reference emits) and
  across serial vs pooled scheduling;
* a hypothesis property test sweeps random programs over random
  machine configurations, including runs that end in
  :class:`SimulationError` — both kernels must fail identically too.

No result cache is involved anywhere here: a cache hit would make the
comparison vacuous (both kernels share fingerprints by design).
"""

import json

from hypothesis import given

from repro.engine import TraceSpec, derive_seed, run_batch
from repro.engine.runner import execute_spec
from tests.spec_catalog import attack_specs
from tests.test_property_roundtrip import BOUNDED, sim_specs


def _catalog_specs(**overrides):
    specs = []
    for index, (name, spec) in enumerate(sorted(attack_specs().items())):
        specs.append(spec.replace(seed=derive_seed(index, 0),
                                  label=f"{name}/fastpath-diff",
                                  **overrides))
    return specs


def test_catalog_specs_bitwise_identical_across_kernels():
    for spec in _catalog_specs():
        reference = execute_spec(spec.replace(fastpath=False))
        fastpath = execute_spec(spec.replace(fastpath=True))
        assert reference.to_json() == fastpath.to_json(), spec.label
        # Sanity: the comparison is not vacuous.
        assert reference.cycles > 0, spec.label
        assert reference.stats["retired"] > 0, spec.label


def test_traced_catalog_specs_identical_across_kernels():
    """Fast-forwarded spans must synthesize the reference's per-cycle
    trace events (e.g. the SQ head-of-line stall burst) verbatim."""
    for spec in _catalog_specs(trace=TraceSpec()):
        reference = execute_spec(spec.replace(fastpath=False))
        fastpath = execute_spec(spec.replace(fastpath=True))
        assert reference.to_json() == fastpath.to_json(), spec.label
        assert reference.trace["events"], spec.label


def test_pooled_fastpath_matches_serial_reference():
    """Kernel choice and scheduling mode are both invisible: fastpath
    across 4 worker processes == reference run serially."""
    specs = _catalog_specs()
    reference = run_batch([s.replace(fastpath=False) for s in specs],
                          workers=1)
    fastpath = run_batch([s.replace(fastpath=True) for s in specs],
                         workers=4)
    assert len(reference) == len(fastpath) == len(specs)
    for spec, ref, fast in zip(specs, reference, fastpath):
        assert ref.to_json() == fast.to_json(), spec.label


def _outcome(spec):
    """Serialized result, or the failure identity if the run dies."""
    try:
        return ("ok", json.loads(execute_spec(spec).to_json()))
    except Exception as exc:  # noqa: BLE001 — compared across kernels
        return (type(exc).__name__, str(exc))


@BOUNDED
@given(spec=sim_specs())
def test_random_specs_identical_across_kernels(spec):
    spec = spec.replace(max_cycles=5_000)
    reference = _outcome(spec.replace(fastpath=False))
    fastpath = _outcome(spec.replace(fastpath=True))
    assert reference == fastpath
