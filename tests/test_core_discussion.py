"""Section VI-B: when do continuous optimizations create NEW leaks?"""

from repro.core.classification import OptimizationClass, classify_mld
from repro.core.discussion import (
    folding_is_control_flow_only, mld_constant_folding,
    mld_strength_reduction,
)
from repro.core.mld import InstSnapshot


def test_constant_folding_blind_to_data():
    """Same static trace, different data: one outcome — the paper's
    claim that folding leaks nothing beyond control flow."""
    static_shape = (("add", False), ("mul", True), ("xor", False))
    traces = [static_shape] * 4   # data varies, shape doesn't
    assert folding_is_control_flow_only(traces)


def test_constant_folding_distinguishes_control_flow():
    """Different hot regions fold differently — but control flow is
    already Unsafe on the Baseline (Table I), so nothing is new."""
    a = (("add", False), ("mul", True))
    b = (("add", False), ("div", False))
    assert mld_constant_folding(a) != mld_constant_folding(b)


def test_strength_reduction_is_a_data_transmitter():
    """Rewriting mul-by-power-of-two keys on the operand VALUE."""
    pow2 = InstSnapshot(op="mul", args=(123, 64))
    other = InstSnapshot(op="mul", args=(123, 63))
    assert mld_strength_reduction(pow2) == 1
    assert mld_strength_reduction(other) == 0


def test_strength_reduction_partition():
    domain = [(InstSnapshot(op="mul", args=(5, v)),) for v in range(64)]
    partition = mld_strength_reduction.partition(domain)
    assert set(partition) == {0, 1}
    # Powers of two in [1, 63]: 1, 2, 4, 8, 16, 32.
    assert len(partition[1]) == 6


def test_classification_of_the_discussion_mlds():
    assert classify_mld(mld_constant_folding) is \
        OptimizationClass.MEMORY_CENTRIC  # pure Uarch trigger
    assert classify_mld(mld_strength_reduction) is \
        OptimizationClass.STATELESS_INSTRUCTION
