"""Unit tests for the static MLD leakage checker (repro.lint)."""

import pytest

from repro.engine import PluginSpec, SimSpec, TaintSpec
from repro.isa.assembler import Assembler
from repro.isa.text import assemble_source
from repro.lint import (
    LintError, analyze_taint, build_cfg, contract_rows,
    contracted_plugin_names, lint_program, lint_spec,
    reaching_definitions, rows_for_names,
)
from repro.lint.cfg import ENTRY_DEF


def asm_program(text):
    return assemble_source(text, name="<test>")


# ---------------------------------------------------------------- CFG


def test_cfg_blocks_split_at_branches():
    program = asm_program("""
        li x1, 1
        beq x1, x0, out
        addi x2, x2, 1
    out:
        halt
    """)
    blocks, block_of = build_cfg(program)
    starts = sorted(block.start for block in blocks)
    assert 0 in starts
    assert 2 in starts            # branch fall-through leader
    assert 3 in starts            # branch target leader
    assert block_of[0] == block_of[1]       # li + beq share a block
    assert block_of[2] != block_of[3]


def test_cfg_exit_block_and_back_edge():
    program = asm_program("""
    loop:
        addi x1, x1, -1
        bne x1, x0, loop
        halt
    """)
    blocks, block_of = build_cfg(program)
    exit_index = block_of[len(program)]
    assert blocks[exit_index].start == len(program)
    loop_block = blocks[block_of[0]]
    assert 0 in loop_block.succs            # the back edge


def test_reaching_definitions_join_and_kill():
    program = asm_program("""
        li x1, 1
        beq x0, x0, two
        li x1, 2
    two:
        add x2, x1, x0
        halt
    """)
    reach = reaching_definitions(program)
    # beq x0,x0 folds nothing statically: both defs of x1 may reach.
    assert reach[3][1] == frozenset({0, 2})
    # x2 at pc 4 sees only the pc-3 def.
    assert reach[4][2] == frozenset({3})
    # an unwritten register still carries the entry definition
    assert reach[3][5] == frozenset({ENTRY_DEF})


# -------------------------------------------------------------- taint


def test_taint_load_from_secret_region():
    program = asm_program("""
    .secret 0x100 +8
        li x1, 0x100
        load x2, 0(x1)
        halt
    """)
    analysis = analyze_taint(program,
                             secret_regions=program.secret_regions,
                             public_regions=())
    assert analysis.state(2).reg(2).tainted
    assert not analysis.state(2).reg(1).tainted


def test_public_carves_out_secret():
    program = asm_program("""
    .secret 0x100 +16
    .public 0x108 +8
        li x1, 0x108
        load x2, 0(x1)
        halt
    """)
    analysis = analyze_taint(program,
                             secret_regions=program.secret_regions,
                             public_regions=program.public_regions)
    assert not analysis.state(2).reg(2).tainted


def test_taint_spreads_through_alu_and_memory():
    program = asm_program("""
    .secret 0x100 +8
        li x1, 0x100
        load x2, 0(x1)
        add x3, x2, x0
        store x3, 8(x1)
        li x4, 0x108
        load x5, 0(x4)
        halt
    """)
    analysis = analyze_taint(program,
                             secret_regions=program.secret_regions,
                             public_regions=())
    # tainted value laundered through memory at 0x108 and reloaded
    assert analysis.state(6).reg(5).tainted


def test_constant_folding_untaints_overwritten_value():
    program = asm_program("""
    .secret 0x100 +8
        li x1, 0x100
        load x2, 0(x1)
        li x2, 7
        add x3, x2, x2
        halt
    """)
    analysis = analyze_taint(program,
                             secret_regions=program.secret_regions,
                             public_regions=())
    state = analysis.state(4)
    assert not state.reg(2).tainted
    assert state.reg(3).const == 14


def test_tainted_branch_sets_control_flag():
    program = asm_program("""
    .secret 0x100 +8
        li x1, 0x100
        load x2, 0(x1)
        beq x2, x0, out
        addi x3, x3, 1
    out:
        halt
    """)
    analysis = analyze_taint(program,
                             secret_regions=program.secret_regions,
                             public_regions=())
    assert analysis.state(3).control
    assert analysis.state(3).reg(3) is not None


def test_untainted_constant_branch_folds_exactly():
    program = asm_program("""
        li x1, 1
        beq x1, x0, dead
        halt
    dead:
        addi x2, x2, 1
        halt
    """)
    analysis = analyze_taint(program, secret_regions=(),
                             public_regions=())
    assert analysis.state(3) is None        # statically unreachable


# ---------------------------------------------------------- contracts


def test_every_optimization_exports_a_contract():
    names = contracted_plugin_names()
    assert set(names) == {
        "silent-stores", "computation-simplification",
        "computation-reuse", "value-prediction", "operand-packing",
        "early-terminating-multiplier", "register-file-compression",
        "indirect-memory-prefetcher",
    }
    for name in names:
        assert rows_for_names((name,))      # compiles to >= 1 row


def test_reuse_sn_variant_has_no_rows():
    sv = contract_rows(PluginSpec.of("computation-reuse",
                                     variant="sv"))
    sn = contract_rows(PluginSpec.of("computation-reuse",
                                     variant="sn"))
    assert sv
    assert sn == ()


def test_compsimp_rows_follow_configured_rules():
    default = contract_rows(PluginSpec.of("computation-simplification"))
    assert {row.detail or row.mld for row in default}
    mul_only = contract_rows(PluginSpec.of(
        "computation-simplification", rules=("zero_skip_mul",)))
    assert len(mul_only) == 1
    div_too = contract_rows(PluginSpec.of(
        "computation-simplification",
        rules=("zero_skip_mul", "pow2_div", "trivial_bitwise")))
    assert len(div_too) == 3


def test_unknown_tap_is_rejected():
    class BadPlugin:
        LINT_CONTRACT = {"mld": "x",
                         "rows": ({"ops": None, "taps": ("bogus",)},)}

    from repro.engine.specs import _PLUGIN_REGISTRY, register_plugin
    register_plugin("bad-tap-plugin", BadPlugin)
    try:
        with pytest.raises(LintError, match="unknown taps"):
            rows_for_names(("bad-tap-plugin",))
    finally:
        del _PLUGIN_REGISTRY["bad-tap-plugin"]


# ----------------------------------------------------------- verdicts


LEAKY = """
.secret 0x1000 +8
.public 0x2000 +8
    li x1, 0x1000
    li x2, 0x2000
    load x3, 0(x1)
    load x4, 0(x2)
    mul x5, x3, x4
    mul x6, x4, x4
    store x5, 0(x2)
    halt
"""


def test_early_termination_taps_rs2_only():
    program = asm_program(LEAKY)
    report = lint_program(program,
                          opts=("early-terminating-multiplier",))
    # mul x5, x3(secret), x4(public): ETM keys on rs2 width -> SAFE;
    # swap operands and it leaks.
    assert report.verdict(4) == "SAFE"
    swapped = asm_program(LEAKY.replace("mul x5, x3, x4",
                                        "mul x5, x4, x3"))
    report = lint_program(swapped,
                          opts=("early-terminating-multiplier",))
    assert "early-terminating-multiplier" in report.verdict(4)


def test_silent_store_flags_value_and_old_memory():
    program = asm_program(LEAKY)
    report = lint_program(program, opts=("silent-stores",))
    assert report.flagged_pcs() == [6]
    (finding,) = report.findings
    assert finding.taps == ("store_value",)
    assert any("load from 0x1000" in frame
               for frame in finding.witness)
    assert any("def-use" in frame for frame in finding.witness)


def test_public_operands_stay_safe():
    program = asm_program(LEAKY)
    report = lint_program(program, opts=("operand-packing",))
    # mul is not a packing op; the only simple-ALU ops here touch
    # nothing tainted -> clean.
    assert report.ok


def test_lint_spec_checks_only_enabled_plugins():
    program = asm_program("""
        li x1, 0x1000
        load x2, 0(x1)
        store x2, 0(x1)
        halt
    """)
    spec = SimSpec(
        program=program,
        plugins=(PluginSpec.of("silent-stores"),),
        taint=TaintSpec.of(secret=((0x1000, 0x1008),)),
        label="enabled-only")
    report = lint_spec(spec)
    assert report.leaking_plugins() == ["silent-stores"]
    assert report.contracts == ("silent-stores",)
    # the same program under the full catalog flags more
    full = lint_spec(spec, opts=contracted_plugin_names())
    assert len(full.leaking_plugins()) > 1


def test_lint_spec_merges_program_directives_and_taintspec():
    asm = Assembler()
    asm.secret(0x3000, length=8)
    asm.li(1, 0x3000).load(2, 1, 0).halt()
    program = asm.assemble()
    spec = SimSpec(program=program,
                   plugins=(PluginSpec.of("value-prediction"),))
    report = lint_spec(spec)
    assert report.secret_regions == ((0x3000, 0x3008),)
    assert not report.ok


def test_dead_code_is_never_flagged():
    program = asm_program("""
    .secret 0x100 +8
        jmp out
        li x1, 0x100
        load x2, 0(x1)
    out:
        halt
    """)
    report = lint_program(program, opts=("value-prediction",))
    assert report.ok
    assert 2 in report.unreachable
    assert "DEAD" in report.render()


def test_opts_and_contracts_are_exclusive():
    program = asm_program("halt")
    rows = rows_for_names(("silent-stores",))
    with pytest.raises(LintError, match="not both"):
        lint_program(program, contracts=rows, opts=("silent-stores",))
