"""The universal read gadget through the eBPF sandbox (Figures 1 & 7)."""

import pytest

from repro.attacks.dmp_attack import (
    DMPSandboxAttack, URGAttackConfig, build_attacker_program,
)
from repro.sandbox.verifier import Verifier, VerifierError

SECRET = b"PANDORA!"


@pytest.fixture(scope="module")
def attack():
    instance = DMPSandboxAttack()
    instance.runtime.place_kernel_secret(
        instance.config.kernel_secret_base, SECRET)
    return instance


def test_verifier_accepts_checked_and_rejects_unchecked():
    Verifier().verify(build_attacker_program(16, null_checks=True))
    with pytest.raises(VerifierError):
        Verifier().verify(build_attacker_program(16, null_checks=False))


def test_sandboxed_program_never_accesses_out_of_bounds(attack):
    """The software is memory-safe; only the prefetcher escapes."""
    attack.install_training_data(target_offset=0x1000)
    cpu = attack.runtime.run()      # no IMP: plain verified execution
    lo = attack.runtime.sandbox_base
    hi = attack.runtime.sandbox_end
    demand_reads = [addr for addr in
                    range(lo, hi)]  # sanity of bounds only
    assert lo < hi
    assert cpu.stats.retired > 0


def test_leak_single_byte(attack):
    result = attack.leak_byte(attack.config.kernel_secret_base)
    assert result.correct
    assert result.leaked_byte == SECRET[0]


def test_urg_leaks_the_whole_secret(attack):
    results = attack.leak_bytes(attack.config.kernel_secret_base,
                                len(SECRET))
    leaked = bytes(r.leaked_byte for r in results)
    assert leaked == SECRET
    assert all(r.correct for r in results)


def test_leak_works_at_arbitrary_kernel_addresses(attack):
    other_addr = attack.config.kernel_secret_base + 0x2_0000
    attack.runtime.place_kernel_secret(other_addr, b"\x5a")
    result = attack.leak_byte(other_addr)
    assert result.leaked_byte == 0x5A


def test_urg_reach_excludes_below_base_y(attack):
    with pytest.raises(ValueError, match="URG reach"):
        attack.leak_byte(attack.base_y - 8)


def test_imp_learned_the_right_chain(attack):
    attack.leak_byte(attack.config.kernel_secret_base)
    links = {(link.base, link.shift) for link in attack.last_imp.links}
    assert (attack.base_y, 0) in links       # Y: byte-granular
    assert (attack.base_x, 6) in links       # X: line-granular


def test_two_level_imp_cannot_leak(attack):
    """Section IV-D4: the 2-level variant is not a URG — the secret's
    set never fills."""
    config = URGAttackConfig(imp_levels=2)
    two_level = DMPSandboxAttack(config)
    two_level.runtime.place_kernel_secret(
        config.kernel_secret_base, SECRET)
    result = two_level.leak_byte(config.kernel_secret_base)
    assert result.leaked_byte is None
    assert not result.correct


def test_baseline_without_prefetcher_leaks_nothing(attack):
    """Receiver noise floor: run the same program with no IMP and
    check the secret's set is quiet."""
    attack.install_training_data(
        attack.config.kernel_secret_base - attack.base_y)
    attack.hierarchy.flush_all()
    attack.receiver.prime()
    attack.runtime.run()        # no plugins
    evicted = attack.receiver.evicted_sets(attack.receiver.probe())
    secret_set = attack._x_set_of_byte(SECRET[0])
    from repro.attacks.dmp_attack import TRAINING_SETS
    known = attack._known_pollution_sets(TRAINING_SETS[0])
    assert secret_set in known or secret_set not in evicted
