"""Two-level hierarchy: latencies by hit level, prefetch buffer, fills."""

from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies


def build(l2=True, prefetch_buffer_size=0):
    memory = FlatMemory(1 << 16)
    memory.write(0x100, 42)
    return MemoryHierarchy(
        memory,
        l1=Cache(num_sets=4, ways=2),
        l2=Cache(num_sets=8, ways=4) if l2 else None,
        latencies=MemoryLatencies(l1_hit=2, l2_hit=12, memory=120),
        prefetch_buffer_size=prefetch_buffer_size)


def test_miss_then_hit_latencies():
    hierarchy = build()
    value, latency, level = hierarchy.read(0x100)
    assert (value, latency, level) == (42, 120, "mem")
    _value, latency, level = hierarchy.read(0x100)
    assert (latency, level) == (2, "l1")


def test_l2_hit_after_l1_eviction():
    hierarchy = build()
    hierarchy.read(0x100)
    hierarchy.l1.invalidate(0x100)
    _value, latency, level = hierarchy.read(0x100)
    assert (latency, level) == (12, "l2")
    assert hierarchy.line_in_l1(0x100)  # refilled


def test_write_through_to_backing_memory():
    hierarchy = build()
    hierarchy.read(0x200)          # bring line in
    hierarchy.write(0x200, 7)
    assert hierarchy.memory.read(0x200) == 7


def test_request_line_for_store_latencies():
    hierarchy = build()
    assert hierarchy.request_line_for_store(0x300) == 120
    assert hierarchy.request_line_for_store(0x300) == 0
    hierarchy.l1.invalidate(0x300)
    assert hierarchy.request_line_for_store(0x300) == 12  # L2 hit


def test_prefetch_fills_l1_without_buffer():
    hierarchy = build()
    hierarchy.prefetch(0x400)
    assert hierarchy.line_in_l1(0x400)
    assert hierarchy.line_in_l2(0x400)


def test_prefetch_buffer_keeps_l1_clean_but_fills_l2():
    """Section V-B3: prefetch buffers do not stop the receiver — the
    line still lands in L2."""
    hierarchy = build(prefetch_buffer_size=4)
    hierarchy.prefetch(0x400)
    assert not hierarchy.line_in_l1(0x400)
    assert hierarchy.line_in_l2(0x400)
    assert hierarchy.in_prefetch_buffer(0x400)


def test_prefetch_buffer_promotion_on_demand_access():
    hierarchy = build(prefetch_buffer_size=4)
    hierarchy.prefetch(0x400)
    _value, latency, level = hierarchy.read(0x400)
    assert level == "pb"
    assert latency == 3   # l1_hit + 1
    assert hierarchy.line_in_l1(0x400)
    assert not hierarchy.in_prefetch_buffer(0x400)


def test_prefetch_buffer_is_fifo_bounded():
    hierarchy = build(prefetch_buffer_size=2)
    for index in range(3):
        hierarchy.prefetch(0x1000 + 64 * index)
    assert not hierarchy.in_prefetch_buffer(0x1000)
    assert hierarchy.in_prefetch_buffer(0x1040)
    assert hierarchy.in_prefetch_buffer(0x1080)


def test_access_latency_probe():
    hierarchy = build()
    assert hierarchy.access_latency(0x500) == 120
    assert hierarchy.access_latency(0x500) == 2


def test_flush_all():
    hierarchy = build(prefetch_buffer_size=2)
    hierarchy.read(0x100)
    hierarchy.prefetch(0x200)
    hierarchy.flush_all()
    assert not hierarchy.line_in_l1(0x100)
    assert not hierarchy.line_in_l2(0x100)
    assert not hierarchy.in_prefetch_buffer(0x200)


def test_no_l2_configuration():
    hierarchy = build(l2=False)
    _value, latency, level = hierarchy.read(0x100)
    assert (latency, level) == (120, "mem")
    _value, latency, level = hierarchy.read(0x100)
    assert (latency, level) == (2, "l1")
