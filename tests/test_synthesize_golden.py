"""Golden contract-synthesis results and the mutation check.

Two layers of pinning:

* **golden learned contracts** — at a fixed seed and budget the fuzzer
  must learn exactly the pinned (op, tap) pairs for ``silent-stores``
  and ``computation-reuse``, and every in-tree plug-in must come back
  SOUND (zero learned-but-undeclared clauses) at the default budget.
  A change in these values means either the simulator's leakage
  surface or the generator's distribution moved — both deliberate,
  reviewable events.
* **the mutation check** — the differ has to *catch* a deliberately
  weakened declaration: with ``store_value`` dropped from the
  silent-stores contract, synthesis must flag a learned-but-undeclared
  gap whose minimized witness re-assembles from source and reproduces
  the divergence when re-run from its serialized spec.  This is the
  end-to-end proof the SOUND verdicts above are not vacuous.
"""

import json

import pytest

from repro.engine import SimSpec, run_batch
from repro.isa.opcodes import Op
from repro.isa.text import assemble_source
from repro.lint.contracts import ContractRow, contracted_plugin_names
from repro.lint.soundness import divergent_plugins, secret_variants
from repro.lint.synthesize import (
    DEFAULT_BUDGET, check_synthesis, report_json, synthesize_all,
)

GOLDEN_SEED = 0
GOLDEN_BUDGET = 10

#: Pinned learned contracts at (GOLDEN_SEED, GOLDEN_BUDGET).
GOLDEN_SILENT_STORES = (
    ("store", "old_memory_value"), ("store", "rs2"))
GOLDEN_COMPUTATION_REUSE = (
    ("div", "rs2"), ("mul", "rs1"), ("mul", "rs2"), ("rem", "rs1"))


# ----------------------------------------------------------------------
# golden learned contracts
# ----------------------------------------------------------------------

def test_silent_stores_learned_contract_is_pinned():
    result = check_synthesis("silent-stores", budget=GOLDEN_BUDGET,
                             seed=GOLDEN_SEED)
    assert result.learned == GOLDEN_SILENT_STORES
    assert result.witnessed == GOLDEN_SILENT_STORES
    # Every declared pair was witnessed — the contract is tight.
    assert result.learned == result.declared
    assert result.unwitnessed == ()
    assert result.ok and not result.vacuous
    assert result.discarded == 0


def test_computation_reuse_learned_contract_is_pinned():
    result = check_synthesis("computation-reuse", budget=GOLDEN_BUDGET,
                             seed=GOLDEN_SEED)
    assert result.learned == GOLDEN_COMPUTATION_REUSE
    assert result.witnessed == GOLDEN_COMPUTATION_REUSE
    # The contract declares all six (op, operand) pairs; the four
    # trigger templates witness four of them.  The single declared row
    # intersects the witnessed set, so nothing is *unwitnessed* — the
    # remaining pairs are the same row seen from its other operands.
    assert len(result.declared) == 6
    assert set(result.learned) < set(result.declared)
    assert result.unwitnessed == ()
    assert result.ok and not result.vacuous


def test_all_plugins_sound_at_default_budget():
    results = synthesize_all(budget=DEFAULT_BUDGET, seed=GOLDEN_SEED,
                             backend="lockstep")
    assert sorted(results) == sorted(contracted_plugin_names())
    for name, result in results.items():
        assert result.ok, (name, result.undeclared)
        assert not result.vacuous, name
        assert result.unwitnessed == (), name
        assert result.witnessed, name
    payload = report_json(results, budget=DEFAULT_BUDGET,
                          seed=GOLDEN_SEED)
    assert payload["ok"] is True
    json.dumps(payload)                 # report is JSON-serializable


# ----------------------------------------------------------------------
# the mutation check: the differ catches a weakened declaration
# ----------------------------------------------------------------------

WEAKENED_SILENT_STORES = (ContractRow(
    plugin="silent-stores", mld="store_silence",
    ops=frozenset({Op.STORE}), taps=("old_memory_value",)),)


@pytest.fixture(scope="module")
def weakened_result():
    return check_synthesis("silent-stores", budget=GOLDEN_BUDGET,
                           seed=GOLDEN_SEED,
                           declared_rows=WEAKENED_SILENT_STORES)


def test_weakened_declaration_is_flagged(weakened_result):
    assert weakened_result.ok is False
    assert weakened_result.undeclared
    gap = weakened_result.undeclared[0]
    assert gap.kind == "undeclared"
    assert gap.plugin == "silent-stores"
    # The gap names the pair the weakened contract dropped.
    assert ("store", "rs2") in gap.pairs
    # The learned contract still contains the full truth.
    assert set(GOLDEN_SILENT_STORES) <= set(weakened_result.learned)


def test_gap_witness_is_minimized_and_reassembles(weakened_result):
    gap = weakened_result.undeclared[0]
    witness = assemble_source(gap.witness_source)
    # Minimized to the leak's essence: load secret, store it, halt.
    assert len(witness) <= 4
    assert witness.secret_regions
    assert any(inst.op is Op.STORE for inst in witness)
    assert witness[-1].op is Op.HALT


def test_gap_witness_spec_reproduces_the_divergence(weakened_result):
    gap = weakened_result.undeclared[0]
    spec = SimSpec.from_json(gap.witness_spec)
    assert [plugin.name for plugin in spec.plugins] == \
        ["silent-stores"]
    variants = secret_variants(spec)
    assert len(variants) > 1
    results = run_batch(variants)
    diverged = set()
    for result in results[1:]:
        diverged |= divergent_plugins(results[0], result,
                                      enabled=("silent-stores",))
    assert diverged == {"silent-stores"}


# ----------------------------------------------------------------------
# when-clause synthesis: learned kwarg conditions and their mutations
# ----------------------------------------------------------------------

WHEN_BUDGET = 8

#: Pinned learned ``when`` rows at (GOLDEN_SEED, WHEN_BUDGET): every
#: computation-reuse divergence dies when the plug-in is rebuilt with
#: ``variant="sn"``, so the learned condition is ``variant=sv``.
GOLDEN_WHEN_ROWS = (
    ((("div", "rs2"),), (("variant", "sv"),)),
    ((("mul", "rs1"),), (("variant", "sv"),)),
    ((("mul", "rs2"),), (("variant", "sv"),)),
    ((("rem", "rs1"),), (("variant", "sv"),)),
)


def test_learned_when_rows_are_pinned():
    result = check_synthesis("computation-reuse", budget=WHEN_BUDGET,
                             seed=GOLDEN_SEED)
    assert result.ok
    assert tuple((row.pairs, row.when)
                 for row in result.learned_rows) == GOLDEN_WHEN_ROWS
    # Every learned condition matches the declared row's when clause.
    assert result.when_gaps == ()
    assert result.when_loose == ()
    for row in result.learned_rows:
        assert row.cases                # each condition has a witness


def test_when_rows_serialize(capsys):
    from repro.lint.synthesize import render_report
    results = {"computation-reuse": check_synthesis(
        "computation-reuse", budget=WHEN_BUDGET, seed=GOLDEN_SEED)}
    payload = report_json(results, budget=WHEN_BUDGET,
                          seed=GOLDEN_SEED)
    json.dumps(payload)
    rows = payload["plugins"]["computation-reuse"]["learned_rows"]
    assert rows and all(row["when"] == [["variant", "sv"]]
                        for row in rows)
    text = render_report(results)
    assert "only while variant=sv" in text


#: The mutation: the true condition is ``variant=sv`` but the
#: declared contract claims the row only fires under ``variant=sn``.
#: ``when_holds`` deselects the row under the active (sv)
#: construction, so every reuse divergence becomes an ordinary
#: learned-but-undeclared gap — the CI leg fails with a witness.
WEAKENED_WHEN_REUSE = (ContractRow(
    plugin="computation-reuse", mld="reuse_hit",
    ops=frozenset({Op.MUL, Op.DIV, Op.REM}), taps=("rs1", "rs2"),
    when=(("variant", "sn"),), ops_kwarg="ops"),)


@pytest.fixture(scope="module")
def weakened_when_result():
    return check_synthesis("computation-reuse", budget=6,
                           seed=GOLDEN_SEED,
                           declared_rows=WEAKENED_WHEN_REUSE)


def test_weakened_when_clause_is_flagged(weakened_when_result):
    assert weakened_when_result.ok is False
    assert weakened_when_result.undeclared
    gap = weakened_when_result.undeclared[0]
    assert gap.kind == "undeclared"
    assert gap.plugin == "computation-reuse"
    assert ("mul", "rs1") in gap.pairs


def test_weakened_when_witness_runs(weakened_when_result):
    gap = weakened_when_result.undeclared[0]
    witness = assemble_source(gap.witness_source)
    assert witness[-1].op is Op.HALT
    spec = SimSpec.from_json(gap.witness_spec)
    assert [plugin.name for plugin in spec.plugins] == \
        ["computation-reuse"]
    variants = secret_variants(spec)
    results = run_batch(variants)
    diverged = set()
    for result in results[1:]:
        diverged |= divergent_plugins(results[0], result,
                                      enabled=("computation-reuse",))
    assert diverged == {"computation-reuse"}


def test_dropped_when_clause_raises_loose_advisory():
    """A row that fires unconditionally where the learned condition is
    kwarg-dependent is imprecise, not unsound — advisory only."""
    unconditional = (ContractRow(
        plugin="computation-reuse", mld="reuse_hit",
        ops=frozenset({Op.MUL, Op.DIV, Op.REM}), taps=("rs1", "rs2"),
        ops_kwarg="ops"),)
    result = check_synthesis("computation-reuse", budget=6,
                             seed=GOLDEN_SEED,
                             declared_rows=unconditional)
    assert result.ok                    # sound: no gap, no when_gap
    assert result.when_gaps == ()
    (loose,) = result.when_loose
    assert loose.kind == "when_loose"
    assert "variant=sv" in loose.detail
