"""Memory-ordering hazards: forwarding, disambiguation, SQ drain."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(asm, init_mem=(), config=None):
    mem = FlatMemory(1 << 16)
    for addr, value in init_mem:
        mem.write(addr, value)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=config)
    cpu.run()
    return cpu


def test_store_to_load_forwarding_value():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 1234)
    asm.store(2, 1, 0)
    asm.load(3, 1, 0)      # must see the in-flight store's data
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(3) == 1234
    assert cpu.stats.loads_forwarded >= 1


def test_forwarding_masks_to_load_width():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 0xAABBCCDD)
    asm.store(2, 1, 0, width=8)
    asm.load(3, 1, 0, width=1)
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(3) == 0xDD


def test_partial_overlap_waits_for_store_to_perform():
    """A load overlapping (but not matching) an older store must get
    the post-store memory image, not a stale or forwarded value."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 0xFF)
    asm.store(2, 1, 2, width=1)   # writes byte 2
    asm.load(3, 1, 0, width=8)    # overlaps bytes 0..7
    asm.halt()
    cpu = run(asm, init_mem=[(0x1000, 0)])
    assert cpu.arch_reg(3) == 0xFF0000


def test_unknown_store_address_blocks_younger_load():
    """Conservative disambiguation: the load can't issue until the
    older store's address (dependent on a slow divide) resolves."""
    asm = Assembler()
    asm.li(1, 0x2000)
    asm.li(2, 2)
    asm.div(3, 1, 2)              # 0x1000, slowly
    asm.li(4, 99)
    asm.store(4, 3, 0)            # address unknown for many cycles
    asm.li(5, 0x1000)
    asm.load(6, 5, 0)             # same address once resolved
    asm.halt()
    cpu = run(asm, init_mem=[(0x1000, 1)])
    assert cpu.arch_reg(6) == 99


def test_stores_drain_before_halt():
    asm = Assembler()
    asm.li(1, 0x1000)
    for index in range(6):
        asm.li(2, index + 1)
        asm.store(2, 1, 8 * index)
    asm.halt()
    cpu = run(asm)
    for index in range(6):
        assert cpu.memory.read(0x1000 + 8 * index) == index + 1


def test_fence_serializes():
    """Work after a fence starts only after earlier stores performed."""
    asm = Assembler()
    asm.li(1, 0x3000)          # cold line: store pays a miss on dequeue
    asm.li(2, 7)
    asm.store(2, 1, 0)
    asm.fence()
    asm.rdcycle(3)
    asm.halt()
    cpu = run(asm)
    # rdcycle executed after the fence, which waited for the store's
    # line fill (memory latency 120).
    assert cpu.arch_reg(3) >= 120


def test_small_store_queue_backpressure():
    config = CPUConfig(store_queue_size=2)
    asm = Assembler()
    asm.li(1, 0x1000)
    for index in range(8):
        asm.store(1, 1, 8 * index)
    asm.halt()
    cpu = run(asm, config=config)
    assert cpu.stats.dispatch_stalls["sq"] > 0
    assert cpu.stats.stores_performed == 8


def test_loads_to_same_line_hit_after_first_miss():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.fence()
    asm.rdcycle(3)
    asm.load(4, 1, 8)     # same 64B line: L1 hit
    asm.fence()
    asm.rdcycle(5)
    asm.halt()
    cpu = run(asm)
    first_window = cpu.arch_reg(3)
    second_window = cpu.arch_reg(5) - cpu.arch_reg(3)
    assert first_window > 100          # paid the miss
    assert second_window < 40          # hit


def test_store_then_load_different_addresses_no_alias():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 55)
    asm.store(2, 1, 0)
    asm.load(3, 1, 64)
    asm.halt()
    cpu = run(asm, init_mem=[(0x1040, 77)])
    assert cpu.arch_reg(3) == 77
