"""Golden-model interpreter behaviour."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.interpreter import ArchState, Interpreter, InterpreterError, \
    run_program
from repro.memory.flatmem import FlatMemory


def fibonacci_program(n):
    asm = Assembler()
    asm.li(1, 0)       # a
    asm.li(2, 1)       # b
    asm.li(3, n)       # counter
    asm.label("loop")
    asm.beq(3, 0, "done")
    asm.add(4, 1, 2)
    asm.mv(1, 2)
    asm.mv(2, 4)
    asm.addi(3, 3, -1)
    asm.jmp("loop")
    asm.label("done")
    asm.halt()
    return asm.assemble()


def test_fibonacci():
    state = run_program(fibonacci_program(10))
    assert state.read_reg(1) == 55


def test_x0_is_hardwired_zero():
    asm = Assembler()
    asm.li(0, 99)
    asm.add(1, 0, 0)
    asm.halt()
    state = run_program(asm.assemble())
    assert state.read_reg(0) == 0
    assert state.read_reg(1) == 0


def test_memory_widths_roundtrip():
    asm = Assembler()
    asm.li(1, 0x100)
    asm.li(2, 0x1122334455667788)
    asm.store(2, 1, 0, width=8)
    asm.load(3, 1, 0, width=1)
    asm.load(4, 1, 0, width=2)
    asm.load(5, 1, 0, width=4)
    asm.halt()
    state = run_program(asm.assemble())
    assert state.read_reg(3) == 0x88
    assert state.read_reg(4) == 0x7788
    assert state.read_reg(5) == 0x55667788


def test_narrow_store_preserves_neighbors():
    memory = FlatMemory(1 << 12)
    memory.write(0x100, 0xAAAAAAAAAAAAAAAA)
    asm = Assembler()
    asm.li(1, 0x100)
    asm.li(2, 0x42)
    asm.store(2, 1, 2, width=1)
    asm.halt()
    state = run_program(asm.assemble(), memory=memory)
    assert state.memory.read(0x100) == 0xAAAAAAAAAA42AAAA


def test_preloaded_registers():
    asm = Assembler()
    asm.add(3, 1, 2)
    asm.halt()
    state = run_program(asm.assemble(), regs={1: 40, 2: 2})
    assert state.read_reg(3) == 42


def test_runaway_program_raises():
    asm = Assembler()
    asm.label("spin")
    asm.jmp("spin")
    with pytest.raises(InterpreterError, match="did not halt"):
        run_program(asm.assemble(), max_steps=100)


def test_pc_out_of_bounds_raises():
    asm = Assembler()
    asm.addi(1, 1, 1)      # no halt: runs off the end
    program = asm.assemble()
    interp = Interpreter(program, ArchState())
    interp.step()
    with pytest.raises(InterpreterError, match="out of program bounds"):
        interp.step()


def test_rdcycle_reports_retired_count():
    asm = Assembler()
    asm.nop()
    asm.nop()
    asm.rdcycle(1)
    asm.halt()
    state = run_program(asm.assemble())
    assert state.read_reg(1) == 2


def test_step_returns_instruction_and_halt_sticks():
    asm = Assembler()
    asm.halt()
    interp = Interpreter(asm.assemble())
    inst = interp.step()
    assert inst is not None
    assert interp.state.halted
    assert interp.step() is None
