"""Sandbox runtime: layout, map updates, execution."""

import pytest

from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.sandbox.ebpf import BpfArray, BpfProgram
from repro.sandbox.runtime import SandboxError, SandboxRuntime
from repro.sandbox.verifier import VerifierError


def make_runtime():
    memory = FlatMemory(1 << 18)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    return SandboxRuntime(hierarchy, sandbox_base=0x1_0000)


def simple_program():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),
                                 BpfArray("Y", 1, 16)))
    program.mov_imm(1, 1)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)
    program.label("out")
    program.exit()
    return program


def test_arrays_laid_out_contiguously_and_aligned():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    base_z = runtime.array_base("Z")
    base_y = runtime.array_base("Y")
    assert base_z == 0x1_0000
    assert base_y == base_z + 64            # 32 bytes rounded to 64
    assert base_z % 64 == 0 and base_y % 64 == 0
    assert runtime.sandbox_end >= base_y + 16


def test_rejected_program_is_not_laid_out():
    runtime = make_runtime()
    bad = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    bad.mov_imm(1, 0)
    bad.lookup(2, "Z", 1)
    bad.load(3, 2, 0)          # unchecked
    bad.exit()
    with pytest.raises(VerifierError):
        runtime.load_program(bad)
    assert runtime.machine_program is None


def test_map_update_and_read_are_bounds_checked():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    runtime.map_update("Z", 2, 123)
    assert runtime.map_read("Z", 2) == 123
    with pytest.raises(SandboxError):
        runtime.map_update("Z", 4, 1)
    with pytest.raises(SandboxError):
        runtime.map_update("nope", 0, 1)


def test_map_update_respects_element_width():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    runtime.map_update("Y", 0, 0x1FF)       # 1-byte elements
    assert runtime.map_read("Y", 0) == 0xFF
    assert runtime.map_read("Y", 1) == 0    # neighbour untouched


def test_kernel_secret_placement_guard():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    with pytest.raises(SandboxError, match="inside the sandbox"):
        runtime.place_kernel_secret(runtime.array_base("Z"), b"x")
    runtime.place_kernel_secret(0x2_0000, b"secret")
    assert runtime.read_kernel(0x2_0000, 6) == b"secret"


def test_run_executes_the_jitted_program():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    runtime.map_update("Z", 1, 42)
    cpu = runtime.run()
    from repro.sandbox.jit import machine_reg
    assert cpu.arch_reg(machine_reg(3)) == 42


def test_run_without_load_rejected():
    runtime = make_runtime()
    with pytest.raises(SandboxError, match="no program loaded"):
        runtime.run()


def test_verifier_states_recorded():
    runtime = make_runtime()
    runtime.load_program(simple_program())
    assert runtime.verifier_states > 0
