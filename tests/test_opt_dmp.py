"""The indirect-memory prefetcher: learning, chaining, OOB behaviour."""

import pytest

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.dmp import IndirectMemoryPrefetcher
from repro.pipeline.cpu import CPU

BASE_Z = 0x1000
BASE_Y = 0x2000
BASE_X = 0x8000


def indirection_program(iterations, levels=3):
    """``for i: X[Y[Z[i]]]`` (or ``Y[Z[i]]`` for levels=2)."""
    asm = Assembler()
    asm.li(1, BASE_Z)
    asm.li(2, BASE_Y)
    asm.li(3, BASE_X)
    asm.li(4, 0)
    asm.li(5, iterations)
    asm.label("loop")
    asm.slli(6, 4, 3)
    asm.add(6, 6, 1)
    asm.load(7, 6, 0)        # z = Z[i]
    asm.slli(8, 7, 3)
    asm.add(8, 8, 2)
    asm.load(9, 8, 0)        # y = Y[z]
    if levels == 3:
        asm.slli(10, 9, 3)
        asm.add(10, 10, 3)
        asm.load(11, 10, 0)  # x = X[y]
    asm.addi(4, 4, 1)
    asm.blt(4, 5, "loop")
    asm.halt()
    return asm.assemble()


def run_with_imp(iterations=16, levels=3, delta=4, **imp_kwargs):
    memory = FlatMemory(1 << 18)
    for i in range(iterations + 16):
        memory.write(BASE_Z + 8 * i, (i * 3) % 11)
    for j in range(16):
        memory.write(BASE_Y + 8 * j, 100 + ((j * j) % 13))
    hierarchy = MemoryHierarchy(memory, l1=Cache(num_sets=256, ways=4))
    imp = IndirectMemoryPrefetcher(levels=levels, delta=delta,
                                   **imp_kwargs)
    cpu = CPU(indirection_program(iterations, levels), hierarchy,
              plugins=[imp])
    cpu.run()
    return cpu, imp, hierarchy


def test_levels_validation():
    with pytest.raises(ValueError):
        IndirectMemoryPrefetcher(levels=1)


def test_four_level_chain_ainsworth_jones_pattern():
    """W[X[Y[Z[i]]]] — the Ainsworth & Jones pattern (Section IV-D2)."""
    base_w = 0x10000
    asm = Assembler()
    asm.li(1, BASE_Z)
    asm.li(2, BASE_Y)
    asm.li(3, BASE_X)
    asm.li(12, base_w)
    asm.li(4, 0)
    asm.li(5, 16)
    asm.label("loop")
    asm.slli(6, 4, 3)
    asm.add(6, 6, 1)
    asm.load(7, 6, 0)        # z = Z[i]
    asm.slli(8, 7, 3)
    asm.add(8, 8, 2)
    asm.load(9, 8, 0)        # y = Y[z]
    asm.slli(10, 9, 3)
    asm.add(10, 10, 3)
    asm.load(11, 10, 0)      # x = X[y]
    asm.slli(13, 11, 3)
    asm.add(13, 13, 12)
    asm.load(14, 13, 0)      # w = W[x]
    asm.addi(4, 4, 1)
    asm.blt(4, 5, "loop")
    asm.halt()
    memory = FlatMemory(1 << 18)
    for i in range(24):
        memory.write(BASE_Z + 8 * i, (i * 3) % 7)
    for j in range(8):
        memory.write(BASE_Y + 8 * j, 10 + ((j * 5) % 11))
    for k in range(24):
        memory.write(BASE_X + 8 * k, 30 + ((k * k) % 13))
    hierarchy = MemoryHierarchy(memory, l1=Cache(num_sets=256, ways=4))
    imp = IndirectMemoryPrefetcher(levels=4, delta=4)
    cpu = CPU(asm.assemble(), hierarchy, plugins=[imp])
    cpu.run()
    imp.drain()
    prefetched = {addr for _c, addr in imp.prefetch_log}
    # The chained walk reaches the fourth array.
    assert any(base_w <= addr < base_w + 0x1000 for addr in prefetched)


def test_stride_detection():
    _cpu, imp, _h = run_with_imp()
    streaming = imp.streaming_pcs()
    assert len(streaming) >= 1      # the Z load streams


def test_links_learned_with_correct_base_and_shift():
    _cpu, imp, _h = run_with_imp()
    links = {(l.base, l.shift) for l in imp.links}
    assert (BASE_Y, 3) in links
    assert (BASE_X, 3) in links


def test_prefetches_run_ahead_of_the_stream():
    _cpu, imp, hierarchy = run_with_imp()
    assert imp.stats["jobs_launched"] > 0
    assert imp.stats["prefetches"] >= 3 * 1
    prefetched = {addr for _c, addr in imp.prefetch_log}
    # At least one prefetch targeted Z ahead of the demand stream.
    assert any(addr >= BASE_Z for addr in prefetched)


def test_two_level_variant_has_single_link_chain():
    _cpu, imp, _h = run_with_imp(levels=2)
    assert imp.stats["jobs_launched"] > 0
    # 2 prefetches per job (Z line + Y line), never an X access.
    prefetched = {addr for _c, addr in imp.prefetch_log}
    assert not any(BASE_X <= addr < BASE_X + 0x1000
                   for addr in prefetched)


def test_three_level_prefetches_into_x():
    _cpu, imp, _h = run_with_imp(levels=3)
    prefetched = {addr for _c, addr in imp.prefetch_log}
    assert any(BASE_X <= addr < BASE_X + 0x1000 for addr in prefetched)


def test_no_bounds_knowledge_out_of_bounds_dereference():
    """Values planted past Z steer the prefetcher anywhere (the URG)."""
    memory = FlatMemory(1 << 18)
    iterations = 12
    for i in range(iterations - 1):
        memory.write(BASE_Z + 8 * i, i % 4)
    secret_addr = 0x2_0000
    memory.write(secret_addr, 7)             # "victim" memory
    # The last in-bounds Z element points far outside Y:
    memory.write(BASE_Z + 8 * (iterations - 1),
                 (secret_addr - BASE_Y) // 8)
    for j in range(8):
        memory.write(BASE_Y + 8 * j, 100 + j)
    hierarchy = MemoryHierarchy(memory, l1=Cache(num_sets=256, ways=4))
    imp = IndirectMemoryPrefetcher(levels=3, delta=4)
    cpu = CPU(indirection_program(iterations), hierarchy, plugins=[imp])
    cpu.run()
    prefetched = {addr for _c, addr in imp.prefetch_log}
    assert any(hierarchy.l1.line_of(secret_addr) ==
               hierarchy.l1.line_of(addr) for addr in prefetched)
    # ... and the dependent X prefetch transmits the secret value 7:
    assert any(hierarchy.l1.line_of(addr) ==
               hierarchy.l1.line_of(BASE_X + 7 * 8)
               for addr in prefetched)


def test_solver_rejects_non_power_of_two_scale():
    assert IndirectMemoryPrefetcher._solve(1, 100, 2, 103) is None
    assert IndirectMemoryPrefetcher._solve(1, 100, 3, 116) == (92, 3)


def test_solver_rejects_degenerate_samples():
    assert IndirectMemoryPrefetcher._solve(5, 100, 5, 108) is None
    assert IndirectMemoryPrefetcher._solve(5, 100, 6, 100) is None


def test_out_of_memory_prefetch_aborts_job():
    memory = FlatMemory(1 << 16)
    iterations = 12
    for i in range(iterations + 8):
        memory.write(BASE_Z + 8 * i, i % 4)
    # A wildly out-of-range offset past the demand loop's reach but
    # inside the prefetcher's look-ahead window.
    memory.write(BASE_Z + 8 * (iterations + 1), 1 << 40)
    for j in range(8):
        memory.write(BASE_Y + 8 * j, 100 + j)
    hierarchy = MemoryHierarchy(memory, l1=Cache(num_sets=64, ways=4))
    imp = IndirectMemoryPrefetcher(levels=3, delta=4)
    cpu = CPU(indirection_program(iterations), hierarchy, plugins=[imp])
    cpu.run()     # must not crash
    imp.drain()   # flush in-flight chained walks
    assert imp.stats["out_of_memory_aborts"] >= 1


def test_reset_clears_learned_state():
    _cpu, imp, _h = run_with_imp()
    imp.reset()
    assert imp.links == []
    assert imp.streaming_pcs() == []
    assert imp.prefetch_log == []


def test_forwarded_loads_invisible_to_prefetcher():
    """Store-to-load forwarded accesses never reach the memory system,
    so the IMP must not observe them."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 42)
    asm.store(2, 1, 0)
    asm.load(3, 1, 0)          # forwarded
    asm.halt()
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    imp = IndirectMemoryPrefetcher()
    cpu = CPU(asm.assemble(), hierarchy, plugins=[imp])
    cpu.run()
    assert cpu.stats.loads_forwarded == 1
    assert imp.streaming_pcs() == []
    assert imp._recent == type(imp._recent)(maxlen=imp._recent.maxlen) \
        or len(imp._recent) == 0
