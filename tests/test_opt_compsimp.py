"""Computation simplification: rules, latency effects, correctness."""

import pytest

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_simplification import (
    RULES, ComputationSimplificationPlugin,
)
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run_chain(op, a, b, rules, repeat=16):
    asm = Assembler()
    asm.li(1, a)
    asm.li(2, b)
    for _ in range(repeat):
        getattr(asm, op)(3, 1, 2)
    asm.halt()
    mem = FlatMemory(1 << 14)
    plugin = ComputationSimplificationPlugin(rules=rules)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=CPUConfig(latency_mul=6, latency_div=20),
              plugins=[plugin])
    cpu.run()
    return cpu, plugin


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown"):
        ComputationSimplificationPlugin(rules=("nonsense",))


def test_zero_skip_mul_fires_and_is_faster():
    fast, plugin = run_chain("mul", 0, 123, ("zero_skip_mul",))
    slow, _ = run_chain("mul", 11, 123, ("zero_skip_mul",))
    assert plugin.stats["zero_skip_mul"] == 16
    assert fast.stats.cycles < slow.stats.cycles
    assert fast.arch_reg(3) == 0
    assert slow.arch_reg(3) == 11 * 123


def test_zero_skip_checks_both_operands():
    cpu, plugin = run_chain("mul", 5, 0, ("zero_skip_mul",), repeat=4)
    assert plugin.stats["zero_skip_mul"] == 4


def test_pow2_div_fires():
    fast, plugin = run_chain("div", 1000, 8, ("pow2_div",))
    slow, _ = run_chain("div", 1000, 7, ("pow2_div",))
    assert plugin.stats["pow2_div"] == 16
    assert fast.stats.cycles < slow.stats.cycles
    assert fast.arch_reg(3) == 125


def test_pow2_div_not_for_zero_divisor():
    _cpu, plugin = run_chain("div", 9, 0, ("pow2_div",), repeat=2)
    assert plugin.stats["pow2_div"] == 0


def test_zero_over_anything_div():
    _cpu, plugin = run_chain("div", 0, 7, ("zero_over_anything_div",),
                             repeat=4)
    assert plugin.stats["zero_over_anything_div"] == 4


def test_trivial_bitwise_and_with_zero():
    assert RULES["trivial_bitwise"] is not None
    _cpu, plugin = run_chain("and_", 0, 0xABC, ("trivial_bitwise",),
                             repeat=4)
    assert plugin.stats["trivial_bitwise"] == 4


def test_trivial_bitwise_or_with_all_ones():
    _cpu, plugin = run_chain("or_", (1 << 64) - 1, 5, ("trivial_bitwise",),
                             repeat=4)
    assert plugin.stats["trivial_bitwise"] == 4


def test_trivial_add_sub():
    _cpu, plugin = run_chain("add", 0, 9, ("trivial_add",), repeat=2)
    assert plugin.stats["trivial_add"] == 2
    _cpu, plugin = run_chain("sub", 9, 0, ("trivial_add",), repeat=2)
    assert plugin.stats["trivial_add"] == 2


def test_one_skip_mul():
    _cpu, plugin = run_chain("mul", 1, 9, ("one_skip_mul",), repeat=2)
    assert plugin.stats["one_skip_mul"] == 2


def test_default_rules_are_conservative():
    plugin = ComputationSimplificationPlugin()
    assert set(plugin.rules) == {"zero_skip_mul", "pow2_div"}


def test_results_never_change():
    """The optimization is performance-only."""
    for a, b in ((0, 5), (5, 0), (7, 8), (1, 1)):
        cpu, _ = run_chain("mul", a, b, tuple(RULES), repeat=3)
        assert cpu.arch_reg(3) == (a * b) & ((1 << 64) - 1)
