"""The verifier's safety theorem, fuzzed.

Property: for ANY program the verifier accepts, the JITed code's demand
accesses stay inside the declared arrays.  (The whole point of Section
V-B is that this software guarantee holds — and the hardware prefetcher
escapes it anyway.)  Random programs drive both directions: the
verifier must never crash (accept or raise VerifierError), and accepted
programs must be memory-safe under execution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.interpreter import Interpreter, ArchState
from repro.memory.flatmem import FlatMemory
from repro.sandbox.ebpf import BpfArray, BpfProgram
from repro.sandbox.jit import Jit
from repro.sandbox.verifier import Verifier, VerifierError

ARRAYS = (BpfArray("A", 8, 4), BpfArray("B", 8, 8))
LAYOUT = {"A": 0x1000, "B": 0x2000}
ARRAY_RANGES = [(0x1000, 0x1000 + 32), (0x2000, 0x2000 + 64)]


class RecordingMemory(FlatMemory):
    """Flat memory that logs every read/write address range."""

    def __init__(self, size):
        super().__init__(size)
        self.reads = []
        self.writes = []

    def read(self, addr, width=8):
        self.reads.append((addr, width))
        return super().read(addr, width)

    def write(self, addr, value, width=8):
        self.writes.append((addr, width))
        super().write(addr, value, width)


@st.composite
def random_bpf_programs(draw):
    program = BpfProgram(arrays=ARRAYS)
    steps = draw(st.lists(st.tuples(
        st.sampled_from(("mov_imm", "add_imm", "lookup", "checked_load",
                         "unchecked_load", "jeq_skip")),
        st.integers(0, 5),                    # rd
        st.integers(0, 5),                    # rs
        st.integers(-4, 12),                  # imm
        st.sampled_from(("A", "B"))), min_size=1, max_size=12))
    skip_counter = 0
    for kind, rd, rs, imm, array in steps:
        if kind == "mov_imm":
            program.mov_imm(rd, imm)
        elif kind == "add_imm":
            program.add_imm(rd, imm)
        elif kind == "lookup":
            program.lookup(rd, array, rs)
        elif kind == "checked_load":
            program.lookup(rd, array, rs)
            label = f"skip_{skip_counter}"
            skip_counter += 1
            program.jeq_imm(rd, 0, label)
            target = 5 if rd == 0 else rd - 1
            program.load(target, rd, 0)
            program.label(label)
        elif kind == "unchecked_load":
            program.lookup(rd, array, rs)
            target = 5 if rd == 0 else rd - 1
            program.load(target, rd, 0)
        elif kind == "jeq_skip":
            label = f"skip_{skip_counter}"
            skip_counter += 1
            program.jeq_imm(rd, imm, label)
            program.add_imm(rd, 1)
            program.label(label)
    program.exit()
    return program


@settings(max_examples=150, deadline=None)
@given(random_bpf_programs())
def test_verifier_total_and_accepted_programs_are_memory_safe(program):
    verifier = Verifier(state_budget=50_000)
    try:
        verifier.verify(program)
    except VerifierError:
        return  # rejection is a legitimate outcome; no crash
    # Accepted: execute the JITed code and audit every memory access.
    machine = Jit(program, LAYOUT).compile()
    memory = RecordingMemory(1 << 16)
    state = ArchState(memory=memory)
    Interpreter(machine, state).run(max_steps=50_000)
    for addr, width in memory.reads + memory.writes:
        assert any(lo <= addr and addr + width <= hi
                   for lo, hi in ARRAY_RANGES), \
            f"accepted program accessed [{addr:#x}, {addr + width:#x})"


@settings(max_examples=60, deadline=None)
@given(random_bpf_programs())
def test_jit_matches_verifier_null_semantics(program):
    """For accepted programs, every lookup result the program branches
    on is either NULL or a valid element pointer at runtime."""
    verifier = Verifier(state_budget=50_000)
    try:
        verifier.verify(program)
    except VerifierError:
        return
    machine = Jit(program, LAYOUT).compile()
    memory = RecordingMemory(1 << 16)
    state = ArchState(memory=memory)
    Interpreter(machine, state).run(max_steps=50_000)
    # Termination + no interpreter faults is the assertion here.
    assert state.halted
