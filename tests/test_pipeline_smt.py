"""The SMT model: lockstep correctness, shared-resource contention."""

from repro.attacks.smt_attack import (
    SMTContentionAttack, SMTPackingAttack,
)
from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.value_prediction import ValuePredictionPlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU
from repro.pipeline.smt import SMTCore


def counting_program(base, count):
    asm = Assembler()
    asm.li(1, base)
    asm.li(2, 0)
    asm.li(3, count)
    asm.label("loop")
    asm.store(2, 1, 0)
    asm.addi(2, 2, 1)
    asm.blt(2, 3, "loop")
    asm.halt()
    return asm.assemble()


def test_both_threads_compute_correctly():
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    core = SMTCore(counting_program(0x1000, 10),
                   counting_program(0x2000, 14), hierarchy)
    stats_a, stats_b = core.run()
    assert memory.read(0x1000) == 9
    assert memory.read(0x2000) == 13
    assert stats_a.retired > 0 and stats_b.retired > 0


def test_threads_may_halt_at_different_times():
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    core = SMTCore(counting_program(0x1000, 2),
                   counting_program(0x2000, 40), hierarchy)
    core.run()
    assert core.thread_a.stats.cycles < core.thread_b.stats.cycles


def test_port_sharing_slows_co_resident_threads():
    """Two ALU-hungry threads on one shared port run slower than one
    alone — the contention that makes SMT a channel at all."""
    def alu_program():
        asm = Assembler()
        asm.li(1, 3)
        for _ in range(40):
            asm.add(2, 1, 1)
        asm.halt()
        return asm.assemble()

    config = CPUConfig(num_alu_ports=1, issue_width=4,
                       dispatch_width=4, fetch_width=4, commit_width=4)
    memory = FlatMemory(1 << 16)
    solo = CPU(alu_program(), MemoryHierarchy(memory, l1=Cache()),
               config=config)
    solo.run()
    memory2 = FlatMemory(1 << 16)
    core = SMTCore(alu_program(), alu_program(),
                   MemoryHierarchy(memory2, l1=Cache()),
                   config_a=config, config_b=config)
    stats_a, stats_b = core.run()
    assert stats_a.cycles > solo.stats.cycles
    assert stats_b.cycles > solo.stats.cycles


def test_round_robin_priority_is_fair():
    def alu_program():
        asm = Assembler()
        asm.li(1, 3)
        for _ in range(40):
            asm.add(2, 1, 1)
        asm.halt()
        return asm.assemble()

    config = CPUConfig(num_alu_ports=1, issue_width=2,
                       dispatch_width=2, commit_width=2)
    memory = FlatMemory(1 << 16)
    core = SMTCore(alu_program(), alu_program(),
                   MemoryHierarchy(memory, l1=Cache()),
                   config_a=config, config_b=config)
    stats_a, stats_b = core.run()
    assert abs(stats_a.cycles - stats_b.cycles) <= 4


def test_shared_predictor_state_cross_thread_priming():
    """One value-prediction table attached to both threads: thread A's
    training applies to thread B's loads at aliasing PCs (the IV-C4
    cross-context preconditioning)."""
    def load_loop(addr, trips):
        asm = Assembler()
        asm.li(1, addr)
        asm.li(2, 0)
        asm.li(3, trips)
        asm.label("loop")
        asm.load(4, 1, 0)
        asm.addi(2, 2, 1)
        asm.blt(2, 3, "loop")
        asm.halt()
        return asm.assemble()

    memory = FlatMemory(1 << 16)
    memory.write(0x1000, 42)
    memory.write(0x2000, 42)        # same value at B's address
    plugin = ValuePredictionPlugin(threshold=2)
    hierarchy = MemoryHierarchy(memory, l1=Cache())
    # Identical programs => identical load PCs: cross-thread aliasing.
    core = SMTCore(load_loop(0x1000, 12), load_loop(0x2000, 12),
                   hierarchy, plugins_a=[plugin], plugins_b=[plugin])
    core.run()
    assert plugin.stats["predictions"] > 0
    # Predictions in thread B verified against thread A's training.
    assert plugin.stats["incorrect"] == 0


def test_smt_packing_attack():
    attack = SMTPackingAttack()
    assert attack.victim_operand_is_narrow(42)
    assert not attack.victim_operand_is_narrow(1 << 30)


def test_smt_packing_signal_is_attacker_side_only():
    attack = SMTPackingAttack()
    narrow = attack.measure(5)
    wide = attack.measure(1 << 30)
    assert narrow.attacker_cycles < wide.attacker_cycles


def test_smt_contention_attack():
    attack = SMTContentionAttack()
    assert attack.victim_operand_is_zero(0)
    assert not attack.victim_operand_is_zero(55)
    zero = attack.measure(0)
    nonzero = attack.measure(123)
    # The victim's simplified divides free the shared unit: a large
    # attacker-visible difference.
    assert nonzero.attacker_cycles - zero.attacker_cycles > 100
