"""Table II — classification by MLD signature — derived, not asserted."""

from repro.core.classification import (
    OptimizationClass, PAPER_TABLE_II, classify_mld, generate_table_ii,
    render_table,
)
from repro.core.mld import InputKind, MLD, MLDInput
from repro.core.registry import COLUMN_ORDER, OPTIMIZATIONS


def test_generated_classification_matches_paper():
    assert generate_table_ii() == PAPER_TABLE_II


def test_classification_rules():
    inst_only = MLD("a", [MLDInput(InputKind.INST, "i1")], lambda i: 0)
    assert classify_mld(inst_only) is OptimizationClass.STATELESS_INSTRUCTION

    inst_uarch = MLD("b", [MLDInput(InputKind.INST, "i1"),
                           MLDInput(InputKind.UARCH, "t")],
                     lambda i, t: 0)
    assert classify_mld(inst_uarch) is \
        OptimizationClass.STATEFUL_INSTRUCTION_UARCH

    inst_arch = MLD("c", [MLDInput(InputKind.INST, "i1"),
                          MLDInput(InputKind.ARCH, "m")],
                    lambda i, m: 0)
    assert classify_mld(inst_arch) is \
        OptimizationClass.STATEFUL_INSTRUCTION_ARCH

    arch_only = MLD("d", [MLDInput(InputKind.ARCH, "rf")], lambda rf: 0)
    assert classify_mld(arch_only) is OptimizationClass.MEMORY_CENTRIC


def test_memory_centric_requires_no_inst_input():
    """DMP reads Uarch + Arch but no Inst: purely data-at-rest driven."""
    dmp = OPTIMIZATIONS["DMP"].mld
    assert InputKind.INST not in dmp.input_kinds
    assert classify_mld(dmp) is OptimizationClass.MEMORY_CENTRIC


def test_section_assignment_consistency():
    """Classes map to the paper's section structure (IV-B/IV-C/IV-D)."""
    table = generate_table_ii()
    sections = {
        OptimizationClass.STATELESS_INSTRUCTION: "IV-B",
        OptimizationClass.STATEFUL_INSTRUCTION_UARCH: "IV-C",
        OptimizationClass.STATEFUL_INSTRUCTION_ARCH: "IV-C",
        OptimizationClass.MEMORY_CENTRIC: "IV-D",
    }
    for acronym in COLUMN_ORDER:
        descriptor = OPTIMIZATIONS[acronym]
        assert descriptor.paper_section.startswith(
            sections[table[acronym]]), acronym


def test_render_lists_every_optimization():
    text = render_table()
    for acronym in COLUMN_ORDER:
        assert acronym in text
        assert OPTIMIZATIONS[acronym].name in text
