"""JIT vs the reference BPF interpreter, on random accepted programs.

Three-way agreement: the reference BPF interpreter, the JITed code on
the golden-model ISA interpreter, and the JITed code on the
out-of-order pipeline must produce identical BPF register files.
"""

from hypothesis import given, settings

from repro.isa.interpreter import run_program
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.cpu import CPU
from repro.sandbox.interpreter import BpfInterpreter
from repro.sandbox.jit import Jit, machine_reg
from repro.sandbox.verifier import Verifier, VerifierError

from tests.test_sandbox_safety_fuzz import (
    ARRAYS, LAYOUT, random_bpf_programs,
)


def fill_arrays(memory):
    for array in ARRAYS:
        base = LAYOUT[array.name]
        for index in range(array.length):
            memory.write(base + index * array.elem_size,
                         (index * 2654435761) & 0xFFFF,
                         min(8, array.elem_size))


@settings(max_examples=60, deadline=None)
@given(random_bpf_programs())
def test_jit_agrees_with_reference_interpreter(program):
    try:
        Verifier(state_budget=50_000).verify(program)
    except VerifierError:
        return
    # Reference semantics.
    ref_memory = FlatMemory(1 << 16)
    fill_arrays(ref_memory)
    ref_regs = BpfInterpreter(program, LAYOUT, ref_memory).run()
    # JIT on the golden-model interpreter.
    machine = Jit(program, LAYOUT).compile()
    isa_memory = FlatMemory(1 << 16)
    fill_arrays(isa_memory)
    isa_state = run_program(machine, memory=isa_memory)
    # JIT on the out-of-order pipeline.
    cpu_memory = FlatMemory(1 << 16)
    fill_arrays(cpu_memory)
    cpu = CPU(machine, MemoryHierarchy(cpu_memory,
                                       l1=Cache(num_sets=16, ways=2)))
    cpu.run()
    for reg in range(10):
        expected = ref_regs[reg]
        assert isa_state.read_reg(machine_reg(reg)) == expected, \
            f"interpreter r{reg}"
        assert cpu.arch_reg(machine_reg(reg)) == expected, \
            f"pipeline r{reg}"


def test_reference_interpreter_null_discipline():
    import pytest
    from repro.sandbox.ebpf import BpfArray, BpfProgram
    from repro.sandbox.interpreter import BpfRuntimeError
    program = BpfProgram(arrays=(BpfArray("Z", 8, 2),))
    program.mov_imm(1, 5)           # out of bounds
    program.lookup(2, "Z", 1)
    program.load(3, 2, 0)           # would be rejected by the verifier
    program.exit()
    memory = FlatMemory(1 << 12)
    with pytest.raises(BpfRuntimeError, match="NULL"):
        BpfInterpreter(program, {"Z": 0x100}, memory).run()
