"""The sandbox verifier: NULL-check discipline, bounds, termination."""

import pytest

from repro.attacks.dmp_attack import build_attacker_program
from repro.sandbox.ebpf import BpfArray, BpfProgram
from repro.sandbox.verifier import Verifier, VerifierError


def checked_lookup_program(width=8, off=0):
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, off=off, width=width)
    program.label("out")
    program.exit()
    return program


def test_accepts_null_checked_dereference():
    states = Verifier().verify(checked_lookup_program())
    assert states > 0


def test_rejects_unchecked_dereference():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.load(3, 2, 0)
    program.exit()
    with pytest.raises(VerifierError, match="possibly-NULL"):
        Verifier().verify(program)


def test_jne_null_check_also_works():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jne_imm(2, 0, "deref")
    program.exit()
    program.label("deref")
    program.load(3, 2, 0)
    program.exit()
    Verifier().verify(program)


def test_rejects_access_outside_element():
    with pytest.raises(VerifierError, match="outside element"):
        Verifier().verify(checked_lookup_program(width=8, off=4))
    # in-bounds narrower access fine:
    Verifier().verify(checked_lookup_program(width=4, off=4))


def test_rejects_pointer_arithmetic():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.add_imm(2, 8)          # pointer arithmetic!
    program.load(3, 2, 0)
    program.label("out")
    program.exit()
    with pytest.raises(VerifierError, match="pointer"):
        Verifier().verify(program)


def test_rejects_dereference_of_scalar():
    program = BpfProgram()
    program.mov_imm(1, 0x1000)
    program.load(2, 1, 0)
    program.exit()
    with pytest.raises(VerifierError, match="non-pointer"):
        Verifier().verify(program)


def test_rejects_fallthrough_off_the_end():
    program = BpfProgram()
    program.mov_imm(1, 0)
    with pytest.raises(VerifierError, match="falls off"):
        Verifier().verify(program)


def test_rejects_empty_program():
    with pytest.raises(VerifierError, match="empty"):
        Verifier().verify(BpfProgram())


def test_accepts_constant_bounded_loop():
    program = BpfProgram()
    program.mov_imm(1, 0)
    program.label("loop")
    program.add_imm(1, 1)
    program.jlt_imm(1, 16, "loop")
    program.exit()
    Verifier().verify(program)


def test_rejects_unbounded_state_explosion():
    """A loop on an unknown scalar explores both paths forever until
    the state budget trips — "program too complex", as real eBPF says."""
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)           # unknown scalar
    program.label("loop")
    program.add_imm(3, 1)           # unknown + 1 = unknown...
    program.jlt_imm(3, 10, "loop")  # ...so this never converges
    program.label("out")
    program.exit()
    with pytest.raises(VerifierError):
        Verifier(state_budget=10_000).verify(program)


def test_branch_on_pointer_without_null_compare_rejected():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 5, "out")    # comparing a pointer against 5
    program.label("out")
    program.exit()
    with pytest.raises(VerifierError, match="NULL comparison"):
        Verifier().verify(program)


def test_mov_reg_propagates_pointer_type():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.mov_reg(4, 2)          # copy the maybe-null pointer
    program.load(3, 4, 0)          # deref the copy: still unchecked!
    program.exit()
    with pytest.raises(VerifierError, match="possibly-NULL"):
        Verifier().verify(program)


def test_the_papers_attacker_program_verifies():
    """Figure 7a with its NULL checks passes; without them it fails."""
    Verifier().verify(build_attacker_program(16, null_checks=True))
    with pytest.raises(VerifierError):
        Verifier().verify(build_attacker_program(16, null_checks=False))


# ------------------------------------------------------ taint pass


def secret_load_program(**follow_on):
    """r3 = Z[0] (secret), then whatever ``follow_on`` asks for."""
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),
                                 BpfArray("Y", 8, 4)))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)
    for step in follow_on.get("steps", ()):
        step(program)
    program.label("out")
    program.exit()
    return program


def flows_of(program, secret_arrays=("Z",)):
    verifier = Verifier(secret_arrays=secret_arrays)
    verifier.verify(program)
    return verifier.taint_flows


def test_taint_pass_records_secret_load():
    flows = flows_of(secret_load_program())
    assert (3, "load_secret", "Z") in flows


def test_taint_pass_is_off_without_secret_arrays():
    verifier = Verifier()
    verifier.verify(secret_load_program())
    assert verifier.taint_flows == []


def test_taint_flows_through_alu_and_branch():
    flows = flows_of(secret_load_program(steps=(
        lambda p: p.add_imm(3, 1),
        lambda p: p.jlt_imm(3, 100, "out"),
    )))
    kinds = {kind for _, kind, _ in flows}
    assert "load_secret" in kinds
    assert "tainted_alu" in kinds
    assert "tainted_branch" in kinds


def test_taint_flags_secret_indexed_lookup():
    """The Figure 1 gadget: a secret value used as a lookup index."""
    flows = flows_of(secret_load_program(steps=(
        lambda p: p.lookup(4, "Y", 3),
    )))
    assert any(kind == "tainted_index_lookup" and detail == "Y"
               for _, kind, detail in flows)


def test_taint_flags_secret_store():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),
                                 BpfArray("P", 8, 4)))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)            # secret scalar
    program.lookup(4, "P", 1)
    program.jeq_imm(4, 0, "out")
    program.store(4, 3, 0)           # secret value into public array
    program.label("out")
    program.exit()
    flows = flows_of(program)
    assert any(kind == "tainted_store" and detail == "P"
               for _, kind, detail in flows)


def test_papers_attacker_program_taint_chain():
    """The verified Figure 7a program still leaks via the prefetcher:
    the taint pass shows the full chain the safety rules cannot see."""
    program = build_attacker_program(16, null_checks=True)
    verifier = Verifier(secret_arrays=("Z",))
    verifier.verify(program)
    kinds = [kind for _, kind, _ in verifier.taint_flows]
    assert "load_secret" in kinds
    assert "tainted_index_lookup" in kinds
    # chained lookups: the secret indexes Y, whose value indexes X
    lookups = [detail for _, kind, detail in verifier.taint_flows
               if kind == "tainted_index_lookup"]
    assert set(lookups) == {"X", "Y"}


def test_taint_flows_reset_between_verifications():
    verifier = Verifier(secret_arrays=("Z",))
    verifier.verify(secret_load_program())
    first = list(verifier.taint_flows)
    verifier.verify(secret_load_program())
    assert verifier.taint_flows == first
