"""The pipeline tracer: passive observation, Figure-4-style timelines."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.pipeline.cpu import CPU
from repro.pipeline.trace import PipelineTracer


def run_traced(asm, init_mem=(), extra_plugins=()):
    memory = FlatMemory(1 << 16)
    for addr, value in init_mem:
        memory.write(addr, value)
    tracer = PipelineTracer()
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=list(extra_plugins) + [tracer])
    cpu.run()
    return cpu, tracer


def simple_store_program(value):
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.li(3, value)
    asm.store(3, 1, 0)
    asm.halt()
    return asm


def test_event_order_is_causal():
    asm = Assembler()
    asm.li(1, 7)
    asm.mul(2, 1, 1)
    asm.halt()
    _cpu, tracer = run_traced(asm)
    for record in tracer.records.values():
        events = dict(record.event_pairs())
        if "issue" in events and "dispatch" in events:
            assert events["dispatch"] <= events["issue"]
        if "complete" in events and "issue" in events:
            assert events["issue"] <= events["complete"]
        if "commit" in events and "complete" in events:
            assert events["complete"] <= events["commit"]


def test_store_timeline_records_figure4_events():
    cpu, tracer = run_traced(simple_store_program(42),
                             init_mem=[(0x1000, 42)],
                             extra_plugins=[SilentStorePlugin()])
    assert cpu.stats.silent_stores == 1
    lines = tracer.store_timelines()
    assert len(lines) == 1
    assert "address_resolves" in lines[0]
    assert "silent_dequeue" in lines[0]


def test_nonsilent_store_timeline():
    _cpu, tracer = run_traced(simple_store_program(7),
                              init_mem=[(0x1000, 42)],
                              extra_plugins=[SilentStorePlugin()])
    line = tracer.store_timelines()[0]
    assert "performed_nonsilent" in line
    assert "dequeue" in line


def test_tracer_changes_nothing():
    asm = simple_store_program(42)
    baseline = run_traced(asm, init_mem=[(0x1000, 42)])[0].stats.cycles
    memory = FlatMemory(1 << 16)
    memory.write(0x1000, 42)
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()))
    cpu.run()
    assert cpu.stats.cycles == baseline


def test_record_cap():
    asm = Assembler()
    for _ in range(20):
        asm.addi(1, 1, 1)
    asm.halt()
    memory = FlatMemory(1 << 14)
    tracer = PipelineTracer(max_records=5)
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=[tracer])
    cpu.run()
    assert len(tracer.records) == 5


def test_untraced_timeline_message():
    tracer = PipelineTracer()
    assert "not traced" in tracer.timeline(999)


def test_record_drops_are_surfaced_in_stats():
    from repro.stats import SimStats
    asm = Assembler()
    for _ in range(20):
        asm.addi(1, 1, 1)
    asm.halt()
    memory = FlatMemory(1 << 14)
    metrics = SimStats()
    tracer = PipelineTracer(max_records=5)
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=[tracer], metrics=metrics)
    cpu.run()
    records = tracer.records
    assert len(records) == 5
    dropped = 21 - len(records)  # 20 addi + halt
    assert metrics.maxima["trace.tracer.records_dropped"] == dropped
    # Reading records again must not inflate the peak (lazy rebuilds
    # are idempotent).
    _ = tracer.records
    assert metrics.maxima["trace.tracer.records_dropped"] == dropped
    assert "trace.tracer.records_dropped" in metrics.as_dict()["maxima"]


def test_tracer_consumes_engine_installed_buffer():
    """With a spec-level trace the tracer piggybacks on the shared
    stream instead of installing a second buffer."""
    from repro.trace import TraceBuffer
    asm = simple_store_program(42)
    memory = FlatMemory(1 << 16)
    memory.write(0x1000, 42)
    buffer = TraceBuffer()
    tracer = PipelineTracer()
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=[SilentStorePlugin(), tracer], trace=buffer)
    cpu.run()
    assert tracer.buffer is buffer
    assert cpu.trace is buffer
    assert tracer.store_timelines()


def test_tracer_installs_pipeline_only_buffer():
    _cpu, tracer = run_traced(simple_store_program(42),
                              init_mem=[(0x1000, 42)])
    assert tracer.buffer.categories == {"inst", "sq"}
    # Hierarchy events are filtered out, not recorded.
    assert tracer.buffer.events(category="mem") == []
