"""Value prediction: thresholded prediction, squash on mismatch."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.value_prediction import ValuePredictionPlugin
from repro.pipeline.cpu import CPU


def run(asm, init_mem=(), plugin=None):
    mem = FlatMemory(1 << 14)
    for addr, value in init_mem:
        mem.write(addr, value)
    plugin = plugin if plugin is not None else ValuePredictionPlugin(
        threshold=2)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              plugins=[plugin])
    cpu.run()
    return cpu, plugin


def load_loop(trips):
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 0)
    asm.li(3, trips)
    asm.label("loop")
    asm.load(4, 1, 0)
    asm.addi(5, 4, 1)
    asm.addi(2, 2, 1)
    asm.blt(2, 3, "loop")
    asm.halt()
    return asm


def test_no_prediction_below_threshold():
    _cpu, plugin = run(load_loop(2))
    assert plugin.stats["predictions"] == 0


def test_predictions_start_after_confidence_builds():
    _cpu, plugin = run(load_loop(10), init_mem=[(0x1000, 42)])
    assert plugin.stats["predictions"] > 0
    assert plugin.stats["incorrect"] == 0


def test_correct_predictions_do_not_squash():
    cpu, plugin = run(load_loop(10), init_mem=[(0x1000, 42)])
    assert cpu.stats.vp_squashes == 0
    assert cpu.arch_reg(5) == 43


def test_confidence_resets_on_value_change():
    plugin = ValuePredictionPlugin(threshold=2)
    plugin.prime(0, value=5, confidence=3)
    # Simulated trainings through the public API:
    class FakeInst:
        op = None
    entry = plugin._table[0]
    assert entry == [5, 3, 0]


def test_prime_enables_immediate_prediction():
    asm = load_loop(1)
    program = asm.assemble()
    load_pc = next(inst.pc for inst in program if inst.is_load)
    plugin = ValuePredictionPlugin(threshold=2)
    plugin.prime(load_pc, value=42)
    mem = FlatMemory(1 << 14)
    mem.write(0x1000, 42)
    cpu = CPU(program, MemoryHierarchy(mem, l1=Cache()),
              plugins=[plugin])
    cpu.run()
    assert plugin.stats["predictions"] == 1
    assert plugin.stats["correct"] == 1


def test_mispredict_squashes_and_recovers():
    asm = load_loop(1)
    program = asm.assemble()
    load_pc = next(inst.pc for inst in program if inst.is_load)
    plugin = ValuePredictionPlugin(threshold=2)
    plugin.prime(load_pc, value=999)       # wrong on purpose
    mem = FlatMemory(1 << 14)
    mem.write(0x1000, 42)
    cpu = CPU(program, MemoryHierarchy(mem, l1=Cache()),
              plugins=[plugin])
    cpu.run()
    assert cpu.stats.vp_squashes >= 1
    assert cpu.arch_reg(4) == 42           # architecturally correct
    assert cpu.arch_reg(5) == 43


def test_mispredict_is_slower_than_correct():
    asm = load_loop(1)
    program = asm.assemble()
    load_pc = next(inst.pc for inst in program if inst.is_load)
    cycles = {}
    for label, value in (("correct", 42), ("wrong", 999)):
        plugin = ValuePredictionPlugin(threshold=2)
        plugin.prime(load_pc, value=value)
        mem = FlatMemory(1 << 14)
        mem.write(0x1000, 42)
        cpu = CPU(program, MemoryHierarchy(mem, l1=Cache()),
                  plugins=[plugin])
        cpu.run()
        cycles[label] = cpu.stats.cycles
    assert cycles["correct"] <= cycles["wrong"]


def test_table_size_bound():
    plugin = ValuePredictionPlugin(table_size=2)
    for pc in range(5):
        plugin.prime(pc, value=pc)
    # prime() writes directly; training path enforces the bound:
    assert len(plugin._table) == 5  # primes are attacker-forced
    plugin.reset()
    assert len(plugin._table) == 0


def test_predictor_variant_validation():
    import pytest
    with pytest.raises(ValueError):
        ValuePredictionPlugin(predictor="oracle")


def pointer_bump_loop(trips):
    """A load whose value strides by 8 every iteration (a pointer
    walk): last-value predictors always miss, stride predictors hit."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 0)
    asm.li(3, trips)
    asm.label("loop")
    asm.load(4, 1, 0)          # value = 0x2000 + 8*i
    asm.addi(5, 4, 0)
    asm.li(6, 8)
    asm.add(6, 4, 6)
    asm.store(6, 1, 0)         # bump the stored pointer
    asm.addi(2, 2, 1)
    asm.blt(2, 3, "loop")
    asm.halt()
    return asm


def test_stride_predictor_learns_pointer_walks():
    asm = pointer_bump_loop(12)
    mem_writes = [(0x1000, 0x2000)]
    results = {}
    for predictor in ("last_value", "stride"):
        plugin = ValuePredictionPlugin(threshold=2, predictor=predictor)
        cpu, plugin = run(asm, init_mem=mem_writes, plugin=plugin)
        results[predictor] = (plugin.stats["correct"],
                              plugin.stats["incorrect"],
                              cpu.stats.vp_squashes)
    stride_correct, stride_wrong, _ = results["stride"]
    last_correct, _last_wrong, _ = results["last_value"]
    assert stride_correct > 0
    # Wrong-path training can glitch the stride occasionally (the
    # predictor trains speculatively, as real ones do).
    assert stride_correct > stride_wrong
    assert last_correct == 0       # the value never repeats


def test_stride_predictor_architecturally_correct():
    asm = pointer_bump_loop(8)
    plugin = ValuePredictionPlugin(threshold=1, predictor="stride")
    cpu, _ = run(asm, init_mem=[(0x1000, 0x2000)], plugin=plugin)
    assert cpu.memory.read(0x1000) == 0x2000 + 8 * 8


def test_only_configured_ops_predicted():
    """ALU results are not predicted under the default (loads-only)."""
    asm = Assembler()
    asm.li(1, 7)
    for _ in range(8):
        asm.add(2, 1, 1)
    asm.halt()
    _cpu, plugin = run(asm)
    assert plugin.stats["predictions"] == 0
    assert plugin.stats["trainings"] == 0
