"""Constant-time primitives: constant-time on the Baseline, broken by
the studied optimizations (the Section III claim made concrete)."""

from repro.crypto.ct_primitives import (
    A_BASE, B_BASE, OUT_ADDR, TABLE_BASE, build_ct_compare,
    build_ct_lookup, build_ct_select,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(program, memory_writes, plugins=(), config=None):
    memory = FlatMemory(1 << 16)
    for addr, value, width in memory_writes:
        memory.write(addr, value, width)
    cpu = CPU(program, MemoryHierarchy(memory, l1=Cache()),
              config=config, plugins=list(plugins))
    cpu.run()
    return cpu


def compare_inputs(a_bytes, b_bytes):
    writes = []
    for index, byte in enumerate(a_bytes):
        writes.append((A_BASE + index, byte, 1))
    for index, byte in enumerate(b_bytes):
        writes.append((B_BASE + index, byte, 1))
    return writes


# --- ct_compare -----------------------------------------------------------

def test_ct_compare_is_functionally_correct():
    program = build_ct_compare(8)
    equal = run(program, compare_inputs(b"AAAAAAAA", b"AAAAAAAA"))
    differ = run(program, compare_inputs(b"AAAAAAAA", b"AAAAAAAB"))
    assert equal.memory.read(OUT_ADDR) == 0
    assert differ.memory.read(OUT_ADDR) != 0


def test_ct_compare_is_constant_time_on_baseline():
    program = build_ct_compare(8)
    cycles = {
        run(program, compare_inputs(a, b)).stats.cycles
        for a, b in ((b"AAAAAAAA", b"AAAAAAAA"),
                     (b"AAAAAAAA", b"BBBBBBBB"),
                     (b"AAAAAAAA", b"AAAAAAAB"),
                     (b"\x00" * 8, b"\xff" * 8))}
    assert len(cycles) == 1


def test_ct_compare_broken_by_trivial_bitwise():
    """Matching prefixes make the XORs trivial: timing orders by how
    far the inputs agree — a byte-at-a-time secret-recovery primitive."""
    program = build_ct_compare(8)
    plugin = lambda: ComputationSimplificationPlugin(
        rules=("trivial_bitwise",))
    config = CPUConfig(num_alu_ports=1, latency_alu=3)
    cycles = []
    secret = b"SECRETAA"
    for prefix_len in (0, 4, 8):
        guess = secret[:prefix_len] + b"\xee" * (8 - prefix_len)
        cpu = run(program, compare_inputs(secret, guess),
                  plugins=[plugin()], config=config)
        cycles.append(cpu.stats.cycles)
    assert cycles[0] > cycles[1] > cycles[2]


# --- ct_select -----------------------------------------------------------

def test_ct_select_functional():
    program = build_ct_select()
    for c, expected in ((1, 111), (0, 222)):
        cpu = run(program, [(A_BASE, c, 8), (A_BASE + 8, 111, 8),
                            (A_BASE + 16, 222, 8)])
        assert cpu.memory.read(OUT_ADDR) == expected


def test_ct_select_constant_time_on_baseline():
    program = build_ct_select()
    cycles = {
        run(program, [(A_BASE, c, 8), (A_BASE + 8, 111, 8),
                      (A_BASE + 16, 222, 8)]).stats.cycles
        for c in (0, 1)}
    assert len(cycles) == 1


def test_ct_select_condition_leaks_under_zero_skip():
    """Active attack: the attacker sets a=0 (its own input), so the
    skip count keys purely on the secret condition."""
    program = build_ct_select()
    config = CPUConfig(latency_mul=8, num_mul_units=1)
    results = {}
    for c in (0, 1):
        cpu = run(program, [(A_BASE, c, 8), (A_BASE + 8, 0, 8),
                            (A_BASE + 16, 222, 8)],
                  plugins=[ComputationSimplificationPlugin(
                      rules=("zero_skip_mul",))],
                  config=config)
        results[c] = cpu.stats.cycles
    assert results[0] != results[1]


# --- ct_lookup -----------------------------------------------------------

def lookup_writes(secret_index, entries):
    writes = [(A_BASE, secret_index, 8)]
    for index, value in enumerate(entries):
        writes.append((TABLE_BASE + 8 * index, value, 8))
    return writes


def test_ct_lookup_functional():
    program = build_ct_lookup(8)
    entries = [10 * (i + 1) for i in range(8)]
    for k in (0, 3, 7):
        cpu = run(program, lookup_writes(k, entries))
        assert cpu.memory.read(OUT_ADDR) == entries[k]


def test_ct_lookup_constant_time_on_baseline():
    program = build_ct_lookup(8)
    entries = [10 * (i + 1) for i in range(8)]
    cycles = {run(program, lookup_writes(k, entries)).stats.cycles
              for k in range(8)}
    assert len(cycles) == 1


def test_ct_lookup_index_leaks_under_sv_reuse():
    """Replay attack: prime the reuse table with one call at index g,
    then time a call at the secret index — hits iff the *mask pattern*
    (and so the index) repeats.  Here the transmitter is the per-entry
    multiply whose operands repeat exactly when k is unchanged."""
    program = build_ct_lookup(8)
    entries = [(i * i + 3) for i in range(8)]
    config = CPUConfig(latency_mul=10, num_mul_units=1)

    from repro.isa.opcodes import Op

    def timed_pair(first_k, second_k):
        plugin = ComputationReusePlugin(variant="sv",
                                        ops=frozenset({Op.MUL}))
        run(program, lookup_writes(first_k, entries),
            plugins=[plugin], config=config)
        cpu = run(program, lookup_writes(second_k, entries),
                  plugins=[plugin], config=config)
        return cpu.stats.cycles

    same = timed_pair(5, 5)
    different = timed_pair(4, 5)
    assert same < different
