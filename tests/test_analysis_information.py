"""Mutual-information estimator and its use on real probes."""

import pytest

from repro.analysis.information import (
    capacity_achieved, leakage_per_observation, mutual_information,
)
from repro.attacks.compsimp_attack import ZeroSkipAttack


def test_independent_variables_have_zero_mi():
    pairs = [(s, 100) for s in range(8)]       # constant observation
    assert mutual_information(pairs) == 0.0


def test_identity_channel_mi_is_secret_entropy():
    pairs = [(s, 100 + s) for s in range(8)]
    assert mutual_information(pairs) == pytest.approx(3.0)


def test_one_bit_predicate_channel():
    pairs = [(s, 100 if s == 0 else 200) for s in range(8)]
    # Unbalanced binary partition of 8 values: H(1/8) ≈ 0.544 bits.
    assert 0.5 < mutual_information(pairs) < 0.6


def test_binning_absorbs_small_jitter():
    pairs = [(s, (100 if s % 2 else 200) + (s % 3)) for s in range(12)]
    fine = mutual_information(pairs, bin_width=1)
    coarse = mutual_information(pairs, bin_width=8)
    assert coarse <= fine
    assert coarse == pytest.approx(1.0)


def test_empty_sample_set():
    assert mutual_information([]) == 0.0


def test_capacity_achieved():
    assert capacity_achieved(1.0, 2) == 1.0
    assert capacity_achieved(0.5, 4) == 0.25
    assert capacity_achieved(0.0, 1) == 0.0


def test_zero_skip_channel_achieves_its_mld_capacity():
    """End-to-end: the zero-skip timing channel, measured on the
    pipeline, achieves the full 1-bit MLD bound over a balanced
    secret set (half zero, half non-zero)."""
    attack = ZeroSkipAttack(chain_length=16)
    secrets = [0, 0, 0, 0, 1, 7, 99, 12345]
    bits, _pairs = leakage_per_observation(
        lambda s: attack.measure(s, 1).cycles, secrets, bin_width=16)
    assert bits == pytest.approx(1.0)
    assert capacity_achieved(bits, mld_outcomes=2) == pytest.approx(1.0)
