"""The repro.telemetry registry: instruments, merge, exposition."""

import json
import pickle

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS, PHASE_METRIC, Counter, Gauge, MetricsRegistry,
    WallHistogram, render_json, render_prometheus, worker_heartbeat,
)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------

def test_counter_is_monotone():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.as_value() == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_merges_by_max():
    gauge = Gauge()
    gauge.set(10)
    gauge.merge_value(7)
    assert gauge.as_value() == 10
    gauge.merge_value(12)
    assert gauge.as_value() == 12


def test_histogram_buckets_are_bounded():
    hist = WallHistogram(bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 99.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]       # one overflow, no growth
    assert hist.count == 3
    assert hist.total == pytest.approx(99.55)


def test_histogram_rejects_mismatched_merge():
    hist = WallHistogram(bounds=(0.1, 1.0))
    other = WallHistogram(bounds=(0.2, 2.0))
    other.observe(0.15)
    with pytest.raises(ValueError):
        hist.merge_value(other.as_value())


def test_histogram_bounds_must_ascend():
    with pytest.raises(ValueError):
        WallHistogram(bounds=(1.0, 0.1))
    with pytest.raises(ValueError):
        WallHistogram(bounds=())


# ----------------------------------------------------------------------
# registry recording
# ----------------------------------------------------------------------

def test_registry_records_labelled_samples():
    registry = MetricsRegistry()
    registry.inc("repro_test_total", backend="serial")
    registry.inc("repro_test_total", 2, backend="pool")
    registry.inc("repro_test_total", backend="serial")
    assert registry.value("repro_test_total", backend="serial") == 2
    assert registry.value("repro_test_total", backend="pool") == 2
    assert registry.total("repro_test_total") == 4
    assert registry.value("repro_test_total", backend="nope",
                          default=-1) == -1


def test_registry_rejects_bad_names_and_kind_clashes():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.inc("bad name")
    with pytest.raises(ValueError):
        registry.inc("repro_test_total", **{"bad-label": "x"})
    registry.inc("repro_kind_total")
    with pytest.raises(ValueError):
        registry.set("repro_kind_total", 3)


def test_phase_times_into_the_phase_histogram():
    registry = MetricsRegistry()
    with registry.phase("engine.runner", "probe"):
        pass
    value = registry.value(PHASE_METRIC, layer="engine.runner",
                           phase="probe")
    assert value["count"] == 1
    assert value["total"] >= 0.0
    assert tuple(value["bounds"]) == DEFAULT_BUCKETS


def test_disabled_registry_is_a_no_op():
    registry = MetricsRegistry(enabled=False)
    registry.inc("repro_test_total")
    registry.set("repro_test_gauge", 7)
    registry.observe("repro_test_seconds", 0.1)
    with registry.phase("engine.runner", "probe"):
        pass
    handle = registry.counter("repro_test_total")
    handle.inc()
    worker_heartbeat(registry=registry)
    assert registry.snapshot() == {}
    # ... and ignores merges, keeping the off mode observation-free.
    enabled = MetricsRegistry()
    enabled.inc("repro_test_total")
    registry.merge(enabled.snapshot())
    assert registry.snapshot() == {}


# ----------------------------------------------------------------------
# snapshots and merge semantics
# ----------------------------------------------------------------------

def _loaded_registry():
    registry = MetricsRegistry()
    registry.inc("repro_test_total", 3, help="a counter",
                 backend="serial")
    registry.set("repro_test_gauge", 11, pid="123")
    registry.observe("repro_test_seconds", 0.002)
    with registry.phase("lint.soundness", "variants"):
        pass
    return registry


def test_snapshot_round_trips_pickle_and_json():
    snapshot = _loaded_registry().snapshot()
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert snapshot["repro_test_total"]["kind"] == "counter"
    assert snapshot["repro_test_total"]["help"] == "a counter"


def test_merge_sums_counters_maxes_gauges_adds_buckets():
    parent = _loaded_registry()
    worker = _loaded_registry()
    worker.set("repro_test_gauge", 99, pid="123")
    parent.merge(worker.snapshot())
    assert parent.value("repro_test_total", backend="serial") == 6
    assert parent.value("repro_test_gauge", pid="123") == 99
    hist = parent.value("repro_test_seconds")
    assert hist["count"] == 2
    phase = parent.value(PHASE_METRIC, layer="lint.soundness",
                         phase="variants")
    assert phase["count"] == 2


def test_merge_is_order_independent():
    snapshots = []
    for amount in (1, 2, 3):
        registry = MetricsRegistry()
        registry.inc("repro_test_total", amount)
        registry.observe("repro_test_seconds", amount / 1000.0)
        snapshots.append(registry.drain())
    forward = MetricsRegistry()
    backward = MetricsRegistry()
    for snap in snapshots:
        forward.merge(snap)
    for snap in reversed(snapshots):
        backward.merge(snap)
    assert forward.snapshot() == backward.snapshot()


def test_drain_ships_only_the_delta():
    registry = _loaded_registry()
    first = registry.drain()
    assert first["repro_test_total"]["samples"]
    assert registry.snapshot() == {}
    registry.inc("repro_test_total", backend="serial")
    second = registry.drain()
    ((key, value),) = second["repro_test_total"]["samples"]
    assert value == 1                    # not 4: the delta alone


def test_worker_heartbeat_labels_by_pid():
    import os
    registry = MetricsRegistry()
    worker_heartbeat(trials=3, registry=registry)
    pid = str(os.getpid())
    assert registry.value("repro_worker_trials_total", pid=pid) == 3
    assert registry.value("repro_worker_heartbeat_timestamp_seconds",
                          pid=pid) > 0


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------

def test_prometheus_exposition_shape():
    text = render_prometheus(_loaded_registry())
    assert "# HELP repro_test_total a counter" in text
    assert "# TYPE repro_test_total counter" in text
    assert 'repro_test_total{backend="serial"} 3' in text
    assert "# TYPE repro_test_gauge gauge" in text
    assert 'repro_test_gauge{pid="123"} 11' in text
    assert "# TYPE repro_test_seconds histogram" in text
    assert 'repro_test_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_test_seconds_count 1" in text
    assert text.endswith("\n")


def test_prometheus_buckets_are_cumulative_and_monotone():
    registry = MetricsRegistry()
    for value in (0.0001, 0.003, 0.02, 42.0):
        registry.observe("repro_test_seconds", value)
    text = render_prometheus(registry)
    counts = []
    for line in text.splitlines():
        if line.startswith("repro_test_seconds_bucket"):
            counts.append(int(line.rsplit(" ", 1)[1]))
    assert counts == sorted(counts)      # cumulative ⇒ monotone
    assert counts[-1] == 4               # +Inf sees everything
    assert "repro_test_seconds_count 4" in text


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.inc("repro_test_total", phase='we"ird\\ph\nase')
    text = render_prometheus(registry)
    assert 'phase="we\\"ird\\\\ph\\nase"' in text


def test_render_json_wraps_the_snapshot():
    registry = _loaded_registry()
    payload = render_json(registry)
    assert payload["format"] == "repro-telemetry-v1"
    assert payload["families"] == 4
    assert payload["metrics"] == registry.snapshot()
    assert json.loads(json.dumps(payload)) == payload
    # Rendering accepts a snapshot dict just as well as a registry.
    assert render_json(registry.snapshot()) == payload
