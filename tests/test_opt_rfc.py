"""Register-file compression: credits, pool plumbing, variants."""

import pytest

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.register_file_compression import (
    RegisterFileCompressionPlugin,
)
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(asm, variant="zero-one", num_phys_regs=40, pool_size=8):
    mem = FlatMemory(1 << 14)
    plugin = RegisterFileCompressionPlugin(variant=variant,
                                           pool_size=pool_size)
    config = CPUConfig(num_phys_regs=num_phys_regs, rob_size=64,
                       rs_size=48, dispatch_width=4, fetch_width=4,
                       issue_width=4)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=config, plugins=[plugin])
    cpu.run()
    return cpu, plugin


def producer_burst(value, count=16):
    asm = Assembler()
    asm.li(1, value)
    for index in range(count):
        asm.add(2 + (index % 4), 1, 0)
    asm.halt()
    return asm


def test_variant_validation():
    with pytest.raises(ValueError):
        RegisterFileCompressionPlugin(variant="bogus")


def test_zero_one_variant_earns_credits_for_flags():
    _cpu, plugin = run(producer_burst(1))
    assert plugin.stats["compressible_results"] >= 16


def test_zero_one_variant_ignores_wide_values():
    _cpu, plugin = run(producer_burst(12345))
    # only the initial LI of small constants may contribute
    assert plugin.stats["compressible_results"] <= 2


def test_any_variant_detects_duplicates():
    _cpu, plugin = run(producer_burst(0xDEAD), variant="any")
    # every copy after the first duplicates a recent value
    assert plugin.stats["compressible_results"] >= 14


def test_any_variant_distinct_values_no_credits():
    asm = Assembler()
    asm.li(1, 3)
    value = 1
    for index in range(12):
        asm.li(2 + (index % 4), 1000 + 7 * index)
    asm.halt()
    _cpu, plugin = run(asm, variant="any")
    assert plugin.stats["compressible_results"] == 0


def test_pool_grant_and_reclaim_cycle():
    """Pool registers handed out during pressure come back on free."""
    asm = producer_burst(1, count=24)
    cpu, plugin = run(asm, num_phys_regs=36, pool_size=8)
    grants = plugin.stats["pool_grants"]
    reclaims = plugin.stats["pool_reclaims"]
    assert grants > 0
    # Pool registers still holding live architectural values at HALT
    # are not reclaimed; conservation must hold exactly.
    assert reclaims <= grants
    assert len(plugin._pool) == plugin.pool_size - (grants - reclaims)


def test_credits_capped_at_pool_size():
    _cpu, plugin = run(producer_burst(0, count=32), pool_size=4)
    assert plugin.credits <= 4


def test_compression_relieves_rename_stalls():
    compressible, comp_plugin = run(producer_burst(1, count=32),
                                    num_phys_regs=36)
    wide, wide_plugin = run(producer_burst(99999, count=32),
                            num_phys_regs=36)
    assert comp_plugin.stats["pool_grants"] > 0
    assert (compressible.stats.dispatch_stalls["preg"]
            <= wide.stats.dispatch_stalls["preg"])


def test_architectural_results_unchanged():
    for value in (0, 1, 99999):
        cpu, _ = run(producer_burst(value, count=8))
        assert cpu.arch_reg(2) == value


def test_plugin_pool_extends_prf():
    asm = producer_burst(1, count=4)
    mem = FlatMemory(1 << 14)
    plugin = RegisterFileCompressionPlugin(pool_size=6)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              plugins=[plugin])
    assert len(cpu.prf_value) == cpu.config.num_phys_regs + 6
    cpu.run()
