"""Differential soundness: dynamic MLD divergence ⊆ static flags.

The checker's no-false-negatives contract, enforced over the full
attack-spec catalog plus targeted pairs where the dynamic divergence
is constructed to be non-vacuous.
"""

import pytest

from tests.spec_catalog import attack_specs

from repro.attacks.amplification import amplified_probe_spec
from repro.lint import check_soundness, lint_spec, secret_variants
from repro.lint.soundness import divergent_plugins


@pytest.fixture(scope="module")
def catalog():
    return attack_specs()


@pytest.mark.parametrize("name", sorted(attack_specs()))
def test_catalog_spec_is_soundly_flagged(catalog, name):
    spec = catalog[name]
    result = check_soundness(spec)
    assert result.ok, (
        f"{name}: dynamically divergent but unflagged plug-ins "
        f"{result.unflagged} — the checker missed a real leak")


def test_catalog_has_nonvacuous_coverage(catalog):
    divergent = {name for name, spec in catalog.items()
                 if not check_soundness(spec).vacuous}
    # Most of the catalog must demonstrate a *real* dynamic divergence,
    # otherwise the gate proves nothing.
    assert len(divergent) >= 5, sorted(divergent)


def test_amplification_silent_pair_diverges():
    # secret == store value: the baseline store is silent; flipping
    # secret bytes makes it non-silent. The canonical equality channel.
    spec = amplified_probe_spec(0x4321, 0x4321, gadget=True,
                                label="amp_silent_pair")
    result = check_soundness(spec)
    assert "silent-stores" in result.divergent
    assert "silent-stores" in result.flagged
    assert result.ok


def test_bsaes_audit_flags_exactly_silent_stores(catalog):
    report = lint_spec(catalog["bsaes"])
    assert report.leaking_plugins() == ["silent-stores"]
    assert not report.ok


def test_secret_variants_touch_only_secret_bytes(catalog):
    spec = catalog["reuse"]
    variants = secret_variants(spec)
    assert variants[0] is spec
    assert len(variants) > 1
    secret = spec.taint.secret
    for variant in variants[1:]:
        assert variant.program is spec.program
        assert variant.fingerprint() != spec.fingerprint()
        for (addr, value, width), (vaddr, vvalue, vwidth) in zip(
                spec.mem_writes, variant.mem_writes):
            assert addr == vaddr and width == vwidth
            if value != vvalue:
                changed = value ^ vvalue
                for index in range(width):
                    if (changed >> (8 * index)) & 0xFF:
                        byte_addr = addr + index
                        assert any(start <= byte_addr < end
                                   for start, end in secret), (
                            f"byte {byte_addr:#x} flipped outside the "
                            f"declared secret {secret}")


def test_spec_without_secrets_is_vacuous():
    spec = amplified_probe_spec(0x1111, 0x2222)
    stripped = spec.replace(taint=None)
    variants = secret_variants(stripped)
    assert variants == [stripped]
    result = check_soundness(stripped)
    assert result.ok and result.vacuous


def test_divergent_plugins_attributes_cycle_drift():
    class FakeResult:
        def __init__(self, cycles, plugins):
            self.cycles = cycles
            self.observations = {"plugins": plugins}

    same = {"silent-stores": {"silent": 1}}
    a = FakeResult(100, same)
    b = FakeResult(105, dict(same))
    # identical stats but drifted cycles: attribute to enabled plug-ins
    assert divergent_plugins(a, b, enabled=("silent-stores",)) == \
        {"silent-stores"}
    # tracer never counts as an MLD
    assert divergent_plugins(
        a, b, enabled=("silent-stores", "pipeline-tracer")) == \
        {"silent-stores"}
    c = FakeResult(100, {"silent-stores": {"silent": 2}})
    assert divergent_plugins(a, c) == {"silent-stores"}
    assert divergent_plugins(a, FakeResult(100, dict(same))) == set()
