"""JIT lowering: Figure 7b semantics and the "no extra accesses" property."""

from repro.isa.interpreter import run_program
from repro.isa.opcodes import Op
from repro.memory.flatmem import FlatMemory
from repro.sandbox.ebpf import BpfArray, BpfOp, BpfProgram
from repro.sandbox.jit import Jit, machine_reg


def compile_and_run(program, layout, memory=None):
    jit = Jit(program, layout)
    machine = jit.compile()
    memory = memory if memory is not None else FlatMemory(1 << 16)
    state = run_program(machine, memory=memory)
    return state, jit, machine


def test_in_bounds_lookup_computes_element_address():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 2)
    program.lookup(2, "Z", 1)
    program.exit()
    program.finalize()
    state, _jit, _machine = compile_and_run(program, {"Z": 0x1000})
    assert state.read_reg(machine_reg(2)) == 0x1000 + 2 * 8


def test_out_of_bounds_lookup_yields_null():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 4)           # == length: out of bounds
    program.lookup(2, "Z", 1)
    program.exit()
    program.finalize()
    state, _jit, _machine = compile_and_run(program, {"Z": 0x1000})
    assert state.read_reg(machine_reg(2)) == 0


def test_unsigned_bounds_check_catches_negative_indices():
    """Figure 7b uses an unsigned compare (jae): -1 is huge, not small."""
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, -1)
    program.lookup(2, "Z", 1)
    program.exit()
    program.finalize()
    state, _jit, _machine = compile_and_run(program, {"Z": 0x1000})
    assert state.read_reg(machine_reg(2)) == 0


def test_large_element_scale_uses_shift():
    program = BpfProgram(arrays=(BpfArray("X", 64, 8),))
    program.mov_imm(1, 3)
    program.lookup(2, "X", 1)
    program.exit()
    program.finalize()
    state, _jit, machine = compile_and_run(program, {"X": 0x4000})
    assert state.read_reg(machine_reg(2)) == 0x4000 + 3 * 64
    assert any(inst.op is Op.SLLI and inst.imm == 6 for inst in machine)


def test_load_through_pointer():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 1)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)
    program.label("out")
    program.exit()
    program.finalize()
    memory = FlatMemory(1 << 16)
    memory.write(0x1008, 777)
    state, _jit, _machine = compile_and_run(program, {"Z": 0x1000},
                                            memory)
    assert state.read_reg(machine_reg(3)) == 777


def test_loop_executes_correct_trip_count():
    program = BpfProgram()
    program.mov_imm(1, 0)
    program.mov_imm(2, 0)
    program.label("loop")
    program.add_imm(2, 3)
    program.add_imm(1, 1)
    program.jlt_imm(1, 5, "loop")
    program.exit()
    program.finalize()
    state, _jit, _machine = compile_and_run(program, {})
    assert state.read_reg(machine_reg(2)) == 15


def test_no_extra_memory_accesses_between_indirections():
    """Section V-B1: the JIT inserts no loads/stores beyond the BPF
    program's own LOADs — the prefetcher sees the raw pattern."""
    program = BpfProgram(arrays=(BpfArray("Z", 8, 8),
                                 BpfArray("Y", 8, 8)))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)
    program.lookup(4, "Y", 3)
    program.jeq_imm(4, 0, "out")
    program.load(5, 4, 0)
    program.label("out")
    program.exit()
    program.finalize()
    jit = Jit(program, {"Z": 0x1000, "Y": 0x2000})
    machine = jit.compile()
    machine_loads = [inst for inst in machine if inst.op is Op.LOAD]
    bpf_loads = [inst for inst in program.instructions
                 if inst.op is BpfOp.LOAD]
    assert len(machine_loads) == len(bpf_loads)
    assert not any(inst.op is Op.STORE for inst in machine)


def test_pc_map_and_load_pcs_recorded():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.load(3, 2, 0)
    program.label("out")
    program.exit()
    program.finalize()
    jit = Jit(program, {"Z": 0x1000})
    machine = jit.compile()
    assert set(jit.pc_map) == set(range(len(program.instructions)))
    assert list(jit.load_pcs) == [3]
    load_pc = jit.load_pcs[3]
    assert machine[load_pc].op is Op.LOAD


def test_alu_lowering_semantics():
    program = BpfProgram()
    program.mov_imm(1, 0xF0)
    program.mov_imm(2, 0x0F)
    program.xor_reg(1, 2)
    program.lsh_imm(1, 4)
    program.rsh_imm(1, 2)
    program.and_imm(1, 0xFFF)
    program.sub_imm(1, 1)
    program.exit()
    program.finalize()
    state, _jit, _machine = compile_and_run(program, {})
    expected = ((((0xF0 ^ 0x0F) << 4) >> 2) & 0xFFF) - 1
    assert state.read_reg(machine_reg(1)) == expected
