"""Unit and property tests for the bit-manipulation helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.bits import (
    WORD_MASK, byte_at, is_narrow, mask, msb_index, significant_bytes,
    to_signed, to_unsigned,
)

words = st.integers(min_value=0, max_value=WORD_MASK)


def test_mask_truncates():
    assert mask(1 << 64) == 0
    assert mask((1 << 64) + 5) == 5
    assert mask(-1) == WORD_MASK


def test_to_signed_boundaries():
    assert to_signed(0) == 0
    assert to_signed(WORD_MASK) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed((1 << 63) - 1) == (1 << 63) - 1


def test_to_signed_narrow_widths():
    assert to_signed(0xFF, bits=8) == -1
    assert to_signed(0x7F, bits=8) == 127
    assert to_signed(0x80, bits=8) == -128


@given(words)
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned(to_signed(value)) == value


def test_msb_index():
    assert msb_index(0) == -1
    assert msb_index(1) == 0
    assert msb_index(0x8000) == 15
    assert msb_index(1 << 63) == 63


@given(st.integers(min_value=1, max_value=WORD_MASK))
def test_msb_index_is_floor_log2(value):
    assert 1 << msb_index(value) <= value < 1 << (msb_index(value) + 1)


def test_significant_bytes():
    assert significant_bytes(0) == 1
    assert significant_bytes(0xFF) == 1
    assert significant_bytes(0x100) == 2
    assert significant_bytes(1 << 63) == 8


@given(words)
def test_significant_bytes_bounds(value):
    width = significant_bytes(value)
    assert 1 <= width <= 8
    assert value < 1 << (8 * width)


def test_is_narrow_definition():
    assert is_narrow(0)
    assert is_narrow(0xFFFF)
    assert not is_narrow(0x10000)
    assert is_narrow(0xFFFFFFFF, bits=32)


def test_byte_at_little_endian():
    value = 0x0807060504030201
    for index in range(8):
        assert byte_at(value, index) == index + 1


@given(words)
def test_byte_at_reconstructs_word(value):
    rebuilt = sum(byte_at(value, i) << (8 * i) for i in range(8))
    assert rebuilt == value
