"""Silent stores: the four cases of Figure 4, dequeue behaviour, stats."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(asm, init_mem=(), config=None, plugin=None, num_sets=64):
    mem = FlatMemory(1 << 16)
    for addr, value in init_mem:
        mem.write(addr, value)
    plugin = plugin if plugin is not None else SilentStorePlugin()
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache(num_sets=num_sets)),
              config=config, plugins=[plugin])
    cpu.run()
    return cpu, plugin


def warm_store(value, addr=0x1000):
    asm = Assembler()
    asm.li(1, addr)
    asm.load(2, 1, 0)       # warm the line so the SS-Load can hit
    asm.li(3, value)
    asm.store(3, 1, 0)
    asm.halt()
    return asm


def test_case_a_matching_store_is_silent():
    cpu, plugin = run(warm_store(42), init_mem=[(0x1000, 42)])
    assert cpu.stats.silent_stores == 1
    assert cpu.stats.stores_performed == 0
    assert plugin.stats["case_a_silent"] == 1
    assert cpu.memory.read(0x1000) == 42


def test_case_b_mismatching_store_performs():
    cpu, plugin = run(warm_store(7), init_mem=[(0x1000, 42)])
    assert cpu.stats.silent_stores == 0
    assert cpu.stats.stores_performed == 1
    assert plugin.stats["case_b_nonsilent"] == 1
    assert cpu.memory.read(0x1000) == 7


def test_case_c_no_free_load_port():
    """With zero load ports for stealing, no store is a candidate."""
    config = CPUConfig(num_load_ports=1)
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.fence()
    # Keep the single load port busy with a stream of loads, then store.
    asm.li(5, 0x2000)
    asm.load(6, 5, 0)
    asm.load(6, 5, 8)
    asm.li(3, 42)
    asm.store(3, 1, 0)
    asm.load(6, 5, 16)
    asm.load(6, 5, 24)
    asm.load(6, 5, 32)
    asm.halt()
    cpu, plugin = run(asm, init_mem=[(0x1000, 42)], config=config)
    # The store matched memory, but if candidacy was denied (case C) it
    # performed anyway — operationally a baseline machine.
    assert plugin.stats["case_c_no_port"] + cpu.stats.silent_stores == 1
    assert cpu.memory.read(0x1000) == 42


def test_case_d_ss_load_miss_never_returns():
    """Store line cold: the (no-allocate) SS-Load misses; not silent."""
    asm = Assembler()
    asm.li(1, 0x1000)     # NOT warmed
    asm.li(3, 42)
    asm.store(3, 1, 0)
    asm.halt()
    cpu, plugin = run(asm, init_mem=[(0x1000, 42)])
    assert cpu.stats.silent_stores == 0
    assert cpu.stats.stores_performed == 1
    assert plugin.stats["case_d_late"] == 1


def test_ss_load_allocates_variant_still_detects():
    """Cold target line: the allocating SS-Load pays a miss but still
    returns in time because the store's data (another cold load) is
    just as slow."""
    asm = Assembler()
    asm.li(1, 0x1000)     # cold line, but the SS-Load allocates
    asm.li(4, 0x5000)
    asm.load(3, 4, 0)     # store data arrives after ~memory latency
    asm.store(3, 1, 0)
    asm.halt()
    plugin = SilentStorePlugin(ss_load_allocates=True)
    cpu, plugin = run(asm, init_mem=[(0x1000, 42), (0x5000, 42)],
                      plugin=plugin)
    assert cpu.stats.silent_stores == 1


def test_ss_load_no_allocate_same_scenario_not_silent():
    """Identical program under the default no-allocate policy: the
    SS-Load misses and never returns, so the store performs."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(4, 0x5000)
    asm.load(3, 4, 0)
    asm.store(3, 1, 0)
    asm.halt()
    cpu, plugin = run(asm, init_mem=[(0x1000, 42), (0x5000, 42)])
    assert cpu.stats.silent_stores == 0
    assert cpu.stats.stores_performed == 1


def test_consecutive_silent_stores_dequeue_together():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.load(2, 1, 8)
    asm.load(2, 1, 16)
    asm.fence()
    for index in range(3):
        asm.li(3, index + 1)
        asm.store(3, 1, 8 * index)
    asm.halt()
    init = [(0x1000, 1), (0x1008, 2), (0x1010, 3)]
    cpu, _plugin = run(asm, init_mem=init)
    assert cpu.stats.silent_stores == 3
    assert cpu.stats.stores_performed == 0


def test_narrow_width_comparison():
    """A byte store is silent iff the *byte* matches (IV-C4 narrowing)."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.li(3, 0x99)
    asm.store(3, 1, 0, width=1)
    asm.halt()
    cpu, _ = run(asm, init_mem=[(0x1000, 0xFFFF99)])  # low byte 0x99
    assert cpu.stats.silent_stores == 1


def test_architectural_result_is_unchanged_by_silentness():
    for leftover, value in ((5, 5), (5, 9)):
        cpu, _ = run(warm_store(value), init_mem=[(0x1000, leftover)])
        assert cpu.memory.read(0x1000) == value


def test_retry_window_allows_late_port():
    plugin = SilentStorePlugin(retry_cycles=50)
    cpu, plugin = run(warm_store(42), init_mem=[(0x1000, 42)],
                      plugin=plugin)
    assert cpu.stats.silent_stores == 1
