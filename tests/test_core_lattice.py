"""The security lattice and the Section IV-A2 preconditioning analysis."""

import pytest

from repro.core.lattice import (
    Label, experiments_to_identify, flows_to, induced_partition, join,
    leakage_bits,
)


def test_lattice_order():
    assert flows_to(Label.PUBLIC, Label.CONTROLLED)
    assert flows_to(Label.CONTROLLED, Label.PRIVATE)
    assert flows_to(Label.PUBLIC, Label.PRIVATE)
    assert not flows_to(Label.PRIVATE, Label.PUBLIC)
    assert not flows_to(Label.CONTROLLED, Label.PUBLIC)
    assert flows_to(Label.PRIVATE, Label.PRIVATE)


def test_join():
    assert join(Label.PUBLIC, Label.PRIVATE) is Label.PRIVATE
    assert join(Label.CONTROLLED, Label.PUBLIC) is Label.CONTROLLED
    assert join(Label.PUBLIC, Label.PUBLIC) is Label.PUBLIC


def zero_skip(private_operand, other_operand):
    """The zero-skip multiply outcome as a function of one private and
    one fixed operand."""
    return int(private_operand == 0 or other_operand == 0)


DOMAIN = list(range(8))


def test_zero_skip_with_nonzero_public_leaks_is_zero_bit():
    """Section IV-A2: public operand non-zero → attacker learns whether
    the private operand is 0."""
    partition = induced_partition(zero_skip, DOMAIN, (5,))
    assert partition == {1: [0], 0: [1, 2, 3, 4, 5, 6, 7]}


def test_zero_skip_with_zero_public_leaks_nothing():
    """Section IV-A2: if the public operand is 0, that the skip occurs
    is purely a function of public information."""
    partition = induced_partition(zero_skip, DOMAIN, (0,))
    assert len(partition) == 1


def test_leakage_bits_quantifies_the_difference():
    some = leakage_bits(zero_skip, DOMAIN, (5,))
    none = leakage_bits(zero_skip, DOMAIN, (0,))
    assert none == 0.0
    assert 0 < some < 1     # one unbalanced binary question


def test_leakage_bits_full_identification():
    identity = lambda private, _fixed: private
    assert leakage_bits(identity, DOMAIN, (0,)) == pytest.approx(3.0)


def test_experiments_to_identify_equality_oracle():
    """The replay attack of IV-C4: equality checks identify the secret
    in (value + 1) experiments when guesses are enumerated in order —
    except the last candidate, which is known by elimination."""
    equality = lambda secret, guess: int(secret == guess)
    results = experiments_to_identify(equality, list(range(4)),
                                      list(range(4)))
    assert results[0] == 1
    assert results[1] == 2
    assert results[2] == 3
    assert results[2] == 3


def test_experiments_budget_exhaustion():
    equality = lambda secret, guess: int(secret == guess)
    results = experiments_to_identify(equality, list(range(8)),
                                      [0, 1])   # too few preconditions
    assert results[7] is None
