"""Differential test: pooled execution must be bitwise-serial.

Every randomness source in a spec is seeded, so fanning trials across
a ``ProcessPoolExecutor`` may change *scheduling* but never *results*.
This sweeps one spec per attack module (see :mod:`tests.spec_catalog`)
through :func:`run_trials` with ``workers=1`` and ``workers=4`` and
asserts the :class:`RunResult` records — including the per-run
``metrics`` payloads and their merged aggregate — are identical down
to the serialized byte.
"""

from repro.engine import TraceSpec, derive_seed, merge_all, run_trials
from tests.spec_catalog import attack_specs

TRIALS_PER_ATTACK = 3


def _make_trial_specs():
    """A mixed batch: every attack, several distinct seeds each."""
    specs = []
    for index, (name, spec) in enumerate(sorted(attack_specs().items())):
        for trial in range(TRIALS_PER_ATTACK):
            specs.append(spec.replace(
                seed=derive_seed(index, trial),
                label=f"{name}/{trial}"))
    return specs


def test_pooled_results_bitwise_identical_to_serial():
    specs = _make_trial_specs()
    serial = run_trials(lambda spec: spec, specs, workers=1)
    pooled = run_trials(lambda spec: spec, specs, workers=4)

    assert len(serial) == len(pooled) == len(specs)
    for spec, one, many in zip(specs, serial, pooled):
        assert one.to_json() == many.to_json(), spec.label
        assert one.metrics, spec.label  # collect_stats=True by default

    merged_serial = merge_all(result.metrics for result in serial)
    merged_pooled = merge_all(result.metrics for result in pooled)
    assert merged_serial == merged_pooled
    assert merged_serial.as_dict() == merged_pooled.as_dict()
    # Every trial contributed to the aggregate.
    assert merged_serial.counters["engine.trials"] == len(specs)


def test_traced_pooled_results_bitwise_identical_to_serial():
    """The trace payload obeys the same determinism contract: event
    streams are simulation-derived only, so a traced batch is bitwise
    identical across serial and pooled execution too."""
    specs = [spec.replace(trace=TraceSpec())
             for spec in _make_trial_specs()]
    serial = run_trials(lambda spec: spec, specs, workers=1)
    pooled = run_trials(lambda spec: spec, specs, workers=4)

    assert len(serial) == len(pooled) == len(specs)
    for spec, one, many in zip(specs, serial, pooled):
        assert one.to_json() == many.to_json(), spec.label
        assert one.trace["events"], spec.label
        assert one.trace["emitted"] >= len(one.trace["events"])
