"""Prime+Probe and Flush+Reload receivers on the cache model."""

import pytest

from repro.attacks.covert_channel import (
    FlushReloadReceiver, PrimeProbeReceiver,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy


def make(num_sets=16, ways=2, l2=False):
    memory = FlatMemory(1 << 20)
    hierarchy = MemoryHierarchy(
        memory, l1=Cache(num_sets=num_sets, ways=ways),
        l2=Cache(num_sets=32, ways=4) if l2 else None)
    span = num_sets * 64
    buffer_base = (1 << 18)
    assert buffer_base % span == 0
    return hierarchy, PrimeProbeReceiver(hierarchy, buffer_base)


def test_buffer_alignment_enforced():
    hierarchy, _receiver = make()
    with pytest.raises(ValueError, match="aligned"):
        PrimeProbeReceiver(hierarchy, 0x123)


def test_way_addresses_map_to_requested_set():
    hierarchy, receiver = make()
    for set_index in (0, 7, 15):
        for way in range(hierarchy.l1.ways):
            addr = receiver.way_address(set_index, way)
            assert hierarchy.l1.set_index(addr) == set_index


def test_quiet_victim_probes_clean():
    _hierarchy, receiver = make()
    receiver.prime()
    probe = receiver.probe()
    assert receiver.evicted_sets(probe) == []


def test_single_victim_access_detected_in_the_right_set():
    hierarchy, receiver = make()
    receiver.prime()
    victim_addr = 0x4242
    hierarchy.read(victim_addr)            # the transmitter
    probe = receiver.probe()
    evicted = receiver.evicted_sets(probe)
    assert evicted == [hierarchy.l1.set_index(victim_addr)]


def test_multiple_victim_sets_detected():
    hierarchy, receiver = make()
    receiver.prime()
    addrs = [0x0000, 0x1040, 0x2080]
    for addr in addrs:
        hierarchy.read(addr)
    evicted = receiver.evicted_sets(receiver.probe())
    expected = sorted({hierarchy.l1.set_index(a) for a in addrs})
    assert evicted == expected


def test_partial_priming():
    hierarchy, receiver = make()
    receiver.prime(target_sets=[3, 4])
    hierarchy.read(receiver.way_address(3, 0) + 0x10000)  # hits set 3
    probe = receiver.probe(target_sets=[3, 4])
    assert 3 in receiver.evicted_sets(probe)


def test_prefetcher_fills_are_visible():
    """The URG's transmitter is a prefetch, not a demand access."""
    hierarchy, receiver = make()
    receiver.prime()
    hierarchy.prefetch(0x4242)
    evicted = receiver.evicted_sets(receiver.probe())
    assert hierarchy.l1.set_index(0x4242) in evicted


def test_flush_reload():
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache(),
                                l2=Cache(num_sets=128, ways=8))
    receiver = FlushReloadReceiver(hierarchy)
    shared_addr = 0x2000
    hierarchy.read(shared_addr)
    receiver.flush(shared_addr)
    cached, latency = receiver.reload(shared_addr)
    assert not cached and latency > hierarchy.latencies.l2_hit
    # Victim touches it; reload is now fast.
    receiver.flush(shared_addr)
    hierarchy.read(shared_addr)
    cached, latency = receiver.reload(shared_addr)
    assert cached and latency <= hierarchy.latencies.l1_hit
