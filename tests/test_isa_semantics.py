"""The arithmetic/branch semantics against Python's own arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.bits import WORD_MASK, to_signed
from repro.isa.opcodes import Op
from repro.isa.semantics import (
    SemanticsError, alu_result, branch_taken, effective_address,
)

words = st.integers(min_value=0, max_value=WORD_MASK)


@given(words, words)
def test_add_sub_wraparound(a, b):
    assert alu_result(Op.ADD, a, b, 0) == (a + b) & WORD_MASK
    assert alu_result(Op.SUB, a, b, 0) == (a - b) & WORD_MASK


@given(words, words)
def test_bitwise(a, b):
    assert alu_result(Op.AND, a, b, 0) == a & b
    assert alu_result(Op.OR, a, b, 0) == a | b
    assert alu_result(Op.XOR, a, b, 0) == a ^ b


@given(words, st.integers(min_value=0, max_value=63))
def test_shifts(a, sh):
    assert alu_result(Op.SLL, a, sh, 0) == (a << sh) & WORD_MASK
    assert alu_result(Op.SRL, a, sh, 0) == a >> sh
    assert alu_result(Op.SRA, a, sh, 0) == (to_signed(a) >> sh) & WORD_MASK


@given(words, words)
def test_comparisons(a, b):
    assert alu_result(Op.SLTU, a, b, 0) == int(a < b)
    assert alu_result(Op.SLT, a, b, 0) == int(to_signed(a) < to_signed(b))


@given(words, words)
def test_mul_low_word(a, b):
    assert alu_result(Op.MUL, a, b, 0) == (a * b) & WORD_MASK


def test_div_by_zero_riscv_semantics():
    assert alu_result(Op.DIV, 42, 0, 0) == WORD_MASK  # all ones
    assert alu_result(Op.REM, 42, 0, 0) == 42


@given(words, words)
def test_div_rem_identity(a, b):
    if b == 0:
        return
    q = to_signed(alu_result(Op.DIV, a, b, 0))
    r = to_signed(alu_result(Op.REM, a, b, 0))
    sa, sb = to_signed(a), to_signed(b)
    # RISC-V M: truncated division, remainder keeps the dividend's sign.
    if sa != -(1 << 63) or sb != -1:  # skip the overflow corner
        assert q * sb + r == sa
        assert abs(r) < abs(sb) or r == 0


def test_div_truncates_toward_zero():
    minus7 = (-7) & WORD_MASK
    assert to_signed(alu_result(Op.DIV, minus7, 2, 0)) == -3
    assert to_signed(alu_result(Op.REM, minus7, 2, 0)) == -1


@given(words, st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
def test_addi(a, imm):
    assert alu_result(Op.ADDI, a, 0, imm) == (a + imm) & WORD_MASK


def test_li_masks_immediate():
    assert alu_result(Op.LI, 0, 0, -1) == WORD_MASK


@given(words, words)
def test_branch_consistency(a, b):
    assert branch_taken(Op.BEQ, a, b) == (a == b)
    assert branch_taken(Op.BNE, a, b) == (a != b)
    assert branch_taken(Op.BLTU, a, b) == (a < b)
    assert branch_taken(Op.BGEU, a, b) == (a >= b)
    assert branch_taken(Op.BLT, a, b) == (to_signed(a) < to_signed(b))
    assert branch_taken(Op.BGE, a, b) == (to_signed(a) >= to_signed(b))


def test_non_arith_op_rejected():
    with pytest.raises(SemanticsError):
        alu_result(Op.LOAD, 0, 0, 0)
    with pytest.raises(SemanticsError):
        branch_taken(Op.ADD, 0, 0)


def test_effective_address_wraps():
    assert effective_address(WORD_MASK, 1) == 0
    assert effective_address(0x1000, -16) == 0x0FF0
