"""In-sandbox map stores: verifier discipline, JIT semantics."""

import pytest

from repro.isa.interpreter import run_program
from repro.memory.flatmem import FlatMemory
from repro.sandbox.ebpf import BpfArray, BpfProgram
from repro.sandbox.interpreter import BpfInterpreter, BpfRuntimeError
from repro.sandbox.jit import Jit
from repro.sandbox.verifier import Verifier, VerifierError


def store_program(checked=True, off=0, width=8):
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 2)
    program.mov_imm(2, 777)
    program.lookup(3, "Z", 1)
    if checked:
        program.jeq_imm(3, 0, "out")
    program.store(3, 2, off=off, width=width)
    program.label("out")
    program.exit()
    return program


def test_verifier_accepts_checked_store():
    Verifier().verify(store_program())


def test_verifier_rejects_unchecked_store():
    with pytest.raises(VerifierError, match="possibly-NULL"):
        Verifier().verify(store_program(checked=False))


def test_verifier_rejects_out_of_element_store():
    with pytest.raises(VerifierError, match="outside element"):
        Verifier().verify(store_program(off=4, width=8))


def test_verifier_rejects_pointer_store():
    """Storing a pointer to a map would leak kernel addresses."""
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.jeq_imm(2, 0, "out")
    program.store(2, 2)          # *(ptr) = ptr
    program.label("out")
    program.exit()
    with pytest.raises(VerifierError, match="pointer leak"):
        Verifier().verify(program)


def test_jit_store_semantics():
    program = store_program()
    program.finalize()
    machine = Jit(program, {"Z": 0x1000}).compile()
    memory = FlatMemory(1 << 14)
    run_program(machine, memory=memory)
    assert memory.read(0x1000 + 2 * 8) == 777
    assert memory.read(0x1000) == 0          # neighbours untouched


def test_reference_interpreter_store_semantics():
    program = store_program()
    memory = FlatMemory(1 << 14)
    BpfInterpreter(program, {"Z": 0x1000}, memory).run()
    assert memory.read(0x1000 + 2 * 8) == 777


def test_reference_interpreter_rejects_null_store():
    program = store_program(checked=False)
    program.instructions[0].imm = 9          # out-of-bounds index
    memory = FlatMemory(1 << 14)
    with pytest.raises(BpfRuntimeError, match="NULL"):
        BpfInterpreter(program, {"Z": 0x1000}, memory).run()


def test_store_then_load_roundtrip_through_sandbox():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 1)
    program.mov_imm(2, 4242)
    program.lookup(3, "Z", 1)
    program.jeq_imm(3, 0, "out")
    program.store(3, 2)
    program.load(4, 3, 0)
    program.label("out")
    program.exit()
    Verifier().verify(program)
    memory = FlatMemory(1 << 14)
    regs = BpfInterpreter(program, {"Z": 0x1000}, memory).run()
    assert regs[4] == 4242
