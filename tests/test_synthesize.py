"""Mechanics suite for the contract synthesizer.

Pins the pieces :mod:`repro.lint.synthesize` is assembled from — the
(op, tap) pair vocabulary shared between declared rows
(:func:`row_pairs`) and observed signatures
(:func:`tainted_tap_pairs`), control-cohort filtering, witness
minimization — and the cross-backend determinism contract: the same
seed and budget must produce bitwise-identical learned contracts and
witnesses whether the fleet executes serially or in lockstep cohorts.
"""

import random

import pytest

from repro.engine import PluginSpec, run_batch
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.lint import (
    applicable_taps, canonical_tap, check_synthesis, lint_program,
    minimize_witness, producing_ops, row_pairs, rows_for_names,
    tainted_tap_pairs,
)
from repro.lint.progen import (
    CaseGenerator, GeneratedCase, SECRET_ADDR, TRIGGER_TEMPLATES,
)
from repro.lint.synthesize import (
    _control_diverged, _reproduces, _without_instruction,
)

SILENT = PluginSpec.of("silent-stores")


# ----------------------------------------------------------------------
# the pair vocabulary
# ----------------------------------------------------------------------

def test_canonical_tap_folds_aliases_per_op():
    assert canonical_tap(Op.STORE, "store_value") == "rs2"
    assert canonical_tap(Op.LOAD, "address") == "rs1"
    assert canonical_tap(Op.STORE, "address") == "rs1"
    assert canonical_tap(Op.LOAD, "loaded_value") == "result"
    assert canonical_tap(Op.MUL, "rs1") == "rs1"
    assert canonical_tap(Op.STORE, "old_memory_value") == \
        "old_memory_value"


def test_applicable_taps_follow_operand_structure():
    assert applicable_taps(Op.STORE) == \
        ("rs1", "rs2", "old_memory_value")
    assert applicable_taps(Op.LOAD) == ("rs1", "result")
    assert applicable_taps(Op.ADD) == ("rs1", "rs2", "result")
    assert applicable_taps(Op.LI) == ("result",)
    assert applicable_taps(Op.HALT) == ()


def test_producing_ops_are_exactly_the_result_writers():
    ops = producing_ops()
    assert ops == tuple(sorted(set(ops), key=lambda op: op.value))
    assert Op.LOAD in ops and Op.MUL in ops
    assert Op.STORE not in ops and Op.HALT not in ops


def test_row_pairs_compile_declared_contracts_canonically():
    (store_row,) = [row for row in rows_for_names(("silent-stores",))
                    if "old_memory_value" in row.taps]
    assert row_pairs(store_row) == frozenset({
        ("store", "rs2"), ("store", "old_memory_value")})
    (vp_row,) = rows_for_names(("value-prediction",))
    assert row_pairs(vp_row) == frozenset({("load", "result")})


def test_row_pairs_drop_inapplicable_taps():
    # An any-producing-op row over `result` never mentions STORE or
    # branch ops — they produce nothing for the tap to reach.
    (rfc_row,) = rows_for_names(("register-file-compression",))
    pairs = row_pairs(rfc_row)
    assert all(tap == "result" for _, tap in pairs)
    assert ("store", "result") not in pairs
    assert len(pairs) == len(producing_ops())


# ----------------------------------------------------------------------
# signatures vs the checker — the equivalence synthesis relies on
# ----------------------------------------------------------------------

@pytest.mark.parametrize("plugin", sorted(TRIGGER_TEMPLATES))
def test_signature_intersection_matches_checker_verdicts(plugin):
    """For every generated case: the checker flags a plug-in's rows
    iff the case's static signature intersects the rows' pair set."""
    rows = rows_for_names((plugin,))
    declared = frozenset().union(*(row_pairs(row) for row in rows))
    for case in CaseGenerator(seed=3).cases_for(plugin, 6):
        spec = case.spec()
        signature = tainted_tap_pairs(case.program, taint=spec.taint,
                                      reg_consts=dict(spec.regs))
        report = lint_program(case.program, contracts=rows,
                              taint=spec.taint,
                              reg_consts=dict(spec.regs))
        assert bool(report.findings) == bool(signature & declared), \
            case.name


def test_signatures_are_canonical_pairs():
    case = CaseGenerator(seed=0).cases_for("silent-stores", 1)[0]
    spec = case.spec()
    signature = tainted_tap_pairs(case.program, taint=spec.taint,
                                  reg_consts=dict(spec.regs))
    assert ("store", "rs2") in signature
    assert ("store", "store_value") not in signature  # folded to rs2


# ----------------------------------------------------------------------
# control filtering
# ----------------------------------------------------------------------

def _secret_branched_case():
    """A case whose *baseline* machine leaks: a secret-dependent branch
    changes the path length, so cycles diverge with no plug-in at all."""
    asm = Assembler()
    asm.secret(SECRET_ADDR, SECRET_ADDR + 8)
    asm.load(1, 0, SECRET_ADDR)
    asm.beq(1, 0, "skip")               # taken only in the baseline
    for _ in range(8):
        asm.addi(2, 2, 1)
    asm.label("skip")
    asm.halt()
    return GeneratedCase(name="control-divergent",
                         program=asm.assemble(),
                         mem_writes=((SECRET_ADDR, 0, 8),))


def test_control_cohort_flags_baseline_divergence():
    from repro.lint.soundness import secret_variants
    case = _secret_branched_case()
    variants = secret_variants(case.spec(label="control"))
    results = run_batch(variants)
    assert any(_control_diverged(results[0], result)
               for result in results[1:])
    # ...so the case is not attributable to any plug-in:
    assert not _reproduces(case, SILENT, (0xA5, 0x5A, 0xFF), run_batch)


def test_trigger_cases_keep_a_clean_control():
    case = CaseGenerator(seed=0).cases_for("silent-stores", 1)[0]
    from repro.lint.soundness import secret_variants
    variants = secret_variants(case.spec(label="clean"))
    results = run_batch(variants)
    assert not any(_control_diverged(results[0], result)
                   for result in results[1:])


# ----------------------------------------------------------------------
# witness minimization
# ----------------------------------------------------------------------

def test_without_instruction_renumbers_and_shifts_targets():
    asm = Assembler()
    asm.li(1, 2)
    asm.li(9, 7)                        # deletable noise at pc 1
    asm.label("loop")
    asm.addi(1, 1, -1)
    asm.bne(1, 0, "loop")
    asm.halt()
    program = asm.assemble()
    shrunk = _without_instruction(program, 1)
    assert len(shrunk) == len(program) - 1
    assert [inst.pc for inst in shrunk] == list(range(len(shrunk)))
    (branch,) = [inst for inst in shrunk if inst.op is Op.BNE]
    assert branch.target == 1           # was 2; shifted across the gap
    # Deleting *after* the target leaves it alone.
    assert [inst.target for inst in _without_instruction(program, 4)
            if inst.op is Op.BNE] == [2]


def _padded_silent_store_case():
    template = TRIGGER_TEMPLATES["silent-stores"][0]
    case = template(random.Random(0))
    asm = Assembler()
    for start, end in case.program.secret_regions:
        asm.secret(start, end)
    asm.li(9, 5)                        # junk the minimizer should cut
    asm.add(10, 9, 9)
    asm.xor(11, 9, 10)
    for inst in case.program:
        asm._emit(inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                  imm=inst.imm, width=inst.width, target=inst.target)
    program = asm.assemble()
    return GeneratedCase(
        name="padded", program=program, mem_writes=case.mem_writes,
        taint=case.taint, note=case.note), len(case.program)


def test_minimize_witness_deletes_junk_and_keeps_halt():
    case, core_len = _padded_silent_store_case()
    assert _reproduces(case, SILENT, (0xA5,), run_batch)
    witness = minimize_witness(case, SILENT, patterns=(0xA5,))
    assert len(witness.program) < len(case.program)
    assert len(witness.program) <= core_len
    assert witness.program[-1].op is Op.HALT
    assert _reproduces(witness, SILENT, (0xA5,), run_batch)
    # Directives survive minimization — the signature stays computable.
    assert witness.program.secret_regions


# ----------------------------------------------------------------------
# cross-backend determinism
# ----------------------------------------------------------------------

@pytest.mark.parametrize("plugin", [
    "silent-stores", "early-terminating-multiplier"])
def test_learned_contracts_identical_across_backends(plugin):
    serial = check_synthesis(plugin, budget=4, seed=1,
                             backend="serial")
    lockstep = check_synthesis(plugin, budget=4, seed=1,
                               backend="lockstep")
    assert serial.to_json_dict() == lockstep.to_json_dict()
    assert serial.ok and not serial.vacuous


def test_synthesis_is_deterministic_per_seed_and_budget():
    first = check_synthesis("computation-reuse", budget=5, seed=2)
    again = check_synthesis("computation-reuse", budget=5, seed=2)
    assert first.to_json_dict() == again.to_json_dict()
