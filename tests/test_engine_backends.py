"""Differential + unit suite for the execution-backend layer.

The backend contract (:mod:`repro.engine.backends`) is that *how*
cache-missing trials execute — in process, across a pool, or
interleaved in lockstep cohorts — is pure scheduling: every backend
must return bitwise-identical :class:`RunResult`\\ s, in input order,
for every spec.  This suite pins that three ways:

* the full attack-spec catalog runs under serial, pool and lockstep
  and the serialized results must match byte for byte (plain and with
  event tracing on — lockstep's interleaving must not perturb traces);
* backend *selection* is deterministic and follows the documented
  priority: explicit instance > explicit name > ``REPRO_BACKEND`` env
  > unanimous ``SimSpec.backend`` hint > legacy ``workers`` heuristic;
* the mechanics underneath — bulk cache probes, job descriptors, the
  registry, pool lifecycle, cohort grouping — behave as documented.
"""

import pytest

from repro.engine import (
    LockstepBatchBackend, PoolBackend, REPRO_BACKEND_ENV, ResultCache,
    SerialBackend, TraceSpec, TrialJob, backend_from_name,
    backend_names, derive_seed, register_backend, resolve_backend,
    run_batch,
)
from repro.engine.backends import ExecutedTrial, _BACKEND_REGISTRY
from repro.engine.runner import execute_spec, run_spec
from repro.lint.soundness import secret_variants
from tests.spec_catalog import attack_specs


def _catalog_specs(**overrides):
    specs = []
    for index, (name, spec) in enumerate(sorted(attack_specs().items())):
        specs.append(spec.replace(seed=derive_seed(index, 0),
                                  label=f"{name}/backend-diff",
                                  **overrides))
    return specs


def _serialized(results):
    return [result.to_json() for result in results]


# ----------------------------------------------------------------------
# the contract: bitwise identity across backends
# ----------------------------------------------------------------------

def test_catalog_bitwise_identical_across_backends():
    specs = _catalog_specs()
    serial = run_batch(specs, backend="serial")
    pooled = run_batch(specs, backend="pool")
    lockstep = run_batch(specs, backend="lockstep")
    assert len(serial) == len(specs)
    for spec, ref, pool, lock in zip(specs, serial, pooled, lockstep):
        assert ref.to_json() == pool.to_json(), spec.label
        assert ref.to_json() == lock.to_json(), spec.label
        # Sanity: the comparison is not vacuous.
        assert ref.cycles > 0, spec.label
        assert ref.stats["retired"] > 0, spec.label


def test_traced_catalog_identical_across_backends():
    """Interleaved lockstep execution must not perturb event traces —
    every per-cycle event a serially-run core emits must come back
    verbatim from a cohort-scheduled one."""
    specs = _catalog_specs(trace=TraceSpec())
    serial = run_batch(specs, backend="serial")
    lockstep = run_batch(specs, backend="lockstep")
    for spec, ref, lock in zip(specs, serial, lockstep):
        assert ref.to_json() == lock.to_json(), spec.label
        assert ref.trace["events"], spec.label


def test_secret_variant_cohorts_identical_across_backends():
    """The lockstep backend's native shape: N secret variants of one
    program, grouped into a single shared-decode cohort."""
    for name, spec in sorted(attack_specs().items()):
        variants = secret_variants(spec)
        serial = run_batch(variants, backend="serial")
        lockstep = run_batch(variants, backend="lockstep")
        assert _serialized(serial) == _serialized(lockstep), name


def test_lockstep_quantum_is_invisible():
    """The interleaving granularity is pure scheduling: a 1-step
    quantum (maximum interleaving) changes nothing."""
    specs = _catalog_specs()[:3]
    reference = run_batch(specs, backend="serial")
    fine = run_batch(specs,
                     backend=LockstepBatchBackend(cohort=2, quantum=1))
    assert _serialized(reference) == _serialized(fine)


# ----------------------------------------------------------------------
# selection: the documented priority chain
# ----------------------------------------------------------------------

def test_resolve_explicit_instance_wins(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "pool")
    mine = LockstepBatchBackend()
    assert resolve_backend(mine, workers=8) is mine


def test_resolve_explicit_name_beats_env(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "lockstep")
    assert resolve_backend("serial", workers=8).name == "serial"


def test_resolve_env_beats_spec_hint(monkeypatch):
    monkeypatch.setenv(REPRO_BACKEND_ENV, "lockstep")
    specs = [spec.replace(backend="pool")
             for spec in _catalog_specs()[:2]]
    chosen = resolve_backend(None, workers=1, specs=specs)
    assert chosen.name == "lockstep"


def test_resolve_unanimous_spec_hint(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    specs = [spec.replace(backend="lockstep")
             for spec in _catalog_specs()[:2]]
    assert resolve_backend(None, specs=specs).name == "lockstep"
    # A split vote falls through to the workers heuristic.
    mixed = [specs[0], specs[1].replace(backend="")]
    assert resolve_backend(None, workers=1, specs=mixed).name == "serial"


def test_resolve_legacy_workers_heuristic(monkeypatch):
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    specs = _catalog_specs()[:2]
    assert resolve_backend(None, workers=1, specs=specs).name == "serial"
    assert resolve_backend(None, workers=4, specs=specs).name == "pool"
    # Singleton batches stay in process whatever ``workers`` says.
    assert resolve_backend(None, workers=4, specs=specs,
                           pending=1).name == "serial"


def test_env_override_drives_run_batch(monkeypatch):
    """``REPRO_BACKEND`` (the CI lockstep leg) reroutes batches that
    pass no explicit backend — bitwise-identically."""
    specs = _catalog_specs()[:3]
    monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
    reference = run_batch(specs)
    monkeypatch.setenv(REPRO_BACKEND_ENV, "lockstep")
    rerouted = run_batch(specs)
    assert _serialized(reference) == _serialized(rerouted)


def test_backend_hint_stays_outside_fingerprint():
    """Like ``fastpath``: the hint changes scheduling, never identity,
    so all backends share cache entries."""
    spec = _catalog_specs()[0]
    hinted = spec.replace(backend="lockstep")
    assert hinted.backend == "lockstep"
    assert spec.fingerprint() == hinted.fingerprint()
    roundtrip = type(spec).from_json_dict(hinted.to_json_dict())
    assert roundtrip.backend == "lockstep"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_names_and_unknown():
    assert backend_names() == ["lockstep", "pool", "serial"]
    with pytest.raises(ValueError, match="unknown execution backend"):
        backend_from_name("gpu")


def test_register_out_of_tree_backend():
    class TracingSerial(SerialBackend):
        name = "tracing-serial"

    register_backend("tracing-serial",
                     lambda workers, chunksize: TracingSerial())
    try:
        chosen = resolve_backend("tracing-serial")
        assert chosen.name == "tracing-serial"
        spec = _catalog_specs()[0]
        assert (run_batch([spec], backend="tracing-serial")[0].to_json()
                == run_batch([spec], backend="serial")[0].to_json())
    finally:
        del _BACKEND_REGISTRY["tracing-serial"]


def test_capability_flags():
    assert not SerialBackend.parallel and SerialBackend.in_process
    assert PoolBackend.parallel and not PoolBackend.in_process
    assert not LockstepBatchBackend.parallel
    assert LockstepBatchBackend.in_process
    assert LockstepBatchBackend.shares_decode_state
    assert not SerialBackend.shares_decode_state
    assert not PoolBackend.shares_decode_state


# ----------------------------------------------------------------------
# mechanics: jobs, pool lifecycle, cohorts, bulk cache probes
# ----------------------------------------------------------------------

def test_trial_job_is_frozen():
    spec = _catalog_specs()[0]
    job = TrialJob(index=0, spec=spec, fingerprint=spec.fingerprint())
    with pytest.raises(AttributeError):
        job.index = 1
    assert ExecutedTrial(result=None).elapsed_us == 0
    assert ExecutedTrial(result=None).worker is None


def test_pool_backend_lifecycle():
    """An opened pool persists across submits; close is idempotent."""
    spec = _catalog_specs()[0]
    job = TrialJob(index=0, spec=spec, fingerprint=spec.fingerprint())
    expected = execute_spec(spec).to_json()
    with PoolBackend(workers=2) as pool:
        warm = pool._pool
        assert warm is not None
        first = pool.submit([job])
        second = pool.submit([job], timed=True)
        assert pool._pool is warm
    assert pool._pool is None
    pool.close()                       # idempotent
    assert first[0].result.to_json() == expected
    assert second[0].result.to_json() == expected
    assert second[0].elapsed_us >= 1
    assert second[0].worker is not None


def test_lockstep_cohort_grouping():
    """Grouping is by program identity, capped at ``cohort``; cohort
    boundaries preserve submission order within a program."""
    specs = _catalog_specs()[:2]
    same = [specs[0].replace(seed=derive_seed(7, i)) for i in range(5)]
    jobs = [TrialJob(index=i, spec=spec, fingerprint="")
            for i, spec in enumerate(same + [specs[1]])]
    backend = LockstepBatchBackend(cohort=2)
    cohorts = list(backend._cohorts(jobs))
    assert cohorts == [[0, 1], [2, 3], [4], [5]]


def test_probe_many_matches_get_semantics(tmp_path):
    spec = _catalog_specs()[0]
    fingerprint = spec.fingerprint()
    store = str(tmp_path / "cache")
    writer = ResultCache(path=store)
    result = run_spec(spec, cache=writer)
    assert not result.cached

    # Fresh process: everything comes off disk, via one listing.
    reader = ResultCache(path=store)
    probe = reader.probe_many([fingerprint, "0" * 64, fingerprint])
    assert probe[0] is not None and probe[0].cached
    assert probe[1] is None
    assert probe[2] is not None
    assert (reader.hits, reader.misses) == (2, 1)
    assert probe[0].fingerprint == fingerprint
    assert probe[0].to_json().replace('"cached": true',
                                      '"cached": false') \
        == result.to_json()

    # Memory-only cache: same counter semantics, no store.
    memory = ResultCache()
    assert memory.probe_many([fingerprint]) == [None]
    assert (memory.hits, memory.misses) == (0, 1)
    memory.put(result)
    hit = memory.probe_many([fingerprint])[0]
    assert hit is not None and hit.cached
    assert (memory.hits, memory.misses) == (1, 1)


def test_probe_many_duplicates_miss_until_deposited(tmp_path):
    """Duplicate fingerprints in one batch behave exactly like the
    sequential per-trial probes always did: both occurrences miss."""
    spec = _catalog_specs()[0]
    fingerprint = spec.fingerprint()
    cache = ResultCache(path=str(tmp_path / "cache"))
    assert cache.probe_many([fingerprint, fingerprint]) == [None, None]
    assert cache.misses == 2


def test_run_batch_bulk_probe_and_duck_typed_cache(tmp_path):
    specs = _catalog_specs()[:3]
    cache = ResultCache(path=str(tmp_path / "cache"))
    first = run_batch(specs, cache=cache)
    assert cache.hits == 0 and cache.misses == len(specs)
    second = run_batch(specs, cache=cache)
    assert cache.hits == len(specs)
    assert all(result.cached for result in second)
    assert _serialized(first) == [
        result.to_json().replace('"cached": true', '"cached": false')
        for result in second]

    class GetOnlyCache:
        """A cache without ``probe_many`` — run_batch must fall back."""

        def __init__(self):
            self.stored = {}
            self.gets = 0

        def get(self, fingerprint):
            self.gets += 1
            return self.stored.get(fingerprint)

        def put(self, result):
            self.stored[result.fingerprint] = result

    duck = GetOnlyCache()
    third = run_batch(specs, cache=duck)
    assert duck.gets == len(specs)
    assert len(duck.stored) == len(specs)
    assert _serialized(third) == _serialized(first)
