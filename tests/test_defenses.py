"""Retrofitted mitigations (Section VI-A2) actually block the attacks."""

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer, NUM_SLOTS,
)
from repro.attacks.compsimp_attack import SignificanceProbe
from repro.attacks.packing_attack import OperandPackingAttack
from repro.defenses.retrofits import (
    SpillMasker, clear_slots, pad_significance, strip_significance_pad,
)
from repro.memory.flatmem import FlatMemory

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
OTHER_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
ATTACKER_KEY = bytes(range(16, 32))


def make_cleared_server(victim_key):
    """A server that zeroes its sensitive slots between calls."""
    server = BSAESVictimServer(victim_key, b"public-header-00")
    memory = FlatMemory(1 << 10)
    for slot, plane in enumerate(server.leftover_planes):
        memory.write(2 * slot, plane, 2)
    clear_slots(memory, [2 * slot for slot in range(NUM_SLOTS)])
    server.leftover_planes = tuple(
        memory.read(2 * slot, 2) for slot in range(NUM_SLOTS))
    return server


def test_clear_slots_zeroes_memory():
    memory = FlatMemory(256)
    memory.write(0, 0xBEEF, 2)
    memory.write(64, 0xCAFE, 2)
    clear_slots(memory, [0, 64])
    assert memory.read(0, 2) == 0 and memory.read(64, 2) == 0


def test_targeted_clearing_blocks_bsaes_key_recovery():
    """With cleared slots, the oracle only ever reveals whether the
    attacker's own plane is zero — the recovered "planes" are the
    clearing constant, independent of the victim key."""
    transcripts = []
    for victim_key in (VICTIM_KEY, OTHER_KEY):
        server = make_cleared_server(victim_key)
        attack = BSAESSilentStoreAttack(server, ATTACKER_KEY, seed=3)
        value, tries = attack.recover_plane(0, oracle="functional",
                                            max_tries=1 << 16)
        transcripts.append((value, tries))
        assert value in (0, None)
    # Identical transcripts for different victim keys: zero leakage.
    assert transcripts[0] == transcripts[1]


def test_spill_masking_blocks_bsaes_key_recovery():
    """A per-call XOR pad makes memory hold values the attacker cannot
    target; recovered planes no longer reconstruct the key."""
    server = BSAESVictimServer(VICTIM_KEY, b"public-header-00")
    masker = SpillMasker(pad=0x5AA5)
    server.leftover_planes = tuple(
        masker.mask_value(plane, 2) for plane in server.leftover_planes)
    attack = BSAESSilentStoreAttack(server, ATTACKER_KEY, seed=4)
    key, _tries = attack.recover_key(oracle="functional",
                                     max_tries=1 << 16)
    assert key != VICTIM_KEY


def test_spill_masker_roundtrip():
    masker = SpillMasker(pad=0x123456789ABCDEF0)
    memory = FlatMemory(64)
    masker.spill(memory, 0, 0xCAFEBABE, 8)
    assert memory.read(0) != 0xCAFEBABE          # nothing in the clear
    assert masker.reload(memory, 0, 8) == 0xCAFEBABE


def test_significance_pad_roundtrip():
    for value in (0, 1, 0xFFFF, 1 << 40):
        padded = pad_significance(value)
        assert padded.bit_length() == 64
        assert strip_significance_pad(padded) == value


def test_significance_padding_flattens_early_termination_timing():
    probe = SignificanceProbe()
    unprotected = probe.significance_curve((1, 2, 4, 6))
    assert len(set(unprotected.values())) > 1    # leaks
    protected = {
        width: probe.measure(pad_significance(
            (1 << (8 * width - 1)) | 1), 3)
        for width in (1, 2, 4, 6)}
    assert len(set(protected.values())) == 1     # flat


def test_significance_padding_defeats_packing_classifier():
    """Padded victim operands always classify as wide: the attacker
    learns the (public) fact that the mitigation is on, nothing else."""
    attack = OperandPackingAttack(pairs=32)
    outcomes = {attack.classify(pad_significance(value))
                for value in (1, 0xFFFF, 1 << 20, 1 << 50)}
    assert outcomes == {False}
