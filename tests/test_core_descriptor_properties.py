"""Property-based tests on the Figure 2/3 descriptors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descriptors import (
    mld_cache_rand, mld_operand_packing, mld_rf_compression,
    mld_silent_stores, mld_zero_skip_mul,
)
from repro.core.mld import InstSnapshot
from repro.memory.cache import Cache

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(words, words)
def test_zero_skip_fires_iff_any_operand_zero(a, b):
    outcome = mld_zero_skip_mul(InstSnapshot(args=(a, b)))
    assert outcome == int(a == 0 or b == 0)


@given(words, words, words, words)
def test_operand_packing_commutes_over_instruction_order(a, b, c, d):
    """Packing is symmetric in the instruction pair."""
    first = InstSnapshot(args=(a, b))
    second = InstSnapshot(args=(c, d))
    assert (mld_operand_packing(first, second)
            == mld_operand_packing(second, first))


@given(words, words, words, words)
def test_operand_packing_is_conjunction(a, b, c, d):
    """The pair packs iff each op would pack with a narrow partner."""
    narrow = InstSnapshot(args=(1, 1))
    first = InstSnapshot(args=(a, b))
    second = InstSnapshot(args=(c, d))
    both_narrow = (mld_operand_packing(first, narrow)
                   and mld_operand_packing(second, narrow))
    assert mld_operand_packing(first, second) == int(bool(both_narrow))


@given(words, words)
def test_silent_stores_is_exact_equality(data, memory_value):
    snapshot = InstSnapshot(addr=0x40, data=data)
    outcome = mld_silent_stores(snapshot, {0x40: memory_value})
    assert outcome == int(data == memory_value)


@settings(max_examples=50)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=8))
def test_rf_compression_outcome_decodes_per_register(values):
    outcome = mld_rf_compression(values)
    for index, value in enumerate(values):
        assert (outcome >> index) & 1 == int(value <= 1)


@settings(max_examples=40)
@given(st.integers(0, (1 << 20)), st.sets(st.integers(0, 255),
                                          max_size=8))
def test_cache_rand_outcome_bounds(addr, warm_lines):
    cache = Cache(num_sets=8, ways=2)
    for line in warm_lines:
        cache.access(line * 64)
    outcome = mld_cache_rand(InstSnapshot(addr=addr), cache)
    assert 0 <= outcome <= cache.num_sets
    if outcome == 0:
        assert cache.contains(addr)
    else:
        assert outcome == cache.set_index(addr) + 1
