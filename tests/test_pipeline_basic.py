"""Out-of-order core vs the golden-model interpreter.

The central correctness property of the whole reproduction: the
pipeline (with or without optimizations) may change *when*, never
*what*.  Random-program differential testing drives this hard.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import Assembler
from repro.isa.interpreter import run_program
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU, SimulationError

SCRATCH = 0x1000


def run_both(program, init_mem=(), config=None, plugins=()):
    """Run on interpreter and CPU; return (interp_state, cpu)."""
    mem_a = FlatMemory(1 << 16)
    mem_b = FlatMemory(1 << 16)
    for addr, value in init_mem:
        mem_a.write(addr, value)
        mem_b.write(addr, value)
    state = run_program(program, memory=mem_a)
    hierarchy = MemoryHierarchy(mem_b, l1=Cache(num_sets=16, ways=4))
    cpu = CPU(program, hierarchy, config=config, plugins=list(plugins))
    cpu.run()
    return state, cpu


def assert_same_arch_state(state, cpu, regs=range(1, 16),
                           mem_range=(SCRATCH, SCRATCH + 256)):
    for reg in regs:
        assert state.read_reg(reg) == cpu.arch_reg(reg), f"x{reg} differs"
    lo, hi = mem_range
    assert (state.memory.read_bytes(lo, hi - lo)
            == cpu.memory.read_bytes(lo, hi - lo))


def test_alu_program_matches():
    asm = Assembler()
    asm.li(1, 1000)
    asm.li(2, 77)
    asm.mul(3, 1, 2)
    asm.div(4, 3, 2)
    asm.rem(5, 3, 1)
    asm.xor(6, 3, 4)
    asm.halt()
    state, cpu = run_both(asm.assemble())
    assert_same_arch_state(state, cpu)
    assert cpu.stats.retired == 7


def test_loop_with_memory_matches():
    asm = Assembler()
    asm.li(1, SCRATCH)
    asm.li(2, 0)
    asm.li(3, 12)
    asm.label("loop")
    asm.slli(4, 2, 3)
    asm.add(4, 4, 1)
    asm.load(5, 4, 0)
    asm.addi(5, 5, 3)
    asm.store(5, 4, 128)
    asm.addi(2, 2, 1)
    asm.blt(2, 3, "loop")
    asm.halt()
    init = [(SCRATCH + 8 * i, i * i) for i in range(12)]
    state, cpu = run_both(asm.assemble(), init_mem=init)
    assert_same_arch_state(state, cpu)


def test_infinite_loop_raises_simulation_error():
    asm = Assembler()
    asm.label("spin")
    asm.jmp("spin")
    mem = FlatMemory(1 << 12)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()))
    with pytest.raises(SimulationError):
        cpu.run(max_cycles=500)


def test_program_without_halt_terminates():
    asm = Assembler()
    asm.li(1, 5)
    asm.addi(1, 1, 1)
    state, cpu = run_both_no_halt(asm)
    assert cpu.arch_reg(1) == 6


def run_both_no_halt(asm):
    program = asm.assemble()
    mem = FlatMemory(1 << 12)
    cpu = CPU(program, MemoryHierarchy(mem, l1=Cache()))
    cpu.run(max_cycles=10_000)
    return None, cpu


def test_rdcycle_is_monotonic():
    asm = Assembler()
    asm.rdcycle(1)
    asm.fence()
    asm.li(9, 3)
    asm.mul(2, 9, 9)
    asm.fence()
    asm.rdcycle(3)
    asm.halt()
    _state, cpu = run_both(asm.assemble())
    assert cpu.arch_reg(3) > cpu.arch_reg(1)


def test_ipc_and_stat_sanity():
    asm = Assembler()
    for index in range(20):
        asm.addi(1, 1, 1)
    asm.halt()
    _state, cpu = run_both(asm.assemble())
    assert cpu.stats.retired == 21
    assert 0 < cpu.stats.ipc <= 4
    assert cpu.stats.dispatched >= cpu.stats.retired


# ---------------------------------------------------------------------------
# random differential testing
# ---------------------------------------------------------------------------

OPS = ("add", "sub", "and_", "or_", "xor", "sll", "srl", "mul", "div",
       "slt", "sltu")


@st.composite
def random_programs(draw):
    """Random but always-terminating programs over a scratch region."""
    asm = Assembler()
    asm.li(1, SCRATCH)
    for reg in range(2, 8):
        asm.li(reg, draw(st.integers(0, 2 ** 32)))
    body = draw(st.lists(st.tuples(
        st.sampled_from(OPS + ("load", "store")),
        st.integers(2, 7), st.integers(2, 7), st.integers(2, 7),
        st.integers(0, 15)), min_size=1, max_size=40))
    use_loop = draw(st.booleans())
    trips = draw(st.integers(1, 4)) if use_loop else 1
    if use_loop:
        asm.li(8, 0)
        asm.li(9, trips)
        asm.label("loop")
    for op, rd, rs1, rs2, slot in body:
        if op == "load":
            asm.load(rd, 1, 8 * slot)
        elif op == "store":
            asm.store(rs1, 1, 8 * slot)
        else:
            getattr(asm, op)(rd, rs1, rs2)
    if use_loop:
        asm.addi(8, 8, 1)
        asm.blt(8, 9, "loop")
    asm.halt()
    return asm.assemble()


@settings(max_examples=40, deadline=None)
@given(random_programs())
def test_random_programs_match_interpreter(program):
    init = [(SCRATCH + 8 * i, (i * 2654435761) % (1 << 62))
            for i in range(16)]
    state, cpu = run_both(program, init_mem=init)
    assert_same_arch_state(state, cpu, regs=range(1, 10),
                           mem_range=(SCRATCH, SCRATCH + 128))


@settings(max_examples=15, deadline=None)
@given(random_programs())
def test_random_programs_match_with_narrow_core(program):
    """Same property under a tiny, stall-prone configuration."""
    config = CPUConfig(fetch_width=1, dispatch_width=1, issue_width=1,
                       commit_width=1, rob_size=8, rs_size=4,
                       store_queue_size=2, load_queue_size=2,
                       num_phys_regs=40)
    init = [(SCRATCH + 8 * i, i + 1) for i in range(16)]
    state, cpu = run_both(program, init_mem=init, config=config)
    assert_same_arch_state(state, cpu, regs=range(1, 10),
                           mem_range=(SCRATCH, SCRATCH + 128))
