"""Property-based round-trip tests (hypothesis; seeded and bounded).

Two serialization boundaries get randomized coverage:

* the ISA wire form — :meth:`Program.encode` vs
  :func:`repro.isa.decode_program` over random valid instructions;
* the engine spec JSON form — :meth:`SimSpec.to_json` vs
  :meth:`SimSpec.from_json`, which must preserve the content-address
  (:meth:`SimSpec.fingerprint`) that keys the result cache.

The program strategies (``regions``, ``programs``,
``canonical_programs``) live in :mod:`repro.lint.progen` — promoted
out of this file so the contract synthesizer's property coverage and
these round-trip suites draw from one program vocabulary.

``derandomize=True`` keeps the suite deterministic in CI: hypothesis
derives its examples from the test's source rather than a random seed.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec,
    TaintSpec, TLBSpec,
)
from repro.isa import Instruction, Op, Program, decode_program
from repro.isa.assembler import AssemblyError
from repro.isa.disassembler import DecodeError
from repro.lint.progen import canonical_programs, programs, regions
from repro.pipeline.config import CPUConfig

BOUNDED = settings(max_examples=60, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])

_WIDTHS = st.sampled_from([1, 2, 4, 8])


@BOUNDED
@given(program=programs())
def test_encode_decode_roundtrip(program):
    blob = program.encode()
    decoded = decode_program(blob)
    assert decoded.encode() == blob
    assert len(decoded) == len(program)
    for original, rebuilt in zip(program, decoded):
        assert rebuilt.op is original.op
        assert (rebuilt.rd, rebuilt.rs1, rebuilt.rs2) == \
            (original.rd, original.rs1, original.rs2)
        assert (rebuilt.imm, rebuilt.width, rebuilt.target) == \
            (original.imm, original.width, original.target)
        assert rebuilt.pc == original.pc


@BOUNDED
@given(program=programs(with_regions=True))
def test_directive_encode_decode_roundtrip(program):
    """``.secret`` / ``.public`` records survive the wire form."""
    blob = program.encode()
    decoded = decode_program(blob)
    assert decoded.secret_regions == program.secret_regions
    assert decoded.public_regions == program.public_regions
    assert decoded.encode() == blob


@BOUNDED
@given(program=programs(with_regions=True))
def test_directive_free_programs_encode_without_directives(program):
    """A program with no regions encodes byte-identically to the
    pre-directive wire form — golden fingerprints cannot move."""
    bare = Program(list(program.instructions), dict(program.labels))
    assert b".secret" not in bare.encode()
    assert b".public" not in bare.encode()
    if program.secret_regions:
        assert b".secret" in program.encode()


@BOUNDED
@given(program=canonical_programs())
def test_directive_source_roundtrip(program):
    """Text rendering reassembles bitwise, regions included."""
    from repro.isa.text import assemble_source, render_source
    rendered = render_source(program)
    again = assemble_source(rendered)
    assert again.encode() == program.encode()
    assert again.secret_regions == program.secret_regions
    assert again.public_regions == program.public_regions


@pytest.mark.parametrize("record", [
    ".secret,16",                   # missing end
    ".secret,16,8",                 # end <= start
    ".secret,-1,8",                 # negative start
    ".secret,a,b",                  # non-integers
    ".public,16,8,4",               # too many fields
    ".classified,0,8",              # unknown directive
])
def test_malformed_directive_records_are_rejected(record):
    blob = Program([Instruction(op=Op.HALT, pc=0)], {}).encode() + \
        (record + "\n").encode()
    with pytest.raises(DecodeError):
        decode_program(blob)


def test_directive_before_instructions_is_rejected():
    program = Program([Instruction(op=Op.HALT, pc=0)], {})
    (line,) = [line for line in program.encode().splitlines() if line]
    blob = b".secret,0,8\n" + line + b"\n"
    with pytest.raises(DecodeError):
        decode_program(blob)


@pytest.mark.parametrize("source", [
    ".secret\n    halt",                    # no operands
    ".secret 8..8\n    halt",               # empty range
    ".secret 8 16\n    halt",               # two operands, no +len
    ".secret 0x10 +0\n    halt",            # zero length
    ".public banana\n    halt",             # non-integer
    ".declassify 0x10\n    halt",           # unknown directive
])
def test_malformed_source_directives_are_rejected(source):
    from repro.isa.text import assemble_source
    with pytest.raises(AssemblyError):
        assemble_source(source)


# ----------------------------------------------------------------------
# random valid specs
# ----------------------------------------------------------------------

_PLUGIN_CHOICES = st.sets(
    st.sampled_from(["silent-stores", "value-prediction",
                     "computation-reuse", "operand-packing"]),
    max_size=3)


@st.composite
def sim_specs(draw):
    memory_size = 1 << draw(st.integers(16, 20))
    l1 = CacheSpec(num_sets=draw(st.sampled_from([16, 64])),
                   ways=draw(st.sampled_from([1, 4])),
                   policy=draw(st.sampled_from(["lru", "random"])),
                   seed=draw(st.integers(0, 7)))
    l2 = (CacheSpec(num_sets=128, ways=8)
          if draw(st.booleans()) else None)
    tlb = (TLBSpec(entries=draw(st.sampled_from([16, 64])))
           if draw(st.booleans()) else None)
    hierarchy = HierarchySpec(
        memory_size=memory_size, l1=l1, l2=l2, tlb=tlb,
        latencies=LatencySpec(jitter=draw(st.sampled_from([0, 5])),
                              seed=draw(st.integers(0, 3))),
        prefetch_buffer_size=draw(st.sampled_from([0, 4])))
    config = (CPUConfig(store_queue_size=draw(st.integers(2, 8)),
                        rob_size=draw(st.sampled_from([32, 64])))
              if draw(st.booleans()) else None)
    plugins = tuple(PluginSpec.of(name)
                    for name in sorted(draw(_PLUGIN_CHOICES)))
    addresses = st.integers(0, memory_size - 16)
    mem_writes = tuple(
        (draw(addresses), draw(st.integers(0, (1 << 64) - 1)),
         draw(_WIDTHS))
        for _ in range(draw(st.integers(0, 3))))
    mem_blobs = tuple(
        (draw(addresses), draw(st.binary(min_size=1, max_size=16)))
        for _ in range(draw(st.integers(0, 2))))
    regs = tuple((draw(st.integers(1, 31)),
                  draw(st.integers(0, (1 << 64) - 1)))
                 for _ in range(draw(st.integers(0, 3))))
    taint = (TaintSpec.of(
        secret=draw(regions()), public=draw(regions()),
        secret_regs=draw(st.sets(st.integers(1, 31), max_size=3)))
        if draw(st.booleans()) else None)
    return SimSpec(
        program=draw(programs(with_regions=draw(st.booleans()))),
        config=config, hierarchy=hierarchy, taint=taint,
        plugins=plugins, mem_writes=mem_writes, mem_blobs=mem_blobs,
        regs=regs,
        max_cycles=draw(st.sampled_from([None, 10_000])),
        seed=draw(st.integers(0, 1 << 16)),
        record_regs=tuple(sorted(draw(st.sets(st.integers(1, 31),
                                              max_size=3)))),
        label=draw(st.sampled_from(["", "probe", "trial/0"])),
        meta=tuple(sorted(draw(st.dictionaries(
            st.sampled_from(["phase", "guess"]),
            st.integers(0, 255), max_size=2)).items())),
        collect_stats=draw(st.booleans()))


@BOUNDED
@given(spec=sim_specs())
def test_spec_json_roundtrip_preserves_fingerprint(spec):
    text = spec.to_json()
    rebuilt = SimSpec.from_json(text)
    assert rebuilt.fingerprint() == spec.fingerprint()
    # The canonical JSON itself is a fixed point of the round trip.
    assert json.loads(rebuilt.to_json()) == json.loads(text)
    # Presentation fields survive too (they are outside the hash).
    assert rebuilt.label == spec.label
    assert rebuilt.collect_stats == spec.collect_stats
    # Lint metadata round-trips but never re-fingerprints a result.
    assert rebuilt.taint == spec.taint
    assert rebuilt.program.secret_regions == spec.program.secret_regions
    relabeled = spec.replace(
        taint=TaintSpec.of(secret=((0, 8),), secret_regs=(5,)))
    assert relabeled.fingerprint() == \
        spec.replace(taint=None).fingerprint()
