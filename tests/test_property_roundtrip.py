"""Property-based round-trip tests (hypothesis; seeded and bounded).

Two serialization boundaries get randomized coverage:

* the ISA wire form — :meth:`Program.encode` vs
  :func:`repro.isa.decode_program` over random valid instructions;
* the engine spec JSON form — :meth:`SimSpec.to_json` vs
  :meth:`SimSpec.from_json`, which must preserve the content-address
  (:meth:`SimSpec.fingerprint`) that keys the result cache.

``derandomize=True`` keeps the suite deterministic in CI: hypothesis
derives its examples from the test's source rather than a random seed.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec,
    TaintSpec, TLBSpec,
)
from repro.isa import Instruction, Op, Program, decode_program
from repro.isa.assembler import AssemblyError
from repro.isa.disassembler import DecodeError
from repro.isa.opcodes import BRANCH_OPS
from repro.pipeline.config import CPUConfig

BOUNDED = settings(max_examples=60, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])

# ----------------------------------------------------------------------
# random valid programs
# ----------------------------------------------------------------------

_REGS = st.integers(0, 31)
_WIDTHS = st.sampled_from([1, 2, 4, 8])
_IMMS = st.integers(-(1 << 32), (1 << 32) - 1)


@st.composite
def regions(draw, max_regions=3):
    result = []
    for _ in range(draw(st.integers(0, max_regions))):
        start = draw(st.integers(0, 1 << 20))
        result.append((start, start + draw(st.integers(1, 64))))
    return tuple(result)


@st.composite
def programs(draw, with_regions=False):
    length = draw(st.integers(min_value=1, max_value=24))
    instructions = []
    for pc in range(length):
        op = draw(st.sampled_from(sorted(Op, key=lambda o: o.value)))
        target = None
        if op in BRANCH_OPS or op is Op.JMP:
            # Any resolved target in [0, len] is valid post-assembly.
            target = draw(st.integers(0, length))
        instructions.append(Instruction(
            op=op, rd=draw(_REGS), rs1=draw(_REGS), rs2=draw(_REGS),
            imm=draw(_IMMS), width=draw(_WIDTHS), target=target, pc=pc))
    secret = draw(regions()) if with_regions else ()
    public = draw(regions()) if with_regions else ()
    return Program(instructions, {}, secret_regions=secret,
                   public_regions=public)


@BOUNDED
@given(program=programs())
def test_encode_decode_roundtrip(program):
    blob = program.encode()
    decoded = decode_program(blob)
    assert decoded.encode() == blob
    assert len(decoded) == len(program)
    for original, rebuilt in zip(program, decoded):
        assert rebuilt.op is original.op
        assert (rebuilt.rd, rebuilt.rs1, rebuilt.rs2) == \
            (original.rd, original.rs1, original.rs2)
        assert (rebuilt.imm, rebuilt.width, rebuilt.target) == \
            (original.imm, original.width, original.target)
        assert rebuilt.pc == original.pc


@BOUNDED
@given(program=programs(with_regions=True))
def test_directive_encode_decode_roundtrip(program):
    """``.secret`` / ``.public`` records survive the wire form."""
    blob = program.encode()
    decoded = decode_program(blob)
    assert decoded.secret_regions == program.secret_regions
    assert decoded.public_regions == program.public_regions
    assert decoded.encode() == blob


@BOUNDED
@given(program=programs(with_regions=True))
def test_directive_free_programs_encode_without_directives(program):
    """A program with no regions encodes byte-identically to the
    pre-directive wire form — golden fingerprints cannot move."""
    bare = Program(list(program.instructions), dict(program.labels))
    assert b".secret" not in bare.encode()
    assert b".public" not in bare.encode()
    if program.secret_regions:
        assert b".secret" in program.encode()


@st.composite
def canonical_programs(draw):
    """Programs the text form can express: fields an op does not use
    sit at their defaults (the wire form keeps every field, the source
    form only the meaningful ones)."""
    from repro.isa.opcodes import (
        ALU_RI_OPS, MEMORY_OPS, reads_rs1, reads_rs2, writes_register,
    )
    program = draw(programs(with_regions=True))
    canonical = []
    for inst in program.instructions:
        op = inst.op
        uses_imm = op in ALU_RI_OPS or op in MEMORY_OPS or op is Op.LI
        canonical.append(Instruction(
            op=op,
            rd=inst.rd if writes_register(op) else 0,
            rs1=inst.rs1 if reads_rs1(op) else 0,
            rs2=inst.rs2 if reads_rs2(op) else 0,
            imm=inst.imm if uses_imm else 0,
            width=inst.width if op in MEMORY_OPS else 8,
            target=inst.target, pc=inst.pc))
    return Program(canonical, {},
                   secret_regions=program.secret_regions,
                   public_regions=program.public_regions)


@BOUNDED
@given(program=canonical_programs())
def test_directive_source_roundtrip(program):
    """Text rendering reassembles bitwise, regions included."""
    from repro.isa.text import assemble_source, render_source
    rendered = render_source(program)
    again = assemble_source(rendered)
    assert again.encode() == program.encode()
    assert again.secret_regions == program.secret_regions
    assert again.public_regions == program.public_regions


@pytest.mark.parametrize("record", [
    ".secret,16",                   # missing end
    ".secret,16,8",                 # end <= start
    ".secret,-1,8",                 # negative start
    ".secret,a,b",                  # non-integers
    ".public,16,8,4",               # too many fields
    ".classified,0,8",              # unknown directive
])
def test_malformed_directive_records_are_rejected(record):
    blob = Program([Instruction(op=Op.HALT, pc=0)], {}).encode() + \
        (record + "\n").encode()
    with pytest.raises(DecodeError):
        decode_program(blob)


def test_directive_before_instructions_is_rejected():
    program = Program([Instruction(op=Op.HALT, pc=0)], {})
    (line,) = [line for line in program.encode().splitlines() if line]
    blob = b".secret,0,8\n" + line + b"\n"
    with pytest.raises(DecodeError):
        decode_program(blob)


@pytest.mark.parametrize("source", [
    ".secret\n    halt",                    # no operands
    ".secret 8..8\n    halt",               # empty range
    ".secret 8 16\n    halt",               # two operands, no +len
    ".secret 0x10 +0\n    halt",            # zero length
    ".public banana\n    halt",             # non-integer
    ".declassify 0x10\n    halt",           # unknown directive
])
def test_malformed_source_directives_are_rejected(source):
    from repro.isa.text import assemble_source
    with pytest.raises(AssemblyError):
        assemble_source(source)


# ----------------------------------------------------------------------
# random valid specs
# ----------------------------------------------------------------------

_PLUGIN_CHOICES = st.sets(
    st.sampled_from(["silent-stores", "value-prediction",
                     "computation-reuse", "operand-packing"]),
    max_size=3)


@st.composite
def sim_specs(draw):
    memory_size = 1 << draw(st.integers(16, 20))
    l1 = CacheSpec(num_sets=draw(st.sampled_from([16, 64])),
                   ways=draw(st.sampled_from([1, 4])),
                   policy=draw(st.sampled_from(["lru", "random"])),
                   seed=draw(st.integers(0, 7)))
    l2 = (CacheSpec(num_sets=128, ways=8)
          if draw(st.booleans()) else None)
    tlb = (TLBSpec(entries=draw(st.sampled_from([16, 64])))
           if draw(st.booleans()) else None)
    hierarchy = HierarchySpec(
        memory_size=memory_size, l1=l1, l2=l2, tlb=tlb,
        latencies=LatencySpec(jitter=draw(st.sampled_from([0, 5])),
                              seed=draw(st.integers(0, 3))),
        prefetch_buffer_size=draw(st.sampled_from([0, 4])))
    config = (CPUConfig(store_queue_size=draw(st.integers(2, 8)),
                        rob_size=draw(st.sampled_from([32, 64])))
              if draw(st.booleans()) else None)
    plugins = tuple(PluginSpec.of(name)
                    for name in sorted(draw(_PLUGIN_CHOICES)))
    addresses = st.integers(0, memory_size - 16)
    mem_writes = tuple(
        (draw(addresses), draw(st.integers(0, (1 << 64) - 1)),
         draw(_WIDTHS))
        for _ in range(draw(st.integers(0, 3))))
    mem_blobs = tuple(
        (draw(addresses), draw(st.binary(min_size=1, max_size=16)))
        for _ in range(draw(st.integers(0, 2))))
    regs = tuple((draw(st.integers(1, 31)),
                  draw(st.integers(0, (1 << 64) - 1)))
                 for _ in range(draw(st.integers(0, 3))))
    taint = (TaintSpec.of(
        secret=draw(regions()), public=draw(regions()),
        secret_regs=draw(st.sets(st.integers(1, 31), max_size=3)))
        if draw(st.booleans()) else None)
    return SimSpec(
        program=draw(programs(with_regions=draw(st.booleans()))),
        config=config, hierarchy=hierarchy, taint=taint,
        plugins=plugins, mem_writes=mem_writes, mem_blobs=mem_blobs,
        regs=regs,
        max_cycles=draw(st.sampled_from([None, 10_000])),
        seed=draw(st.integers(0, 1 << 16)),
        record_regs=tuple(sorted(draw(st.sets(st.integers(1, 31),
                                              max_size=3)))),
        label=draw(st.sampled_from(["", "probe", "trial/0"])),
        meta=tuple(sorted(draw(st.dictionaries(
            st.sampled_from(["phase", "guess"]),
            st.integers(0, 255), max_size=2)).items())),
        collect_stats=draw(st.booleans()))


@BOUNDED
@given(spec=sim_specs())
def test_spec_json_roundtrip_preserves_fingerprint(spec):
    text = spec.to_json()
    rebuilt = SimSpec.from_json(text)
    assert rebuilt.fingerprint() == spec.fingerprint()
    # The canonical JSON itself is a fixed point of the round trip.
    assert json.loads(rebuilt.to_json()) == json.loads(text)
    # Presentation fields survive too (they are outside the hash).
    assert rebuilt.label == spec.label
    assert rebuilt.collect_stats == spec.collect_stats
    # Lint metadata round-trips but never re-fingerprints a result.
    assert rebuilt.taint == spec.taint
    assert rebuilt.program.secret_regions == spec.program.secret_regions
    relabeled = spec.replace(
        taint=TaintSpec.of(secret=((0, 8),), secret_regs=(5,)))
    assert relabeled.fingerprint() == \
        spec.replace(taint=None).fingerprint()
