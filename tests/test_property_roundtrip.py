"""Property-based round-trip tests (hypothesis; seeded and bounded).

Two serialization boundaries get randomized coverage:

* the ISA wire form — :meth:`Program.encode` vs
  :func:`repro.isa.decode_program` over random valid instructions;
* the engine spec JSON form — :meth:`SimSpec.to_json` vs
  :meth:`SimSpec.from_json`, which must preserve the content-address
  (:meth:`SimSpec.fingerprint`) that keys the result cache.

``derandomize=True`` keeps the suite deterministic in CI: hypothesis
derives its examples from the test's source rather than a random seed.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec, TLBSpec,
)
from repro.isa import Instruction, Op, Program, decode_program
from repro.isa.opcodes import BRANCH_OPS
from repro.pipeline.config import CPUConfig

BOUNDED = settings(max_examples=60, deadline=None, derandomize=True,
                   suppress_health_check=[HealthCheck.too_slow])

# ----------------------------------------------------------------------
# random valid programs
# ----------------------------------------------------------------------

_REGS = st.integers(0, 31)
_WIDTHS = st.sampled_from([1, 2, 4, 8])
_IMMS = st.integers(-(1 << 32), (1 << 32) - 1)


@st.composite
def programs(draw):
    length = draw(st.integers(min_value=1, max_value=24))
    instructions = []
    for pc in range(length):
        op = draw(st.sampled_from(sorted(Op, key=lambda o: o.value)))
        target = None
        if op in BRANCH_OPS or op is Op.JMP:
            # Any resolved target in [0, len] is valid post-assembly.
            target = draw(st.integers(0, length))
        instructions.append(Instruction(
            op=op, rd=draw(_REGS), rs1=draw(_REGS), rs2=draw(_REGS),
            imm=draw(_IMMS), width=draw(_WIDTHS), target=target, pc=pc))
    return Program(instructions, {})


@BOUNDED
@given(program=programs())
def test_encode_decode_roundtrip(program):
    blob = program.encode()
    decoded = decode_program(blob)
    assert decoded.encode() == blob
    assert len(decoded) == len(program)
    for original, rebuilt in zip(program, decoded):
        assert rebuilt.op is original.op
        assert (rebuilt.rd, rebuilt.rs1, rebuilt.rs2) == \
            (original.rd, original.rs1, original.rs2)
        assert (rebuilt.imm, rebuilt.width, rebuilt.target) == \
            (original.imm, original.width, original.target)
        assert rebuilt.pc == original.pc


# ----------------------------------------------------------------------
# random valid specs
# ----------------------------------------------------------------------

_PLUGIN_CHOICES = st.sets(
    st.sampled_from(["silent-stores", "value-prediction",
                     "computation-reuse", "operand-packing"]),
    max_size=3)


@st.composite
def sim_specs(draw):
    memory_size = 1 << draw(st.integers(16, 20))
    l1 = CacheSpec(num_sets=draw(st.sampled_from([16, 64])),
                   ways=draw(st.sampled_from([1, 4])),
                   policy=draw(st.sampled_from(["lru", "random"])),
                   seed=draw(st.integers(0, 7)))
    l2 = (CacheSpec(num_sets=128, ways=8)
          if draw(st.booleans()) else None)
    tlb = (TLBSpec(entries=draw(st.sampled_from([16, 64])))
           if draw(st.booleans()) else None)
    hierarchy = HierarchySpec(
        memory_size=memory_size, l1=l1, l2=l2, tlb=tlb,
        latencies=LatencySpec(jitter=draw(st.sampled_from([0, 5])),
                              seed=draw(st.integers(0, 3))),
        prefetch_buffer_size=draw(st.sampled_from([0, 4])))
    config = (CPUConfig(store_queue_size=draw(st.integers(2, 8)),
                        rob_size=draw(st.sampled_from([32, 64])))
              if draw(st.booleans()) else None)
    plugins = tuple(PluginSpec.of(name)
                    for name in sorted(draw(_PLUGIN_CHOICES)))
    addresses = st.integers(0, memory_size - 16)
    mem_writes = tuple(
        (draw(addresses), draw(st.integers(0, (1 << 64) - 1)),
         draw(_WIDTHS))
        for _ in range(draw(st.integers(0, 3))))
    mem_blobs = tuple(
        (draw(addresses), draw(st.binary(min_size=1, max_size=16)))
        for _ in range(draw(st.integers(0, 2))))
    regs = tuple((draw(st.integers(1, 31)),
                  draw(st.integers(0, (1 << 64) - 1)))
                 for _ in range(draw(st.integers(0, 3))))
    return SimSpec(
        program=draw(programs()), config=config, hierarchy=hierarchy,
        plugins=plugins, mem_writes=mem_writes, mem_blobs=mem_blobs,
        regs=regs,
        max_cycles=draw(st.sampled_from([None, 10_000])),
        seed=draw(st.integers(0, 1 << 16)),
        record_regs=tuple(sorted(draw(st.sets(st.integers(1, 31),
                                              max_size=3)))),
        label=draw(st.sampled_from(["", "probe", "trial/0"])),
        meta=tuple(sorted(draw(st.dictionaries(
            st.sampled_from(["phase", "guess"]),
            st.integers(0, 255), max_size=2)).items())),
        collect_stats=draw(st.booleans()))


@BOUNDED
@given(spec=sim_specs())
def test_spec_json_roundtrip_preserves_fingerprint(spec):
    text = spec.to_json()
    rebuilt = SimSpec.from_json(text)
    assert rebuilt.fingerprint() == spec.fingerprint()
    # The canonical JSON itself is a fixed point of the round trip.
    assert json.loads(rebuilt.to_json()) == json.loads(text)
    # Presentation fields survive too (they are outside the hash).
    assert rebuilt.label == spec.label
    assert rebuilt.collect_stats == spec.collect_stats
