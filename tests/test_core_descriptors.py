"""The nine example MLDs of Figures 2 and 3, checked against the paper."""

from repro.core.descriptors import (
    VP_CONFIDENCE_DOMAIN, mld_cache_rand, mld_im2l_prefetcher,
    mld_im3l_prefetcher, mld_instruction_reuse, mld_operand_packing,
    mld_rf_compression, mld_silent_stores, mld_single_cycle_alu,
    mld_v_prediction, mld_zero_skip_mul,
)
from repro.core.mld import InputKind, InstSnapshot
from repro.memory.cache import Cache


def test_single_cycle_alu_is_safe():
    for args in ((0, 0), (1, 5), (2 ** 63, 17)):
        assert mld_single_cycle_alu(InstSnapshot(op="add", args=args)) == 0


def test_zero_skip_mul_two_outcomes():
    assert mld_zero_skip_mul(InstSnapshot(args=(0, 9))) == 1
    assert mld_zero_skip_mul(InstSnapshot(args=(9, 0))) == 1
    assert mld_zero_skip_mul(InstSnapshot(args=(0, 0))) == 1
    assert mld_zero_skip_mul(InstSnapshot(args=(3, 9))) == 0


def test_cache_rand_outcome_count_is_sets_plus_one():
    """Figure 2, Example 3: one outcome per set plus one for a hit."""
    cache = Cache(num_sets=8, ways=2)
    cache.access(0x100)
    domain = [(InstSnapshot(addr=64 * i), cache) for i in range(32)]
    outcomes = {mld_cache_rand(*args) for args in domain}
    assert mld_cache_rand(InstSnapshot(addr=0x100), cache) == 0  # hit
    miss = mld_cache_rand(InstSnapshot(addr=0x2000), cache)
    assert miss == cache.set_index(0x2000) + 1
    assert len(outcomes) <= cache.num_sets + 1


def test_operand_packing_all_four_must_be_narrow():
    narrow = InstSnapshot(args=(1, 2))
    wide = InstSnapshot(args=(1 << 16, 2))
    assert mld_operand_packing(narrow, narrow) == 1
    assert mld_operand_packing(narrow, wide) == 0
    assert mld_operand_packing(wide, narrow) == 0
    boundary = InstSnapshot(args=(0xFFFF, 0xFFFF))
    assert mld_operand_packing(boundary, boundary) == 1


def test_silent_stores_equality():
    memory = {0x10: 42}
    assert mld_silent_stores(InstSnapshot(addr=0x10, data=42), memory) == 1
    assert mld_silent_stores(InstSnapshot(addr=0x10, data=7), memory) == 0


def test_instruction_reuse_operand_match():
    buffer = {0x40: (3, 4)}
    hit = InstSnapshot(pc=0x40, args=(3, 4))
    miss_value = InstSnapshot(pc=0x40, args=(3, 5))
    miss_pc = InstSnapshot(pc=0x44, args=(3, 4))
    assert mld_instruction_reuse(hit, buffer) == 1
    assert mld_instruction_reuse(miss_value, buffer) == 0
    assert mld_instruction_reuse(miss_pc, buffer) == 0


def test_v_prediction_concatenates_confidence_and_match():
    table = {0x80: {"conf": 3, "prediction": 42}}
    match = mld_v_prediction(InstSnapshot(pc=0x80, dst=42), table)
    mismatch = mld_v_prediction(InstSnapshot(pc=0x80, dst=41), table)
    assert match != mismatch
    # little-endian concat: (match, 2) then (conf, 8)
    assert match == 1 + 2 * 3
    assert mismatch == 0 + 2 * 3
    cold = mld_v_prediction(InstSnapshot(pc=0x99, dst=42), table)
    assert cold == 0  # conf 0, no match against None


def test_v_prediction_outcome_domain():
    table = {0: {"conf": VP_CONFIDENCE_DOMAIN - 1, "prediction": 1}}
    outcome = mld_v_prediction(InstSnapshot(pc=0, dst=1), table)
    assert outcome < 2 * VP_CONFIDENCE_DOMAIN


def test_rf_compression_bit_per_register():
    assert mld_rf_compression([0, 1, 2, 3]) == 0b0011
    assert mld_rf_compression([5, 5, 5, 5]) == 0
    assert mld_rf_compression([1, 1, 1, 1]) == 0b1111


def test_rf_compression_leaks_all_registers_independently():
    outcomes = {mld_rf_compression([a, b])
                for a in (0, 9) for b in (1, 7)}
    assert len(outcomes) == 4


def make_imp_state():
    cache = Cache(num_sets=16, ways=2)
    memory = {}
    base_z, base_y, base_x = 0x1000, 0x2000, 0x4000
    imp = {"baseZ": base_z, "baseY": base_y, "baseX": base_x,
           "start": 4, "shift": 0}
    memory[base_z + 4] = 7            # Z[i+delta]
    memory[base_y + 7] = 64           # Y[z] — "the secret"
    return imp, cache, memory


def test_im3l_outcome_depends_on_memory_contents():
    imp, cache, memory = make_imp_state()
    outcome_a = mld_im3l_prefetcher(imp, cache, memory)
    memory[0x2000 + 7] = 192          # line-distant different secret
    outcome_b = mld_im3l_prefetcher(imp, cache, memory)
    assert outcome_a != outcome_b     # the URG property


def test_im2l_outcome_blind_to_second_dereference():
    """The 2-level variant never reads Y[z], so changing the secret
    does not change its outcome (Section IV-D4)."""
    imp, cache, memory = make_imp_state()
    outcome_a = mld_im2l_prefetcher(imp, cache, memory)
    memory[0x2000 + 7] = 9
    outcome_b = mld_im2l_prefetcher(imp, cache, memory)
    assert outcome_a == outcome_b


def test_signatures_match_the_paper():
    assert [spec.kind for spec in mld_silent_stores.inputs] == [
        InputKind.INST, InputKind.ARCH]
    assert [spec.kind for spec in mld_rf_compression.inputs] == [
        InputKind.ARCH]
    assert [spec.kind for spec in mld_im3l_prefetcher.inputs] == [
        InputKind.UARCH, InputKind.UARCH, InputKind.ARCH]
    assert [spec.kind for spec in mld_operand_packing.inputs] == [
        InputKind.INST, InputKind.INST]
