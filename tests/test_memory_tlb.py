"""TLB model and its integration with the hierarchy."""

import pytest

from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies
from repro.memory.tlb import TLB
from repro.optimizations.dmp import IndirectMemoryPrefetcher
from repro.pipeline.cpu import CPU


def test_page_size_validation():
    with pytest.raises(ValueError):
        TLB(page_size=5000)


def test_hit_miss_latency():
    tlb = TLB(entries=2, page_size=4096, walk_latency=25)
    assert tlb.access(0x1000) == 25       # compulsory miss
    assert tlb.access(0x1FFF) == 0        # same page
    assert tlb.access(0x2000) == 25       # next page
    assert tlb.stats == {"hits": 1, "misses": 2, "evictions": 0}


def test_lru_eviction():
    tlb = TLB(entries=2, walk_latency=25)
    tlb.access(0x0000)
    tlb.access(0x1000)
    tlb.access(0x0000)          # promote page 0
    tlb.access(0x2000)          # evicts page 1
    assert tlb.contains(0x0000)
    assert not tlb.contains(0x1000)
    assert tlb.stats["evictions"] == 1


def test_flush_and_resident_pages():
    tlb = TLB()
    tlb.access(0x5000)
    assert tlb.resident_pages() == [5]
    tlb.flush()
    assert tlb.resident_pages() == []


def test_hierarchy_adds_walk_latency():
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(
        memory, l1=Cache(),
        latencies=MemoryLatencies(memory=100),
        tlb=TLB(walk_latency=30))
    _v, latency, level = hierarchy.read(0x1000)
    assert latency == 130 and level == "mem"     # walk + miss
    _v, latency, _level = hierarchy.read(0x1000)
    assert latency == hierarchy.latencies.l1_hit  # both warm
    # New page, same cache line? No — new page, cold line:
    _v, latency, _level = hierarchy.read(0x2000)
    assert latency == 130


def test_page_crossing_visible_even_on_cache_hits():
    """An L1-resident line on a TLB-evicted page still pays the walk —
    the TLB is its own channel."""
    memory = FlatMemory(1 << 16)
    hierarchy = MemoryHierarchy(memory, l1=Cache(),
                                tlb=TLB(entries=1, walk_latency=30))
    hierarchy.read(0x1000)
    hierarchy.read(0x2000)       # evicts page 1 from the 1-entry TLB
    _v, latency, level = hierarchy.read(0x1000)
    assert level == "l1"
    assert latency == hierarchy.latencies.l1_hit + 30


def test_prefetches_translate_through_the_tlb():
    """The IMP prefetches virtual addresses: its fills populate the
    TLB (page-granularity footprint of the *secret-derived* address)."""
    memory = FlatMemory(1 << 16)
    tlb = TLB(walk_latency=30)
    hierarchy = MemoryHierarchy(memory, l1=Cache(), tlb=tlb)
    hierarchy.prefetch(0x8000)
    assert tlb.contains(0x8000)


def test_dmp_attack_machinery_works_with_tlb_attached():
    """End-to-end sanity: the indirection program still trains the IMP
    with translation latency in the path."""
    from tests.test_opt_dmp import (
        BASE_Y, BASE_Z, indirection_program,
    )
    memory = FlatMemory(1 << 18)
    for i in range(32):
        memory.write(BASE_Z + 8 * i, (i * 3) % 11)
    for j in range(16):
        memory.write(BASE_Y + 8 * j, 100 + ((j * j) % 13))
    hierarchy = MemoryHierarchy(memory, l1=Cache(num_sets=256, ways=4),
                                tlb=TLB(walk_latency=30))
    imp = IndirectMemoryPrefetcher(levels=3, delta=4)
    cpu = CPU(indirection_program(16), hierarchy, plugins=[imp])
    cpu.run()
    imp.drain()
    assert imp.stats["prefetches"] > 0
    assert hierarchy.tlb.stats["misses"] > 0
