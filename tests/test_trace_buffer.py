"""The trace ring buffer: bounds, filters, sampling, determinism."""

import pytest

from repro.stats import SimStats
from repro.trace import (
    CATEGORIES, NULL_TRACE, TraceBuffer, TraceError, events_of,
)


def test_emit_and_read_back():
    buffer = TraceBuffer()
    buffer.emit("inst", "dispatch", cycle=3, seq=0, pc=0, info="li x1 7")
    buffer.emit("inst", "retire", cycle=9, seq=0, pc=0)
    assert len(buffer) == 2
    assert buffer.events() == [
        (3, "inst", "dispatch", 0, 0, -1, "li x1 7"),
        (9, "inst", "retire", 0, 0, -1, ""),
    ]
    assert buffer.emitted == 2
    assert buffer.dropped == 0


def test_clock_injection():
    buffer = TraceBuffer()
    now = {"cycle": 41}
    buffer.set_clock(lambda: now["cycle"])
    buffer.emit("sq", "hol_stall")
    now["cycle"] = 42
    buffer.emit("sq", "hol_stall")
    assert [event[0] for event in buffer.events()] == [41, 42]


def test_ring_drops_oldest_and_counts():
    metrics = SimStats()
    buffer = TraceBuffer(capacity=4, metrics=metrics)
    for cycle in range(10):
        buffer.emit("mem", "l1_hit", cycle=cycle, addr=cycle)
    assert len(buffer) == 4
    # The ring keeps the newest events; the overwrites are visible.
    assert [event[0] for event in buffer.events()] == [6, 7, 8, 9]
    assert buffer.emitted == 10
    assert buffer.dropped == 6
    assert metrics.counters["trace.dropped_events"] == 6


def test_category_filter():
    buffer = TraceBuffer(categories=("sq",))
    buffer.emit("sq", "perform", cycle=1)
    buffer.emit("mem", "l1_hit", cycle=1)
    buffer.emit("fetch", "fetch", cycle=1)
    assert [event[1] for event in buffer.events()] == ["sq"]
    assert buffer.filtered == 2
    assert buffer.events(category="mem") == []


def test_per_category_sampling_is_positional():
    buffer = TraceBuffer(sample=3)
    for cycle in range(9):
        buffer.emit("mem", "l1_hit", cycle=cycle)
        buffer.emit("sq", "perform", cycle=cycle)
    # Every 3rd event per category, starting with the first.
    assert [e[0] for e in buffer.events(category="mem")] == [0, 3, 6]
    assert [e[0] for e in buffer.events(category="sq")] == [0, 3, 6]
    assert buffer.filtered == 12


def test_invalid_configurations_raise():
    with pytest.raises(TraceError):
        TraceBuffer(capacity=0)
    with pytest.raises(TraceError):
        TraceBuffer(sample=0)
    with pytest.raises(TraceError):
        TraceBuffer(categories=("inst", "bogus"))


def test_payload_round_trip():
    buffer = TraceBuffer(capacity=8, categories=("inst",), sample=1)
    buffer.emit("inst", "dispatch", cycle=1, seq=0, pc=0, info="halt")
    payload = buffer.as_payload()
    assert payload["capacity"] == 8
    assert payload["categories"] == ["inst"]
    assert payload["emitted"] == 1
    assert events_of(payload) == buffer.events()
    assert events_of({}) == []
    assert events_of(buffer) == buffer.events()


def test_clear_resets_everything():
    buffer = TraceBuffer(capacity=2)
    for _ in range(5):
        buffer.emit("opt", "silent-stores", cycle=1)
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.emitted == buffer.dropped == buffer.filtered == 0


def test_null_trace_is_inert():
    before = len(NULL_TRACE)
    NULL_TRACE.emit("inst", "dispatch", cycle=1, seq=0)
    NULL_TRACE.set_clock(lambda: 99)
    assert not NULL_TRACE.enabled
    assert len(NULL_TRACE) == before == 0
    assert NULL_TRACE.as_payload()["events"] == []


def test_taxonomy_is_closed():
    buffer = TraceBuffer(categories=CATEGORIES)
    assert buffer.categories == frozenset(CATEGORIES)
