"""Trace exporters: Chrome trace-event JSON schema, ASCII timelines.

The Chrome trace-event checks validate the subset of the format that
Perfetto and ``chrome://tracing`` require: every record has a phase in
{"X", "i", "M"}, complete spans carry integer ``ts``/``dur``, instants
carry a scope, metadata names threads/processes, and the whole
document is JSON-serializable with the ``traceEvents`` wrapper.
"""

import json

from repro.attacks.amplification import amplified_probe_spec
from repro.engine import BatchTrace, TraceSpec, execute_spec, run_batch
from repro.trace import (
    chrome_document, render_timeline, run_trace_events,
)


def _fig5_result(secret, store, label):
    spec = amplified_probe_spec(secret, store, label=label)
    return execute_spec(spec.replace(trace=TraceSpec()))


def _validate_chrome_events(events):
    assert events, "exporter produced no events"
    for event in events:
        assert event["ph"] in ("X", "i", "M"), event
        assert isinstance(event["pid"], int)
        assert isinstance(event["name"], str) and event["name"]
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert event["args"]["name"]
            continue
        assert isinstance(event["tid"], int)
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert isinstance(event["cat"], str)
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] >= 1
        if event["ph"] == "i":
            assert event["s"] in ("t", "p", "g")


def test_run_trace_export_is_schema_valid():
    result = _fig5_result(0x2222, 0x1111, "fig5 non-silent")
    events = run_trace_events(result.trace, label=result.label, pid=1)
    _validate_chrome_events(events)
    document = chrome_document(events)
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    json.dumps(document)  # must serialize cleanly

    names = {event["name"] for event in events}
    assert "hol_stall" in names, "Figure 5 stalls missing from export"
    spans = [event for event in events if event["ph"] == "X"]
    assert spans, "no instruction spans"
    # Lanes never hold overlapping spans (the pipeline-diagram view).
    lanes = {}
    for span in sorted(spans, key=lambda s: s["ts"]):
        assert lanes.get(span["tid"], 0) <= span["ts"]
        lanes[span["tid"]] = span["ts"] + span["dur"]


def test_run_trace_export_accepts_payload_and_buffer():
    result = _fig5_result(0x1111, 0x1111, "fig5 silent")
    from_payload = run_trace_events(result.trace)
    assert from_payload
    # The RunResult payload is plain JSON data all the way down.
    json.dumps(result.trace)


def test_timeline_shows_head_of_line_stalls():
    result = _fig5_result(0x2222, 0x1111, "fig5 non-silent")
    art = render_timeline(result.trace)
    assert "SQ head-of-line stalls" in art
    assert "!" in art
    assert "D dispatch" in art  # legend
    stalls = result.metrics["counters"][
        "pipeline.sq.head_of_line_stall_cycles"]
    assert f"({stalls} cycles)" in art


def test_timeline_of_empty_trace():
    assert "no pipeline events" in render_timeline({})


def test_timeline_truncation_is_reported():
    result = _fig5_result(0x1111, 0x1111, "fig5 silent")
    art = render_timeline(result.trace, max_rows=3)
    assert "more instructions not shown" in art


def test_batch_trace_records_and_exports():
    batch_trace = BatchTrace(label="fig5 batch")
    specs = [amplified_probe_spec(0x1111, 0x1111, label="silent"),
             amplified_probe_spec(0x2222, 0x1111, label="non-silent")]
    results = run_batch(specs, workers=1, batch_trace=batch_trace)
    assert len(results) == 2
    assert len(batch_trace.trials) == 2
    events = batch_trace.to_chrome_trace()
    _validate_chrome_events(events)
    json.dumps(chrome_document(events))
    span_names = {event["name"] for event in events
                  if event["ph"] == "X"}
    assert span_names == {"silent", "non-silent"}


def test_batch_trace_records_cache_hits():
    class OneShotCache:
        def __init__(self):
            self.store = {}

        def get(self, fingerprint):
            return self.store.get(fingerprint)

        def put(self, result):
            self.store[result.fingerprint] = result

    cache = OneShotCache()
    batch_trace = BatchTrace()
    spec = amplified_probe_spec(0x1111, 0x1111, label="probe")
    run_batch([spec], cache=cache, batch_trace=batch_trace)
    run_batch([spec], cache=cache, batch_trace=batch_trace)
    assert len(batch_trace.trials) == 1
    assert len(batch_trace.cache_hits) == 1
    events = batch_trace.to_chrome_trace()
    _validate_chrome_events(events)
    assert any(event["ph"] == "i" for event in events)
