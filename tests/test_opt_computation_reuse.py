"""Computation reuse: Sv/Sn keying, hits, eviction, correctness."""

import pytest

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU


def run(asm, variant="sv", table_size=256):
    mem = FlatMemory(1 << 14)
    plugin = ComputationReusePlugin(variant=variant,
                                    table_size=table_size)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=CPUConfig(latency_div=20), plugins=[plugin])
    cpu.run()
    return cpu, plugin


def repeated_div_loop(trips, same_operands=True):
    """A loop re-executing one static divide."""
    asm = Assembler()
    asm.li(1, 1000)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, trips)
    asm.label("loop")
    asm.div(5, 1, 2)          # the memoized static instruction
    if not same_operands:
        asm.addi(1, 1, 1)     # operand changes every iteration
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    return asm


def test_variant_validation():
    with pytest.raises(ValueError):
        ComputationReusePlugin(variant="sx")


def test_sv_hits_on_repeated_operand_values():
    cpu, plugin = run(repeated_div_loop(8))
    assert plugin.stats["hits"] == 7      # first is a miss, rest hit
    assert cpu.arch_reg(5) == 1000 // 7


def test_sv_misses_when_operands_change():
    cpu, plugin = run(repeated_div_loop(8, same_operands=False))
    assert plugin.stats["hits"] == 0


def test_sv_hit_is_faster():
    fast, _ = run(repeated_div_loop(8))
    slow, _ = run(repeated_div_loop(8, same_operands=False))
    assert fast.stats.cycles < slow.stats.cycles


def test_sn_hits_when_registers_unwritten():
    cpu, plugin = run(repeated_div_loop(8), variant="sn")
    assert plugin.stats["hits"] == 7


def test_sn_invalidated_by_register_overwrite():
    """Sn keys on names + versions: rewriting the source register kills
    reuse even when the value is identical."""
    asm = Assembler()
    asm.li(1, 1000)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, 6)
    asm.label("loop")
    asm.div(5, 1, 2)
    asm.li(1, 1000)           # same value, new version
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    _cpu, plugin = run(asm, variant="sn")
    assert plugin.stats["hits"] == 0


def test_sv_hits_on_same_value_different_register_history():
    """Sv keys on values: the Sn-invalidating rewrite doesn't matter."""
    asm = Assembler()
    asm.li(1, 1000)
    asm.li(2, 7)
    asm.li(3, 0)
    asm.li(4, 6)
    asm.label("loop")
    asm.div(5, 1, 2)
    asm.li(1, 1000)
    asm.addi(3, 3, 1)
    asm.blt(3, 4, "loop")
    asm.halt()
    _cpu, plugin = run(asm, variant="sv")
    assert plugin.stats["hits"] == 5


def test_table_lru_eviction():
    """Unit-level: a 1-entry table thrashes on alternating keys; a
    larger table holds both."""
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Op
    from repro.pipeline.dyninst import DynInst

    def div_inst(pc, v1):
        dyn = DynInst(0, Instruction(op=Op.DIV, rd=5, rs1=1, rs2=2,
                                     pc=pc))
        dyn.src_values = [v1, 4]
        return dyn

    for size, expected_hits in ((1, 0), (4, 4)):
        plugin = ComputationReusePlugin(variant="sv", table_size=size)
        for _round in range(3):
            for value in (100, 200):
                dyn = div_inst(pc=7, v1=value)
                plugin.lookup_reuse(dyn)
                plugin.on_result(dyn, value // 4)
        assert plugin.stats["hits"] == expected_hits, size


def test_results_always_correct():
    for variant in ("sv", "sn"):
        cpu, _ = run(repeated_div_loop(5), variant=variant)
        assert cpu.arch_reg(5) == 142


def test_hit_rate_property():
    _cpu, plugin = run(repeated_div_loop(5))
    assert plugin.hit_rate == pytest.approx(
        plugin.stats["hits"] / plugin.stats["lookups"])
    assert 0 < plugin.hit_rate <= 1
    empty = ComputationReusePlugin()
    assert empty.hit_rate == 0.0


def test_reset_clears_table():
    _cpu, plugin = run(repeated_div_loop(5))
    plugin.reset()
    assert plugin._table == {}
