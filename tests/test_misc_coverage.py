"""Odds and ends: stats surfaces, listing output, edge behaviours."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.opcodes import (
    Op, is_alu, is_branch, is_control, is_div, is_load, is_mul,
    is_store, reads_rs1, reads_rs2, writes_register,
)
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.cpu import CPU


def run(asm, init_mem=(), plugins=()):
    memory = FlatMemory(1 << 14)
    for addr, value in init_mem:
        memory.write(addr, value)
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=list(plugins))
    cpu.run()
    return cpu


def test_opcode_classification_is_partitioned():
    """Every opcode lands in exactly one execution class."""
    for op in Op:
        classes = [is_alu(op), is_mul(op), is_div(op), is_load(op),
                   is_store(op), is_branch(op),
                   op in (Op.JMP, Op.HALT, Op.NOP, Op.FENCE,
                          Op.RDCYCLE)]
        overlap = sum(1 for c in classes[:6] if c)
        assert overlap <= 1, op
        assert overlap == 1 or classes[6], op


def test_register_read_write_metadata():
    assert writes_register(Op.ADD) and writes_register(Op.LOAD)
    assert writes_register(Op.RDCYCLE)
    assert not writes_register(Op.STORE)
    assert not writes_register(Op.BEQ)
    assert reads_rs1(Op.ADD) and reads_rs2(Op.ADD)
    assert reads_rs1(Op.ADDI) and not reads_rs2(Op.ADDI)
    assert reads_rs2(Op.STORE)
    assert not reads_rs1(Op.LI)
    assert is_control(Op.JMP) and is_control(Op.BEQ)


def test_cpu_stats_as_dict_and_ipc():
    asm = Assembler()
    asm.li(1, 1)
    asm.halt()
    cpu = run(asm)
    data = cpu.stats.as_dict()
    assert data["retired"] == 2
    assert "dispatch_stalls" in data
    assert cpu.stats.ipc == pytest.approx(2 / cpu.stats.cycles)


def test_empty_stats_ipc_is_zero():
    from repro.pipeline.cpu import CPUStats
    assert CPUStats().ipc == 0.0


def test_instruction_str_forms():
    asm = Assembler()
    asm.annotate("note")
    asm.load(1, 2, 8)
    asm.store(3, 4, -8, width=2)
    asm.beq(5, 6, "end")
    asm.label("end")
    asm.halt()
    program = asm.assemble()
    texts = [str(inst) for inst in program]
    assert "8(x2)" in texts[0] and "# note" in texts[0]
    assert "-8(x4)" in texts[1]
    assert "->" in texts[2]


def test_x0_destination_is_discarded_by_pipeline():
    asm = Assembler()
    asm.li(0, 99)
    asm.addi(0, 0, 5)
    asm.add(1, 0, 0)
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(0) == 0
    assert cpu.arch_reg(1) == 0


def test_back_to_back_fences():
    asm = Assembler()
    asm.fence()
    asm.fence()
    asm.li(1, 5)
    asm.fence()
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(1) == 5


def test_store_to_address_zero():
    asm = Assembler()
    asm.li(1, 7)
    asm.store(1, 0, 0)       # base register x0: address 0
    asm.halt()
    cpu = run(asm)
    assert cpu.memory.read(0) == 7


def test_jmp_only_program():
    asm = Assembler()
    asm.jmp("end")
    asm.li(1, 1)             # skipped
    asm.label("end")
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(1) == 0


def test_negative_immediates_through_pipeline():
    asm = Assembler()
    asm.li(1, 10)
    asm.addi(2, 1, -3)
    asm.li(3, -1)
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(2) == 7
    assert cpu.arch_reg(3) == (1 << 64) - 1


def test_dyninst_repr_mentions_state():
    from repro.isa.instruction import Instruction
    from repro.pipeline.dyninst import DynInst
    dyn = DynInst(3, Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3, pc=7))
    assert "#3" in repr(dyn) and "add" in repr(dyn)
    dyn.squashed = True
    assert "SQUASHED" in repr(dyn)


def test_sq_entry_repr_and_overlap():
    from repro.isa.instruction import Instruction
    from repro.pipeline.dyninst import DynInst, SQEntry
    dyn = DynInst(1, Instruction(op=Op.STORE, rs1=1, rs2=2, width=4))
    entry = SQEntry(dyn)
    assert entry.overlaps(0x100, 8)          # unknown addr: conservative
    entry.addr = 0x100
    entry.addr_ready = True
    assert entry.overlaps(0x102, 1)
    assert not entry.overlaps(0x104, 4)
    assert "silent=unknown" in repr(entry)


def test_mld_observation_domain_container():
    from repro.core.mld import ObservationDomain
    domain = ObservationDomain("operands", [(1,), (2,)])
    assert len(domain) == 2
    assert list(domain) == [(1,), (2,)]
