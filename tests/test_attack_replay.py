"""Replay attacks with width narrowing (Section IV-C4)."""

from repro.attacks.replay import (
    SilentStoreWidthOracle, expected_tries, full_width_search,
    narrowing_search,
)


def test_fast_oracle_equality_semantics():
    oracle = SilentStoreWidthOracle(secret=0xCAFE1234, secret_width=4)
    assert oracle.query(0xCAFE1234)
    assert not oracle.query(0xCAFE1235)
    assert oracle.query(0x34, offset=0, width=1)
    assert oracle.query(0x12, offset=1, width=1)
    assert oracle.query(0xCAFE, offset=2, width=2)
    assert not oracle.query(0xFECA, offset=2, width=2)


def test_narrowing_recovers_full_secret():
    oracle = SilentStoreWidthOracle(secret=0xDEADBEEF, secret_width=4)
    value, tries = narrowing_search(oracle)
    assert value == 0xDEADBEEF
    assert tries <= 4 * 256


def test_narrowing_exponentially_cheaper_than_full_width():
    secret = 0x0203          # small secret so full search terminates
    narrow_oracle = SilentStoreWidthOracle(secret, secret_width=2)
    narrow_value, narrow_tries = narrowing_search(narrow_oracle)
    full_oracle = SilentStoreWidthOracle(secret, secret_width=2)
    full_value, full_tries = full_width_search(full_oracle)
    assert narrow_value == full_value == secret
    assert narrow_tries <= 512
    assert full_tries == secret + 1     # enumerates from zero
    # The paper's scaling: 2 x 2^8 vs 2^16 in the worst case.
    assert expected_tries(2, 1) == 256
    assert expected_tries(2, 2) == 32768
    assert expected_tries(4, 1) == 512
    assert expected_tries(4, 4) == 2 ** 31


def test_query_accounting_by_width():
    oracle = SilentStoreWidthOracle(secret=0xABCD, secret_width=2)
    narrowing_search(oracle)
    assert set(oracle.stats.queries_by_width) == {1}
    assert oracle.stats.queries == sum(
        oracle.stats.queries_by_width.values())


def test_timed_oracle_agrees_with_fast_oracle():
    secret = 0x7B
    timed = SilentStoreWidthOracle(secret, secret_width=1, mode="timed")
    fast = SilentStoreWidthOracle(secret, secret_width=1, mode="fast")
    for guess in (0x00, 0x7A, 0x7B, 0x7C, 0xFF):
        assert timed.query(guess, width=1) == fast.query(guess, width=1)
    assert timed.stats.timed_queries >= 5


def test_timed_narrowing_recovers_secret():
    oracle = SilentStoreWidthOracle(secret=0x4321, secret_width=2,
                                    mode="timed")
    value, tries = narrowing_search(oracle)
    assert value == 0x4321
    assert tries <= 512


def test_budget_exhaustion():
    oracle = SilentStoreWidthOracle(secret=0xFFFF_FFFF, secret_width=4)
    value, tries = full_width_search(oracle, order=range(10))
    assert value is None and tries == 10
