"""Integration tests: repro.stats threaded through the whole stack.

Covers the observability tentpole end to end — pipeline and memory
instrumentation consistency, plug-in counters, engine aggregation and
batch telemetry, the Figure 5 head-of-line attribution, disabled-mode
behaviour, result-cache persistence of metrics, and the ``stats`` CLI.
"""

import json
import os

from repro.__main__ import main as cli_main
from repro.attacks.amplification import amplified_probe_spec
from repro.engine import (
    ResultCache, RunResult, Session, SimStats, execute_spec, merge_all,
    run_batch,
)
from tests.spec_catalog import attack_specs


def amp_spec(matches, **kwargs):
    value = 0x1234 if matches else 0x4321
    return amplified_probe_spec(0x1234, value, gadget=True, **kwargs)


# ----------------------------------------------------------------------
# simulator-side instrumentation
# ----------------------------------------------------------------------


def test_run_metrics_agree_with_legacy_stats():
    result = execute_spec(amp_spec(False))
    counters = result.metrics["counters"]
    assert counters["pipeline.cycles"] == result.cycles
    # Memory-system counters mirror the hierarchy's legacy dict (the
    # flushed probe may legitimately see zero L1 hits, hence .get).
    hier = result.observations["hierarchy"]
    assert counters.get("mem.l1.hits", 0) == hier["l1_hits"]
    assert counters.get("mem.dram.accesses", 0) == \
        hier["memory_accesses"]
    assert counters["mem.writes"] == hier["writes"]
    # Plug-in counters mirror the plug-in's own dict.
    ss = result.observations["plugins"]["silent-stores"]
    assert counters["opt.silent_stores.ss_loads_issued"] == \
        ss["ss_loads_issued"]
    assert counters["opt.silent_stores.nonsilent"] == \
        ss["case_b_nonsilent"]
    assert counters["engine.trials"] == 1


def test_occupancy_and_high_water_metrics():
    result = execute_spec(amp_spec(False))
    counters = result.metrics["counters"]
    maxima = result.metrics["maxima"]
    cycles = counters["pipeline.cycles"]
    for queue in ("rob", "rs", "lq", "sq"):
        peak = maxima[f"pipeline.{queue}.high_water"]
        integral = counters[f"pipeline.{queue}.occupancy_integral"]
        assert peak >= 1
        assert 0 < integral <= peak * cycles
    assert maxima["pipeline.sq.high_water"] <= 5  # gadget SQ size


def test_silent_run_squashes_are_counted():
    # The gadget's own backpressure stores perform either way; the
    # *target* store is the one whose outcome flips with the guess.
    silent = execute_spec(amp_spec(True)).metrics["counters"]
    nonsilent = execute_spec(amp_spec(False)).metrics["counters"]
    assert silent["opt.silent_stores.squashes"] == \
        nonsilent.get("opt.silent_stores.squashes", 0) + 1
    assert nonsilent["opt.silent_stores.nonsilent"] == \
        silent.get("opt.silent_stores.nonsilent", 0) + 1


def test_fig5_amplification_attributed_to_head_of_line_stalls():
    """The Figure 5 mechanism, as seen by the metrics layer.

    The amplified non-silent probe is slower than the silent one
    because the performed store misses L1 and head-of-line blocks the
    committed store queue; the stall counter must account for the
    majority of the manufactured timing gap.
    """
    silent = execute_spec(amp_spec(True))
    nonsilent = execute_spec(amp_spec(False))
    gap = nonsilent.cycles - silent.cycles
    assert gap > 100

    def hol(result):
        return result.metrics["counters"].get(
            "pipeline.sq.head_of_line_stall_cycles", 0)

    hol_gap = hol(nonsilent) - hol(silent)
    assert hol_gap > 0.5 * gap
    # The non-silent store's fill is the long pole: the fill-latency
    # histogram saw a memory-latency store fill.
    fills = nonsilent.metrics["histograms"][
        "pipeline.sq.store_fill_latency"]
    assert fills["max"] >= 100


# ----------------------------------------------------------------------
# disabled mode
# ----------------------------------------------------------------------


def test_disabled_stats_change_nothing_but_the_payload():
    enabled = execute_spec(amp_spec(False))
    disabled = execute_spec(amp_spec(False).replace(collect_stats=False))
    assert disabled.cycles == enabled.cycles
    assert disabled.stats == enabled.stats
    assert disabled.observations == enabled.observations
    assert disabled.metrics == {}
    assert enabled.metrics


def test_from_parts_session_defaults_to_disabled():
    spec = amp_spec(False)
    session = Session.from_spec(spec)
    bare = Session.from_parts(session.cpu.program, session.hierarchy)
    assert not bare.cpu.metrics.enabled
    assert bare.run().metrics == {}


def test_from_parts_session_accepts_metrics():
    spec = amp_spec(False)
    built = Session.from_spec(spec)
    metrics = SimStats()
    session = Session.from_parts(
        built.cpu.program, spec.hierarchy.build(), metrics=metrics,
        plugins=[plugin_spec.build() for plugin_spec in spec.plugins])
    result = session.run()
    assert result.metrics["counters"]["pipeline.cycles"] == result.cycles
    assert metrics.counters["engine.trials"] == 1


# ----------------------------------------------------------------------
# engine aggregation
# ----------------------------------------------------------------------


def test_merged_worker_stats_equal_serial_stats():
    specs = [amp_spec(trial % 2 == 0, label=f"t{trial}").replace(
        seed=trial) for trial in range(6)]
    serial = run_batch(specs, workers=1)
    pooled = run_batch(specs, workers=3)
    assert merge_all(r.metrics for r in serial) == \
        merge_all(r.metrics for r in pooled)


def test_batch_stats_telemetry(tmp_path):
    cache = ResultCache(path=str(tmp_path / "cache"))
    specs = [amp_spec(False).replace(seed=trial) for trial in range(3)]
    batch_stats = SimStats()
    run_batch(specs, cache=cache, batch_stats=batch_stats)
    assert batch_stats.counters["engine.trials_executed"] == 3
    assert batch_stats.counters["engine.cache_misses"] == 3
    assert "engine.cache_hits" not in batch_stats.counters
    assert batch_stats.histograms["engine.trial_wall_us"].count == 3
    assert batch_stats.maxima["engine.workers_used"] == 1

    run_batch(specs, cache=cache, batch_stats=batch_stats)
    assert batch_stats.counters["engine.cache_hits"] == 3
    assert batch_stats.counters["engine.trials_executed"] == 3
    assert batch_stats.counters["engine.batches"] == 2


def test_batch_stats_never_leak_into_results():
    spec = amp_spec(False)
    with_stats = run_batch([spec], batch_stats=SimStats())[0]
    without = run_batch([spec])[0]
    assert with_stats.to_json() == without.to_json()
    assert "engine.trial_wall_us" not in with_stats.metrics.get(
        "histograms", {})


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------


def test_cache_round_trips_metrics(tmp_path):
    cache = ResultCache(path=str(tmp_path / "cache"))
    spec = amp_spec(False)
    fresh = run_batch([spec], cache=cache)[0]
    cache.clear()  # drop the in-memory layer, keep the files
    replayed = run_batch([spec], cache=cache)[0]
    assert replayed.cached
    assert replayed.metrics == fresh.metrics


def test_cache_put_is_atomic_and_exist_ok(tmp_path):
    path = str(tmp_path / "deep" / "cache")
    result = execute_spec(amp_spec(False))
    # Two cache instances race on the same directory: both construct,
    # both write the same fingerprint; last-writer-wins, no partial
    # files, no stray temporaries.
    first, second = ResultCache(path=path), ResultCache(path=path)
    first.put(result)
    second.put(result)
    files = os.listdir(path)
    assert files == [f"{result.fingerprint}.json"]
    assert not [name for name in files if name.endswith(".tmp")]
    with open(os.path.join(path, files[0])) as handle:
        assert RunResult.from_json(handle.read()).cycles == result.cycles


def test_legacy_cached_results_without_metrics_still_load():
    payload = {"fingerprint": "f" * 64, "label": "old", "cycles": 10,
               "stats": {}, "observations": {}, "cached": False}
    loaded = RunResult.from_json(json.dumps(payload))
    assert loaded.metrics == {}
    assert merge_all([loaded.metrics]) == SimStats()


def test_collect_stats_false_gets_its_own_fingerprint(tmp_path):
    """A metrics-less run must never satisfy a metrics-wanting lookup."""
    cache = ResultCache(path=str(tmp_path / "cache"))
    spec = amp_spec(False)
    run_batch([spec.replace(collect_stats=False)], cache=cache)
    hit = cache.get(spec.fingerprint())
    assert hit is None


# ----------------------------------------------------------------------
# every attack is observable
# ----------------------------------------------------------------------


def test_every_attack_spec_produces_metrics():
    for name, spec in sorted(attack_specs().items()):
        metrics = execute_spec(spec).metrics
        assert metrics["counters"]["pipeline.cycles"] > 0, name
        assert metrics["counters"]["engine.trials"] == 1, name


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_stats_renders_runresult_json(tmp_path, capsys):
    result = execute_spec(amp_spec(False, label="amp"))
    path = tmp_path / "run.json"
    path.write_text(result.to_json())
    assert cli_main(["stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "== amp ==" in out
    assert "pipeline.cycles" in out
    assert "mem.miss_latency" in out


def test_cli_stats_reports_payloads_without_stats(tmp_path, capsys):
    path = tmp_path / "plain.json"
    path.write_text(json.dumps({"rows": [1, 2, 3]}))
    assert cli_main(["stats", str(path)]) == 0
    assert "no stats blocks found" in capsys.readouterr().out
