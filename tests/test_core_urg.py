"""The universal-read-gadget analysis of Section IV-D4."""

import pytest

from repro.core.urg import (
    AddressRange, analyze_imp, victim_bytes_reachable,
)

SANDBOX = AddressRange(0x1_0000, 0x2_0000)
BASE_Y = 0x1_4000
MAX_MEMORY = 1 << 22
DELTA_BYTES = 4 * 8


def test_address_range_basics():
    r = AddressRange(0x100, 0x200)
    assert 0x100 in r and 0x1FF in r
    assert 0x200 not in r and 0xFF not in r
    assert r.size == 0x100
    assert r.covers(AddressRange(0x120, 0x180))
    assert not r.covers(AddressRange(0x120, 0x280))


def test_three_level_imp_is_a_urg():
    analysis = analyze_imp(3, SANDBOX, BASE_Y, shift=0,
                           delta_bytes=DELTA_BYTES, max_memory=MAX_MEMORY)
    assert analysis.is_urg
    # The y observable reaches all memory above &Y[0] (Section IV-D4).
    y_reach = analysis.revealed_ranges[1]
    assert y_reach.lo == BASE_Y
    assert y_reach.hi == MAX_MEMORY


def test_two_level_imp_is_not_a_urg():
    analysis = analyze_imp(2, SANDBOX, BASE_Y, shift=0,
                           delta_bytes=DELTA_BYTES, max_memory=MAX_MEMORY)
    assert not analysis.is_urg
    z_reach = analysis.revealed_ranges[0]
    # Victim leakage limited to [b, b + delta).
    assert z_reach.lo == SANDBOX.lo
    assert z_reach.hi == SANDBOX.hi + DELTA_BYTES


def test_victim_reach_quantities():
    three = analyze_imp(3, SANDBOX, BASE_Y, shift=0,
                        delta_bytes=DELTA_BYTES, max_memory=MAX_MEMORY)
    two = analyze_imp(2, SANDBOX, BASE_Y, shift=0,
                      delta_bytes=DELTA_BYTES, max_memory=MAX_MEMORY)
    reach_three = victim_bytes_reachable(three, SANDBOX, MAX_MEMORY)
    reach_two = victim_bytes_reachable(two, SANDBOX, MAX_MEMORY)
    assert reach_two == DELTA_BYTES
    assert reach_three == MAX_MEMORY - SANDBOX.hi
    assert reach_three > 1000 * reach_two


def test_levels_validation():
    with pytest.raises(ValueError):
        analyze_imp(4, SANDBOX, BASE_Y, shift=0, delta_bytes=8,
                    max_memory=MAX_MEMORY)


def test_notes_mention_the_gadget():
    analysis = analyze_imp(3, SANDBOX, BASE_Y, shift=0,
                           delta_bytes=DELTA_BYTES, max_memory=MAX_MEMORY)
    assert "universal read gadget" in analysis.notes
