"""Specification vs implementation: the MLDs predict the hardware.

For each optimization with both a Figure 2/3 descriptor and a pipeline
plug-in, evaluate the descriptor on live machine snapshots and check it
agrees with what the hardware actually did.  Random programs drive the
silent-store check; directed programs drive the others.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adapters import (
    prediction_table_view, register_file_view, snapshot_from_dyn,
    snapshot_from_store,
)
from repro.core.descriptors import (
    mld_rf_compression, mld_silent_stores, mld_v_prediction,
    mld_zero_skip_mul,
)
from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.optimizations.value_prediction import ValuePredictionPlugin
from repro.pipeline.cpu import CPU
from repro.pipeline.dyninst import SilentState
from repro.pipeline.plugins import OptimizationPlugin


class SilentStoreAuditor(OptimizationPlugin):
    """Snapshot (store, memory-at-decision-time) for each candidate."""

    name = "silent-store-auditor"

    def __init__(self):
        super().__init__()
        self.observations = []

    def on_store_performed(self, entry):
        if entry.silent in (SilentState.SILENT, SilentState.NONSILENT):
            # Candidacy existed: the MLD must predict the outcome.
            # Memory still holds the pre-store value for SILENT (no
            # write happened); for NONSILENT the write already landed,
            # so compare against the SS-Load's captured value.
            memory_value = (entry.ss_load_value
                            if entry.ss_load_value is not None
                            else self.cpu.memory.read(entry.addr,
                                                      entry.width))
            self.observations.append(
                (snapshot_from_store(entry), memory_value,
                 entry.silent is SilentState.SILENT))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=1, max_size=8))
def test_silent_store_mld_predicts_hardware(stores):
    """Random store sequences over 4 slots with 4 values."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)          # warm the slot line
    asm.fence()
    for slot, value in stores:
        asm.li(3, value)
        asm.store(3, 1, 8 * slot)
    asm.halt()
    memory = FlatMemory(1 << 14)
    for slot in range(4):
        memory.write(0x1000 + 8 * slot, 2)
    auditor = SilentStoreAuditor()
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=[SilentStorePlugin(), auditor])
    cpu.run()
    assert auditor.observations      # at least one candidate
    for snapshot, memory_value, hardware_silent in auditor.observations:
        predicted = mld_silent_stores(snapshot, {snapshot.addr:
                                                 memory_value})
        assert bool(predicted) == hardware_silent


class ZeroSkipAuditor(OptimizationPlugin):
    name = "zero-skip-auditor"

    def __init__(self, simplifier):
        super().__init__()
        self.simplifier = simplifier
        self.observations = []

    def execute_latency(self, dyn, default_latency):
        if dyn.inst.op.value == "mul":
            before = self.simplifier.stats["zero_skip_mul"]
            self.observations.append((snapshot_from_dyn(dyn), before))
        return default_latency


def test_zero_skip_mld_predicts_hardware():
    asm = Assembler()
    values = [(0, 5), (3, 0), (7, 9), (0, 0), (1, 2)]
    asm.li(1, 0)
    for index, (a, b) in enumerate(values):
        asm.li(2, a)
        asm.li(3, b)
        asm.mul(4, 2, 3)
    asm.halt()
    simplifier = ComputationSimplificationPlugin(
        rules=("zero_skip_mul",))
    auditor = ZeroSkipAuditor(simplifier)
    memory = FlatMemory(1 << 14)
    # Auditor first: it snapshots the stats counter before the
    # simplifier (later in the plug-in list) fires.
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()),
              plugins=[auditor, simplifier])
    cpu.run()
    fired_total = simplifier.stats["zero_skip_mul"]
    predicted_total = sum(mld_zero_skip_mul(snapshot)
                          for snapshot, _before in auditor.observations)
    assert predicted_total == fired_total == 3


def test_vp_mld_predicts_squash():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.halt()
    program = asm.assemble()
    load_pc = next(inst.pc for inst in program if inst.is_load)
    for trained_value, actual in ((42, 42), (99, 42)):
        plugin = ValuePredictionPlugin(threshold=2)
        plugin.prime(load_pc, trained_value)
        table = prediction_table_view(plugin)
        memory = FlatMemory(1 << 14)
        memory.write(0x1000, actual)
        cpu = CPU(program, MemoryHierarchy(memory, l1=Cache()),
                  plugins=[plugin])
        cpu.run()
        from repro.core.mld import InstSnapshot
        outcome = mld_v_prediction(
            InstSnapshot(pc=load_pc, dst=actual), table)
        # Low bit of the concatenated outcome = prediction matched.
        matched = outcome & 1
        assert bool(matched) == (cpu.stats.vp_squashes == 0)


def test_rfc_mld_on_live_register_file():
    asm = Assembler()
    asm.li(1, 0)
    asm.li(2, 1)
    asm.li(3, 500)
    asm.halt()
    memory = FlatMemory(1 << 14)
    cpu = CPU(asm.assemble(), MemoryHierarchy(memory, l1=Cache()))
    cpu.run()
    view = register_file_view(cpu, arch_regs=range(1, 4))
    assert view == [0, 1, 500]
    # Registers 1 and 2 compressible, register 3 not: bits 0b011.
    assert mld_rf_compression(view) == 0b011
