"""Bitslice AES: plane packing, the spill trace, key reconstruction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import encrypt_block
from repro.crypto.batch import batch_last_round_planes, random_plaintexts
from repro.crypto.bsaes import (
    encrypt_with_trace, from_planes, last_round_planes,
    recover_key_from_planes, to_planes,
)

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)


@given(blocks)
def test_plane_packing_roundtrip(state):
    assert from_planes(to_planes(state)) == state


def test_planes_are_16_bit():
    planes = to_planes(bytes([0xFF] * 16))
    assert planes == [0xFFFF] * 8


def test_plane_bit_semantics():
    state = bytes([0x01] + [0x00] * 15)    # bit 0 of byte 0 set
    planes = to_planes(state)
    assert planes[0] == 0x0001
    assert planes[1:] == [0] * 7


@settings(max_examples=20)
@given(keys, blocks)
def test_bsaes_matches_reference_aes(key, plaintext):
    ciphertext, _spilled = encrypt_with_trace(key, plaintext)
    assert ciphertext == encrypt_block(key, plaintext)


def test_trace_has_ten_rounds_of_eight_planes():
    _ciphertext, spilled = encrypt_with_trace(bytes(16), bytes(16))
    assert len(spilled) == 10
    assert all(len(planes) == 8 for planes in spilled)
    assert all(0 <= p < (1 << 16) for planes in spilled for p in planes)


@settings(max_examples=20)
@given(keys, blocks)
def test_paper_reconstruction_planes_to_key(key, plaintext):
    """Section V-A3: last-round planes + ciphertext -> victim key."""
    ciphertext, spilled = encrypt_with_trace(key, plaintext)
    assert recover_key_from_planes(spilled[-1], ciphertext) == key


def test_last_round_planes_helper():
    key, plaintext = bytes(range(16)), bytes(range(16, 32))
    _ct, spilled = encrypt_with_trace(key, plaintext)
    assert tuple(last_round_planes(key, plaintext)) == spilled[-1]


def test_planes_depend_on_plaintext():
    key = bytes(range(16))
    a = last_round_planes(key, bytes(16))
    b = last_round_planes(key, bytes([1] + [0] * 15))
    assert a != b


# --- vectorized batch implementation -------------------------------------------

@settings(max_examples=5, deadline=None)
@given(keys)
def test_batch_agrees_with_scalar(key):
    plaintexts = random_plaintexts(8, seed=123)
    batch = batch_last_round_planes(key, plaintexts)
    for row, plaintext in zip(batch, plaintexts):
        expected = last_round_planes(key, bytes(plaintext))
        assert tuple(int(x) for x in row) == expected


def test_batch_shape_validation():
    import pytest
    with pytest.raises(ValueError):
        batch_last_round_planes(bytes(16), np.zeros((4, 8), dtype=np.uint8))


def test_random_plaintexts_deterministic():
    a = random_plaintexts(4, seed=9)
    b = random_plaintexts(4, seed=9)
    c = random_plaintexts(4, seed=10)
    assert (a == b).all()
    assert not (a == c).all()
