"""Pinned lint verdicts for the shipped example programs.

These are the checker's golden outputs: the CI static-checks job runs
``python -m repro lint`` over ``examples/programs/*.s``, archives the
JSON report, and this test pins exactly what that report must say.  A
verdict change here is a behaviour change in the checker (or a program
edit) and must be deliberate.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.isa.text import assemble_file
from repro.lint import contracted_plugin_names, lint_program

PROGRAMS = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "programs")


def lint_example(name, opts=None):
    program = assemble_file(os.path.join(PROGRAMS, name))
    return lint_program(
        program, opts=opts or contracted_plugin_names(),
        program_name=name)


def test_leaky_window_golden_verdicts():
    report = lint_example("leaky_window.s")
    assert not report.ok
    assert report.leaking_plugins() == [
        "computation-reuse", "computation-simplification",
        "indirect-memory-prefetcher", "operand-packing",
        "register-file-compression", "silent-stores",
        "value-prediction",
    ]
    verdicts = {pc: report.verdict(pc)
                for pc in range(len(report.instructions))}
    assert verdicts[0] == "SAFE"                    # li
    assert verdicts[1] == "SAFE"                    # li
    assert verdicts[3] == "SAFE"                    # public load
    assert verdicts[7] == "SAFE"                    # the branch itself
    assert verdicts[9] == "SAFE"                    # halt
    assert "value-prediction" in verdicts[2]        # secret load
    assert "computation-simplification" in verdicts[4]
    assert "operand-packing" in verdicts[5]
    assert "silent-stores" in verdicts[6]
    assert "operand-packing" in verdicts[8]         # implicit flow
    assert report.flagged_pcs() == [2, 4, 5, 6, 8]
    # the implicit-flow finding cites the tainted branch
    control = [finding for finding in report.findings
               if finding.pc == 8]
    assert control and all(finding.taps == ("control",)
                           for finding in control)


def test_ct_checksum_is_clean_under_every_contract():
    report = lint_example("ct_checksum.s")
    assert report.ok
    assert all(report.verdict(pc) == "SAFE"
               for pc in range(len(report.instructions)))


def test_ss_probe_golden_verdicts():
    report = lint_example("ss_probe.s")
    assert report.leaking_plugins() == ["silent-stores"]
    assert report.flagged_pcs() == [3]
    (finding,) = report.findings
    assert finding.taps == ("old_memory_value",)
    assert finding.mld == "store_silence"
    # rdcycle results are architecturally public: the probe's own
    # timing arithmetic is never flagged
    assert report.verdict(6) == "SAFE"


def test_gated_store_safe_under_path_sensitive_analysis():
    """The acceptance example for post-dominator scoping: a store in
    the public tail of a tainted-but-always-taken branch.  The sticky
    baseline poisons everything after the branch forever; the
    path-sensitive default clears control taint at the join and proves
    the program SAFE."""
    report = lint_example("gated_store.s", opts=("silent-stores",))
    assert report.ok
    assert all(report.verdict(pc) == "SAFE"
               for pc in range(len(report.instructions)))


def test_gated_store_sticky_baseline_false_positive():
    program = assemble_file(os.path.join(PROGRAMS, "gated_store.s"))
    report = lint_program(program, opts=("silent-stores",),
                          program_name="gated_store.s",
                          path_sensitive=False)
    assert not report.ok
    assert report.leaking_plugins() == ["silent-stores"]
    assert report.flagged_pcs() == [5]              # the public store
    (finding,) = report.findings
    assert finding.taps == ("store_value",)
    assert any("tainted control" in step for step in finding.witness)


def test_cli_json_report_matches_library_verdicts(tmp_path, capsys):
    out_path = tmp_path / "lint-report.json"
    rc = main(["lint",
               os.path.join(PROGRAMS, "leaky_window.s"),
               os.path.join(PROGRAMS, "ct_checksum.s"),
               os.path.join(PROGRAMS, "ss_probe.s"),
               "--json", "--out", str(out_path)])
    assert rc == 1                                  # leaks exist
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    by_name = {os.path.basename(report["program"]): report
               for report in payload["reports"]}
    assert by_name["leaky_window.s"]["ok"] is False
    assert by_name["ct_checksum.s"]["ok"] is True
    assert by_name["ss_probe.s"]["ok"] is False
    ss = by_name["ss_probe.s"]
    (finding,) = ss["findings"]
    assert finding["verdict"] == "LEAKS(silent-stores, store_silence)"
    assert finding["pc"] == 3


@pytest.mark.parametrize("name", ["leaky_window.s", "ct_checksum.s",
                                  "ss_probe.s", "gated_store.s"])
def test_example_programs_roundtrip(name):
    from repro.isa.text import assemble_source, render_source
    program = assemble_file(os.path.join(PROGRAMS, name))
    rendered = render_source(program)
    again = assemble_source(rendered, name=name)
    assert again.encode() == program.encode()
    assert again.labels == program.labels
