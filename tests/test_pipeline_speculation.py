"""Branch prediction, squash recovery, and value-prediction squashes."""

from repro.isa.assembler import Assembler
from repro.isa.interpreter import run_program
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.config import CPUConfig
from repro.pipeline.cpu import CPU
from repro.optimizations.value_prediction import ValuePredictionPlugin


def run(asm, init_mem=(), config=None, plugins=()):
    mem = FlatMemory(1 << 16)
    for addr, value in init_mem:
        mem.write(addr, value)
    cpu = CPU(asm.assemble(), MemoryHierarchy(mem, l1=Cache()),
              config=config, plugins=list(plugins))
    cpu.run()
    return cpu


def loop_program(trips):
    asm = Assembler()
    asm.li(1, 0)
    asm.li(2, trips)
    asm.li(3, 0)
    asm.label("loop")
    asm.addi(3, 3, 2)
    asm.addi(1, 1, 1)
    asm.blt(1, 2, "loop")
    asm.halt()
    return asm


def test_loop_result_correct_despite_speculation():
    cpu = run(loop_program(20))
    assert cpu.arch_reg(3) == 40
    assert cpu.stats.branch_squashes > 0      # at least the exit


def test_predictor_learns_loops():
    """After warm-up the only mispredict per loop is the exit."""
    short = run(loop_program(4)).stats
    long = run(loop_program(40)).stats
    # Mispredicts don't scale with trip count once trained.
    assert long.branch_squashes <= short.branch_squashes + 3


def test_predictor_disabled_squashes_every_taken_branch():
    config = CPUConfig(use_branch_predictor=False)
    cpu = run(loop_program(10), config=config)
    assert cpu.stats.branch_squashes >= 9   # every taken back-edge
    assert cpu.arch_reg(3) == 20


def test_architectural_state_recovers_after_mispredict():
    """Squashed wrong-path writes must not be visible."""
    asm = Assembler()
    asm.li(1, 5)
    asm.li(2, 5)
    asm.li(3, 111)
    asm.bne(1, 2, "wrong")     # never taken, but predicted either way
    asm.li(3, 222)
    asm.jmp("end")
    asm.label("wrong")
    asm.li(3, 333)
    asm.label("end")
    asm.halt()
    cpu = run(asm)
    assert cpu.arch_reg(3) == 222


def test_wrong_path_stores_never_perform():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 1)
    asm.beq(2, 2, "skip")      # always taken; cold predictor says NT
    asm.li(4, 66)
    asm.store(4, 1, 0)         # wrong path!
    asm.label("skip")
    asm.halt()
    cpu = run(asm, init_mem=[(0x1000, 0)])
    assert cpu.memory.read(0x1000) == 0


def test_matches_interpreter_on_branchy_program():
    asm = Assembler()
    asm.li(1, 0)
    asm.li(2, 30)
    asm.li(3, 0)
    asm.label("loop")
    asm.andi(4, 1, 1)
    asm.beq(4, 0, "even")
    asm.addi(3, 3, 5)
    asm.jmp("next")
    asm.label("even")
    asm.addi(3, 3, 1)
    asm.label("next")
    asm.addi(1, 1, 1)
    asm.blt(1, 2, "loop")
    asm.halt()
    program = asm.assemble()
    state = run_program(program)
    mem = FlatMemory(1 << 16)
    cpu = CPU(program, MemoryHierarchy(mem, l1=Cache()))
    cpu.run()
    assert cpu.arch_reg(3) == state.read_reg(3)


def test_vp_mispredict_squash_recovers_state():
    """A wrong value prediction squashes dependents; final state and
    memory must still be architecturally correct."""
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(5, 0)
    asm.li(6, 4)
    asm.label("loop")
    asm.load(2, 1, 0)          # predictable after warm-up ...
    asm.addi(3, 2, 1)
    asm.store(3, 1, 8)
    asm.addi(5, 5, 1)
    asm.load(4, 1, 16)         # pointer to next value cell
    asm.store(4, 1, 0)         # changes the predicted load's value!
    asm.blt(5, 6, "loop")
    asm.halt()
    init = [(0x1000, 10), (0x1010, 999)]
    plugin = ValuePredictionPlugin(threshold=1)
    cpu = run(asm, init_mem=init, plugins=[plugin])
    # Interpreter comparison.
    mem = FlatMemory(1 << 16)
    for addr, value in init:
        mem.write(addr, value)
    asm2_state = run_program(cpu.program, memory=mem)
    assert cpu.arch_reg(3) == asm2_state.read_reg(3)
    assert cpu.memory.read(0x1008) == mem.read(0x1008)


def test_branch_predictor_unit():
    predictor = BranchPredictor()
    taken, target = predictor.predict(10)
    assert not taken and target is None
    for _ in range(3):
        predictor.update(10, taken=True, target=50, mispredicted=True)
    taken, target = predictor.predict(10)
    assert taken and target == 50
    predictor.update(10, taken=False, target=50, mispredicted=True)
    predictor.update(10, taken=False, target=50, mispredicted=False)
    taken, _ = predictor.predict(10)
    assert not taken
