"""Named configurations behave as advertised."""

from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.cpu import CPU
from repro.pipeline.presets import PRESETS, figure6_core, narrow_inorder_like


def busy_program():
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.li(2, 7)
    for index in range(12):
        asm.mul(3, 2, 2)
        asm.store(3, 1, 8 * index)
        asm.load(4, 1, 8 * index)
    asm.halt()
    return asm.assemble()


def run(config):
    cpu = CPU(busy_program(),
              MemoryHierarchy(FlatMemory(1 << 14), l1=Cache()),
              config=config)
    cpu.run()
    return cpu


def test_every_preset_runs_programs_correctly():
    for name, factory in PRESETS.items():
        cpu = run(factory())
        assert cpu.arch_reg(3) == 49, name
        assert cpu.memory.read(0x1000 + 8 * 11) == 49, name


def test_figure6_core_matches_paper_parameters():
    assert figure6_core().store_queue_size == 5


def test_narrow_core_is_slower_than_baseline():
    narrow = run(narrow_inorder_like())
    baseline = run(PRESETS["baseline-server"]())
    assert narrow.stats.cycles > baseline.stats.cycles
    assert sum(narrow.stats.dispatch_stalls.values()) > 0
