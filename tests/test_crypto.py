"""AES-128, the key schedule and its inversion, GF(2^8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    decrypt_block, encrypt_block, inv_shift_rows, shift_rows,
)
from repro.crypto.gf import INV_SBOX, SBOX, gf_inv, gf_mul, gf_pow, xtime
from repro.crypto.keyschedule import RCON, expand_key, invert_key_schedule

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)


# --- field arithmetic ---------------------------------------------------------

def test_sbox_known_values():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_is_inverse():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_gf_mul_distributes(a, b, c):
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


@given(st.integers(1, 255))
def test_gf_inverse_property(a):
    assert gf_mul(a, gf_inv(a)) == 1


def test_gf_inv_zero_is_zero():
    assert gf_inv(0) == 0


@given(st.integers(0, 255))
def test_xtime_is_mul_by_two(a):
    assert xtime(a) == gf_mul(a, 2)


@given(st.integers(1, 255))
def test_gf_pow_fermat(a):
    assert gf_pow(a, 255) == 1      # the multiplicative group order


# --- AES block cipher ---------------------------------------------------------

def test_fips197_appendix_c1():
    key = bytes(range(16))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert encrypt_block(key, plaintext) == expected
    assert decrypt_block(key, expected) == plaintext


def test_fips197_appendix_b():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert encrypt_block(key, plaintext) == expected


@settings(max_examples=20)
@given(keys, blocks)
def test_encrypt_decrypt_roundtrip(key, plaintext):
    assert decrypt_block(key, encrypt_block(key, plaintext)) == plaintext


@given(blocks)
def test_shift_rows_roundtrip(state):
    assert inv_shift_rows(shift_rows(state)) == state


def test_shift_rows_row0_fixed():
    state = bytes(range(16))
    shifted = shift_rows(state)
    for c in range(4):
        assert shifted[4 * c] == state[4 * c]


# --- key schedule -------------------------------------------------------------

def test_expand_key_fips197_first_words():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    round_keys = expand_key(key)
    assert round_keys[0] == key
    assert round_keys[1][:4] == bytes.fromhex("a0fafe17")
    assert round_keys[10][:4] == bytes.fromhex("d014f9a8")


def test_rcon_values():
    assert RCON[:4] == (0x01, 0x02, 0x04, 0x08)
    assert RCON[8:] == (0x1B, 0x36)


@settings(max_examples=30)
@given(keys)
def test_key_schedule_inversion_roundtrip(key):
    round_keys = expand_key(key)
    assert invert_key_schedule(round_keys[10]) == key


@settings(max_examples=10)
@given(keys, st.integers(1, 9))
def test_inversion_from_intermediate_round(key, round_index):
    round_keys = expand_key(key)
    recovered = invert_key_schedule(round_keys[round_index],
                                    rounds=round_index)
    assert recovered == key
