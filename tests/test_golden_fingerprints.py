"""Golden-fingerprint regression pins for the result cache.

A :meth:`SimSpec.fingerprint` keys the persistent
:class:`~repro.engine.ResultCache` — if it drifts silently, every
cached simulation (including the bench cache under
``benchmarks/results/cache/``) is orphaned and experiments quietly
re-run from scratch.  This pins the fingerprint of one spec per attack
module so any change to the hash inputs (program encoding, canonical
form, payload schema, ``result_version``) shows up as an explicit test
failure.

If you changed the fingerprint *on purpose* (e.g. the RunResult schema
grew a field and ``result_version`` was bumped), re-pin with::

    PYTHONPATH=src python - <<'EOF'
    from tests.spec_catalog import attack_specs
    for name, spec in sorted(attack_specs().items()):
        print(f'    "{name}":\\n        "{spec.fingerprint()}",')
    EOF

and say so in the commit message — it invalidates persisted caches.
"""

import pytest

from tests.spec_catalog import attack_specs

#: Pinned against ``result_version`` 3 (version 2 added ``metrics`` to
#: RunResult; version 3 added ``trace``).
GOLDEN = {
    "amplification":
        "c2f56fce687f1bda48ec672a538db7e93e913b588304f272ac4b38b21b96a297",
    "bsaes":
        "00d133e71880354c5d76ea067497a73710ab1389913b7fc5c7a1e30f2945e43c",
    "compsimp":
        "77ed28a7de447c4ce314a52d3d23f85183c0980d438b596e4fcdc723528fba53",
    "packing":
        "9d078fda9f84dc983270904c7893759e3a71fcc78c1e66a523770ac3871f791f",
    "replay":
        "355e11b122f81db21ea32f541c184dc2d610a14f45626f122cb64bc146516652",
    "reuse":
        "6c39b24de8155a4f374a6dd494a28a098b8a94fc8ae9318c932632797eef5762",
    "rfc":
        "a7dc8b121734a7209008692ce01ecee72ac1e18244b067d64365a066ff433d3c",
    "vp":
        "d8a0a3bebdce7d1138314ef457e991a77de917017548e9782fe6c2dd4443ddaf",
}


def test_catalog_and_goldens_cover_the_same_attacks():
    assert sorted(attack_specs()) == sorted(GOLDEN)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_is_pinned(name):
    spec = attack_specs()[name]
    assert spec.fingerprint() == GOLDEN[name]
    # Fingerprints are also stable across spec rebuilds (no hidden
    # object-identity or ordering dependence).
    assert attack_specs()[name].fingerprint() == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_ignores_presentation_fields(name):
    spec = attack_specs()[name]
    assert spec.replace(label="renamed",
                        meta=(("phase", 1),)).fingerprint() == GOLDEN[name]


def test_fingerprint_depends_on_collect_stats_only_when_disabled():
    spec = attack_specs()["amplification"]
    assert spec.replace(collect_stats=True).fingerprint() == \
        GOLDEN["amplification"]
    assert spec.replace(collect_stats=False).fingerprint() != \
        GOLDEN["amplification"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_ignores_taint_metadata(name):
    """Lint metadata must never re-key the result cache: the taint
    seed changes what the *checker* says, not what the machine does.
    Every catalog spec already ships a TaintSpec, and stripping or
    rewriting it must not move the pinned hash."""
    from repro.engine import TaintSpec
    spec = attack_specs()[name]
    assert spec.taint is not None
    assert spec.replace(taint=None).fingerprint() == GOLDEN[name]
    assert spec.replace(taint=TaintSpec.of(
        secret=((0, 1 << 12),), secret_regs=(1, 2, 3),
    )).fingerprint() == GOLDEN[name]


def test_fingerprint_depends_on_trace_only_when_set():
    from repro.engine import TraceSpec
    spec = attack_specs()["amplification"]
    assert spec.replace(trace=None).fingerprint() == \
        GOLDEN["amplification"]
    traced = spec.replace(trace=TraceSpec()).fingerprint()
    assert traced != GOLDEN["amplification"]
    # ... and on the trace *configuration*, not just its presence.
    assert spec.replace(
        trace=TraceSpec(categories=("sq",))).fingerprint() != traced
