"""Golden-fingerprint regression pins for the result cache.

A :meth:`SimSpec.fingerprint` keys the persistent
:class:`~repro.engine.ResultCache` — if it drifts silently, every
cached simulation (including the bench cache under
``benchmarks/results/cache/``) is orphaned and experiments quietly
re-run from scratch.  This pins the fingerprint of one spec per attack
module so any change to the hash inputs (program encoding, canonical
form, payload schema, ``result_version``) shows up as an explicit test
failure.

If you changed the fingerprint *on purpose* (e.g. the RunResult schema
grew a field and ``result_version`` was bumped), re-pin with::

    PYTHONPATH=src python - <<'EOF'
    from tests.spec_catalog import attack_specs
    for name, spec in sorted(attack_specs().items()):
        print(f'    "{name}":\\n        "{spec.fingerprint()}",')
    EOF

and say so in the commit message — it invalidates persisted caches.
"""

import pytest

from tests.spec_catalog import attack_specs

GOLDEN = {
    "amplification":
        "1f4d0b175f9e6dd04edf26d538af4bcd1da2ae904582131ad7138d91a09c18cd",
    "bsaes":
        "04b6f094cf36d0c411c023944fb461f52cd7c775e7e9b1c131fcfc5a562fe657",
    "compsimp":
        "688398e170de252e599edd2c2c5d2755c64c8bb7b17b77747b90cf1516a304e8",
    "packing":
        "aebaf234cf7539829d0d65dbe8e98be64a8e9b2bc77adcd59bdf02517e4a56dd",
    "replay":
        "17296bf2dbf2af4a45b90d249d7197f75ccc991d4b6e43abb6795da7c157e031",
    "reuse":
        "05ee7ab50d456eed701c2fbdef791d6252e5e5846126de8933b01671ab528b7a",
    "rfc":
        "75737d1f1e6876e3932f3c985d8283b562e88f2dac0435e791b68041d4653e7a",
    "vp":
        "668f7983b1623b195a0a5526a51d73710da1b77ee9041c2c5c7fa4bd5f447cae",
}


def test_catalog_and_goldens_cover_the_same_attacks():
    assert sorted(attack_specs()) == sorted(GOLDEN)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_is_pinned(name):
    spec = attack_specs()[name]
    assert spec.fingerprint() == GOLDEN[name]
    # Fingerprints are also stable across spec rebuilds (no hidden
    # object-identity or ordering dependence).
    assert attack_specs()[name].fingerprint() == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_ignores_presentation_fields(name):
    spec = attack_specs()[name]
    assert spec.replace(label="renamed",
                        meta=(("phase", 1),)).fingerprint() == GOLDEN[name]


def test_fingerprint_depends_on_collect_stats_only_when_disabled():
    spec = attack_specs()["amplification"]
    assert spec.replace(collect_stats=True).fingerprint() == \
        GOLDEN["amplification"]
    assert spec.replace(collect_stats=False).fingerprint() != \
        GOLDEN["amplification"]
