"""Post-dominator and CFG edge cases (lint/cfg.py).

The taint analysis clears control taint at each branch's immediate
post-dominator, so a malformed post-dominator tree is a *soundness*
bug, not just a precision bug.  These tests pin the edge cases the
iterative solver must get right — unreachable blocks, self-loop
branches, branches to the exit node, infinite loops — and
property-check well-formedness over the full random-program vocabulary
(including back-edge-heavy shapes) against a brute-force oracle.
"""

from hypothesis import given, settings

from repro.isa.assembler import Assembler
from repro.lint.cfg import (
    build_cfg, exit_reaching, immediate_postdominators,
    postdominator_sets, static_successors,
)
from repro.lint.progen import programs


def asm_program(build):
    asm = Assembler()
    build(asm)
    return asm.assemble()


# ----------------------------------------------------------------------
# brute-force oracle
# ----------------------------------------------------------------------

def reachable_from(pc, succs, size, *, removed=None):
    """Nodes reachable from ``pc`` without passing through ``removed``."""
    seen = set()
    frontier = [pc]
    while frontier:
        node = frontier.pop()
        if node in seen or node == removed:
            continue
        seen.add(node)
        if node < size:
            frontier.extend(succs.get(node, ()))
    return seen


def brute_force_pdom(program, succs):
    """pdom by path enumeration, on the solver's declared semantics.

    ``d`` post-dominates ``pc`` iff every path from ``pc`` to a *sink*
    passes through ``d``, where the sinks are the exit node plus every
    node that cannot reach the exit (such nodes are truncation points:
    the solver pins their pdom to the singleton so any branch into a
    non-terminating region keeps sticky control taint).  Equivalently:
    with ``d`` removed, ``pc`` can reach no sink."""
    size = len(program)
    can_exit = exit_reaching(size, succs)
    sinks = {size} | {pc for pc in range(size) if pc not in can_exit}
    pdom = {size: frozenset((size,))}
    for pc in range(size):
        if pc in sinks:
            pdom[pc] = frozenset((pc,))
            continue
        doms = {pc}
        for candidate in range(size + 1):
            if candidate == pc:
                continue
            seen = set()
            frontier = [pc]
            hit = False
            while frontier and not hit:
                node = frontier.pop()
                if node == candidate or node in seen:
                    continue
                seen.add(node)
                if node in sinks:
                    hit = True
                    break
                frontier.extend(succs.get(node, ()))
            if not hit:
                doms.add(candidate)
        pdom[pc] = frozenset(doms)
    return pdom


def assert_well_formed(program, succs=None):
    size = len(program)
    succs = static_successors(program) if succs is None else succs
    pdom = postdominator_sets(program, succs)
    ipdom = immediate_postdominators(program, succs)
    can_exit = exit_reaching(size, succs)
    assert ipdom[size] is None
    oracle = brute_force_pdom(program, succs)
    for pc in range(size):
        assert pc in pdom[pc]
        if pc not in can_exit:
            # No join exists; control taint must stay sticky.
            assert pdom[pc] == frozenset((pc,))
            assert ipdom[pc] is None
        # Exactness against the path-enumeration oracle.
        assert pdom[pc] == oracle[pc]
        if ipdom[pc] is not None:
            assert ipdom[pc] in pdom[pc] - {pc}
        # The strict post-dominators form a chain: every one contains
        # the ipdom in its own pdom set or is the ipdom itself.
        strict = pdom[pc] - {pc}
        if ipdom[pc] is not None:
            for node in strict:
                assert node == ipdom[pc] or node in pdom[ipdom[pc]]
    # Following ipdom links always terminates (tree, no cycles).
    for pc in range(size):
        seen = set()
        node = pc
        while node is not None and node != size:
            assert node not in seen
            seen.add(node)
            node = ipdom[node]
    return pdom, ipdom


# ----------------------------------------------------------------------
# pinned edge cases
# ----------------------------------------------------------------------

def test_straight_line_chain():
    program = asm_program(lambda asm: (asm.li(1, 1), asm.nop(),
                                       asm.halt()))
    _, ipdom = assert_well_formed(program)
    assert ipdom == {0: 1, 1: 2, 2: 3, 3: None}


def test_diamond_joins_at_postdominator():
    def build(asm):
        asm.beq(1, 2, "else")       # 0
        asm.addi(3, 0, 1)           # 1
        asm.jmp("join")             # 2
        asm.label("else")
        asm.addi(3, 0, 2)           # 3
        asm.label("join")
        asm.halt()                  # 4
    program = asm_program(build)
    _, ipdom = assert_well_formed(program)
    assert ipdom[0] == 4            # the join, not either arm


def test_unreachable_block_after_halt():
    def build(asm):
        asm.li(1, 1)                # 0
        asm.halt()                  # 1
        asm.addi(2, 0, 5)           # 2: unreachable
        asm.addi(3, 0, 6)           # 3: unreachable
        asm.halt()                  # 4
    program = asm_program(build)
    pdom, ipdom = assert_well_formed(program)
    # Unreachable-from-entry code still gets a consistent tree (the
    # solver is entry-agnostic): 2 -> 3 -> 4 -> exit.
    assert ipdom[2] == 3 and ipdom[3] == 4
    blocks, block_of = build_cfg(program)
    assert block_of[2] != block_of[1]


def test_self_loop_branch_joins_at_fallthrough():
    def build(asm):
        asm.li(1, 3)                # 0
        asm.label("spin")
        asm.bne(1, 0, "spin")       # 1: branches to itself
        asm.halt()                  # 2
    program = asm_program(build)
    assert static_successors(program)[1] == (2, 1)
    _, ipdom = assert_well_formed(program)
    assert ipdom[1] == 2            # every exiting path falls through


def test_branch_to_exit_node():
    def build(asm):
        asm.beq(1, 2, 2)            # 0: taken edge = len(program)
        asm.li(3, 1)                # 1
        asm.halt()                  # 2... target 2 is halt
    program = asm_program(build)
    _, ipdom = assert_well_formed(program)
    assert ipdom[0] == 2


def test_fall_off_the_end_reaches_exit():
    program = asm_program(lambda asm: (asm.li(1, 1), asm.nop()))
    _, ipdom = assert_well_formed(program)
    assert ipdom[1] == 2            # the implicit exit node


def test_infinite_loop_pins_singleton_pdom():
    def build(asm):
        asm.beq(1, 2, "loop")       # 0: one arm never terminates
        asm.halt()                  # 1
        asm.label("loop")
        asm.jmp("loop")             # 2: unconditional self-loop
    program = asm_program(build)
    pdom, ipdom = assert_well_formed(program)
    assert 2 not in exit_reaching(len(program),
                                  static_successors(program))
    assert pdom[2] == frozenset((2,))
    # The branch must stay sticky: whether the terminating arm runs
    # is itself the secret, so no join point may exist.
    assert ipdom[0] is None


def test_back_edge_loop_joins_after_loop():
    def build(asm):
        asm.li(1, 4)                # 0
        asm.label("loop")
        asm.addi(2, 2, 1)           # 1
        asm.addi(1, 1, -1)          # 2
        asm.bne(1, 0, "loop")       # 3: back edge
        asm.store(2, 0, 0x100)      # 4
        asm.halt()                  # 5
    program = asm_program(build)
    _, ipdom = assert_well_formed(program)
    assert ipdom[3] == 4            # loop exit, despite the back edge


def test_pruned_edges_move_the_join_later():
    """Post-dominators over a pruned (feasible-edge) successor map:
    folding a branch to one arm moves the join to that arm."""
    def build(asm):
        asm.beq(1, 2, "else")       # 0
        asm.addi(3, 0, 1)           # 1
        asm.jmp("join")             # 2
        asm.label("else")
        asm.addi(3, 0, 2)           # 3
        asm.label("join")
        asm.halt()                  # 4
    program = asm_program(build)
    pruned = dict(static_successors(program))
    pruned[0] = (1,)                # constant lattice folded the branch
    _, ipdom = assert_well_formed(program, pruned)
    assert ipdom[0] == 1            # join is now the arm itself


def test_matches_brute_force_on_edge_cases():
    def build(asm):
        asm.li(1, 2)                # 0
        asm.label("outer")
        asm.beq(1, 2, "skip")       # 1
        asm.label("inner")
        asm.addi(2, 2, 1)           # 2
        asm.bne(2, 0, "inner")      # 3: nested self-ish loop
        asm.label("skip")
        asm.addi(1, 1, -1)          # 4
        asm.bne(1, 0, "outer")      # 5: outer back edge
        asm.halt()                  # 6
    program = asm_program(build)
    succs = static_successors(program)
    assert postdominator_sets(program, succs) == \
        brute_force_pdom(program, succs)


# ----------------------------------------------------------------------
# property: well-formed over the full random-program vocabulary
# ----------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(programs())
def test_postdominators_well_formed_on_random_programs(program):
    """Random programs are back-edge-heavy by construction (any branch
    target in [0, len] is legal), so this drives the solver through
    irreducible loops, unreachable tails, and multi-exit shapes."""
    assert_well_formed(program)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_pruned_graphs_stay_well_formed(program):
    """The taint fixpoint recomputes post-dominators over pruned
    (feasible-edge) successor maps; dropping a branch arm must never
    break the tree."""
    succs = dict(static_successors(program))
    for pc, targets in succs.items():
        if len(targets) == 2:
            succs[pc] = targets[:1]     # fold every branch one way
    assert_well_formed(program, succs)
