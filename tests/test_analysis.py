"""Histogram metrics and replay-experiment drivers."""

from repro.analysis.experiments import (
    ReplaySeries, distinguishability, run_replay,
)
from repro.analysis.histogram import TimingHistogram, apply_receiver_noise


def bimodal_histogram():
    histogram = TimingHistogram()
    histogram.extend("correct", [380, 382, 381, 380])
    histogram.extend("incorrect", [500, 502, 501])
    return histogram


def test_summary_statistics():
    histogram = bimodal_histogram()
    summary = histogram.summary("correct")
    assert summary["count"] == 4
    assert summary["min"] == 380 and summary["max"] == 382
    assert 380 <= summary["mean"] <= 382
    assert summary["std"] < 2


def test_separation_and_threshold():
    histogram = bimodal_histogram()
    assert histogram.separation("correct", "incorrect") == 118
    threshold = histogram.threshold("correct", "incorrect")
    assert 382 < threshold < 500
    assert histogram.overlap_count("correct", "incorrect") == 0


def test_overlapping_distributions_detected():
    histogram = TimingHistogram()
    histogram.extend("fast", [100, 110, 130])
    histogram.extend("slow", [120, 140])
    assert histogram.separation("fast", "slow") < 0
    assert histogram.overlap_count("fast", "slow") > 0


def test_render_mentions_labels_and_bins():
    text = bimodal_histogram().render(bin_width=8)
    assert "[correct]" in text and "[incorrect]" in text
    assert "#" in text


def test_render_empty():
    assert "empty" in TimingHistogram().render()


def test_receiver_noise_is_seeded_and_bounded():
    samples = [500] * 100
    noisy_a = apply_receiver_noise(samples, sigma=5, seed=1)
    noisy_b = apply_receiver_noise(samples, sigma=5, seed=1)
    assert noisy_a == noisy_b
    assert any(x != 500 for x in noisy_a)
    assert all(x >= 0 for x in noisy_a)


def test_channel_survives_moderate_noise():
    histogram = TimingHistogram()
    histogram.extend("correct", apply_receiver_noise([382] * 50, 8, 2))
    histogram.extend("incorrect", apply_receiver_noise([502] * 50, 8, 3))
    assert histogram.separation("correct", "incorrect") > 50


def test_replay_series_outliers():
    series = ReplaySeries("probe")
    for guess in range(8):
        series.add(guess, 200 if guess != 5 else 140)
    assert series.fastest() == (5, 140)
    assert series.outliers() == [(5, 140)]


def test_replay_series_outliers_tie_break():
    # Two cycle counts tie for the mode; the smallest one is the mode,
    # so only the slower group is reported as outlying — regardless of
    # insertion order.
    series = ReplaySeries("tie")
    for precondition, cycles in ((0, 300), (1, 140), (2, 300), (3, 140)):
        series.add(precondition, cycles)
    assert series.outliers() == [(0, 300), (2, 300)]
    reversed_series = ReplaySeries("tie-reversed")
    for precondition, cycles in ((0, 140), (1, 300), (2, 140), (3, 300)):
        reversed_series.add(precondition, cycles)
    assert reversed_series.outliers() == [(1, 300), (3, 300)]


def test_run_replay_driver():
    series = run_replay(lambda p: 100 + p % 2, [0, 1, 2, 3])
    assert series.slowest()[1] == 101
    assert len(series.observations) == 4


def test_distinguishability():
    result = distinguishability([380, 382], [500, 501])
    assert result["separable"] and result["gap"] == 118
    result = distinguishability([380, 505], [500, 501])
    assert not result["separable"]
