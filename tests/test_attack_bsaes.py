"""End-to-end BSAES key recovery through silent stores (Section V-A3)."""

import pytest

from repro.attacks.bsaes_attack import (
    BSAESSilentStoreAttack, BSAESVictimServer, NUM_SLOTS,
)
from repro.crypto.batch import batch_last_round_planes, random_plaintexts

VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ATTACKER_KEY = bytes(range(16, 32))
PUBLIC_PLAINTEXT = b"public-header-00"


@pytest.fixture(scope="module")
def server():
    return BSAESVictimServer(VICTIM_KEY, PUBLIC_PLAINTEXT)


@pytest.fixture()
def attack(server):
    return BSAESSilentStoreAttack(server, ATTACKER_KEY)


def test_server_exposes_only_public_information(server):
    assert server.ciphertext is not None
    assert len(server.leftover_planes) == NUM_SLOTS


def test_calibration_gap_exceeds_100_cycles(attack):
    silent, nonsilent, threshold = attack.calibrate(target_slot=3)
    assert nonsilent - silent > 100
    assert silent < threshold < nonsilent


def test_timed_oracle_agrees_with_functional_oracle(attack, server):
    """The timing channel and the hardware equality check coincide."""
    plaintexts = random_plaintexts(6, seed=11)
    planes = batch_last_round_planes(ATTACKER_KEY, plaintexts)
    slot = 2
    for row in planes:
        assert (attack.timed_oracle(row, slot)
                == attack.functional_oracle(row, slot))
    # And a forced match must read as silent:
    forced = list(planes[0])
    forced[slot] = server.leftover_planes[slot]
    assert attack.timed_oracle(forced, slot)


def test_full_key_recovery_functional(attack, server):
    key, tries = attack.recover_key(oracle="functional")
    assert key == server.victim_key
    assert len(tries) == NUM_SLOTS
    # Paper: up to 65,536 tries per 16-bit value, <= 524,288 total —
    # a hard bound, since the attacker never re-tries a plane value.
    assert all(count <= 65_536 for count in tries)
    assert sum(tries) <= 524_288


def test_recovered_planes_confirmed_by_timing(attack, server):
    confirmed = attack.confirm_planes_timed(
        list(server.leftover_planes))
    assert confirmed == NUM_SLOTS


def test_histogram_is_bimodal(attack):
    histogram = attack.histogram_runs(runs_per_type=5, target_slot=4)
    assert max(histogram["correct"]) < min(histogram["incorrect"])
    gap = min(histogram["incorrect"]) - max(histogram["correct"])
    assert gap > 100


def test_search_budget_exhaustion_returns_none(attack):
    value, tries = attack.recover_plane(0, oracle="functional",
                                        max_tries=4)
    assert tries == 4
    # Statistically impossible to find a 16-bit value in 4 tries
    # (seeded search; verified deterministic).
    assert value is None


def test_wrong_attacker_key_still_recovers(server):
    """The attack works for any attacker key — it only needs to know
    its own key (paper: "the attacker has access to its own key")."""
    other = BSAESSilentStoreAttack(server, bytes(range(100, 116)),
                                   seed=5)
    value, _tries = other.recover_plane(0, oracle="functional")
    assert value == server.leftover_planes[0]
