"""The MLD framework machinery (Section IV-A)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mld import (
    InputKind, InstSnapshot, MLD, MLDInput, concat_outcomes,
)


def make_parity_mld():
    return MLD("parity", [MLDInput(InputKind.INST, "i1")],
               lambda i1: i1.args[0] & 1)


def test_call_checks_arity():
    mld = make_parity_mld()
    with pytest.raises(TypeError, match="expects 1 inputs"):
        mld(InstSnapshot(args=(1,)), "extra")


def test_outcome_must_be_natural():
    bad = MLD("bad", [MLDInput(InputKind.INST, "i1")], lambda i1: -1)
    with pytest.raises(ValueError):
        bad(InstSnapshot())
    bad2 = MLD("bad2", [MLDInput(InputKind.INST, "i1")], lambda i1: 0.5)
    with pytest.raises(ValueError):
        bad2(InstSnapshot())


def test_partition_groups_by_outcome():
    mld = make_parity_mld()
    domain = [(InstSnapshot(args=(v,)),) for v in range(8)]
    partition = mld.partition(domain)
    assert set(partition) == {0, 1}
    assert len(partition[0]) == len(partition[1]) == 4


def test_capacity_bits_log2_of_partition():
    mld = make_parity_mld()
    domain = [(InstSnapshot(args=(v,)),) for v in range(8)]
    assert mld.capacity_bits(domain) == 1.0


def test_constant_mld_has_zero_capacity():
    safe = MLD("safe", [MLDInput(InputKind.INST, "i1")], lambda i1: 0)
    domain = [(InstSnapshot(args=(v,)),) for v in range(16)]
    assert safe.outcome_count(domain) == 1
    assert safe.capacity_bits(domain) == 0.0


def test_input_kind_interrogation():
    mld = MLD("mix", [MLDInput(InputKind.INST, "i1"),
                      MLDInput(InputKind.ARCH, "mem")],
              lambda i1, mem: 0)
    assert mld.reads(InputKind.INST)
    assert mld.reads(InputKind.ARCH)
    assert not mld.reads(InputKind.UARCH)
    assert mld.input_kinds == (InputKind.INST, InputKind.ARCH)


def test_repr_shows_signature():
    mld = make_parity_mld()
    assert "mld parity(Inst i1)" in repr(mld)


def test_concat_outcomes_formula():
    # d1 || d0 with domains (D1=3, D0=4): id = d0 + 4*d1
    assert concat_outcomes([(2, 4), (1, 3)]) == 2 + 4 * 1
    assert concat_outcomes([(0, 4), (0, 3)]) == 0
    assert concat_outcomes([(3, 4), (2, 3)]) == 3 + 4 * 2


def test_concat_outcomes_validates_domains():
    with pytest.raises(ValueError):
        concat_outcomes([(4, 4)])
    with pytest.raises(ValueError):
        concat_outcomes([(-1, 4)])


@given(st.lists(st.integers(min_value=2, max_value=8), min_size=1,
                max_size=4).flatmap(
    lambda domains: st.tuples(
        st.just(domains),
        st.tuples(*[st.integers(0, d - 1) for d in domains]))))
def test_concat_outcomes_is_injective_encoding(case):
    """Concatenation must be a bijection onto range(prod(domains))."""
    domains, values = case
    encoded = concat_outcomes(list(zip(values, domains)))
    # decode little-endian
    decoded = []
    rest = encoded
    for domain in domains:
        decoded.append(rest % domain)
        rest //= domain
    assert tuple(decoded) == values
    assert 0 <= encoded < math.prod(domains)
