"""Flat backing memory: endianness, widths, bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.flatmem import FlatMemory, MemoryError_


def test_little_endian_layout():
    mem = FlatMemory(64)
    mem.write(0, 0x0102030405060708)
    assert mem.read_bytes(0, 8) == bytes([8, 7, 6, 5, 4, 3, 2, 1])


def test_partial_width_write_and_read():
    mem = FlatMemory(64)
    mem.write(0, 0xFFFFFFFFFFFFFFFF)
    mem.write(2, 0xAB, width=1)
    assert mem.read(0) == 0xFFFFFFFFFFAB_FFFF


def test_zero_extension_on_read():
    mem = FlatMemory(64)
    mem.write(0, 0xFF, width=1)
    assert mem.read(0, width=1) == 0xFF
    assert mem.read(0, width=8) == 0xFF


def test_bounds_checking():
    mem = FlatMemory(64)
    with pytest.raises(MemoryError_):
        mem.read(60, 8)
    with pytest.raises(MemoryError_):
        mem.write(64, 1, 1)
    with pytest.raises(MemoryError_):
        mem.read(-1, 1)


def test_fill_and_bulk_bytes():
    mem = FlatMemory(64)
    mem.fill(8, 4, 0x5A)
    assert mem.read_bytes(8, 4) == b"\x5a" * 4
    mem.write_bytes(0, b"hello")
    assert mem.read_bytes(0, 5) == b"hello"


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.sampled_from([1, 2, 4, 8]))
def test_write_read_roundtrip_masks_to_width(value, width):
    mem = FlatMemory(64)
    mem.write(0, value, width)
    assert mem.read(0, width) == value & ((1 << (8 * width)) - 1)


def test_negative_value_write_wraps():
    mem = FlatMemory(64)
    mem.write(0, -1)
    assert mem.read(0) == (1 << 64) - 1
