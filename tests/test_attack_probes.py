"""The per-optimization attack probes: VP, reuse, packing, RFC, CS."""

from repro.attacks.compsimp_attack import SignificanceProbe, ZeroSkipAttack
from repro.attacks.packing_attack import OperandPackingAttack
from repro.attacks.reuse_attack import ComputationReuseAttack
from repro.attacks.rfc_attack import RegisterFileCompressionAttack
from repro.attacks.vp_attack import ValuePredictionAttack


# --- value prediction ---------------------------------------------------------

def test_vp_correct_guess_is_faster():
    attack = ValuePredictionAttack(secret_value=0x5A)
    match_cycles, mismatch_cycles = attack.calibrate()
    assert match_cycles < mismatch_cycles


def test_vp_recovers_secret_byte():
    attack = ValuePredictionAttack(secret_value=0x5A)
    value, experiments = attack.recover_byte()
    assert value == 0x5A
    assert experiments <= 256


def test_vp_measure_reports_squashes():
    attack = ValuePredictionAttack(secret_value=7)
    wrong = attack.measure(9)
    right = attack.measure(7)
    assert wrong.vp_squashes > right.vp_squashes


# --- computation reuse --------------------------------------------------------

def test_reuse_sv_distinguishes_operand_equality():
    attack = ComputationReuseAttack(secret_value=123, variant="sv")
    equal_cycles, different_cycles = attack.distinguishes(123, 124)
    assert equal_cycles < different_cycles


def test_reuse_sv_recovers_value():
    attack = ComputationReuseAttack(secret_value=123, variant="sv")
    value, _experiments = attack.recover_value(range(118, 130))
    assert value == 123


def test_reuse_sn_defense_blocks_the_attack():
    """Section VI-A3: the Sn variant's outcome is value-independent."""
    attack = ComputationReuseAttack(secret_value=123, variant="sn")
    equal_cycles, different_cycles = attack.distinguishes(123, 124)
    assert equal_cycles == different_cycles
    value, _experiments = attack.recover_value(range(118, 130))
    assert value is None


# --- operand packing ----------------------------------------------------------

def test_packing_classifies_narrow_vs_wide():
    attack = OperandPackingAttack(pairs=32)
    assert attack.classify(42)
    assert attack.classify(0xFFFF)
    assert not attack.classify(0x10000)
    assert not attack.classify(1 << 40)


def test_packing_probe_reports_pack_counts():
    attack = OperandPackingAttack(pairs=16)
    narrow = attack.measure(5)
    wide = attack.measure(1 << 30)
    assert narrow.packs > wide.packs
    assert narrow.cycles < wide.cycles


# --- register-file compression -----------------------------------------------

def test_rfc_classifies_flag_like_victim_data():
    attack = RegisterFileCompressionAttack()
    assert attack.classify_compressible(0)
    assert attack.classify_compressible(1)
    assert not attack.classify_compressible(0xDEADBEEF)


def test_rfc_probe_mechanism():
    attack = RegisterFileCompressionAttack()
    compressible = attack.measure(1)
    wide = attack.measure(12345678)
    assert compressible.pool_grants > wide.pool_grants
    assert compressible.cycles < wide.cycles


# --- computation simplification ------------------------------------------------

def test_zero_skip_active_attack():
    attack = ZeroSkipAttack()
    assert attack.secret_is_zero(0)
    assert not attack.secret_is_zero(5)


def test_zero_skip_lattice_corollary():
    """With the controlled operand 0, nothing leaks (Section IV-A2)."""
    attack = ZeroSkipAttack()
    assert attack.leaks_with_zero_controlled([0, 1, 7, 255, 1 << 60])


def test_significance_probe_orders_widths():
    probe = SignificanceProbe()
    curve = probe.significance_curve((1, 2, 4, 6))
    values = [curve[w] for w in (1, 2, 4, 6)]
    assert values == sorted(values)
    assert values[0] < values[-1]
