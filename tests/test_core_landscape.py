"""Table I — the leakage landscape — generated vs the paper's table."""

from repro.core.landscape import (
    ROW_LABELS, generate_table_i, render_table, union_safety,
)
from repro.core.registry import (
    COLUMN_ORDER, NO_CHANGE, SAFE, TABLE_I_ROWS, UNSAFE,
    UNSAFE_DIFFERENT,
)
from repro.core.landscape import expansions

# The paper's Table I, transcribed row by row.  Columns:
# Baseline, CS, PC, SS, CR, VP, RFC, DMP.
PAPER_TABLE_I = {
    ("operands", "int_simple"): ("S", "U", "U", "-", "U", "-", "-", "-"),
    ("operands", "int_mul"):    ("S", "U", "U", "-", "U", "-", "-", "-"),
    ("operands", "int_div"):    ("U", "U'", "U'", "-", "U'", "-", "-", "-"),
    ("operands", "fp"):         ("U", "U'", "-", "-", "U'", "-", "-", "-"),
    ("result", "int_simple"):   ("S", "-", "-", "-", "-", "U", "U", "-"),
    ("result", "int_mul"):      ("S", "-", "-", "-", "-", "U", "U", "-"),
    ("result", "int_div"):      ("S", "-", "-", "-", "-", "U", "U", "-"),
    ("result", "fp"):           ("S", "-", "-", "-", "-", "U", "U", "-"),
    ("addr", "load"):           ("U", "-", "-", "-", "-", "-", "-", "-"),
    ("addr", "store"):          ("U", "-", "-", "-", "-", "-", "-", "-"),
    ("data", "load"):           ("S", "-", "-", "-", "-", "U", "-", "-"),
    ("data", "store"):          ("S", "-", "-", "U", "-", "-", "-", "-"),
    ("control_flow", "control_flow"):
                                ("U", "-", "-", "-", "-", "-", "-", "-"),
    ("at_rest", "register_file"):
                                ("S", "-", "U", "-", "-", "-", "U", "-"),
    ("at_rest", "data_memory"): ("S", "-", "-", "U", "-", "-", "-", "U"),
}


def test_generated_table_matches_paper_cell_for_cell():
    table = generate_table_i()
    columns = ["Baseline"] + list(COLUMN_ORDER)
    for row, expected in PAPER_TABLE_I.items():
        for column, marker in zip(columns, expected):
            assert table[row][column] == marker, (row, column)


def test_every_row_of_the_paper_is_modeled():
    assert set(PAPER_TABLE_I) == set(TABLE_I_ROWS)
    assert set(ROW_LABELS) == set(TABLE_I_ROWS)


def test_goal_1_every_optimization_expands_leakage():
    """Section III, Goal 1: each studied optimization increases the
    scope of what can leak relative to the Baseline."""
    for acronym in COLUMN_ORDER:
        changes = expansions(acronym)
        assert changes, f"{acronym} does not expand leakage?"


def test_meta_takeaway_union_leaves_nothing_safe():
    """Section III: "if one considers the union of all optimizations we
    study, no instruction operand/result (or data at rest) is safe."""
    union = union_safety()
    assert all(marker == UNSAFE for marker in union.values())


def test_u_prime_only_on_baseline_unsafe_rows():
    """U' means "a different function of already-unsafe data" — it can
    only annotate rows the Baseline already leaks."""
    table = generate_table_i()
    for row, cells in table.items():
        for acronym in COLUMN_ORDER:
            if cells[acronym] == UNSAFE_DIFFERENT:
                assert cells["Baseline"] == UNSAFE, (row, acronym)


def test_memory_centric_optimizations_attack_data_at_rest():
    table = generate_table_i()
    assert table[("at_rest", "data_memory")]["DMP"] == UNSAFE
    assert table[("at_rest", "register_file")]["RFC"] == UNSAFE


def test_render_contains_all_rows_and_columns():
    text = render_table()
    for label in ROW_LABELS.values():
        assert label in text
    for acronym in COLUMN_ORDER:
        assert acronym in text


def test_no_change_marker_inherits_baseline():
    from repro.core.landscape import effective_safety
    assert effective_safety(None, NO_CHANGE, SAFE) == SAFE
    assert effective_safety(None, NO_CHANGE, UNSAFE) == UNSAFE
    assert effective_safety(None, UNSAFE, SAFE) == UNSAFE
