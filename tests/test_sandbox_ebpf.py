"""The sandbox bytecode builder and array declarations."""

import pytest

from repro.sandbox.ebpf import (
    BpfArray, BpfOp, BpfProgram, BpfProgramError,
)


def test_array_validation():
    with pytest.raises(ValueError):
        BpfArray("A", elem_size=12, length=4)
    array = BpfArray("A", elem_size=64, length=4)
    assert array.size_bytes == 256
    assert array.shift == 6


def test_duplicate_array_rejected():
    program = BpfProgram(arrays=(BpfArray("A", 8, 4),))
    with pytest.raises(BpfProgramError):
        program.declare(BpfArray("A", 8, 4))


def test_unknown_array_lookup_rejected():
    program = BpfProgram()
    with pytest.raises(BpfProgramError, match="unknown array"):
        program.lookup(1, "nope", 2)


def test_register_range_checked():
    program = BpfProgram()
    with pytest.raises(BpfProgramError):
        program.mov_imm(10, 0)
    with pytest.raises(BpfProgramError):
        program.mov_imm(-1, 0)


def test_label_resolution():
    program = BpfProgram()
    program.mov_imm(1, 0)
    program.jmp("end")
    program.mov_imm(1, 99)
    program.label("end")
    program.exit()
    program.finalize()
    assert program.instructions[1].target == 3


def test_unresolved_label_rejected():
    program = BpfProgram()
    program.jmp("nowhere")
    with pytest.raises(BpfProgramError, match="unresolved"):
        program.finalize()


def test_duplicate_label_rejected():
    program = BpfProgram()
    program.label("a")
    with pytest.raises(BpfProgramError):
        program.label("a")


def test_builder_chains_and_records():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.mov_imm(1, 5).add_imm(1, 2).lookup(2, "Z", 1)
    assert [inst.op for inst in program.instructions] == [
        BpfOp.MOV_IMM, BpfOp.ADD_IMM, BpfOp.LOOKUP]


def test_listing_is_readable():
    program = BpfProgram(arrays=(BpfArray("Z", 8, 4),))
    program.label("start")
    program.mov_imm(1, 0)
    program.lookup(2, "Z", 1)
    program.exit()
    text = program.listing()
    assert "start:" in text
    assert "lookup" in text
