"""Engine sessions and the trial runner: determinism regression tests.

The engine's core contract is that a :class:`SimSpec` fully determines
its run: building the same spec twice — in this process or across a
worker pool — must produce identical statistics and observations.
"""

from repro.engine import (
    HierarchySpec, LatencySpec, PluginSpec, ResultCache, Session,
    SimSpec, derive_seed, run_batch, run_trials,
)
from repro.isa.assembler import Assembler
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CPUConfig


def probe_program(store_value=42):
    asm = Assembler()
    asm.li(1, 0x1000)
    asm.load(2, 1, 0)
    asm.fence()
    asm.li(3, store_value)
    asm.store(3, 1, 0)
    asm.fence()
    asm.halt()
    return asm.assemble()


def probe_spec(store_value=42, seed=0, jitter=0, store_perform=1,
               label=""):
    return SimSpec(
        program=probe_program(store_value),
        config=CPUConfig(store_queue_size=5),
        hierarchy=HierarchySpec(
            memory_size=1 << 16,
            latencies=LatencySpec(jitter=jitter,
                                  store_perform=store_perform)),
        plugins=(PluginSpec.of("silent-stores"),),
        mem_writes=((0x1000, 42, 8),),
        seed=seed, label=label)


def result_key(result):
    return (result.fingerprint, result.cycles, result.stats,
            result.observations)


def test_same_spec_runs_identically():
    first = Session.from_spec(probe_spec(seed=3, jitter=4)).run()
    second = Session.from_spec(probe_spec(seed=3, jitter=4)).run()
    assert result_key(first) == result_key(second)
    assert first.stats == second.stats           # full CPUStats dict
    assert first.observations == second.observations


def test_silent_store_observed_through_spec():
    silent = Session.from_spec(probe_spec(store_value=42)).run()
    noisy = Session.from_spec(probe_spec(store_value=7)).run()
    assert silent.stats["silent_stores"] == 1
    assert noisy.stats["silent_stores"] == 0
    assert "silent-stores" in silent.observations["plugins"]
    assert silent.fingerprint != noisy.fingerprint


def test_pool_matches_serial_run():
    """workers=2 fans across processes with identical aggregates."""
    def specs():
        return [probe_spec(store_value=40 + trial,
                           seed=derive_seed(11, trial), jitter=6,
                           label=f"trial/{trial}")
                for trial in range(8)]

    serial = run_batch(specs(), workers=1)
    pooled = run_batch(specs(), workers=2)
    assert [result_key(r) for r in serial] \
        == [result_key(r) for r in pooled]
    assert [r.label for r in pooled] == [s.label for s in specs()]


def test_derived_seeds_vary_jitter_reproducibly():
    cycles = [Session.from_spec(
        probe_spec(seed=derive_seed(5, trial), jitter=8)).run().cycles
        for trial in range(6)]
    again = [Session.from_spec(
        probe_spec(seed=derive_seed(5, trial), jitter=8)).run().cycles
        for trial in range(6)]
    assert cycles == again          # reproducible...
    assert len(set(cycles)) > 1     # ...but varying across trials


def test_derive_seed_is_stable_and_mixed():
    assert derive_seed(7, 0) == derive_seed(7, 0)
    assert derive_seed(7, 0) != derive_seed(7, 1)
    assert derive_seed(7, 1) != derive_seed(8, 1)


def test_run_trials_builds_and_runs():
    results = run_trials(lambda t: probe_spec(seed=t), range(3))
    assert len(results) == 3
    assert all(r.cycles > 0 for r in results)


def test_register_preload_and_recording():
    asm = Assembler()
    asm.add(3, 1, 2)
    asm.halt()
    spec = SimSpec(program=asm.assemble(),
                   hierarchy=HierarchySpec(memory_size=1 << 12),
                   regs=((1, 30), (2, 12)), record_regs=(3,))
    result = Session.from_spec(spec).run()
    assert result.observations["regs"]["3"] == 42


def test_from_parts_session_is_not_content_addressed():
    """Persistent-hierarchy callers run fine but never enter the cache."""
    hierarchy = MemoryHierarchy(FlatMemory(1 << 16), l1=Cache())
    session = Session.from_parts(probe_program(), hierarchy,
                                 config=CPUConfig(), label="parts")
    result = session.run()
    assert result.cycles > 0
    assert result.label == "parts"
    assert result.fingerprint == ""
    cache = ResultCache()
    cache.put(result)
    assert len(cache) == 0


def test_run_replay_accepts_specs():
    """run_replay drives SimSpec-producing measures through the engine.

    A lone silent store is timing-invisible (Figure 5's point), so the
    replayed probe is the amplification gadget: only the matching
    store value times fast.
    """
    from repro.analysis.experiments import run_replay
    from repro.attacks.amplification import amplified_probe_spec
    series = run_replay(
        lambda value: amplified_probe_spec(42, value),
        [41, 42, 43], name="equality-probe", workers=2)
    fast_precondition, _cycles = series.fastest()
    assert fast_precondition == 42          # the silent (matching) store
    assert series.outliers() == [series.fastest()]
