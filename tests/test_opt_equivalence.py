"""The repo's load-bearing invariant, property-tested hard.

Every optimization the paper studies is *performance-only*: with any
plug-in (or all of them) attached, the pipeline must compute exactly
what the golden-model interpreter computes — registers and memory.
Random programs with loops, loads, stores, multiplies and divides
drive this; if an optimization ever changed architectural state, the
whole security analysis would be meaningless ("leakage" would just be
broken hardware).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import Assembler
from repro.isa.interpreter import run_program
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.optimizations.computation_simplification import (
    RULES, ComputationSimplificationPlugin,
)
from repro.optimizations.dmp import IndirectMemoryPrefetcher
from repro.optimizations.pipeline_compression import (
    EarlyTerminatingMultiplierPlugin, OperandPackingPlugin,
)
from repro.optimizations.register_file_compression import (
    RegisterFileCompressionPlugin,
)
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.optimizations.value_prediction import ValuePredictionPlugin
from repro.pipeline.cpu import CPU

SCRATCH = 0x1000

PLUGIN_FACTORIES = {
    "silent_stores": lambda: SilentStorePlugin(),
    "silent_stores_allocating": lambda: SilentStorePlugin(
        ss_load_allocates=True, retry_cycles=8),
    "computation_simplification": lambda: ComputationSimplificationPlugin(
        rules=tuple(RULES)),
    "operand_packing": lambda: OperandPackingPlugin(),
    "early_terminating_mul": lambda: EarlyTerminatingMultiplierPlugin(),
    "reuse_sv": lambda: ComputationReusePlugin(variant="sv"),
    "reuse_sn": lambda: ComputationReusePlugin(variant="sn"),
    "value_prediction": lambda: ValuePredictionPlugin(threshold=1),
    "rfc_any": lambda: RegisterFileCompressionPlugin(variant="any",
                                                     pool_size=8),
    "rfc_zero_one": lambda: RegisterFileCompressionPlugin(
        variant="zero-one", pool_size=8),
    "imp_3level": lambda: IndirectMemoryPrefetcher(levels=3),
}

OPS = ("add", "sub", "and_", "or_", "xor", "mul", "div", "rem",
       "sll", "srl")


@st.composite
def random_programs(draw):
    """Terminating programs exercising ALU, memory and a bounded loop."""
    asm = Assembler()
    asm.li(1, SCRATCH)
    for reg in range(2, 8):
        asm.li(reg, draw(st.integers(0, 2 ** 20)))
    trips = draw(st.integers(1, 3))
    asm.li(8, 0)
    asm.li(9, trips)
    asm.label("loop")
    body = draw(st.lists(st.tuples(
        st.sampled_from(OPS + ("load", "store")),
        st.integers(2, 7), st.integers(2, 7), st.integers(2, 7),
        st.integers(0, 15)), min_size=3, max_size=25))
    for op, rd, rs1, rs2, slot in body:
        if op == "load":
            asm.load(rd, 1, 8 * slot)
        elif op == "store":
            asm.store(rs1, 1, 8 * slot)
        else:
            getattr(asm, op)(rd, rs1, rs2)
    asm.addi(8, 8, 1)
    asm.blt(8, 9, "loop")
    asm.halt()
    return asm.assemble()


def run_and_compare(program, plugin_factories):
    init = [(SCRATCH + 8 * i, (i * 0x9E3779B9) & 0xFFFF)
            for i in range(16)]
    mem_a = FlatMemory(1 << 16)
    mem_b = FlatMemory(1 << 16)
    for addr, value in init:
        mem_a.write(addr, value)
        mem_b.write(addr, value)
    state = run_program(program, memory=mem_a)
    from repro.memory.hierarchy import MemoryLatencies
    hierarchy = MemoryHierarchy(mem_b, l1=Cache(num_sets=16, ways=2),
                                latencies=MemoryLatencies(memory=30))
    plugins = [factory() for factory in plugin_factories]
    cpu = CPU(program, hierarchy, plugins=plugins)
    cpu.run()
    for reg in range(1, 10):
        assert state.read_reg(reg) == cpu.arch_reg(reg), f"x{reg}"
    assert (mem_a.read_bytes(SCRATCH, 128)
            == mem_b.read_bytes(SCRATCH, 128))


@pytest.mark.parametrize("name", sorted(PLUGIN_FACTORIES))
@settings(max_examples=8, deadline=None)
@given(program=random_programs())
def test_each_plugin_is_performance_only(name, program):
    run_and_compare(program, [PLUGIN_FACTORIES[name]])


@settings(max_examples=10, deadline=None)
@given(program=random_programs())
def test_all_plugins_together_are_performance_only(program):
    run_and_compare(program, list(PLUGIN_FACTORIES.values()))
