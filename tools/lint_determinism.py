#!/usr/bin/env python
"""Ban nondeterminism sources from the simulation core.

Reproducibility is a load-bearing property of this repo: the engine
fingerprints results by spec, the differential suites compare serial
vs pooled runs bitwise, and the golden tests pin exact cycle counts.
One stray ``time.time()`` or unseeded ``random.random()`` in the
simulation path silently breaks all of that, so this checker bans them
*structurally* in the core packages (``pipeline``, ``memory``,
``optimizations``, ``engine``):

* wall-clock reads — ``time.time``, ``time.time_ns``;
* ``datetime`` "current moment" constructors — ``now``, ``utcnow``,
  ``today``;
* module-level ``random.<fn>()`` calls, whose hidden global state
  escapes the spec's seed.  Instantiating ``random.Random(seed)`` is
  the sanctioned idiom and stays allowed.

``time.perf_counter``/``perf_counter_ns`` are *not* banned: measuring
host wall-clock for throughput reporting is legitimate — it never
feeds simulated state.

A line may opt out with a ``# det-lint: allow`` comment, which is a
grep-able audit trail.  Usage::

    python tools/lint_determinism.py [path ...]

Paths default to the four core packages plus the ``benchmarks/`` and
``examples/`` trees (their programs feed golden-pinned results, so a
stray wall-clock read there regresses determinism just as silently);
exits 1 on any violation.
"""

import ast
import os
import sys

CORE_PACKAGES = ("pipeline", "memory", "optimizations", "engine")
#: Repo-root trees scanned by default alongside the core packages.
EXTRA_ROOTS = ("benchmarks", "examples")
MARKER = "det-lint: allow"

BANNED_TIME = {"time", "time_ns"}
BANNED_DATETIME = {"now", "utcnow", "today"}
ALLOWED_RANDOM = {"Random", "SystemRandom", "getstate", "setstate"}
TRACKED_MODULES = ("time", "random", "datetime")


def _dotted(node):
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class DeterminismChecker(ast.NodeVisitor):
    def __init__(self, path, lines):
        self.path = path
        self.lines = lines
        self.aliases = {}          # local name -> canonical dotted path
        self.violations = []

    def _allow(self, node):
        line = self.lines[node.lineno - 1] \
            if node.lineno - 1 < len(self.lines) else ""
        return MARKER in line

    def _report(self, node, what, hint):
        if self._allow(node):
            return
        self.violations.append(
            f"{self.path}:{node.lineno}: {what} — {hint}")

    def visit_Import(self, node):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in TRACKED_MODULES:
                self.aliases[alias.asname or root] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module and node.module.split(".")[0] in TRACKED_MODULES:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def visit_Call(self, node):
        path = _dotted(node.func)
        if path is not None:
            head, _, rest = path.partition(".")
            canonical = self.aliases.get(head)
            if canonical is not None:
                full = canonical + ("." + rest if rest else "")
                self._check(node, full)
        self.generic_visit(node)

    def _check(self, node, full):
        parts = full.split(".")
        if parts[0] == "time" and len(parts) == 2 \
                and parts[1] in BANNED_TIME:
            self._report(node, f"call to {full}()",
                         "wall-clock reads break run reproducibility; "
                         "thread timestamps in via the spec")
        elif parts[0] == "datetime" and parts[-1] in BANNED_DATETIME:
            self._report(node, f"call to {full}()",
                         "'current moment' constructors break run "
                         "reproducibility")
        elif parts[0] == "random" and len(parts) == 2 \
                and parts[1] not in ALLOWED_RANDOM:
            self._report(node, f"call to {full}()",
                         "global random state escapes the spec seed; "
                         "use a random.Random(seed) instance")


def check_file(path):
    with open(path) as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [f"{path}: syntax error: {error}"]
    checker = DeterminismChecker(path, source.splitlines())
    checker.visit(tree)
    return checker.violations


def iter_files(paths):
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, _, filenames in os.walk(path):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        repo = os.path.normpath(os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir))
        root = os.path.join(repo, "src", "repro")
        argv = [os.path.normpath(os.path.join(root, package))
                for package in CORE_PACKAGES]
        argv += [path for path in
                 (os.path.join(repo, extra) for extra in EXTRA_ROOTS)
                 if os.path.isdir(path)]
    violations = []
    checked = 0
    for path in iter_files(argv):
        violations.extend(check_file(path))
        checked += 1
    for violation in violations:
        print(violation)
    print(f"det-lint: {checked} file(s) checked, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
