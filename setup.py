"""Legacy-editable-install shim (the environment's pip lacks `wheel`)."""

from setuptools import setup

setup()
