"""AES-128 key schedule — expansion and inversion.

The inversion is the lever of the paper's Section V-A3 attack: "The key
expansion algorithm is invertible, so knowing those sixteen bytes
[the last round key] allows the attacker to reconstruct the entire
original key."
"""

from repro.crypto.gf import SBOX

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _sub_word(word):
    return tuple(SBOX[b] for b in word)


def _rot_word(word):
    return word[1:] + word[:1]


def _xor_words(a, b):
    return tuple(x ^ y for x, y in zip(a, b))


def expand_key(key):
    """Expand a 16-byte key into 11 round keys (16 bytes each)."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [tuple(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = _sub_word(_rot_word(temp))
            temp = (temp[0] ^ RCON[i // 4 - 1],) + temp[1:]
        words.append(_xor_words(words[i - 4], temp))
    return [bytes(b for word in words[4 * r:4 * r + 4] for b in word)
            for r in range(11)]


def invert_key_schedule(last_round_key, rounds=10):
    """Recover the original key from round key ``rounds`` (default: rk10).

    Walks the schedule backwards one round at a time:
    ``prev[k] = cur[k] ^ cur[k-1]`` for k in 3..1, then
    ``prev[0] = cur[0] ^ SubWord(RotWord(prev[3])) ^ Rcon``.
    """
    if len(last_round_key) != 16:
        raise ValueError("round key must be 16 bytes")
    cur = [tuple(last_round_key[4 * i:4 * i + 4]) for i in range(4)]
    for round_index in range(rounds, 0, -1):
        prev = [None] * 4
        for k in (3, 2, 1):
            prev[k] = _xor_words(cur[k], cur[k - 1])
        temp = _sub_word(_rot_word(prev[3]))
        temp = (temp[0] ^ RCON[round_index - 1],) + temp[1:]
        prev[0] = _xor_words(cur[0], temp)
        cur = prev
    return bytes(b for word in cur for b in word)
