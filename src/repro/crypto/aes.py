"""Reference AES-128 (FIPS-197), byte-oriented.

The golden model against which the bitsliced implementation is tested.
State is column-major: byte index ``4*c + r`` holds row ``r``,
column ``c``.
"""

from repro.crypto.gf import INV_SBOX, SBOX, gf_mul
from repro.crypto.keyschedule import expand_key


def _sub_bytes(state):
    return bytes(SBOX[b] for b in state)


def _inv_sub_bytes(state):
    return bytes(INV_SBOX[b] for b in state)


def shift_rows(state):
    """Row ``r`` rotates left by ``r`` (column-major layout)."""
    out = bytearray(16)
    for c in range(4):
        for r in range(4):
            out[4 * c + r] = state[4 * ((c + r) % 4) + r]
    return bytes(out)


def inv_shift_rows(state):
    out = bytearray(16)
    for c in range(4):
        for r in range(4):
            out[4 * ((c + r) % 4) + r] = state[4 * c + r]
    return bytes(out)


def _mix_single_column(col):
    a0, a1, a2, a3 = col
    return (
        gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3,
        a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3,
        a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3),
        gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2),
    )


def _mix_columns(state):
    out = bytearray(16)
    for c in range(4):
        out[4 * c:4 * c + 4] = _mix_single_column(state[4 * c:4 * c + 4])
    return bytes(out)


def _inv_mix_single_column(col):
    a0, a1, a2, a3 = col
    return (
        gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9),
        gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13),
        gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11),
        gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14),
    )


def _inv_mix_columns(state):
    out = bytearray(16)
    for c in range(4):
        out[4 * c:4 * c + 4] = _inv_mix_single_column(
            state[4 * c:4 * c + 4])
    return bytes(out)


def _add_round_key(state, round_key):
    return bytes(s ^ k for s, k in zip(state, round_key))


def encrypt_block(key, plaintext):
    """Encrypt one 16-byte block."""
    if len(plaintext) != 16:
        raise ValueError("plaintext block must be 16 bytes")
    round_keys = expand_key(key)
    state = _add_round_key(plaintext, round_keys[0])
    for round_index in range(1, 10):
        state = _sub_bytes(state)
        state = shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
    state = _sub_bytes(state)
    state = shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    return state


def decrypt_block(key, ciphertext):
    """Decrypt one 16-byte block."""
    if len(ciphertext) != 16:
        raise ValueError("ciphertext block must be 16 bytes")
    round_keys = expand_key(key)
    state = _add_round_key(ciphertext, round_keys[10])
    state = inv_shift_rows(state)
    state = _inv_sub_bytes(state)
    for round_index in range(9, 0, -1):
        state = _add_round_key(state, round_keys[round_index])
        state = _inv_mix_columns(state)
        state = inv_shift_rows(state)
        state = _inv_sub_bytes(state)
    return _add_round_key(state, round_keys[0])
