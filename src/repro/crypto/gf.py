"""GF(2^8) arithmetic for AES (Rijndael field, polynomial 0x11B).

The S-box is *computed* (multiplicative inverse + affine transform)
rather than transcribed, so correctness reduces to field arithmetic
that the tests can verify against FIPS-197 vectors.
"""

AES_POLY = 0x11B


def gf_mul(a, b):
    """Carry-less multiply modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
    return result


def gf_pow(a, exponent):
    """Exponentiation by squaring in GF(2^8)."""
    result = 1
    base = a & 0xFF
    while exponent:
        if exponent & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        exponent >>= 1
    return result


def gf_inv(a):
    """Multiplicative inverse (0 maps to 0, as AES requires)."""
    if a == 0:
        return 0
    return gf_pow(a, 254)


def _affine(x):
    """The AES affine transform over GF(2)."""
    result = 0
    for bit in range(8):
        value = ((x >> bit) ^ (x >> ((bit + 4) % 8))
                 ^ (x >> ((bit + 5) % 8)) ^ (x >> ((bit + 6) % 8))
                 ^ (x >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
        result |= value << bit
    return result


def _build_sbox():
    return tuple(_affine(gf_inv(x)) for x in range(256))


SBOX = _build_sbox()
INV_SBOX = tuple(SBOX.index(x) for x in range(256))


def xtime(a):
    """Multiply by x (i.e. 2) in the field."""
    a <<= 1
    if a & 0x100:
        a ^= AES_POLY
    return a & 0xFF
