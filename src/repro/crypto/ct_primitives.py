"""Constant-time programming primitives, as simulator programs.

The building blocks that "widely-deployed" constant-time code is made
of (Section II / III): fixed-trip-count comparison, arithmetic
conditional select, scan-all table lookup.  On the Baseline core each
runs in input-independent time — the property the tests verify — and
each is broken by one of the studied optimization classes:

* ``ct_compare``  × computation simplification (trivial bitwise ops),
* ``ct_select``   × the zero-skip multiplier (the select mask is 0/±1),
* ``ct_lookup``   × Sv computation reuse (the per-entry multiply
  repeats operand values across calls).

These are the programs behind ``benchmarks/bench_constant_time_break``.
"""

from repro.isa.assembler import Assembler

A_BASE = 0x1000
B_BASE = 0x2000
TABLE_BASE = 0x3000
OUT_ADDR = 0x4000


def build_ct_compare(length):
    """Constant-time memcmp: OR together the XOR of every byte pair.

    Same instruction count, same memory accesses, no data-dependent
    branches — for any inputs.
    """
    asm = Assembler()
    asm.li(1, A_BASE)
    asm.li(2, B_BASE)
    asm.annotate("warm both operand lines (hot-path call)")
    asm.load(3, 1, 0)
    asm.load(3, 2, 0)
    asm.fence()
    asm.li(3, 0)             # accumulator
    for index in range(length):
        asm.load(4, 1, index, width=1)
        asm.load(5, 2, index, width=1)
        asm.xor(6, 4, 5)     # 0 iff bytes equal (trivial XOR target)
        asm.or_(3, 3, 6)     # fold into the accumulator
    asm.li(7, OUT_ADDR)
    asm.store(3, 7, 0)
    asm.halt()
    return asm.assemble()


def build_ct_select(repeat=16):
    """Constant-time select: ``r = c*a + (1-c)*b`` with c in {0, 1}.

    The branchless idiom — but both multiplies see a 0 operand for
    every value of ``c``, so a zero-skip multiplier fires on one of
    them either way... *which* one depends on the secret, and chained
    repeats make the count of skips (and so the timing) condition-
    dependent when a and b differ in zero-ness; more directly, with an
    attacker-controlled ``a=0`` the skip count keys on ``c`` alone.
    """
    asm = Assembler()
    asm.li(1, A_BASE)
    asm.load(2, 1, 0)        # c (the secret condition)
    asm.load(3, 1, 8)        # a
    asm.load(4, 1, 16)       # b
    asm.li(5, 1)
    asm.sub(6, 5, 2)         # 1 - c
    asm.fence()
    for _ in range(repeat):
        asm.mul(7, 2, 3)     # c * a
        asm.mul(8, 6, 4)     # (1-c) * b
        asm.add(9, 7, 8)
    asm.li(10, OUT_ADDR)
    asm.store(9, 10, 0)
    asm.halt()
    return asm.assemble()


def build_ct_lookup(table_size=8):
    """Constant-time table lookup: touch every entry, arithmetically
    keep only the wanted one — ``sum(entry_i * (i == k))``.

    The equality mask is computed branchlessly via subtraction and a
    SLTU pair.
    """
    asm = Assembler()
    asm.li(1, TABLE_BASE)
    asm.li(2, A_BASE)
    asm.annotate("warm the table (hot-path call)")
    for index in range(0, 8 * table_size, 64):
        asm.load(4, 1, index)
    asm.load(3, 2, 0)        # k (the secret index)
    asm.li(4, 0)             # accumulator
    asm.fence()
    for index in range(table_size):
        asm.li(5, index)
        asm.xor(6, 5, 3)     # 0 iff index == k
        asm.sltu(7, 0, 6)    # 1 iff index != k
        asm.li(8, 1)
        asm.sub(8, 8, 7)     # mask: 1 iff index == k
        asm.load(9, 1, 8 * index)
        asm.mul(10, 9, 8)    # entry * mask
        asm.add(4, 4, 10)
    asm.li(11, OUT_ADDR)
    asm.store(4, 11, 0)
    asm.halt()
    return asm.assemble()
