"""Vectorized (numpy) batch evaluation of BSAES last-round planes.

The Section V-A3 attacker must search up to 65,536 plaintexts per
targeted intermediate value.  Computing its *own* planes for candidate
plaintexts is pure attacker-side work (it knows its own key), so we
evaluate it in bulk; every candidate still costs one oracle query
against the victim.  Differentially tested against
:func:`repro.crypto.bsaes.last_round_planes`.
"""

import numpy as np

from repro.crypto.gf import SBOX, xtime
from repro.crypto.keyschedule import expand_key

_SBOX = np.array(SBOX, dtype=np.uint8)
_XTIME = np.array([xtime(i) for i in range(256)], dtype=np.uint8)

# Column-major ShiftRows permutation: out[4c+r] = in[4((c+r)%4)+r].
_SHIFT_ROWS = np.array([4 * ((c + r) % 4) + r
                        for c in range(4) for r in range(4)])

# Bit-plane packing: plane b, bit i = bit b of byte i.
_PLANE_WEIGHTS = (np.uint16(1) << np.arange(16, dtype=np.uint16))


def _mix_columns_batch(state):
    """MixColumns over a (N, 16) uint8 state array."""
    out = np.empty_like(state)
    for c in range(4):
        col = state[:, 4 * c:4 * c + 4]
        a0, a1, a2, a3 = (col[:, 0], col[:, 1], col[:, 2], col[:, 3])
        x0, x1, x2, x3 = (_XTIME[a0], _XTIME[a1], _XTIME[a2], _XTIME[a3])
        out[:, 4 * c + 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
        out[:, 4 * c + 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
        out[:, 4 * c + 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
        out[:, 4 * c + 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
    return out


def _planes_batch(state):
    """Pack (N, 16) states into (N, 8) uint16 plane arrays."""
    planes = np.zeros((state.shape[0], 8), dtype=np.uint16)
    for bit in range(8):
        bits = ((state >> bit) & 1).astype(np.uint16)
        planes[:, bit] = bits @ _PLANE_WEIGHTS
    return planes


def batch_last_round_planes(key, plaintexts):
    """Final-round SubBytes planes for many plaintexts.

    ``plaintexts`` is an (N, 16) uint8 array; returns an (N, 8) uint16
    array of plane values (the eight spilled stack slots per call).
    """
    plaintexts = np.asarray(plaintexts, dtype=np.uint8)
    if plaintexts.ndim != 2 or plaintexts.shape[1] != 16:
        raise ValueError("plaintexts must have shape (N, 16)")
    round_keys = [np.frombuffer(rk, dtype=np.uint8)
                  for rk in expand_key(key)]
    state = plaintexts ^ round_keys[0]
    for round_index in range(1, 10):
        state = _SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state = _mix_columns_batch(state)
        state = state ^ round_keys[round_index]
    state = _SBOX[state]
    return _planes_batch(state)


def random_plaintexts(count, seed):
    """Deterministic candidate plaintexts for the attacker's search."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(count, 16), dtype=np.uint8)
