"""Bitslice AES-128 ("BSAES", Section V-A3's victim).

Bitsliced AES stores the 16-byte state as eight 16-bit *bit-planes*:
plane ``b`` holds bit ``b`` of every state byte.  Byte substitution is
computed as a fixed sequence of plane operations ("a series of
exclusive-or operations on the current AES state"), which needs more
intermediates than x86 has registers — so the eight output planes of
each SubBytes stage are **spilled to the stack**.  Those spilled 16-bit
values are exactly the "eight locations storing intermediate values
that can be used to reconstruct the AES state after byte substitution"
that the paper's silent-store attack targets.

This module provides:

* plane packing/unpacking (``to_planes`` / ``from_planes``);
* ``encrypt_with_trace`` — functionally identical to the reference AES
  (differentially tested), additionally returning the per-round spilled
  planes, most importantly the final round's;
* ``recover_key_from_planes`` — the paper's reconstruction: planes →
  post-SubBytes state → last round key (via the known ciphertext) →
  original key (via the invertible key schedule).

Constant-time note: the S-box is evaluated through fixed-structure
field arithmetic (``x^254`` + affine), with no secret-dependent
branches or lookups — the implementation is "constant time" in the
sense the paper assumes, which is precisely what silent stores break.
"""

from repro.crypto import aes
from repro.crypto.gf import SBOX
from repro.crypto.keyschedule import expand_key, invert_key_schedule

NUM_PLANES = 8
STATE_BYTES = 16


def to_planes(state):
    """Pack 16 state bytes into 8 bit-planes (16 bits each)."""
    if len(state) != STATE_BYTES:
        raise ValueError("state must be 16 bytes")
    planes = [0] * NUM_PLANES
    for index, byte in enumerate(state):
        for bit in range(NUM_PLANES):
            planes[bit] |= ((byte >> bit) & 1) << index
    return planes


def from_planes(planes):
    """Unpack 8 bit-planes back into 16 state bytes."""
    if len(planes) != NUM_PLANES:
        raise ValueError("need 8 planes")
    state = bytearray(STATE_BYTES)
    for index in range(STATE_BYTES):
        byte = 0
        for bit in range(NUM_PLANES):
            byte |= ((planes[bit] >> index) & 1) << bit
        state[index] = byte
    return bytes(state)


def _sbox_constant_time(byte):
    """The modeled victim evaluates the S-box via a fixed sequence of
    field operations (inverse + affine — no secret-indexed lookup); the
    host model reads the identical mapping from the precomputed table
    for speed.  ``SBOX`` is itself built from that arithmetic in
    :mod:`repro.crypto.gf`."""
    return SBOX[byte]


def _sub_bytes_bitsliced(state):
    """SubBytes producing the state *and* its spilled planes."""
    substituted = bytes(_sbox_constant_time(b) for b in state)
    return substituted, to_planes(substituted)


def encrypt_with_trace(key, plaintext):
    """Encrypt one block; returns ``(ciphertext, spilled_planes)``.

    ``spilled_planes`` is a list of 10 entries (one per round); each is
    the 8-tuple of 16-bit plane values written to the stack by that
    round's byte-substitution stage.  Entry ``[-1]`` is what the
    silent-store attack reads back.
    """
    round_keys = expand_key(key)
    state = bytes(s ^ k for s, k in zip(plaintext, round_keys[0]))
    spilled = []
    for round_index in range(1, 10):
        state, planes = _sub_bytes_bitsliced(state)
        spilled.append(tuple(planes))
        state = aes.shift_rows(state)
        state = aes._mix_columns(state)
        state = bytes(s ^ k for s, k in zip(state,
                                            round_keys[round_index]))
    state, planes = _sub_bytes_bitsliced(state)
    spilled.append(tuple(planes))
    state = aes.shift_rows(state)
    ciphertext = bytes(s ^ k for s, k in zip(state, round_keys[10]))
    return ciphertext, spilled


def last_round_planes(key, plaintext):
    """Just the final SubBytes planes (the eight attacked stack slots)."""
    _ciphertext, spilled = encrypt_with_trace(key, plaintext)
    return spilled[-1]


def recover_key_from_planes(planes, ciphertext):
    """Section V-A3's reconstruction, given the leaked planes.

    ``state = from_planes(planes)`` is the post-SubBytes state of the
    final round; the final round is ``ciphertext = ShiftRows(state) ^
    rk10``, so ``rk10 = ciphertext ^ ShiftRows(state)``; inverting the
    key schedule yields the victim's key.
    """
    state = from_planes(list(planes))
    shifted = aes.shift_rows(state)
    rk10 = bytes(c ^ s for c, s in zip(ciphertext, shifted))
    return invert_key_schedule(rk10)
