"""Crypto victim: reference AES-128 and the bitsliced (BSAES) variant."""

from repro.crypto.aes import decrypt_block, encrypt_block, shift_rows
from repro.crypto.bsaes import (
    encrypt_with_trace, from_planes, last_round_planes,
    recover_key_from_planes, to_planes,
)
from repro.crypto.ct_primitives import (
    build_ct_compare, build_ct_lookup, build_ct_select,
)
from repro.crypto.gf import INV_SBOX, SBOX, gf_inv, gf_mul, gf_pow
from repro.crypto.keyschedule import RCON, expand_key, invert_key_schedule

__all__ = [
    "decrypt_block", "encrypt_block", "shift_rows", "encrypt_with_trace",
    "from_planes", "last_round_planes", "recover_key_from_planes",
    "to_planes", "build_ct_compare", "build_ct_lookup",
    "build_ct_select", "INV_SBOX", "SBOX", "gf_inv", "gf_mul", "gf_pow",
    "RCON", "expand_key", "invert_key_schedule",
]
