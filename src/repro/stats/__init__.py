"""Simulator observability: mergeable metrics for every layer.

* :mod:`repro.stats.core` — :class:`SimStats` (counters, high-water
  marks, histograms) with fixed merge semantics, the disabled-mode
  :data:`NULL_STATS`, and :func:`merge_all` for batch aggregation.
* :mod:`repro.stats.report` — the human-readable run-report renderer
  behind ``python -m repro stats``.

See DESIGN.md ("The stats layer") for the counter catalogue and the
disabled-mode guarantees.
"""

from repro.stats.core import (
    Histogram, NULL_STATS, NullStats, SimStats, merge_all,
)
from repro.stats.report import extract_stats_blocks, render_stats

__all__ = [
    "Histogram", "NULL_STATS", "NullStats", "SimStats",
    "extract_stats_blocks", "merge_all", "render_stats",
]
