"""Render :class:`~repro.stats.core.SimStats` records for humans.

The ``python -m repro stats`` CLI uses this to turn the ``stats``
blocks persisted in ``benchmarks/results/*.json`` (and the ``metrics``
field of any :class:`~repro.engine.session.RunResult` JSON) into the
kind of run report hardware simulators print: grouped counters,
high-water marks, and sparkline histograms.
"""

from repro.stats.core import SimStats

_BARS = " ▁▂▃▄▅▆▇█"


def _group_of(name):
    """Counters are namespaced ``group.sub...``; report by top group."""
    return name.split(".", 1)[0] if "." in name else "(misc)"


def sparkline(hist, width=32):
    """A compact unicode rendering of a histogram's shape."""
    if not hist.bins:
        return ""
    lo = min(hist.bins)
    hi = max(hist.bins)
    span = max(1, hi + hist.bin_width - lo)
    buckets = [0] * width
    for bin_lo, count in hist.bins.items():
        slot = min(width - 1, (bin_lo - lo) * width // span)
        buckets[slot] += count
    top = max(buckets)
    return "".join(_BARS[(count * (len(_BARS) - 1) + top - 1) // top
                         if count else 0]
                   for count in buckets)


def render_stats(stats, title=None, indent=""):
    """Multi-line report for one stats record (or ``as_dict`` payload)."""
    if isinstance(stats, dict):
        stats = SimStats.from_dict(stats)
    lines = []
    if title:
        lines.append(f"{indent}== {title} ==")
    if not stats:
        lines.append(f"{indent}  (no recorded metrics)")
        return "\n".join(lines)

    groups = {}
    for name in stats.counters:
        groups.setdefault(_group_of(name), []).append(("counter", name))
    for name in stats.maxima:
        groups.setdefault(_group_of(name), []).append(("peak", name))
    for group in sorted(groups):
        lines.append(f"{indent}  [{group}]")
        for kind, name in sorted(groups[group], key=lambda item: item[1]):
            if kind == "counter":
                lines.append(f"{indent}    {name:<44s} "
                             f"{stats.counters[name]:>12}")
            else:
                lines.append(f"{indent}    {name:<44s} "
                             f"{stats.maxima[name]:>12}  (peak)")
    if stats.histograms:
        lines.append(f"{indent}  [histograms]")
        for name in sorted(stats.histograms):
            hist = stats.histograms[name]
            lines.append(
                f"{indent}    {name:<44s} n={hist.count:<7d} "
                f"min={hist.min} mean={hist.mean:.1f} max={hist.max}")
            shape = sparkline(hist)
            if shape:
                lines.append(f"{indent}      |{shape}|")
    return "\n".join(lines)


def _is_record(obj):
    """Does ``obj`` look like a non-empty ``SimStats.as_dict`` payload?"""
    return isinstance(obj, dict) and any(
        key in obj for key in ("counters", "maxima", "histograms"))


def extract_stats_blocks(payload, source=""):
    """Find stats records inside a loaded results JSON payload.

    Recognizes a serialized :class:`RunResult` (``metrics`` field —
    checked first, because a RunResult also carries a legacy ``stats``
    dict of plain core counters), a bench payload whose ``stats`` /
    ``engine_stats`` blocks hold one merged record or a ``{label:
    record}`` mapping, or a bare ``SimStats.as_dict`` payload.
    Returns ``[(label, dict)]``.
    """
    if not isinstance(payload, dict):
        return []
    if _is_record(payload.get("metrics")):
        label = payload.get("label") or source or "run"
        return [(label, payload["metrics"])]
    blocks = []
    for key in ("stats", "engine_stats"):
        block = payload.get(key)
        if _is_record(block):
            blocks.append((f"{source}:{key}" if source else key, block))
        elif isinstance(block, dict):
            blocks.extend(
                (f"{source}:{label}" if source else label, sub)
                for label, sub in sorted(block.items())
                if _is_record(sub))
    if blocks:
        return blocks
    if _is_record(payload):
        return [(source or "stats", payload)]
    return []
