"""Mergeable simulation metrics: counters, high-water marks, histograms.

Every distributional claim in the paper — the Figure 4/5 timing
deltas, the Figure 6 bsAES histogram, replay-trial convergence — is a
statement about *why* a run took the cycles it did.  :class:`SimStats`
is the one record the whole simulator writes into: the pipeline logs
per-stage occupancy and store-queue head-of-line stalls, the memory
hierarchy logs per-level hits/misses and miss-latency histograms, the
optimization plug-ins log their squash/prefetch/prediction outcomes,
and the engine logs trial bookkeeping.

Three value kinds with fixed merge semantics:

* **counters** — monotone event counts; merge by summing.
* **maxima** — high-water marks (peak ROB occupancy, workers seen);
  merge by taking the maximum.
* **histograms** — value distributions (:class:`Histogram`) with a
  per-name bin width; merge by summing per-bin counts.

A :class:`SimStats` is plain picklable data, so worker processes ship
it back inside each :class:`~repro.engine.session.RunResult` and the
parent merges trial records with :meth:`SimStats.merge` — merging is
associative and commutative, so a 4-worker fan-out aggregates to the
same record as a serial run.

Disabled mode: :data:`NULL_STATS` (a :class:`NullStats`) accepts every
recording call as a no-op, so instrumented code needs no conditionals
— though per-cycle hot loops additionally guard on :attr:`enabled` to
keep the disabled overhead to a single attribute test.
"""

import json


class Histogram:
    """Fixed-bin-width value histogram, mergeable and picklable.

    Bins are keyed by their lower edge (``(value // bin_width) *
    bin_width``); only occupied bins are stored, so wide-range
    latency distributions stay small.
    """

    __slots__ = ("bin_width", "bins", "count", "total", "min", "max")

    def __init__(self, bin_width=16):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.bins = {}
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def add(self, value, weight=1):
        bin_lo = (value // self.bin_width) * self.bin_width
        self.bins[bin_lo] = self.bins.get(bin_lo, 0) + weight
        self.count += weight
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Lower-edge of the bin holding the ``fraction`` quantile."""
        if not self.count:
            return None
        threshold = fraction * self.count
        seen = 0
        for bin_lo in sorted(self.bins):
            seen += self.bins[bin_lo]
            if seen >= threshold:
                return bin_lo
        return max(self.bins)

    def merge(self, other):
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"cannot merge histograms with bin widths "
                f"{self.bin_width} and {other.bin_width}")
        for bin_lo, weight in other.bins.items():
            self.bins[bin_lo] = self.bins.get(bin_lo, 0) + weight
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def as_dict(self):
        """JSON-able form; bin keys become strings, sorted for
        deterministic serialization."""
        return {
            "bin_width": self.bin_width,
            "bins": {str(bin_lo): self.bins[bin_lo]
                     for bin_lo in sorted(self.bins)},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data):
        hist = cls(bin_width=data["bin_width"])
        hist.bins = {int(bin_lo): count
                     for bin_lo, count in data["bins"].items()}
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist

    def __eq__(self, other):
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        return (f"Histogram(bin_width={self.bin_width}, "
                f"count={self.count}, min={self.min}, max={self.max})")


class SimStats:
    """One mergeable metrics record (see module docstring)."""

    __slots__ = ("counters", "maxima", "histograms")

    #: Recording calls are live; hot loops may skip work when False.
    enabled = True

    def __init__(self):
        self.counters = {}
        self.maxima = {}
        self.histograms = {}

    # -- recording -----------------------------------------------------

    def inc(self, name, amount=1):
        """Add ``amount`` to counter ``name`` (merge: sum)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def peak(self, name, value):
        """Raise high-water mark ``name`` to ``value`` (merge: max)."""
        if value > self.maxima.get(name, value - 1):
            self.maxima[name] = value

    def observe(self, name, value, bin_width=16):
        """Add ``value`` to histogram ``name`` (merge: per-bin sum).

        ``bin_width`` only applies when the histogram is first created.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bin_width=bin_width)
        hist.add(value)

    # -- reading -------------------------------------------------------

    def get(self, name, default=0):
        """Counter value (falling back to a high-water mark)."""
        if name in self.counters:
            return self.counters[name]
        return self.maxima.get(name, default)

    def histogram(self, name):
        return self.histograms.get(name)

    def __bool__(self):
        return bool(self.counters or self.maxima or self.histograms)

    # -- merging -------------------------------------------------------

    def merge(self, other):
        """Fold ``other`` into this record; returns ``self``.

        ``other`` may be a :class:`SimStats`, a :meth:`as_dict` payload,
        or None/empty (no-op) — so callers can merge
        ``RunResult.metrics`` dicts directly.
        """
        if not other:
            return self
        if isinstance(other, dict):
            other = SimStats.from_dict(other)
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, value in other.maxima.items():
            if value > self.maxima.get(name, value - 1):
                self.maxima[name] = value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(
                    hist.as_dict())
            else:
                mine.merge(hist)
        return self

    # -- serialization -------------------------------------------------

    def as_dict(self):
        """Deterministic JSON-able form (sorted keys throughout)."""
        data = {}
        if self.counters:
            data["counters"] = {name: self.counters[name]
                                for name in sorted(self.counters)}
        if self.maxima:
            data["maxima"] = {name: self.maxima[name]
                              for name in sorted(self.maxima)}
        if self.histograms:
            data["histograms"] = {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)}
        return data

    @classmethod
    def from_dict(cls, data):
        stats = cls()
        if not data:
            return stats
        stats.counters.update(data.get("counters", {}))
        stats.maxima.update(data.get("maxima", {}))
        for name, payload in data.get("histograms", {}).items():
            stats.histograms[name] = Histogram.from_dict(payload)
        return stats

    def to_json(self, **kwargs):
        return json.dumps(self.as_dict(), sort_keys=True, **kwargs)

    def __eq__(self, other):
        if isinstance(other, dict):
            return self.as_dict() == other
        if not isinstance(other, SimStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        return (f"SimStats(counters={len(self.counters)}, "
                f"maxima={len(self.maxima)}, "
                f"histograms={len(self.histograms)})")


class NullStats(SimStats):
    """Disabled-mode stats: every recording call is a no-op.

    Shares the :class:`SimStats` read/merge/serialize interface (it is
    always empty), so instrumented code never branches on the mode —
    except per-cycle hot loops, which check :attr:`enabled` once.
    """

    __slots__ = ()

    enabled = False

    def inc(self, name, amount=1):
        pass

    def peak(self, name, value):
        pass

    def observe(self, name, value, bin_width=16):
        pass

    def merge(self, other):
        return self


#: Shared disabled-mode instance.  Recording is a no-op, so one global
#: record is safe to hand to every component.
NULL_STATS = NullStats()


def merge_all(records):
    """Merge an iterable of stats records / ``as_dict`` payloads.

    The canonical batch aggregation: ``merge_all(result.metrics for
    result in run_batch(specs))``.  Merging is associative and
    commutative, so the outcome is independent of trial scheduling.
    """
    merged = SimStats()
    for record in records:
        merged.merge(record)
    return merged
