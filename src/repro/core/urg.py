"""Universal read gadget analysis — Section IV-D4.

The paper defines a URG as an optimization taking data memory and
attacker-controlled state ``c`` as input, producing a distinct
observable outcome as a function of ``data_memory[f(c)]`` for an
attacker-known ``f``.  This module computes, for the 2-level and 3-level
indirect-memory prefetchers, the address *reach* of each dereference
level given a sandbox ``[a, b)`` — reproducing the analysis that the
3-level IMP forms a URG while the 2-level variant only reaches
``[b, b + Δ)`` past the sandbox.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class AddressRange:
    """A half-open address interval ``[lo, hi)``."""

    lo: int
    hi: int

    def __contains__(self, addr):
        return self.lo <= addr < self.hi

    def covers(self, other):
        return self.lo <= other.lo and other.hi <= self.hi

    @property
    def size(self):
        return max(0, self.hi - self.lo)

    def __str__(self):
        return f"[{self.lo:#x}, {self.hi:#x})"


@dataclass
class URGAnalysis:
    """Result of analyzing one prefetcher variant."""

    levels: int
    #: Addresses whose *contents* each observable value reveals.
    revealed_ranges: list
    is_urg: bool
    notes: str


def analyze_imp(levels, sandbox, base_y, shift, delta_bytes,
                max_memory):
    """Analyze an IMP variant against a sandbox.

    Parameters
    ----------
    levels:
        2 or 3 (the IMP variant).
    sandbox:
        :class:`AddressRange` ``[a, b)`` the attacker controls.
    base_y:
        Base address of the Y array (``&Y[0]``), inside the sandbox.
    shift:
        Element-size scale learned by the prefetcher.
    delta_bytes:
        Prefetch lookahead in bytes (``Δ * stride``).
    max_memory:
        Top of physical memory.

    Returns a :class:`URGAnalysis`.  The reasoning follows Section
    IV-D4 exactly:

    * The observable ``z = Z[i + Δ]`` reveals memory contents only in
      ``[a, b + Δ)`` — the attacker's own data plus ``Δ`` past the end.
    * The observable ``y = Y[z]`` reveals ``data_memory[base_y +
      (z << shift)]`` for attacker-chosen ``z`` (the attacker controls
      the contents of ``[a, b)``, so ``z`` is arbitrary), i.e. all of
      memory from ``&Y[0]`` upward.
    """
    if levels not in (2, 3):
        raise ValueError("IMP has 2 or 3 levels")
    # Level-1 observable (z): contents of nearby, mostly-attacker memory.
    z_reach = AddressRange(sandbox.lo, min(max_memory,
                                           sandbox.hi + delta_bytes))
    revealed = [z_reach]
    notes = [f"z reveals contents of {z_reach} "
             f"(victim-only portion: [{sandbox.hi:#x}, {z_reach.hi:#x}))"]
    is_urg = False
    if levels == 3:
        # Level-2 observable (y): contents of base_y + (z << shift) for
        # any attacker-chosen z -> all memory above &Y[0].
        y_reach = AddressRange(base_y, max_memory)
        revealed.append(y_reach)
        victim_beyond_sandbox = AddressRange(sandbox.hi, max_memory)
        is_urg = y_reach.covers(victim_beyond_sandbox)
        notes.append(f"y reveals contents of {y_reach} "
                     "(attacker-chosen address: universal read gadget)")
    else:
        notes.append("no second dereference: victim leakage limited to "
                     f"[{sandbox.hi:#x}, {z_reach.hi:#x})")
    return URGAnalysis(levels=levels, revealed_ranges=revealed,
                       is_urg=is_urg, notes="; ".join(notes))


def victim_bytes_reachable(analysis, sandbox, max_memory):
    """Total victim (out-of-sandbox) bytes the variant can reveal."""
    total = 0
    victim = AddressRange(sandbox.hi, max_memory)
    for reach in analysis.revealed_ranges:
        lo = max(reach.lo, victim.lo)
        hi = min(reach.hi, victim.hi)
        total = max(total, hi - lo)
    return max(0, total)
