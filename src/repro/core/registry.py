"""Registry of the studied optimization classes.

Binds together, per optimization: the acronym used in Tables I/II, the
representative MLD, the pipeline plug-in implementing it, and the
*leakage profile* — which rows of the leakage landscape (Table I) the
optimization newly endangers and how.
"""

from dataclasses import dataclass, field

from repro.core import descriptors
from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.optimizations.dmp import IndirectMemoryPrefetcher
from repro.optimizations.pipeline_compression import OperandPackingPlugin
from repro.optimizations.register_file_compression import (
    RegisterFileCompressionPlugin,
)
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.optimizations.value_prediction import ValuePredictionPlugin

# Markers used in Table I.
SAFE = "S"
UNSAFE = "U"
UNSAFE_DIFFERENT = "U'"
NO_CHANGE = "-"

#: Rows of Table I, in the paper's order.  Each is (section, data type).
TABLE_I_ROWS = (
    ("operands", "int_simple"),
    ("operands", "int_mul"),
    ("operands", "int_div"),
    ("operands", "fp"),
    ("result", "int_simple"),
    ("result", "int_mul"),
    ("result", "int_div"),
    ("result", "fp"),
    ("addr", "load"),
    ("addr", "store"),
    ("data", "load"),
    ("data", "store"),
    ("control_flow", "control_flow"),
    ("at_rest", "register_file"),
    ("at_rest", "data_memory"),
)

#: The Baseline column: what known attacks already leak (Section II-1).
#: Register file / data memory carry the paper's ‡ caveat: unsafe only
#: when combined with a speculative-execution gadget.
BASELINE_COLUMN = {
    ("operands", "int_simple"): SAFE,
    ("operands", "int_mul"): SAFE,
    ("operands", "int_div"): UNSAFE,       # early-exit division [44]
    ("operands", "fp"): UNSAFE,            # subnormal timing [37]
    ("result", "int_simple"): SAFE,
    ("result", "int_mul"): SAFE,
    ("result", "int_div"): SAFE,
    ("result", "fp"): SAFE,
    ("addr", "load"): UNSAFE,              # cache attacks [49]
    ("addr", "store"): UNSAFE,             # cache attacks [49]
    ("data", "load"): SAFE,
    ("data", "store"): SAFE,
    ("control_flow", "control_flow"): UNSAFE,  # branch predictors [56]
    ("at_rest", "register_file"): SAFE,
    ("at_rest", "data_memory"): SAFE,
}


@dataclass(frozen=True)
class OptimizationDescriptor:
    """Everything the analyses need to know about one optimization class."""

    acronym: str
    name: str
    paper_section: str
    mld: object
    plugin_class: object
    #: Table I column: row -> marker; rows absent mean NO_CHANGE.
    leakage_profile: dict = field(default_factory=dict)

    def column(self):
        """The full Table I column for this optimization."""
        return {row: self.leakage_profile.get(row, NO_CHANGE)
                for row in TABLE_I_ROWS}


OPTIMIZATIONS = {
    "CS": OptimizationDescriptor(
        acronym="CS",
        name="computation simplification",
        paper_section="IV-B1",
        mld=descriptors.mld_computation_simplification,
        plugin_class=ComputationSimplificationPlugin,
        leakage_profile={
            ("operands", "int_simple"): UNSAFE,
            ("operands", "int_mul"): UNSAFE,
            ("operands", "int_div"): UNSAFE_DIFFERENT,
            ("operands", "fp"): UNSAFE_DIFFERENT,
        }),
    "PC": OptimizationDescriptor(
        acronym="PC",
        name="pipeline compression",
        paper_section="IV-B2",
        mld=descriptors.mld_operand_packing,
        plugin_class=OperandPackingPlugin,
        leakage_profile={
            ("operands", "int_simple"): UNSAFE,
            ("operands", "int_mul"): UNSAFE,
            ("operands", "int_div"): UNSAFE_DIFFERENT,
            ("at_rest", "register_file"): UNSAFE,
        }),
    "SS": OptimizationDescriptor(
        acronym="SS",
        name="silent stores",
        paper_section="IV-C1",
        mld=descriptors.mld_silent_stores,
        plugin_class=SilentStorePlugin,
        leakage_profile={
            ("data", "store"): UNSAFE,
            ("at_rest", "data_memory"): UNSAFE,
        }),
    "CR": OptimizationDescriptor(
        acronym="CR",
        name="computation reuse",
        paper_section="IV-C2",
        mld=descriptors.mld_instruction_reuse,
        plugin_class=ComputationReusePlugin,
        leakage_profile={
            ("operands", "int_simple"): UNSAFE,
            ("operands", "int_mul"): UNSAFE,
            ("operands", "int_div"): UNSAFE_DIFFERENT,
            ("operands", "fp"): UNSAFE_DIFFERENT,
        }),
    "VP": OptimizationDescriptor(
        acronym="VP",
        name="value prediction",
        paper_section="IV-C3",
        mld=descriptors.mld_v_prediction,
        plugin_class=ValuePredictionPlugin,
        leakage_profile={
            ("result", "int_simple"): UNSAFE,
            ("result", "int_mul"): UNSAFE,
            ("result", "int_div"): UNSAFE,
            ("result", "fp"): UNSAFE,
            ("data", "load"): UNSAFE,
        }),
    "RFC": OptimizationDescriptor(
        acronym="RFC",
        name="register-file compression",
        paper_section="IV-D1",
        mld=descriptors.mld_rf_compression,
        plugin_class=RegisterFileCompressionPlugin,
        leakage_profile={
            ("result", "int_simple"): UNSAFE,
            ("result", "int_mul"): UNSAFE,
            ("result", "int_div"): UNSAFE,
            ("result", "fp"): UNSAFE,
            ("at_rest", "register_file"): UNSAFE,
        }),
    "DMP": OptimizationDescriptor(
        acronym="DMP",
        name="data memory-dependent prefetching",
        paper_section="IV-D2",
        mld=descriptors.mld_im3l_prefetcher,
        plugin_class=IndirectMemoryPrefetcher,
        leakage_profile={
            ("at_rest", "data_memory"): UNSAFE,
        }),
}

#: Column order in Table I.
COLUMN_ORDER = ("CS", "PC", "SS", "CR", "VP", "RFC", "DMP")
