"""The example MLDs of Figures 2 and 3, made executable.

Each descriptor follows the paper's definition line-for-line; the
docstrings quote the figure it implements.  ``Uarch`` inputs are
lightweight stand-ins (dicts, :class:`repro.memory.Cache` instances,
simple tables) so the descriptors can be evaluated and property-tested
directly, and also pointed at the live structures inside the simulator.
"""

from repro.isa.bits import msb_index
from repro.core.mld import InputKind, MLD, MLDInput, concat_outcomes

# ---------------------------------------------------------------------------
# Figure 2: MLDs for structures covered by prior work
# ---------------------------------------------------------------------------


def _single_cycle_alu(i1):
    """Example 1: a single-cycle ALU produces the result one cycle later
    for any operand assignment — a single outcome, i.e. Safe."""
    del i1
    return 0


mld_single_cycle_alu = MLD(
    "single_cycle_alu",
    [MLDInput(InputKind.INST, "i1")],
    _single_cycle_alu,
    "Single-cycle addition: unconditionally one outcome (no transmitter).")


def _zero_skip_mul(i1):
    """Example 2: the multiply skips (0 cycles) iff any operand is 0."""
    return int(any(value == 0 for value in i1.args))


mld_zero_skip_mul = MLD(
    "zero_skip_mul",
    [MLDInput(InputKind.INST, "i1")],
    _zero_skip_mul,
    "Zero-skip multiply: two timing outcomes keyed on operand values.")


def _cache_rand(i1, cache):
    """Example 3: cache without shared memory, random replacement.

    ``set(i1.addr.v) + 1`` if the address is uncached, else 0 — one
    outcome per set index plus one for a hit.
    """
    if cache.contains(i1.addr):
        return 0
    return cache.set_index(i1.addr) + 1


mld_cache_rand = MLD(
    "cache_rand",
    [MLDInput(InputKind.INST, "i1"), MLDInput(InputKind.UARCH, "cache")],
    _cache_rand,
    "Random-replacement cache: num_sets + 1 outcomes.")


# ---------------------------------------------------------------------------
# Figure 3: MLDs for the optimization classes the paper studies
# ---------------------------------------------------------------------------

NARROW_BITS = 16


def _operand_packing(i1, i2):
    """Example 4: two ops pack iff all four operands have msb < 16."""
    operands = list(i1.args) + list(i2.args)
    return int(all(msb_index(value) < NARROW_BITS for value in operands))


mld_operand_packing = MLD(
    "operand_packing",
    [MLDInput(InputKind.INST, "i1"), MLDInput(InputKind.INST, "i2")],
    _operand_packing,
    "Operand packing: packs iff every operand of both ops is narrow.")


def _silent_stores(i1, data_memory):
    """Example 5: the store is silent iff its data equals memory."""
    return int(i1.data == data_memory[i1.addr])


mld_silent_stores = MLD(
    "silent_stores",
    [MLDInput(InputKind.INST, "i1"), MLDInput(InputKind.ARCH, "data_memory")],
    _silent_stores,
    "Silent stores: equality of in-flight store data with memory.")


def _instruction_reuse(i1, reuse_buffer):
    """Example 6: Sv-variant dynamic instruction reuse — hit iff every
    operand equals the memoized operand for this PC."""
    entry = reuse_buffer.get(i1.pc)
    if entry is None:
        return 0
    return int(all(value == memoized
                   for value, memoized in zip(i1.args, entry)))


mld_instruction_reuse = MLD(
    "instruction_reuse",
    [MLDInput(InputKind.INST, "i1"),
     MLDInput(InputKind.UARCH, "reuse_buffer")],
    _instruction_reuse,
    "Computation reuse (Sv): operand equality with the memoization table.")

#: Confidence domain used by the value-prediction MLD's concatenation.
VP_CONFIDENCE_DOMAIN = 8


def _v_prediction(i1, prediction_table):
    """Example 7: outcome = confidence || (prediction == result)."""
    entry = prediction_table.get(i1.pc, {"conf": 0, "prediction": None})
    match = int(entry["prediction"] == i1.dst)
    return concat_outcomes([(match, 2),
                            (entry["conf"], VP_CONFIDENCE_DOMAIN)])


mld_v_prediction = MLD(
    "v_prediction",
    [MLDInput(InputKind.INST, "i1"),
     MLDInput(InputKind.UARCH, "prediction_table")],
    _v_prediction,
    "Value prediction: confidence concatenated with predicted==resolved.")


def _rf_compression(register_file):
    """Example 8: 0/1-variant register-file compression — the outcome
    concatenates, per register, whether its value is <= 1."""
    pairs = [(int(value <= 1), 2) for value in register_file]
    return concat_outcomes(pairs)


mld_rf_compression = MLD(
    "rf_compression",
    [MLDInput(InputKind.ARCH, "register_file")],
    _rf_compression,
    "Register-file compression (0/1): one compressibility bit per register.")


def _cache_outcome(addr, cache):
    """``cache_h(.)``: the cache MLD taking a raw address (Fig. 3 caption)."""
    if cache.contains(addr):
        return 0
    return cache.set_index(addr) + 1


def _im3l_prefetcher(imp, cache, data_memory):
    """Example 9: 3-level indirect-memory prefetching for X[Y[Z[i]]].

    ``imp`` carries ``baseZ``/``baseY``/``baseX``, ``start`` (= i + Δ)
    and ``shift`` (element-size scale).  The outcome concatenates the
    cache outcomes of the three chained prefetch addresses.
    """
    shift = imp.get("shift", 3)
    s = imp["start"]
    z_addr = imp["baseZ"] + (s << shift)
    z = data_memory[z_addr]
    y_addr = imp["baseY"] + (z << shift)
    y = data_memory[y_addr]
    x_addr = imp["baseX"] + (y << shift)
    domain = cache.num_sets + 1
    return concat_outcomes([
        (_cache_outcome(z_addr, cache), domain),
        (_cache_outcome(y_addr, cache), domain),
        (_cache_outcome(x_addr, cache), domain),
    ])


mld_im3l_prefetcher = MLD(
    "im3l_prefetcher",
    [MLDInput(InputKind.UARCH, "imp"), MLDInput(InputKind.UARCH, "cache"),
     MLDInput(InputKind.ARCH, "data_memory")],
    _im3l_prefetcher,
    "3-level IMP: three chained cache outcomes, each keyed on memory data.")


def _im2l_prefetcher(imp, cache, data_memory):
    """The 2-level variant (Section IV-D4): no dereference into X."""
    shift = imp.get("shift", 3)
    s = imp["start"]
    z_addr = imp["baseZ"] + (s << shift)
    z = data_memory[z_addr]
    y_addr = imp["baseY"] + (z << shift)
    domain = cache.num_sets + 1
    return concat_outcomes([
        (_cache_outcome(z_addr, cache), domain),
        (_cache_outcome(y_addr, cache), domain),
    ])


mld_im2l_prefetcher = MLD(
    "im2l_prefetcher",
    [MLDInput(InputKind.UARCH, "imp"), MLDInput(InputKind.UARCH, "cache"),
     MLDInput(InputKind.ARCH, "data_memory")],
    _im2l_prefetcher,
    "2-level IMP: two chained cache outcomes (not a URG; Section IV-D4).")


#: Computation simplification's representative MLD is the zero-skip
#: multiply of Figure 2; re-exported under the class's name for the
#: registry.
mld_computation_simplification = mld_zero_skip_mul

FIGURE2_MLDS = (mld_single_cycle_alu, mld_zero_skip_mul, mld_cache_rand)
FIGURE3_MLDS = (mld_operand_packing, mld_silent_stores,
                mld_instruction_reuse, mld_v_prediction,
                mld_rf_compression, mld_im3l_prefetcher)
