"""Optimization classification by MLD signature — Table II of the paper.

The classification is *derived* from each optimization's MLD input
kinds, exactly as the paper organizes Section IV:

* only ``Inst`` inputs → **stateless instruction-centric** (IV-B);
* ``Inst`` plus ``Uarch``/``Arch`` → **stateful instruction-centric**
  (IV-C), sub-classified by which state kind participates;
* no ``Inst`` input at all → **memory-centric** (IV-D): the transmitter
  triggers purely as a function of data at rest.
"""

import enum

from repro.core.mld import InputKind
from repro.core.registry import COLUMN_ORDER, OPTIMIZATIONS


class OptimizationClass(enum.Enum):
    STATELESS_INSTRUCTION = "stateless instruction-centric (IV-B)"
    STATEFUL_INSTRUCTION_UARCH = "stateful instruction-centric, Uarch (IV-C)"
    STATEFUL_INSTRUCTION_ARCH = "stateful instruction-centric, Arch (IV-C)"
    MEMORY_CENTRIC = "memory-centric (IV-D)"


def classify_mld(mld):
    """Classify a single MLD by its declared input kinds."""
    kinds = set(mld.input_kinds)
    if InputKind.INST not in kinds:
        return OptimizationClass.MEMORY_CENTRIC
    if InputKind.UARCH in kinds:
        return OptimizationClass.STATEFUL_INSTRUCTION_UARCH
    if InputKind.ARCH in kinds:
        return OptimizationClass.STATEFUL_INSTRUCTION_ARCH
    return OptimizationClass.STATELESS_INSTRUCTION


def generate_table_ii():
    """Table II: ``acronym -> OptimizationClass``, derived from MLDs."""
    return {acronym: classify_mld(OPTIMIZATIONS[acronym].mld)
            for acronym in COLUMN_ORDER}


#: The paper's Table II, for verification.
PAPER_TABLE_II = {
    "CS": OptimizationClass.STATELESS_INSTRUCTION,
    "PC": OptimizationClass.STATELESS_INSTRUCTION,
    "SS": OptimizationClass.STATEFUL_INSTRUCTION_ARCH,
    "CR": OptimizationClass.STATEFUL_INSTRUCTION_UARCH,
    "VP": OptimizationClass.STATEFUL_INSTRUCTION_UARCH,
    "RFC": OptimizationClass.MEMORY_CENTRIC,
    "DMP": OptimizationClass.MEMORY_CENTRIC,
}


def render_table():
    """ASCII rendering of Table II."""
    table = generate_table_ii()
    lines = ["Optimization classification by MLD signature", "-" * 60]
    for acronym in COLUMN_ORDER:
        descriptor = OPTIMIZATIONS[acronym]
        lines.append(f"{acronym:5s} {descriptor.name:35s} "
                     f"{table[acronym].value}")
    return "\n".join(lines)
