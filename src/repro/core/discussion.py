"""Continuous / trace-based optimization analysis (Section VI-B).

The paper's discussion-level finding: runtime optimizers (trace caches,
continuous optimization of in-flight micro-ops) create *novel* privacy
implications only in specific circumstances —

* **constant folding** keyed on producer opcodes/immediates leaks
  nothing beyond program control flow, which known attacks already
  reveal (Table I's Baseline marks control flow Unsafe);
* **strength reduction** keyed on a specific *operand value* (e.g.
  replacing a multiply by a power-of-two with a shift) manifests beyond
  control flow: it changes arithmetic-port usage as a function of data,
  the same channel as port-contention attacks.

Both are modeled as MLDs so the distinction is checkable: over a domain
with fixed control flow, the folding MLD has one outcome per *static
trace*, the strength-reduction MLD has one outcome per *operand class*.
"""

from repro.core.mld import InputKind, MLD, MLDInput


def _constant_folding(trace):
    """Outcome = the folded trace shape, a function of opcodes and
    immediates only (all public under constant-time rules).

    ``trace`` is a Uarch view: a tuple of (opcode, has_constant_inputs)
    pairs describing the hot region the optimizer rewrote.
    """
    folded = tuple(op for op, constant in trace if not constant)
    return hash(folded) % (1 << 30)


mld_constant_folding = MLD(
    "continuous_constant_folding",
    [MLDInput(InputKind.UARCH, "trace")],
    _constant_folding,
    "Constant folding of a hot trace: outcome keyed on static opcodes "
    "and constant-ness, i.e. control-flow-class information only.")


def _strength_reduction(i1):
    """Outcome = whether the optimizer rewrote this multiply to a
    shift, a function of the operand *value* (power of two)."""
    operand = i1.args[1]
    return int(operand != 0 and (operand & (operand - 1)) == 0)


mld_strength_reduction = MLD(
    "continuous_strength_reduction",
    [MLDInput(InputKind.INST, "i1")],
    _strength_reduction,
    "Strength reduction by operand value: mul-by-power-of-two becomes "
    "a shift — a data transmitter through execution-port usage.")


def folding_is_control_flow_only(traces_with_same_static_shape):
    """True when constant folding cannot distinguish the given traces.

    Pass dynamic traces that share one static shape (same opcodes,
    same constant-ness) but carry different *data*: the folding MLD
    must map them all to a single outcome.
    """
    outcomes = {mld_constant_folding(trace)
                for trace in traces_with_same_static_shape}
    return len(outcomes) == 1
