"""Security lattice and preconditioning analysis (Section IV-A2).

The paper interprets MLD inputs through the lattice ``L ⊑ C ⊑ H``
(public ⊑ attacker-controlled ⊑ private).  What an attacker learns from
an observable outcome depends on which inputs it controls: this module
computes the *induced partition* on the private inputs once public and
attacker-controlled inputs are fixed — the formal version of the
zero-skip-multiply discussion in Section IV-A2 ("if the public operand
is 0, that the skip occurs is purely a function of public information").
"""

import enum
import math


class Label(enum.Enum):
    """Security labels, ordered ``PUBLIC ⊑ CONTROLLED ⊑ PRIVATE``."""

    PUBLIC = "L"
    CONTROLLED = "C"
    PRIVATE = "H"


_ORDER = {Label.PUBLIC: 0, Label.CONTROLLED: 1, Label.PRIVATE: 2}


def flows_to(source, sink):
    """May information labeled ``source`` flow to a ``sink`` context?"""
    return _ORDER[source] <= _ORDER[sink]


def join(a, b):
    """Least upper bound of two labels."""
    return a if _ORDER[a] >= _ORDER[b] else b


def induced_partition(outcome_fn, private_domain, fixed_inputs):
    """Partition the private domain by observable outcome.

    ``outcome_fn`` takes ``(private_value, *fixed_inputs)``.  Returns
    ``outcome_id -> sorted list of private values``.  A partition with
    one block means the attacker learns nothing about the private value
    under this preconditioning; ``len(private_domain)`` singleton blocks
    mean it is fully revealed by one observation.
    """
    blocks = {}
    for private_value in private_domain:
        outcome = outcome_fn(private_value, *fixed_inputs)
        blocks.setdefault(outcome, []).append(private_value)
    return {k: sorted(v) for k, v in blocks.items()}


def leakage_bits(outcome_fn, private_domain, fixed_inputs):
    """Shannon information (bits) one observation reveals, assuming the
    private value is uniform over ``private_domain``."""
    blocks = induced_partition(outcome_fn, private_domain, fixed_inputs)
    total = sum(len(b) for b in blocks.values())
    entropy_after = 0.0
    for block in blocks.values():
        p_block = len(block) / total
        entropy_after += p_block * math.log2(len(block))
    return math.log2(total) - entropy_after


def experiments_to_identify(outcome_fn, private_domain, precondition_values):
    """How many active-attack experiments pin down a private value?

    Simulates the replay attack of Section II-2 / IV-C4: for each
    possible secret, count how many preconditionings (in order) the
    attacker must try before the remaining candidate set is a singleton.
    Returns ``{secret: experiments_needed_or_None}``.
    """
    results = {}
    for secret in private_domain:
        candidates = set(private_domain)
        needed = None
        for count, precondition in enumerate(precondition_values, start=1):
            observed = outcome_fn(secret, precondition)
            candidates = {c for c in candidates
                          if outcome_fn(c, precondition) == observed}
            if len(candidates) == 1:
                needed = count
                break
        results[secret] = needed
    return results
