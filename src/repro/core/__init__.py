"""The paper's primary contribution: the MLD framework and its analyses."""

from repro.core.adapters import (
    MemoryView, prediction_table_view, register_file_view,
    reuse_buffer_view, snapshot_from_dyn, snapshot_from_store,
)
from repro.core.classification import (
    OptimizationClass, PAPER_TABLE_II, classify_mld, generate_table_ii,
)
from repro.core.discussion import (
    folding_is_control_flow_only, mld_constant_folding,
    mld_strength_reduction,
)
from repro.core.descriptors import (
    FIGURE2_MLDS, FIGURE3_MLDS, mld_cache_rand, mld_im2l_prefetcher,
    mld_im3l_prefetcher, mld_instruction_reuse, mld_operand_packing,
    mld_rf_compression, mld_silent_stores, mld_single_cycle_alu,
    mld_v_prediction, mld_zero_skip_mul,
)
from repro.core.landscape import (
    generate_table_i, render_table, union_safety, expansions,
)
from repro.core.lattice import (
    Label, experiments_to_identify, flows_to, induced_partition, join,
    leakage_bits,
)
from repro.core.mld import (
    InputKind, InstSnapshot, MLD, MLDInput, ObservationDomain,
    concat_outcomes,
)
from repro.core.registry import (
    BASELINE_COLUMN, COLUMN_ORDER, OPTIMIZATIONS, OptimizationDescriptor,
    TABLE_I_ROWS,
)
from repro.core.urg import (
    AddressRange, URGAnalysis, analyze_imp, victim_bytes_reachable,
)

__all__ = [
    "MemoryView", "prediction_table_view", "register_file_view",
    "reuse_buffer_view", "snapshot_from_dyn", "snapshot_from_store",
    "folding_is_control_flow_only", "mld_constant_folding",
    "mld_strength_reduction",
    "OptimizationClass", "PAPER_TABLE_II", "classify_mld",
    "generate_table_ii", "FIGURE2_MLDS", "FIGURE3_MLDS", "mld_cache_rand",
    "mld_im2l_prefetcher", "mld_im3l_prefetcher", "mld_instruction_reuse",
    "mld_operand_packing", "mld_rf_compression", "mld_silent_stores",
    "mld_single_cycle_alu", "mld_v_prediction", "mld_zero_skip_mul",
    "generate_table_i", "render_table", "union_safety", "expansions",
    "Label", "experiments_to_identify", "flows_to", "induced_partition",
    "join", "leakage_bits", "InputKind", "InstSnapshot", "MLD", "MLDInput",
    "ObservationDomain", "concat_outcomes", "BASELINE_COLUMN",
    "COLUMN_ORDER", "OPTIMIZATIONS", "OptimizationDescriptor",
    "TABLE_I_ROWS", "AddressRange", "URGAnalysis", "analyze_imp",
    "victim_bytes_reachable",
]
