"""The leakage landscape — Table I of the paper.

Generates the full table from the optimization registry and checks the
paper's two headline claims about it (Section III, Goal 1):

* every studied optimization expands leakage relative to the Baseline;
* taking the union of all studied optimizations, **no** instruction
  operand/result (or data at rest) remains safe.
"""

from repro.core.registry import (
    BASELINE_COLUMN, COLUMN_ORDER, NO_CHANGE, OPTIMIZATIONS, SAFE,
    TABLE_I_ROWS, UNSAFE, UNSAFE_DIFFERENT,
)

ROW_LABELS = {
    ("operands", "int_simple"): "Operands / Int simple ops",
    ("operands", "int_mul"): "Operands / Int mul",
    ("operands", "int_div"): "Operands / Int div",
    ("operands", "fp"): "Operands / FP ops",
    ("result", "int_simple"): "Result / Int simple ops",
    ("result", "int_mul"): "Result / Int mul",
    ("result", "int_div"): "Result / Int div",
    ("result", "fp"): "Result / FP ops",
    ("addr", "load"): "Addr / Load",
    ("addr", "store"): "Addr / Store",
    ("data", "load"): "Data / Load",
    ("data", "store"): "Data / Store",
    ("control_flow", "control_flow"): "Control flow",
    ("at_rest", "register_file"): "At rest / Register file",
    ("at_rest", "data_memory"): "At rest / Data memory",
}


def generate_table_i():
    """Build Table I: ``row -> {column -> marker}`` including Baseline."""
    table = {}
    for row in TABLE_I_ROWS:
        cells = {"Baseline": BASELINE_COLUMN[row]}
        for acronym in COLUMN_ORDER:
            cells[acronym] = OPTIMIZATIONS[acronym].column()[row]
        table[row] = cells
    return table


def effective_safety(row, column_marker, baseline_marker):
    """Resolve a column cell against the Baseline (``-`` inherits)."""
    del row
    if column_marker == NO_CHANGE:
        return baseline_marker
    return column_marker


def union_safety():
    """Per-row safety when *all* studied optimizations are present."""
    table = generate_table_i()
    result = {}
    for row, cells in table.items():
        baseline = cells["Baseline"]
        markers = [effective_safety(row, cells[acr], baseline)
                   for acr in COLUMN_ORDER]
        if any(marker in (UNSAFE, UNSAFE_DIFFERENT) for marker in markers) \
                or baseline == UNSAFE:
            result[row] = UNSAFE
        else:
            result[row] = SAFE
    return result


def expansions(acronym):
    """Rows whose safety the optimization changes vs the Baseline."""
    column = OPTIMIZATIONS[acronym].column()
    changed = []
    for row in TABLE_I_ROWS:
        marker = column[row]
        if marker == NO_CHANGE:
            continue
        baseline = BASELINE_COLUMN[row]
        if marker == UNSAFE and baseline == SAFE:
            changed.append((row, "S->U"))
        elif marker == UNSAFE_DIFFERENT:
            changed.append((row, "U->U'"))
        elif marker == UNSAFE and baseline == UNSAFE:
            changed.append((row, "U->U"))
    return changed


def render_table(table=None):
    """ASCII rendering of Table I in the paper's layout."""
    if table is None:
        table = generate_table_i()
    columns = ["Baseline"] + list(COLUMN_ORDER)
    label_width = max(len(label) for label in ROW_LABELS.values()) + 2
    header = "".ljust(label_width) + "".join(
        col.ljust(10) for col in columns)
    lines = [header, "-" * len(header)]
    for row in TABLE_I_ROWS:
        cells = table[row]
        line = ROW_LABELS[row].ljust(label_width) + "".join(
            cells[col].ljust(10) for col in columns)
        lines.append(line)
    return "\n".join(lines)
