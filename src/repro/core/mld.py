"""Microarchitectural leakage descriptors (MLDs) — Section IV-A.

An MLD is a *stateless function* describing which interactions between
in-flight dynamic instructions (``Inst``), persistent microarchitectural
state (``Uarch``) and architectural state (``Arch``) produce which
distinct observable outcomes.  Given a concrete assignment to its
inputs, an MLD returns a natural number identifying the outcome; the
mapping partitions the input-assignment space, and ``log2`` of the
partition size upper-bounds the channel capacity (Section IV-A3).
"""

import enum
import math
from dataclasses import dataclass, field


class InputKind(enum.Enum):
    """The three MLD input types of Section IV-A."""

    INST = "Inst"
    UARCH = "Uarch"
    ARCH = "Arch"


@dataclass(frozen=True)
class MLDInput:
    """One declared input of an MLD: its kind and a descriptive name."""

    kind: InputKind
    name: str

    def __str__(self):
        return f"{self.kind.value} {self.name}"


@dataclass(frozen=True)
class InstSnapshot:
    """A concrete ``Inst`` input: a dynamic instruction's visible values.

    Mirrors the convenience fields the paper assumes (Section IV-A1):
    ``pc``, opcode, operand values (``arg.v_i``), result value
    (``dst.v``), address and data for memory ops.
    """

    pc: int = 0
    op: str = ""
    args: tuple = ()
    dst: object = None
    addr: object = None
    data: object = None


class MLD:
    """A named leakage descriptor wrapping an outcome function.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"silent_stores"``.
    inputs:
        Sequence of :class:`MLDInput` declaring the signature.
    outcome_fn:
        Callable taking one positional argument per declared input and
        returning a natural number (the outcome id).
    description:
        Human-readable summary of the observable outcome.
    """

    def __init__(self, name, inputs, outcome_fn, description=""):
        self.name = name
        self.inputs = tuple(inputs)
        self._outcome_fn = outcome_fn
        self.description = description

    def __call__(self, *args):
        if len(args) != len(self.inputs):
            raise TypeError(
                f"MLD {self.name} expects {len(self.inputs)} inputs "
                f"({', '.join(map(str, self.inputs))}), got {len(args)}")
        outcome = self._outcome_fn(*args)
        if not isinstance(outcome, int) or outcome < 0:
            raise ValueError(
                f"MLD {self.name} must return a natural number, "
                f"got {outcome!r}")
        return outcome

    # -- signature interrogation (drives the Table II classification) ----

    @property
    def input_kinds(self):
        return tuple(spec.kind for spec in self.inputs)

    def reads(self, kind):
        return kind in self.input_kinds

    # -- partition / capacity analysis (Section IV-A3) -----------------------

    def partition(self, assignments):
        """Group concrete input assignments by observable outcome.

        ``assignments`` is an iterable of argument tuples.  Returns a
        dict ``outcome_id -> list of assignments``: the partition S that
        the paper defines.
        """
        groups = {}
        for assignment in assignments:
            groups.setdefault(self(*assignment), []).append(assignment)
        return groups

    def outcome_count(self, assignments):
        return len(self.partition(assignments))

    def capacity_bits(self, assignments):
        """``log2 |S|``: channel-capacity upper bound over a domain."""
        count = self.outcome_count(assignments)
        return math.log2(count) if count else 0.0

    def __repr__(self):
        sig = ", ".join(map(str, self.inputs))
        return f"mld {self.name}({sig})"


def concat_outcomes(pairs):
    """The ``||`` (concatenation) operator of Figure 3's caption.

    ``pairs`` is a sequence ``[(d0, D0), (d1, D1), ...]`` of outcome
    values with their domain sizes, least-significant first:
    ``d_{N-1} || ... || d_0 = sum_i (prod_{j<i} D_j) * d_i``.
    The microarchitecture leaks information about each ``d_i``
    independently.
    """
    total = 0
    scale = 1
    for value, domain in pairs:
        if not 0 <= value < domain:
            raise ValueError(f"outcome {value} outside domain [0, {domain})")
        total += scale * value
        scale *= domain
    return total


@dataclass
class ObservationDomain:
    """A finite input domain used for capacity estimation in benches."""

    name: str
    assignments: list = field(default_factory=list)

    def __iter__(self):
        return iter(self.assignments)

    def __len__(self):
        return len(self.assignments)
