"""Adapters from live simulator state to MLD inputs.

The MLD framework (Section IV-A) is a *specification*; the pipeline
plug-ins are an *implementation*.  These adapters let tests close the
loop: evaluate a descriptor on snapshots of the running machine and
check it predicts exactly the outcome the hardware produced — silent
or not, skipped or not, predicted or squashed.
"""

from repro.core.mld import InstSnapshot
from repro.isa.opcodes import Op


def snapshot_from_dyn(dyn):
    """Build the ``Inst`` MLD input from an in-flight instruction."""
    inst = dyn.inst
    args = tuple(dyn.src_values[:2])
    if inst.op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI,
                   Op.SRLI, Op.SLTI):
        args = (dyn.src_values[0], inst.imm)
    return InstSnapshot(pc=dyn.pc, op=inst.op.value, args=args,
                        dst=dyn.result)


def snapshot_from_store(entry):
    """The store-instruction snapshot the silent-store MLD consumes."""
    return InstSnapshot(pc=entry.dyn.pc, op="store",
                        addr=entry.addr, data=entry.data)


class MemoryView:
    """``Arch data_memory`` adapter: subscriptable flat memory.

    ``width`` fixes the comparison granularity (the store's width for
    the silent-store descriptor).
    """

    def __init__(self, memory, width=8):
        self.memory = memory
        self.width = width

    def __getitem__(self, addr):
        return self.memory.read(addr, self.width)


def reuse_buffer_view(plugin):
    """``Uarch reuse_buffer`` adapter for the Sv reuse plug-in.

    Figure 3's Example 6 models one memoized operand tuple per PC; the
    implementation's table keys are ``(pc, v1, v2, imm)``.  The view
    exposes, per PC, the most recently inserted operand values.
    """
    buffer = {}
    for key in plugin._table:
        pc, v1, v2, _imm = key
        buffer[pc] = (v1, v2)
    return buffer


def prediction_table_view(plugin):
    """``Uarch prediction_table`` adapter for the VP plug-in."""
    return {pc: {"conf": min(entry[1], 7), "prediction": entry[0]}
            for pc, entry in plugin._table.items()}


def register_file_view(cpu, arch_regs=range(1, 32)):
    """``Arch register_file`` adapter: current architectural values."""
    return [cpu.arch_reg(index) for index in arch_regs]
