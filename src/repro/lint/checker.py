"""The verdict pass: contracts × taint analysis → per-pc verdicts.

:func:`lint_program` checks an assembled program against a set of
compiled contract rows; :func:`lint_spec` lifts that to a full
:class:`~repro.engine.specs.SimSpec` — contracts default to the spec's
*enabled* plug-ins (a static checker predicts what the configured
simulator can observe; an optimization the machine doesn't run cannot
leak on it), taint seeds merge the program's directives with the
spec's :class:`~repro.engine.specs.TaintSpec`, and initial register
constants come from the spec's ``regs``.
"""

from collections.abc import Iterable, Mapping

from repro.engine.specs import SimSpec, TaintSpec
from repro.isa.assembler import Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, reads_rs1, reads_rs2, writes_register
from repro.lint.cfg import def_chain, reaching_definitions
from repro.lint.contracts import ContractRow, LintError, \
    applicable_taps, rows_for_names, rows_for_specs
from repro.lint.report import Finding, LintReport
from repro.lint.taint import Origin, State, TaintAnalysis, analyze_taint
from repro.isa.text import render_instruction


def _frames_to_text(origin: Origin) -> tuple[str, ...]:
    frames = []
    for frame in origin:
        if isinstance(frame, tuple) and len(frame) == 2:
            pc, why = frame
            frames.append(f"pc {pc}: {why}" if isinstance(pc, int)
                          and pc >= 0 else str(why))
        else:
            frames.append(str(frame))
    return tuple(frames)


def _tap_taint(tap: str, inst: Instruction, analysis: TaintAnalysis,
               pc: int, state: State) -> tuple[bool, Origin]:
    """Resolve one contract tap to ``(tainted, origin)`` at ``pc``."""
    op = inst.op
    if tap == "rs1":
        if not reads_rs1(op):
            return False, ()
        av = state.reg(inst.rs1)
        return av.tainted, av.origin
    if tap == "rs2":
        if not reads_rs2(op):
            return False, ()
        av = state.reg(inst.rs2)
        return av.tainted, av.origin
    if tap == "store_value":
        if op is not Op.STORE:
            return False, ()
        av = state.reg(inst.rs2)
        return av.tainted, av.origin
    if tap == "address":
        if op not in (Op.LOAD, Op.STORE):
            return False, ()
        av = state.reg(inst.rs1)
        return av.tainted, av.origin
    if tap == "old_memory_value":
        if op is not Op.STORE:
            return False, ()
        addr_av = state.reg(inst.rs1)
        addr = analysis.resolve_address(pc)
        tainted = state.mem.taint_at(addr, inst.width) \
            or addr_av.tainted
        if not tainted:
            return False, ()
        if addr_av.tainted:
            return True, addr_av.origin + \
                ((pc, "old value read via tainted address"),)
        return True, ((pc, state.mem.origin_at(addr, inst.width)),)
    if tap in ("loaded_value", "result"):
        av = analysis.result_av(pc)
        return av.tainted, av.origin
    raise LintError(f"unknown tap {tap!r}")


def tainted_tap_pairs(program: Program,
                      taint: TaintSpec | None = None,
                      reg_consts: Mapping[int, int] | None = None,
                      path_sensitive: bool = True,
                      ) -> frozenset[tuple[str, str]]:
    """The program's static leakage signature: every canonical
    (op-name, tap) pair through which a secret can reach an MLD.

    This is the feature extractor of the contract synthesizer
    (:mod:`repro.lint.synthesize`): it runs the same taint analysis as
    :func:`lint_program` and resolves the same taps through
    :func:`_tap_taint`, but aggregates over *all* reachable
    instructions instead of matching contract rows.  An instruction
    executing under tainted control contributes every tap it carries —
    mirroring the checker's implicit-flow rule, where a row fires on a
    control-dominated op regardless of data taint.  By construction,
    for any compiled row ``r``: the checker flags ``r`` on this
    program iff ``signature & row_pairs(r)`` is non-empty (given the
    program writes no produced results to x0, which the case generator
    guarantees) — provided both run with the same ``path_sensitive``
    setting, which is why the synthesizer and the checker share the
    default.
    """
    taint = taint if taint is not None else TaintSpec()
    secret = tuple(program.secret_regions) + tuple(taint.secret)
    public = tuple(program.public_regions) + tuple(taint.public)
    analysis = analyze_taint(
        program, secret_regions=secret, public_regions=public,
        secret_regs=taint.secret_regs, reg_consts=reg_consts,
        path_sensitive=path_sensitive)
    pairs = set()
    for pc, inst in enumerate(program):
        state = analysis.state(pc)
        if state is None:
            continue                    # unreachable
        for tap in applicable_taps(inst.op):
            if state.control:
                pairs.add((inst.op.value, tap))
                continue
            tainted, _ = _tap_taint(tap, inst, analysis, pc, state)
            if tainted:
                pairs.add((inst.op.value, tap))
    return frozenset(pairs)


def lint_program(program: Program,
                 contracts: tuple[ContractRow, ...] = (),
                 taint: TaintSpec | None = None,
                 opts: Iterable[str] | None = None,
                 program_name: str = "",
                 reg_consts: Mapping[int, int] | None = None,
                 path_sensitive: bool = True) -> LintReport:
    """Check ``program`` against contract rows; return a report.

    ``contracts`` is a tuple of compiled
    :class:`~repro.lint.contracts.ContractRow`; alternatively pass
    ``opts`` — plug-in registry names — and the rows are compiled with
    default constructions.  ``taint`` is an optional
    :class:`~repro.engine.specs.TaintSpec` merged with the program's
    ``.secret`` / ``.public`` directives.
    """
    if opts is not None:
        if contracts:
            raise LintError("pass contracts or opts, not both")
        contracts = rows_for_names(tuple(opts))
    taint = taint if taint is not None else TaintSpec()
    secret = tuple(program.secret_regions) + tuple(taint.secret)
    public = tuple(program.public_regions) + tuple(taint.public)
    analysis = analyze_taint(
        program, secret_regions=secret, public_regions=public,
        secret_regs=taint.secret_regs, reg_consts=reg_consts,
        path_sensitive=path_sensitive)
    reach = reaching_definitions(program)
    labels_at = {}
    for name, pc in sorted(program.labels.items()):
        labels_at.setdefault(pc, []).append(name)
    findings = []
    unreachable = []
    rendered = []
    for pc, inst in enumerate(program):
        rendered.append(render_instruction(inst, labels_at))
        state = analysis.state(pc)
        if state is None:
            unreachable.append(pc)
            continue
        for row in contracts:
            if not row.matches_op(inst.op):
                continue
            if writes_register(inst.op) and inst.rd == 0 \
                    and row.ops is None:
                continue                # x0 result is discarded
            tainted_taps = []
            witness = []
            for tap in row.taps:
                tainted, origin = _tap_taint(tap, inst, analysis, pc,
                                             state)
                if tainted:
                    tainted_taps.append(tap)
                    for frame in _frames_to_text(origin):
                        if frame not in witness:
                            witness.append(frame)
            if state.control and not tainted_taps:
                # Implicit flow: under tainted control, whether this
                # MLD fires at all is secret-dependent.
                tainted_taps = ["control"]
                witness = list(_frames_to_text(state.control_origin)) \
                    or ["tainted branch dominates this instruction"]
            if not tainted_taps:
                continue
            use_reg = inst.rs1 if reads_rs1(inst.op) else None
            if use_reg:
                chain = def_chain(program, reach, pc, use_reg)
                if chain:
                    path = " <- ".join(f"pc {def_pc}"
                                       for def_pc in chain)
                    frame = f"def-use: {path}"
                    if frame not in witness:
                        witness.append(frame)
            findings.append(Finding(
                pc=pc, op=inst.op.value, text=rendered[-1],
                plugin=row.plugin, mld=row.mld,
                taps=tuple(tainted_taps), witness=tuple(witness),
                detail=row.detail))
    report = LintReport(
        program_name=program_name,
        instructions=rendered,
        findings=findings,
        contracts=tuple(dict.fromkeys(row.plugin
                                      for row in contracts)),
        secret_regions=tuple(sorted(set(secret))),
        public_regions=tuple(sorted(set(public))),
        unreachable=tuple(unreachable))
    return report


def lint_spec(spec: SimSpec, opts: Iterable[str] | None = None,
              program_name: str = "",
              path_sensitive: bool = True) -> LintReport:
    """Check a :class:`SimSpec` — the static mirror of running it.

    Contracts come from the spec's enabled plug-ins (or ``opts``
    registry-name overrides); taint seeds merge the program directives
    with ``spec.taint``; ``spec.regs`` pins initial register
    constants.  The returned verdicts predict exactly which enabled
    MLDs the engine can observe diverging under secret-pair trials —
    the property :mod:`repro.lint.soundness` enforces.
    """
    if not isinstance(spec, SimSpec):
        raise LintError(f"lint_spec wants a SimSpec, got "
                        f"{type(spec).__name__}")
    if opts is not None:
        contracts = rows_for_names(tuple(opts))
    else:
        contracts = rows_for_specs(spec.plugins)
    return lint_program(
        spec.program, contracts=contracts,
        taint=spec.taint if spec.taint is not None else TaintSpec(),
        program_name=program_name or spec.label,
        reg_consts=dict(spec.regs), path_sensitive=path_sensitive)
