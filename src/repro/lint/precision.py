"""Precision harness: how many static LEAKS verdicts are real?

The dual of :mod:`repro.lint.soundness`.  Soundness asks "does every
dynamic divergence get flagged?" — the checker may over-approximate,
so passing it says nothing about *usefulness*.  This module measures
the over-approximation: for every statically-flagged ``LEAKS(plugin)``
verdict over a corpus, run the secret-pair differential trial the
soundness harness would run and classify the verdict

* **confirmed** — the plug-in's MLD observably diverged between secret
  variants (with a clean plug-in-free control): a true positive;
* **false positive** — no divergence at this budget: the flag is an
  artifact of the abstraction (usually the implicit-flow rule);
* **discarded** — the *control* diverged, so nothing is attributable
  to the plug-in (baseline timing channels are out of contract scope).

Every trial is linted twice: with the path-sensitive analysis (post-
dominator-scoped control taint, the default) and with the sticky
baseline (``path_sensitive=False`` — control taint poisons everything
after the first tainted branch).  The per-plugin table reports both
false-positive counts side by side; the difference is the measured
value of the post-dominator analysis, and CI pins the path-sensitive
count as a downward ratchet (``--max-false-positives``).

The corpus is the synthesis fuzzer's seeded progen cases (each
optimization's trigger templates + generic fuzz — the programs most
likely to *really* leak) plus the shipped example ``.s`` programs with
their declared secret regions seeded.  A **missed** column (confirmed
but unflagged under the path-sensitive analysis) double-checks that
precision never cost soundness; it must stay zero.
"""

import os
import random
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro import telemetry
from repro.engine.runner import run_batch
from repro.engine.specs import PluginSpec, SimSpec
from repro.isa.assembler import Program
from repro.isa.text import assemble_file
from repro.lint.checker import lint_program, lint_spec
from repro.lint.contracts import contracted_plugin_names
from repro.lint.perturb import DEFAULT_PATTERNS, secret_variants
from repro.lint.progen import CaseGenerator, GeneratedCase, gated_case
from repro.lint.soundness import divergent_plugins

#: Progen cases per plug-in when no budget is given — small enough for
#: a CI smoke leg, large enough that every trigger template appears.
DEFAULT_BUDGET = 4

#: The shipped example programs, relative to the repository root.
EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, os.pardir, "examples",
                            "programs")


@dataclass(frozen=True)
class TrialOutcome:
    """One (case, plug-in) verdict-vs-reality classification."""

    case: str
    plugin: str
    source: str                 # "progen" | "example"
    flagged: bool               # path-sensitive LEAKS verdict
    sticky_flagged: bool        # path-blind (sticky) LEAKS verdict
    confirmed: bool             # plug-in MLD diverged dynamically
    baseline_divergent: bool    # control diverged → unattributable

    @property
    def false_positive(self) -> bool:
        return self.flagged and not self.confirmed \
            and not self.baseline_divergent

    @property
    def sticky_false_positive(self) -> bool:
        return self.sticky_flagged and not self.confirmed \
            and not self.baseline_divergent

    @property
    def missed(self) -> bool:
        """Confirmed divergence the path-sensitive analysis did not
        flag — a soundness escape; must never happen."""
        return self.confirmed and not self.flagged

    def to_json_dict(self) -> dict:
        return {"case": self.case, "plugin": self.plugin,
                "source": self.source, "flagged": self.flagged,
                "sticky_flagged": self.sticky_flagged,
                "confirmed": self.confirmed,
                "baseline_divergent": self.baseline_divergent,
                "false_positive": self.false_positive,
                "sticky_false_positive": self.sticky_false_positive,
                "missed": self.missed}


@dataclass
class PrecisionReport:
    """Aggregated classification over the whole corpus."""

    budget: int
    seed: int
    outcomes: tuple = ()

    @property
    def false_positives(self) -> int:
        return sum(1 for out in self.outcomes if out.false_positive)

    @property
    def sticky_false_positives(self) -> int:
        return sum(1 for out in self.outcomes
                   if out.sticky_false_positive)

    @property
    def confirmed(self) -> int:
        return sum(1 for out in self.outcomes if out.confirmed)

    @property
    def missed(self) -> int:
        return sum(1 for out in self.outcomes if out.missed)

    @property
    def ok(self) -> bool:
        """Precision may be imperfect; lost soundness may not."""
        return self.missed == 0

    def per_plugin(self) -> dict[str, dict[str, int]]:
        table: dict[str, dict[str, int]] = {}
        for out in self.outcomes:
            row = table.setdefault(out.plugin, {
                "trials": 0, "flagged": 0, "sticky_flagged": 0,
                "confirmed": 0, "false_positives": 0,
                "sticky_false_positives": 0, "discarded": 0,
                "missed": 0})
            row["trials"] += 1
            row["flagged"] += out.flagged
            row["sticky_flagged"] += out.sticky_flagged
            row["confirmed"] += out.confirmed
            row["false_positives"] += out.false_positive
            row["sticky_false_positives"] += out.sticky_false_positive
            row["discarded"] += out.baseline_divergent
            row["missed"] += out.missed
        return dict(sorted(table.items()))

    def to_json_dict(self) -> dict:
        return {"budget": self.budget, "seed": self.seed,
                "ok": self.ok,
                "false_positives": self.false_positives,
                "sticky_false_positives":
                    self.sticky_false_positives,
                "confirmed": self.confirmed, "missed": self.missed,
                "plugins": self.per_plugin(),
                "outcomes": [out.to_json_dict()
                             for out in self.outcomes]}

    def render(self) -> str:
        header = (f"{'optimization':30s} {'trials':>6s} "
                  f"{'flagged':>7s} {'confirmed':>9s} {'FP':>4s} "
                  f"{'FP(sticky)':>10s} {'missed':>6s}")
        lines = [header, "-" * len(header)]
        for name, row in self.per_plugin().items():
            lines.append(
                f"{name:30s} {row['trials']:>6d} "
                f"{row['flagged']:>7d} {row['confirmed']:>9d} "
                f"{row['false_positives']:>4d} "
                f"{row['sticky_false_positives']:>10d} "
                f"{row['missed']:>6d}")
        lines.append("-" * len(header))
        lines.append(
            f"{'total':30s} {len(self.outcomes):>6d} "
            f"{sum(1 for o in self.outcomes if o.flagged):>7d} "
            f"{self.confirmed:>9d} {self.false_positives:>4d} "
            f"{self.sticky_false_positives:>10d} {self.missed:>6d}")
        saved = self.sticky_false_positives - self.false_positives
        lines.append(
            f"path-sensitive analysis removes {saved} of "
            f"{self.sticky_false_positives} sticky false positives "
            f"({self.false_positives} remain); "
            f"soundness escapes: {self.missed}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------

def _seed_writes(program: Program,
                 rng: random.Random) -> tuple[tuple[int, int, int], ...]:
    """Initial-image writes placing a deterministic value in every
    declared secret byte range (the differential trial XORs exactly
    these bytes, so an unseeded region would perturb nothing)."""
    writes = []
    for start, end in program.secret_regions:
        addr = start
        while addr < end:
            width = min(8, end - addr)
            writes.append((addr, rng.getrandbits(8 * width), width))
            addr += width
    return tuple(writes)


def example_cases(directory: str | None = None,
                  seed: int = 0) -> tuple[GeneratedCase, ...]:
    """The shipped ``.s`` programs as runnable corpus cases."""
    directory = EXAMPLES_DIR if directory is None else directory
    if not os.path.isdir(directory):
        return ()
    cases = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".s"):
            continue
        program = assemble_file(os.path.join(directory, name))
        rng = random.Random(f"precision/{seed}/{name}")
        cases.append(GeneratedCase(
            name=f"example/{name}", program=program,
            mem_writes=_seed_writes(program, rng),
            note="shipped example program"))
    return tuple(cases)


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------

def _flag_sets(case: GeneratedCase, spec: SimSpec,
               opts: Sequence[str]) -> tuple[frozenset, frozenset]:
    """(path-sensitive, sticky) statically-leaking plug-in sets."""
    if case.taint is None:
        scoped = lint_program(case.program, opts=opts,
                              program_name=case.name)
        sticky = lint_program(case.program, opts=opts,
                              program_name=case.name,
                              path_sensitive=False)
    else:
        scoped = lint_spec(spec, opts=opts, program_name=case.name)
        sticky = lint_spec(spec, opts=opts, program_name=case.name,
                           path_sensitive=False)
    return (frozenset(scoped.leaking_plugins()),
            frozenset(sticky.leaking_plugins()))


def check_precision(budget: int = DEFAULT_BUDGET, seed: int = 0,
                    opts: Iterable[str] | None = None,
                    patterns: tuple = DEFAULT_PATTERNS,
                    workers: int = 1, cache: object = None,
                    backend: str | None = None,
                    examples: str | None = None) -> PrecisionReport:
    """Classify every static LEAKS verdict over the corpus.

    ``budget`` progen cases per plug-in (each linted and trialled
    against its own plug-in) plus every example program (linted under
    the full ``opts`` catalog, trialled once per statically-flagged
    plug-in).  All differential cohorts run through one
    :func:`~repro.engine.runner.run_batch` fleet.
    """
    tel = telemetry.REGISTRY
    names = tuple(sorted(opts)) if opts is not None \
        else contracted_plugin_names()
    trials = []          # (case, plugin, source, scoped?, sticky?)
    controls: dict[str, list] = {}
    with tel.phase("lint.precision", "static"):
        for plugin in names:
            for case in CaseGenerator(seed=seed).cases_for(plugin,
                                                           budget):
                spec = case.spec(plugins=(PluginSpec.of(plugin),))
                scoped, sticky = _flag_sets(case, spec, (plugin,))
                trials.append((case, plugin, "progen",
                               plugin in scoped, plugin in sticky))
                controls.setdefault(case.name, secret_variants(
                    case.spec(plugins=(),
                              label=f"{case.name}/control"),
                    patterns))
        gated_rng = random.Random(f"precision/gated/{seed}")
        for index in range(max(1, budget // 2)):
            case = gated_case(gated_rng, index=index)
            for plugin in names:
                spec = case.spec(plugins=(PluginSpec.of(plugin),))
                scoped, sticky = _flag_sets(case, spec, (plugin,))
                trials.append((case, plugin, "gated",
                               plugin in scoped, plugin in sticky))
                controls.setdefault(case.name, secret_variants(
                    case.spec(plugins=(),
                              label=f"{case.name}/control"),
                    patterns))
        for case in example_cases(directory=examples, seed=seed):
            scoped, sticky = _flag_sets(case, case.spec(), names)
            for plugin in sorted(scoped | sticky):
                trials.append((case, plugin, "example",
                               plugin in scoped, plugin in sticky))
                controls.setdefault(case.name, secret_variants(
                    case.spec(plugins=(),
                              label=f"{case.name}/control"),
                    patterns))
    cohorts = [secret_variants(
        case.spec(plugins=(PluginSpec.of(plugin),),
                  label=f"{case.name}/{plugin}"), patterns)
        for case, plugin, *_ in trials]
    fleet = [spec for specs in controls.values() for spec in specs] \
        + [spec for cohort in cohorts for spec in cohort]
    tel.inc("repro_precision_trials_total", len(trials),
            help="Differential precision trials run")
    with tel.phase("lint.precision", "fleet"):
        results = run_batch(fleet, workers=workers, cache=cache,
                            backend=backend)
    control_div = {}
    cursor = 0
    for name, specs in controls.items():
        batch = results[cursor:cursor + len(specs)]
        cursor += len(specs)
        control_div[name] = any(
            batch[0].cycles != result.cycles
            or batch[0].observations != result.observations
            for result in batch[1:])
    outcomes = []
    for (case, plugin, source, scoped, sticky), cohort in \
            zip(trials, cohorts):
        batch = results[cursor:cursor + len(cohort)]
        cursor += len(cohort)
        confirmed = any(
            plugin in divergent_plugins(batch[0], result,
                                        enabled=(plugin,))
            for result in batch[1:])
        outcome = TrialOutcome(
            case=case.name, plugin=plugin, source=source,
            flagged=scoped, sticky_flagged=sticky,
            confirmed=confirmed,
            baseline_divergent=control_div[case.name])
        if outcome.false_positive:
            tel.inc("repro_precision_false_positives_total",
                    help="Unconfirmed LEAKS verdicts (path-sensitive)",
                    plugin=plugin)
        outcomes.append(outcome)
    return PrecisionReport(budget=budget, seed=seed,
                           outcomes=tuple(outcomes))
