"""Secret-pair XOR perturbation — the one shared variant builder.

Both differential harnesses in the lint layer — the soundness check
(:mod:`repro.lint.soundness`) and the contract synthesizer
(:mod:`repro.lint.synthesize`) — need the same construction: from one
:class:`~repro.engine.specs.SimSpec`, derive variants that differ from
the baseline in *exactly* the bytes the taint seed calls secret, so
that any observable divergence between the runs is attributable to the
secret and nothing else.  This module is that construction, extracted
so the two harnesses cannot drift apart:

* memory secrets — bytes of ``mem_writes`` / ``mem_blobs`` entries
  that fall inside a declared secret region are XORed with a pattern
  byte (:func:`xor_write`, :func:`xor_blob`);
* register secrets — preloaded ``regs`` entries whose architectural
  index appears in ``taint.secret_regs`` are XORed with the pattern
  byte replicated across the full 64-bit width (:func:`xor_regs`,
  :func:`replicate`), so equality MLDs (silent stores, reuse, value
  prediction) and width MLDs (operand packing, early termination,
  register-file compression) both see a flip;
* :func:`secret_variants` assembles ``[baseline, variant, ...]``,
  skipping patterns that change nothing (a zero pattern, or a secret
  that never appears in the initial image).

Everything here is pure data transformation: no RNG, no wall clock,
deterministic for a fixed spec + pattern tuple.
"""

from collections.abc import Iterable, Sequence

from repro.engine.specs import SimSpec

#: One declared secret byte range, half-open: ``(start, end)``.
Region = tuple[int, int]

#: Byte patterns XORed over the secret bytes to build variants.
#: 0xA5/0x5A flip mixed bit patterns, 0xFF flips everything; together
#: with the unmodified baseline they exercise equality MLDs (silent
#: stores, reuse, VP) and width MLDs (packing, early termination).
DEFAULT_PATTERNS = (0xA5, 0x5A, 0xFF)

#: Architectural register width in bytes (repro-ISA is RV64-shaped).
REG_WIDTH = 8

_REG_MASK = (1 << (8 * REG_WIDTH)) - 1


def replicate(pattern: int, width: int = REG_WIDTH) -> int:
    """The pattern byte replicated across ``width`` bytes.

    ``replicate(0xA5)`` is the full-register XOR mask; a zero pattern
    replicates to zero (the identity perturbation).
    """
    pattern &= 0xFF
    mask = 0
    for index in range(width):
        mask |= pattern << (8 * index)
    return mask


def xor_write(entry: tuple[int, int, int],
              regions: Iterable[Region],
              pattern: int) -> tuple[int, int, int]:
    """XOR ``pattern`` into the bytes of one ``(addr, value, width)``
    memory write that fall inside ``regions``."""
    addr, value, width = entry
    flipped = value
    for index in range(width):
        byte_addr = addr + index
        if any(start <= byte_addr < end for start, end in regions):
            flipped ^= pattern << (8 * index)
    return (addr, flipped, width)


def xor_blob(entry: tuple[int, bytes], regions: Iterable[Region],
             pattern: int) -> tuple[int, bytes]:
    """XOR ``pattern`` into the bytes of one ``(addr, bytes)`` blob
    that fall inside ``regions``."""
    addr, data = entry
    blob = bytearray(bytes(data))
    for index in range(len(blob)):
        byte_addr = addr + index
        if any(start <= byte_addr < end for start, end in regions):
            blob[index] ^= pattern
    return (addr, bytes(blob))


def xor_regs(regs: Iterable[tuple[int, int]],
             secret_regs: Iterable[int],
             pattern: int) -> tuple[tuple[int, int], ...]:
    """XOR the replicated ``pattern`` into every ``(index, value)``
    register preload whose index is in ``secret_regs``."""
    if not secret_regs:
        return tuple(regs)
    secret = set(secret_regs)
    mask = replicate(pattern)
    return tuple((index, (value ^ mask) & _REG_MASK)
                 if index in secret else (index, value)
                 for index, value in regs)


def secret_regions_of(spec: SimSpec) -> tuple[Region, ...]:
    """The spec's effective secret byte ranges (taint + directives)."""
    regions = list(spec.program.secret_regions)
    if spec.taint is not None:
        regions.extend(spec.taint.secret)
    return tuple(sorted(set(regions)))


def secret_regs_of(spec: SimSpec) -> tuple[int, ...]:
    """The spec's secret architectural registers (taint metadata)."""
    if spec.taint is None:
        return ()
    return tuple(sorted(set(spec.taint.secret_regs)))


def perturb_spec(spec: SimSpec, pattern: int,
                 regions: tuple[Region, ...] | None = None,
                 secret_regs: tuple[int, ...] | None = None,
                 ) -> SimSpec | None:
    """One secret-perturbed variant of ``spec``, or ``None``.

    XORs ``pattern`` over the secret bytes of the initial memory image
    and the secret register preloads.  Returns ``None`` when the
    perturbation is the identity — a zero pattern, or a secret that
    never appears in the image — so callers never run a duplicate of
    the baseline under a variant label.
    """
    regions = secret_regions_of(spec) if regions is None else regions
    secret_regs = secret_regs_of(spec) if secret_regs is None \
        else secret_regs
    mem_writes = tuple(xor_write(entry, regions, pattern)
                       for entry in spec.mem_writes)
    mem_blobs = tuple(xor_blob(entry, regions, pattern)
                      for entry in spec.mem_blobs)
    regs = xor_regs(spec.regs, secret_regs, pattern)
    if mem_writes == spec.mem_writes and mem_blobs == spec.mem_blobs \
            and regs == spec.regs:
        return None                     # identity perturbation
    return spec.replace(
        mem_writes=mem_writes, mem_blobs=mem_blobs, regs=regs,
        label=f"{spec.label or 'spec'}/secret^{pattern:#04x}")


def secret_variants(spec: SimSpec,
                    patterns: Sequence[int] = DEFAULT_PATTERNS,
                    ) -> list[SimSpec]:
    """Baseline + secret-perturbed variants of ``spec``.

    Returns ``[spec, variant1, ...]``; with no secret bytes declared
    (neither regions nor registers) the baseline alone comes back —
    nothing to perturb, so a differential harness passes vacuously.
    """
    regions = secret_regions_of(spec)
    secret_regs = secret_regs_of(spec)
    variants = [spec]
    if not regions and not secret_regs:
        return variants
    for pattern in patterns:
        variant = perturb_spec(spec, pattern, regions=regions,
                               secret_regs=secret_regs)
        if variant is not None:
            variants.append(variant)
    return variants
