"""Control-flow graph and reaching definitions over programs.

The machine is word-indexed at the instruction level (one pc per
instruction), so the CFG works directly on instruction indices: no
byte offsets, no delay slots.  ``len(program)`` is the single exit
node — ``halt``, a fall-off-the-end, and a branch to the end all flow
there (the assembler already bounds targets to ``0..len``).
"""

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, is_branch, reads_rs1, writes_register

#: Pseudo-pc of the "definition" every register has on entry (the
#: initial register file / :class:`~repro.engine.specs.SimSpec` regs).
ENTRY_DEF = -1


def successors(program, pc):
    """Static successor pcs of ``program[pc]`` (exit = ``len(program)``)."""
    inst = program[pc]
    op = inst.op
    if op is Op.HALT:
        return (len(program),)
    if op is Op.JMP:
        return (inst.target,)
    if is_branch(op):
        fall, taken = pc + 1, inst.target
        return (fall,) if taken == fall else (fall, taken)
    return (pc + 1,)


@dataclass
class BasicBlock:
    """Maximal straight-line run ``[start, end)`` of instructions."""

    start: int
    end: int
    succs: tuple = ()
    preds: tuple = field(default_factory=tuple)

    def __iter__(self):
        return iter(range(self.start, self.end))


def build_cfg(program):
    """Partition ``program`` into basic blocks with edges.

    Returns ``(blocks, block_of)``: the block list in program order and
    a pc → block-index map.  The exit node ``len(program)`` appears as
    a zero-length block so every edge has a real endpoint.
    """
    size = len(program)
    leaders = {0, size}
    for pc in range(size):
        if program[pc].is_branch or program[pc].op in (Op.JMP, Op.HALT):
            for succ in successors(program, pc):
                leaders.add(succ)
            leaders.add(pc + 1)
    starts = sorted(leader for leader in leaders if leader <= size)
    if starts[-1] != size:
        starts.append(size)
    blocks = []
    block_of = {}
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else size
        blocks.append(BasicBlock(start=start, end=end))
        for pc in range(start, end):
            block_of[pc] = index
    block_of[size] = len(blocks) - 1      # the zero-length exit block
    index_of = {block.start: index for index, block in enumerate(blocks)}
    preds = {index: [] for index in range(len(blocks))}
    for index, block in enumerate(blocks):
        if block.start == block.end:        # exit block
            continue
        last = block.end - 1
        succ_indices = tuple(sorted(index_of[succ]
                                    for succ in successors(program, last)))
        block.succs = succ_indices
        for succ in succ_indices:
            preds[succ].append(index)
    for index, block in enumerate(blocks):
        block.preds = tuple(sorted(set(preds[index])))
    return blocks, block_of


def reaching_definitions(program):
    """Per-pc reaching definitions for every architectural register.

    Returns ``reach`` with ``reach[pc][reg]`` = frozenset of defining
    pcs that may reach ``pc``'s *inputs* (:data:`ENTRY_DEF` stands for
    the initial register file).  Classic forward may-analysis at
    instruction granularity — programs are tiny (static instructions),
    so the simple worklist converges in a handful of passes.
    """
    size = len(program)
    entry = {reg: frozenset((ENTRY_DEF,)) for reg in range(32)}
    reach = {pc: None for pc in range(size + 1)}
    reach[0] = dict(entry)
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        state = reach[pc]
        if pc >= size:
            continue
        inst = program[pc]
        out = state
        if writes_register(inst.op) and inst.rd != 0:
            out = dict(state)
            out[inst.rd] = frozenset((pc,))
        for succ in successors(program, pc):
            current = reach[succ]
            if current is None:
                reach[succ] = dict(out)
                worklist.append(succ)
                continue
            changed = False
            for reg, defs in out.items():
                merged = current[reg] | defs
                if merged != current[reg]:
                    current[reg] = merged
                    changed = True
            if changed:
                worklist.append(succ)
    for pc in range(size + 1):          # unreachable code: entry defs
        if reach[pc] is None:
            reach[pc] = dict(entry)
    return reach


def def_chain(program, reach, pc, reg, limit=8):
    """Witness helper: one def-use chain ending at ``pc``'s use of ``reg``.

    Walks reaching definitions backwards (picking the highest defining
    pc for determinism) until the entry definition or ``limit`` frames.
    Returns a tuple of pcs, most recent first.
    """
    chain = []
    seen = set()
    current_pc, current_reg = pc, reg
    while len(chain) < limit:
        defs = reach[current_pc].get(current_reg)
        if not defs:
            break
        def_pc = max(defs)
        if def_pc == ENTRY_DEF or def_pc in seen:
            break
        seen.add(def_pc)
        chain.append(def_pc)
        inst = program[def_pc]
        if reads_rs1(inst.op) and inst.rs1 != 0:
            current_pc, current_reg = def_pc, inst.rs1
        else:
            break
    return tuple(chain)
