"""Control-flow graph, post-dominators and reaching definitions.

The machine is word-indexed at the instruction level (one pc per
instruction), so the CFG works directly on instruction indices: no
byte offsets, no delay slots.  ``len(program)`` is the single exit
node — ``halt``, a fall-off-the-end, and a branch to the end all flow
there (the assembler already bounds targets to ``0..len``).

Post-dominators are what make the taint analysis *path*-aware: the
immediate post-dominator of a branch is the join point where its two
arms reconverge, so control taint raised at a secret-dependent branch
can be confined to the region between the branch and its ipdom instead
of poisoning the rest of the program (:mod:`repro.lint.taint`).  The
computation accepts an optional *feasible* successor map so edges the
constant lattice proves dead can be pruned — a superset of the feasible
edges always yields a sound (later-or-equal) join point, which is what
lets the taint fixpoint iterate pruning and post-dominators together.
"""

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, is_branch, reads_rs1, writes_register

#: Pseudo-pc of the "definition" every register has on entry (the
#: initial register file / :class:`~repro.engine.specs.SimSpec` regs).
ENTRY_DEF = -1

#: pc → tuple of successor pcs (the exit node ``len(program)`` only
#: ever appears as a target, never as a key).
SuccMap = Mapping[int, tuple[int, ...]]


def successors(program: Sequence[Instruction], pc: int) -> tuple[int, ...]:
    """Static successor pcs of ``program[pc]`` (exit = ``len(program)``)."""
    inst = program[pc]
    op = inst.op
    if op is Op.HALT:
        return (len(program),)
    if op is Op.JMP:
        return (inst.target,)
    if is_branch(op):
        fall, taken = pc + 1, inst.target
        return (fall,) if taken == fall else (fall, taken)
    return (pc + 1,)


def static_successors(program: Sequence[Instruction]) -> dict[int, tuple[int, ...]]:
    """The full static successor map — every edge the encoding allows."""
    return {pc: successors(program, pc) for pc in range(len(program))}


@dataclass
class BasicBlock:
    """Maximal straight-line run ``[start, end)`` of instructions."""

    start: int
    end: int
    succs: tuple = ()
    preds: tuple = field(default_factory=tuple)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end))


def build_cfg(program: Sequence[Instruction]) -> tuple[list[BasicBlock], dict[int, int]]:
    """Partition ``program`` into basic blocks with edges.

    Returns ``(blocks, block_of)``: the block list in program order and
    a pc → block-index map.  The exit node ``len(program)`` appears as
    a zero-length block so every edge has a real endpoint.
    """
    size = len(program)
    leaders = {0, size}
    for pc in range(size):
        if program[pc].is_branch or program[pc].op in (Op.JMP, Op.HALT):
            for succ in successors(program, pc):
                leaders.add(succ)
            leaders.add(pc + 1)
    starts = sorted(leader for leader in leaders if leader <= size)
    if starts[-1] != size:
        starts.append(size)
    blocks = []
    block_of = {}
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else size
        blocks.append(BasicBlock(start=start, end=end))
        for pc in range(start, end):
            block_of[pc] = index
    block_of[size] = len(blocks) - 1      # the zero-length exit block
    index_of = {block.start: index for index, block in enumerate(blocks)}
    preds: dict[int, list[int]] = {index: []
                                   for index in range(len(blocks))}
    for index, block in enumerate(blocks):
        if block.start == block.end:        # exit block
            continue
        last = block.end - 1
        succ_indices = tuple(sorted(index_of[succ]
                                    for succ in successors(program, last)))
        block.succs = succ_indices
        for succ in succ_indices:
            preds[succ].append(index)
    for index, block in enumerate(blocks):
        block.preds = tuple(sorted(set(preds[index])))
    return blocks, block_of


# ----------------------------------------------------------------------
# post-dominators
# ----------------------------------------------------------------------

def exit_reaching(size: int, succs: SuccMap) -> frozenset[int]:
    """Pcs from which the exit node ``size`` is reachable over ``succs``.

    A pc outside this set sits on an unconditional infinite loop (or is
    cut off by pruned edges); post-dominance is undefined for it, and a
    branch with such a pc on one arm must keep sticky control taint —
    whether the *other* arm ever executes again is itself the secret.
    """
    preds: dict[int, list[int]] = {node: [] for node in range(size + 1)}
    for pc in range(size):
        for succ in succs.get(pc, ()):
            preds[succ].append(pc)
    reached = {size}
    frontier = [size]
    while frontier:
        node = frontier.pop()
        for pred in preds[node]:
            if pred not in reached:
                reached.add(pred)
                frontier.append(pred)
    return frozenset(reached)


def postdominator_sets(program: Sequence[Instruction],
                       succs: SuccMap | None = None,
                       ) -> dict[int, frozenset[int]]:
    """Per-pc post-dominator sets over the instruction-level CFG.

    ``pdom[pc]`` contains every node (including ``pc`` itself) that
    lies on *all* paths from ``pc`` to the exit node ``len(program)``.
    Pass ``succs`` to compute over a pruned (feasible-edge) graph; the
    default is the full static CFG.  A pc that cannot reach the exit
    gets the singleton ``{pc}`` — post-dominance is undefined there,
    and the singleton keeps any branch into such a region sticky
    (its arms never produce a common post-dominator).
    """
    size = len(program)
    if succs is None:
        succs = static_successors(program)
    can_exit = exit_reaching(size, succs)
    universe = frozenset(range(size + 1))
    pdom: dict[int, frozenset[int]] = {size: frozenset((size,))}
    for pc in range(size):
        pdom[pc] = universe if pc in can_exit else frozenset((pc,))
    changed = True
    while changed:
        changed = False
        for pc in reversed(range(size)):
            if pc not in can_exit:
                continue
            meet: frozenset[int] | None = None
            for succ in succs.get(pc, ()):
                meet = pdom[succ] if meet is None else meet & pdom[succ]
            new = frozenset((pc,)) if meet is None else meet | {pc}
            if new != pdom[pc]:
                pdom[pc] = new
                changed = True
    return pdom


def immediate_postdominators(program: Sequence[Instruction],
                             succs: SuccMap | None = None,
                             ) -> dict[int, int | None]:
    """Per-pc immediate post-dominator over the instruction CFG.

    ``ipdom[pc]`` is the strict post-dominator of ``pc`` closest to it
    — the join point where all paths out of ``pc`` reconverge — or
    ``None`` when ``pc`` cannot reach the exit (no join exists; control
    taint raised there must stay sticky).  The strict post-dominators
    of a node form a chain towards the exit, so the immediate one is
    the chain element with the largest post-dominator set.
    """
    size = len(program)
    pdom = postdominator_sets(program, succs)
    ipdom: dict[int, int | None] = {}
    for pc in range(size):
        strict = pdom[pc] - {pc}
        if not strict:
            ipdom[pc] = None
            continue
        ipdom[pc] = max(strict, key=lambda node: (len(pdom[node]), -node))
    ipdom[size] = None
    return ipdom


def reaching_definitions(program: Sequence[Instruction]) -> dict[int, dict]:
    """Per-pc reaching definitions for every architectural register.

    Returns ``reach`` with ``reach[pc][reg]`` = frozenset of defining
    pcs that may reach ``pc``'s *inputs* (:data:`ENTRY_DEF` stands for
    the initial register file).  Classic forward may-analysis at
    instruction granularity — programs are tiny (static instructions),
    so the simple worklist converges in a handful of passes.
    """
    size = len(program)
    entry = {reg: frozenset((ENTRY_DEF,)) for reg in range(32)}
    reach: dict[int, dict | None] = {pc: None for pc in range(size + 1)}
    reach[0] = dict(entry)
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        state = reach[pc]
        if pc >= size or state is None:
            continue
        inst = program[pc]
        out = state
        if writes_register(inst.op) and inst.rd != 0:
            out = dict(state)
            out[inst.rd] = frozenset((pc,))
        for succ in successors(program, pc):
            current = reach[succ]
            if current is None:
                reach[succ] = dict(out)
                worklist.append(succ)
                continue
            changed = False
            for reg, defs in out.items():
                merged = current[reg] | defs
                if merged != current[reg]:
                    current[reg] = merged
                    changed = True
            if changed:
                worklist.append(succ)
    filled: dict[int, dict] = {}
    for pc in range(size + 1):          # unreachable code: entry defs
        state = reach[pc]
        filled[pc] = dict(entry) if state is None else state
    return filled


def def_chain(program: Sequence[Instruction],
              reach: Mapping[int, dict], pc: int,
              reg: int, limit: int = 8) -> tuple[int, ...]:
    """Witness helper: one def-use chain ending at ``pc``'s use of ``reg``.

    Walks reaching definitions backwards (picking the highest defining
    pc for determinism) until the entry definition or ``limit`` frames.
    Returns a tuple of pcs, most recent first.
    """
    chain = []
    seen = set()
    current_pc, current_reg = pc, reg
    while len(chain) < limit:
        defs = reach[current_pc].get(current_reg)
        if not defs:
            break
        def_pc = max(defs)
        if def_pc == ENTRY_DEF or def_pc in seen:
            break
        seen.add(def_pc)
        chain.append(def_pc)
        inst = program[def_pc]
        if reads_rs1(inst.op) and inst.rs1 != 0:
            current_pc, current_reg = def_pc, inst.rs1
        else:
            break
    return tuple(chain)
