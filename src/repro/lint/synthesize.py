"""Contract synthesis: learn leakage contracts, diff against declared.

The soundness harness (:mod:`repro.lint.soundness`) can only *check*
the hand-written ``LINT_CONTRACT`` each optimization ships.  This
module inverts the direction, following the leakage-contract-synthesis
line of work (arXiv 2401.09383, 2402.00641): infer each plug-in's
contract from the simulator itself and diff it against the declaration.

Observation
    For every generated case (:mod:`repro.lint.progen`) the plug-in
    runs twice over a secret-pair cohort built by the shared
    perturbation helper (:mod:`repro.lint.perturb`): once with *no*
    plug-ins (the control) and once with exactly the plug-in under
    study.  A case where the control itself diverges is discarded —
    its divergence belongs to the baseline machine (cache addressing,
    port contention on secret-dependent paths), not to the plug-in's
    MLD.  A case where only the plug-in cohort diverges is a genuine
    dynamic leak observation.

Generalization
    Each observed leak is abstracted to the case's *static leakage
    signature* — the canonical ``(op, tap)`` pairs through which a
    secret can reach an operand (:func:`repro.lint.checker.
    tainted_tap_pairs`), the same vocabulary contract rows compile to
    (:func:`repro.lint.contracts.row_pairs`).  The learned contract is
    the union of signatures over divergent observations, intersected
    against the declared pair set.

Diff
    * **learned-but-undeclared** — a divergent observation whose
      signature shares *no* pair with the declared contract: the
      checker could never have flagged this program, so the soundness
      harness has a blind spot.  Each such gap carries a
      delta-minimized witness program (+ a runnable spec) that still
      reproduces the divergence with a clean control.
    * **declared-but-never-witnessed** — a declared row none of whose
      pairs intersects any divergent observation at this budget: not
      unsound, but unexercised (the lint layer may over-flag).

``check_synthesis`` mirrors ``soundness.check_soundness`` (one
plug-in), ``synthesize_all`` sweeps every contracted plug-in, and the
``python -m repro synthesize`` CLI renders or archives the report.
All batches go through :func:`repro.engine.runner.run_batch`; the
secret-variant cohorts are the lockstep backend's native shape, and
results — hence learned contracts and witnesses — are bitwise
identical across backends.
"""

from dataclasses import dataclass

from repro import telemetry
from repro.engine.runner import run_batch
from repro.engine.specs import PluginSpec
from repro.isa.assembler import Program
from repro.isa.opcodes import Op
from repro.isa.text import render_source
from repro.lint.checker import tainted_tap_pairs
from repro.lint.contracts import contract_rows, \
    contracted_plugin_names, row_pairs
from repro.lint.perturb import DEFAULT_PATTERNS, secret_variants
from repro.lint.progen import CaseGenerator, GeneratedCase
from repro.lint.soundness import divergent_plugins

#: Cases generated per plug-in when no budget is given — enough for
#: every trigger template to appear at least once plus generic fuzz.
DEFAULT_BUDGET = 10


def _control_diverged(baseline, result):
    """Secret-visible divergence of the *plug-in-free* machine."""
    return baseline.cycles != result.cycles \
        or baseline.observations != result.observations


def _plugin_diverged(baseline, results, plugin):
    """Whether any variant moved the plug-in's MLD observably."""
    for result in results:
        if plugin in divergent_plugins(baseline, result,
                                       enabled=(plugin,)):
            return True
    return False


@dataclass(frozen=True)
class Observation:
    """One generated case's differential outcome."""

    case: str                   # generated-case name
    divergent: bool             # plug-in cohort diverged
    baseline_divergent: bool    # control cohort diverged → discarded
    explained: bool             # signature ∩ declared ≠ ∅
    signature: tuple            # sorted (op, tap) pairs
    note: str = ""

    def to_json_dict(self):
        return {"case": self.case, "divergent": self.divergent,
                "baseline_divergent": self.baseline_divergent,
                "explained": self.explained,
                "signature": [list(pair) for pair in self.signature],
                "note": self.note}


@dataclass(frozen=True)
class ContractGap:
    """One learned-vs-declared discrepancy."""

    kind: str                   # "undeclared" | "unwitnessed"
    plugin: str
    pairs: tuple                # sorted (op, tap) pairs
    case: str = ""              # originating case (undeclared gaps)
    detail: str = ""
    witness_source: str = ""    # minimized witness program (.s text)
    witness_spec: str = ""      # runnable SimSpec JSON (baseline)

    def to_json_dict(self):
        return {"kind": self.kind, "plugin": self.plugin,
                "pairs": [list(pair) for pair in self.pairs],
                "case": self.case, "detail": self.detail,
                "witness_source": self.witness_source,
                "witness_spec": self.witness_spec}


@dataclass
class SynthesisResult:
    """Learned-vs-declared contract diff for one plug-in."""

    plugin: str
    budget: int
    seed: int
    declared: tuple             # sorted declared (op, tap) pairs
    learned: tuple              # sorted learned (op, tap) pairs
    witnessed: tuple            # declared pairs seen leaking
    undeclared: tuple = ()      # ContractGap (soundness blind spots)
    unwitnessed: tuple = ()     # ContractGap (precision gaps)
    observations: tuple = ()
    discarded: int = 0          # control-divergent cases dropped

    @property
    def ok(self):
        """No learned-but-undeclared clause — the declared contract
        explains every divergence the fuzzer found."""
        return not self.undeclared

    @property
    def vacuous(self):
        """True when no case diverged (nothing was demonstrable)."""
        return not any(obs.divergent and not obs.baseline_divergent
                       for obs in self.observations)

    def to_json_dict(self):
        return {
            "plugin": self.plugin, "budget": self.budget,
            "seed": self.seed, "ok": self.ok, "vacuous": self.vacuous,
            "declared": [list(pair) for pair in self.declared],
            "learned": [list(pair) for pair in self.learned],
            "witnessed": [list(pair) for pair in self.witnessed],
            "undeclared": [gap.to_json_dict()
                           for gap in self.undeclared],
            "unwitnessed": [gap.to_json_dict()
                            for gap in self.unwitnessed],
            "observations": [obs.to_json_dict()
                             for obs in self.observations],
            "discarded": self.discarded,
        }


# ----------------------------------------------------------------------
# witness minimization
# ----------------------------------------------------------------------

def _without_instruction(program, index):
    """``program`` with instruction ``index`` deleted: pcs renumbered,
    branch targets shifted across the gap (a branch *to* the deleted
    instruction lands on its successor)."""
    instructions = []
    for pc, inst in enumerate(program):
        if pc == index:
            continue
        target = inst.target
        if target is not None and target > index:
            target -= 1
        instructions.append(type(inst)(
            op=inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
            imm=inst.imm, width=inst.width, target=target,
            pc=len(instructions)))
    return Program(instructions, {},
                   secret_regions=program.secret_regions,
                   public_regions=program.public_regions)


def _case_with_program(case, program):
    return GeneratedCase(
        name=case.name, program=program, mem_writes=case.mem_writes,
        mem_blobs=case.mem_blobs, regs=case.regs, taint=case.taint,
        hierarchy=case.hierarchy, max_cycles=case.max_cycles,
        note=case.note)


def _case_cohorts(case, plugin_spec, patterns):
    """(control variants, plug-in variants) for one case."""
    control = secret_variants(
        case.spec(plugins=(), label=f"{case.name}/control"), patterns)
    cohort = secret_variants(
        case.spec(plugins=(plugin_spec,), label=case.name), patterns)
    return control, cohort


def _reproduces(case, plugin_spec, patterns, runner):
    """Divergent under the plug-in AND clean under the control."""
    control, cohort = _case_cohorts(case, plugin_spec, patterns)
    results = runner(control + cohort)
    control_res = results[:len(control)]
    cohort_res = results[len(control):]
    if any(_control_diverged(control_res[0], result)
           for result in control_res[1:]):
        return False
    return _plugin_diverged(cohort_res[0], cohort_res[1:],
                            plugin_spec.name)


def minimize_witness(case, plugin_spec, patterns=DEFAULT_PATTERNS,
                     runner=None):
    """Delta-minimize a divergent case: greedily delete instructions
    while the plug-in cohort still diverges and the control stays
    clean.  HALT is never deleted (termination stays structural, not
    ceiling-dependent).  Deterministic: first-deletable-wins, restart
    after every successful deletion until a fixpoint."""
    runner = runner or (lambda specs: run_batch(specs))
    tel = telemetry.REGISTRY
    current = case
    changed = True
    with tel.phase("lint.synthesize", "minimize"):
        while changed and len(current.program) > 1:
            changed = False
            for index, inst in enumerate(current.program):
                if inst.op is Op.HALT:
                    continue
                candidate = _case_with_program(
                    current,
                    _without_instruction(current.program, index))
                tel.inc("repro_synthesis_minimize_steps_total",
                        help="Deletion candidates tried by witness "
                             "minimization", plugin=plugin_spec.name)
                if _reproduces(candidate, plugin_spec, patterns,
                               runner):
                    current = candidate
                    changed = True
                    break
    return current


# ----------------------------------------------------------------------
# the synthesis pass
# ----------------------------------------------------------------------

def check_synthesis(plugin, budget=DEFAULT_BUDGET, seed=0,
                    patterns=DEFAULT_PATTERNS, workers=1, cache=None,
                    backend=None, declared_rows=None, minimize=True):
    """Differential contract synthesis for one plug-in.

    Generates ``budget`` cases, runs control + plug-in secret-pair
    cohorts through the engine in one batch (the lockstep backend's
    native shape), abstracts every attributable divergence to its
    static leakage signature, and diffs learned vs declared pairs.

    ``declared_rows`` substitutes the compiled contract rows — the
    mutation hook the golden suite uses to prove the differ catches a
    deliberately weakened declaration.  ``minimize=False`` skips
    witness minimization (faster, e.g. for CI smoke budgets).
    """
    tel = telemetry.REGISTRY
    plugin_spec = PluginSpec.of(plugin)
    rows = contract_rows(plugin_spec) if declared_rows is None \
        else tuple(declared_rows)
    declared = frozenset()
    for row in rows:
        declared |= row_pairs(row)
    with tel.phase("lint.synthesize", "generate"):
        cases = CaseGenerator(seed=seed).cases_for(plugin, budget)
        batches = [(case, *_case_cohorts(case, plugin_spec, patterns))
                   for case in cases]
        fleet = [spec for _, control, cohort in batches
                 for spec in control + cohort]
    tel.inc("repro_synthesis_cases_total", len(cases),
            help="Generated differential cases per plug-in",
            plugin=plugin)
    with tel.phase("lint.synthesize", "fleet"):
        results = run_batch(fleet, workers=workers, cache=cache,
                            backend=backend)

    def runner(specs):
        return run_batch(specs, workers=workers, cache=cache,
                         backend=backend)

    observations = []
    witnessed = set()
    undeclared = []
    discarded = 0
    cursor = 0
    for case, control, cohort in batches:
        control_res = results[cursor:cursor + len(control)]
        cursor += len(control)
        cohort_res = results[cursor:cursor + len(cohort)]
        cursor += len(cohort)
        baseline_div = any(_control_diverged(control_res[0], result)
                           for result in control_res[1:])
        divergent = _plugin_diverged(cohort_res[0], cohort_res[1:],
                                     plugin)
        spec = cohort[0]
        signature = tainted_tap_pairs(case.program, taint=spec.taint,
                                      reg_consts=dict(spec.regs))
        explained = bool(signature & declared)
        observations.append(Observation(
            case=case.name, divergent=divergent,
            baseline_divergent=baseline_div,
            explained=explained,
            signature=tuple(sorted(signature)), note=case.note))
        if baseline_div:
            discarded += 1
            continue
        if not divergent:
            continue
        tel.inc("repro_synthesis_divergences_total",
                help="Attributable plug-in divergences found by "
                     "synthesis", plugin=plugin)
        if explained:
            witnessed |= signature & declared
            continue
        # Learned-but-undeclared: the checker could never flag this.
        witness = minimize_witness(case, plugin_spec,
                                   patterns=patterns, runner=runner) \
            if minimize else case
        witness_sig = tainted_tap_pairs(
            witness.program, taint=witness.taint,
            reg_consts=dict(witness.regs))
        undeclared.append(ContractGap(
            kind="undeclared", plugin=plugin,
            pairs=tuple(sorted(witness_sig)), case=case.name,
            detail=case.note,
            witness_source=render_source(witness.program),
            witness_spec=witness.spec(
                plugins=(plugin_spec,),
                label=f"{case.name}/witness").to_json()))

    unwitnessed = tuple(
        ContractGap(kind="unwitnessed", plugin=plugin,
                    pairs=tuple(sorted(row_pairs(row))),
                    detail=row.detail)
        for row in rows if not (row_pairs(row) & witnessed))
    learned = set(witnessed)
    for gap in undeclared:
        learned |= set(gap.pairs)
    return SynthesisResult(
        plugin=plugin, budget=budget, seed=seed,
        declared=tuple(sorted(declared)),
        learned=tuple(sorted(learned)),
        witnessed=tuple(sorted(witnessed)),
        undeclared=tuple(undeclared), unwitnessed=unwitnessed,
        observations=tuple(observations), discarded=discarded)


def synthesize_all(opts=None, budget=DEFAULT_BUDGET, seed=0,
                   patterns=DEFAULT_PATTERNS, workers=1, cache=None,
                   backend=None, minimize=True):
    """Contract synthesis for every contracted plug-in (or ``opts``).

    Returns ``{plugin: SynthesisResult}`` in sorted name order.
    """
    names = tuple(opts) if opts is not None \
        else contracted_plugin_names()
    return {name: check_synthesis(
        name, budget=budget, seed=seed, patterns=patterns,
        workers=workers, cache=cache, backend=backend,
        minimize=minimize) for name in sorted(names)}


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def report_json(results, budget=None, seed=None):
    """Machine-readable report over ``{plugin: SynthesisResult}``."""
    payload = {
        "plugins": {name: result.to_json_dict()
                    for name, result in sorted(results.items())},
        "ok": all(result.ok for result in results.values()),
    }
    if budget is not None:
        payload["budget"] = budget
    if seed is not None:
        payload["seed"] = seed
    return payload


def render_report(results):
    """The learned-vs-declared status table for a result mapping."""
    header = (f"{'optimization':30s} {'declared':>8s} {'learned':>8s} "
              f"{'witnessed':>9s} {'gaps':>5s} {'unwit.':>6s} "
              f"{'verdict':>8s}")
    lines = [header, "-" * len(header)]
    for name, result in sorted(results.items()):
        verdict = "SOUND" if result.ok else "GAP"
        if result.ok and result.vacuous:
            verdict = "VACUOUS"
        lines.append(
            f"{name:30s} {len(result.declared):>8d} "
            f"{len(result.learned):>8d} {len(result.witnessed):>9d} "
            f"{len(result.undeclared):>5d} "
            f"{len(result.unwitnessed):>6d} {verdict:>8s}")
    gaps = [(name, gap) for name, result in sorted(results.items())
            for gap in result.undeclared]
    for name, gap in gaps:
        lines.append("")
        lines.append(f"LEARNED-BUT-UNDECLARED {name} "
                     f"(case {gap.case}): pairs {list(gap.pairs)}")
        lines.append("minimized witness:")
        lines.extend("    " + line
                     for line in gap.witness_source.splitlines())
    return "\n".join(lines)
