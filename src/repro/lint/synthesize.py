"""Contract synthesis: learn leakage contracts, diff against declared.

The soundness harness (:mod:`repro.lint.soundness`) can only *check*
the hand-written ``LINT_CONTRACT`` each optimization ships.  This
module inverts the direction, following the leakage-contract-synthesis
line of work (arXiv 2401.09383, 2402.00641): infer each plug-in's
contract from the simulator itself and diff it against the declaration.

Observation
    For every generated case (:mod:`repro.lint.progen`) the plug-in
    runs twice over a secret-pair cohort built by the shared
    perturbation helper (:mod:`repro.lint.perturb`): once with *no*
    plug-ins (the control) and once with exactly the plug-in under
    study.  A case where the control itself diverges is discarded —
    its divergence belongs to the baseline machine (cache addressing,
    port contention on secret-dependent paths), not to the plug-in's
    MLD.  A case where only the plug-in cohort diverges is a genuine
    dynamic leak observation.

Generalization
    Each observed leak is abstracted to the case's *static leakage
    signature* — the canonical ``(op, tap)`` pairs through which a
    secret can reach an operand (:func:`repro.lint.checker.
    tainted_tap_pairs`), the same vocabulary contract rows compile to
    (:func:`repro.lint.contracts.row_pairs`).  The learned contract is
    the union of signatures over divergent observations, intersected
    against the declared pair set.

``when``-clause learning
    Divergent, explained observations are then re-fuzzed under every
    ablated construction the descriptor's ``"domains"`` declare
    (:func:`repro.lint.contracts.when_candidates`): a kwarg condition
    whose ablation *kills* the divergence is learned as a minimal
    ``when`` clause for the signature.  A divergence that *persists*
    under an ablation must still be covered by a declared row that is
    selected under the ablated construction — otherwise the declared
    contract is conditional on something reality is not, which is a
    soundness gap carrying a runnable minimized witness under the
    ablated construction.

Diff
    * **learned-but-undeclared** — a divergent observation whose
      signature shares *no* pair with the declared contract: the
      checker could never have flagged this program, so the soundness
      harness has a blind spot.  Each such gap carries a
      delta-minimized witness program (+ a runnable spec) that still
      reproduces the divergence with a clean control.  Declared rows
      are filtered by their ``when`` conditions against the *active*
      construction first, so a declaration weakened to a condition
      that does not hold surfaces here, with a witness.
    * **when-undeclared** — the persists-under-ablation case above:
      fails the run like an undeclared pair.
    * **when-loose** — a condition was learned necessary, but the
      covering declared row fires unconditionally: not unsound, but
      the lint layer over-flags constructions that cannot leak.
      Advisory, like unwitnessed rows.
    * **declared-but-never-witnessed** — a declared row none of whose
      pairs intersects any divergent observation at this budget: not
      unsound, but unexercised (the lint layer may over-flag).

``check_synthesis`` mirrors ``soundness.check_soundness`` (one
plug-in), ``synthesize_all`` sweeps every contracted plug-in, and the
``python -m repro synthesize`` CLI renders or archives the report.
All batches go through :func:`repro.engine.runner.run_batch`; the
secret-variant cohorts are the lockstep backend's native shape, and
results — hence learned contracts and witnesses — are bitwise
identical across backends.
"""

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro import telemetry
from repro.engine.runner import run_batch
from repro.engine.specs import PluginSpec, SimSpec
from repro.isa.assembler import Program
from repro.isa.opcodes import Op
from repro.isa.text import render_source
from repro.lint.checker import tainted_tap_pairs
from repro.lint.contracts import ContractRow, LintError, WhenCandidate, \
    contract_defaults, contract_rows, contracted_plugin_names, \
    display_value, row_pairs, when_candidates, when_holds
from repro.lint.perturb import DEFAULT_PATTERNS, secret_variants
from repro.lint.progen import CaseGenerator, GeneratedCase
from repro.lint.soundness import divergent_plugins
from repro.pipeline.cpu import SimulationError

#: Cases generated per plug-in when no budget is given — enough for
#: every trigger template to appear at least once plus generic fuzz.
DEFAULT_BUDGET = 10

#: A batch runner: specs in, results in the same order out.
Runner = Callable[[Sequence[SimSpec]], Sequence]


def _control_diverged(baseline: object, result: object) -> bool:
    """Secret-visible divergence of the *plug-in-free* machine."""
    return baseline.cycles != result.cycles \
        or baseline.observations != result.observations


def _plugin_diverged(baseline: object, results: Iterable,
                     plugin: str) -> bool:
    """Whether any variant moved the plug-in's MLD observably."""
    for result in results:
        if plugin in divergent_plugins(baseline, result,
                                       enabled=(plugin,)):
            return True
    return False


@dataclass(frozen=True)
class Observation:
    """One generated case's differential outcome."""

    case: str                   # generated-case name
    divergent: bool             # plug-in cohort diverged
    baseline_divergent: bool    # control cohort diverged → discarded
    explained: bool             # signature ∩ declared ≠ ∅
    signature: tuple            # sorted (op, tap) pairs
    note: str = ""

    def to_json_dict(self) -> dict:
        return {"case": self.case, "divergent": self.divergent,
                "baseline_divergent": self.baseline_divergent,
                "explained": self.explained,
                "signature": [list(pair) for pair in self.signature],
                "note": self.note}


@dataclass(frozen=True)
class ContractGap:
    """One learned-vs-declared discrepancy."""

    kind: str       # "undeclared" | "unwitnessed" | "when_undeclared"
    plugin: str     # | "when_loose"
    pairs: tuple                # sorted (op, tap) pairs
    case: str = ""              # originating case (undeclared gaps)
    detail: str = ""
    witness_source: str = ""    # minimized witness program (.s text)
    witness_spec: str = ""      # runnable SimSpec JSON (baseline)

    def to_json_dict(self) -> dict:
        return {"kind": self.kind, "plugin": self.plugin,
                "pairs": [list(pair) for pair in self.pairs],
                "case": self.case, "detail": self.detail,
                "witness_source": self.witness_source,
                "witness_spec": self.witness_spec}


@dataclass(frozen=True)
class LearnedRow:
    """A signature plus the kwarg conditions learned necessary for it.

    The dynamic dual of a declared conditional row: ``pairs`` leak
    only while every ``when`` condition holds of the construction —
    each was verified by an ablation run where dropping exactly that
    condition's support killed the divergence.
    """

    plugin: str
    pairs: tuple                # sorted (op, tap) pairs (∩ declared)
    when: tuple                 # sorted (kwarg, value) conditions
    cases: tuple = ()           # contributing case names

    def to_json_dict(self) -> dict:
        return {"plugin": self.plugin,
                "pairs": [list(pair) for pair in self.pairs],
                "when": [[kwarg, display_value(value)]
                         for kwarg, value in self.when],
                "cases": list(self.cases)}


@dataclass
class SynthesisResult:
    """Learned-vs-declared contract diff for one plug-in."""

    plugin: str
    budget: int
    seed: int
    declared: tuple             # sorted declared (op, tap) pairs
    learned: tuple              # sorted learned (op, tap) pairs
    witnessed: tuple            # declared pairs seen leaking
    undeclared: tuple = ()      # ContractGap (soundness blind spots)
    unwitnessed: tuple = ()     # ContractGap (precision gaps)
    observations: tuple = ()
    discarded: int = 0          # control-divergent cases dropped
    learned_rows: tuple = ()    # LearnedRow (kwarg-conditional)
    when_gaps: tuple = ()       # ContractGap kind="when_undeclared"
    when_loose: tuple = ()      # ContractGap kind="when_loose"

    @property
    def ok(self) -> bool:
        """No learned-but-undeclared clause and no condition the
        declared contract hangs on that reality ignores — the
        declaration explains every divergence the fuzzer found,
        under the declared construction and under every ablation."""
        return not self.undeclared and not self.when_gaps

    @property
    def vacuous(self) -> bool:
        """True when no case diverged (nothing was demonstrable)."""
        return not any(obs.divergent and not obs.baseline_divergent
                       for obs in self.observations)

    def to_json_dict(self) -> dict:
        return {
            "plugin": self.plugin, "budget": self.budget,
            "seed": self.seed, "ok": self.ok, "vacuous": self.vacuous,
            "declared": [list(pair) for pair in self.declared],
            "learned": [list(pair) for pair in self.learned],
            "witnessed": [list(pair) for pair in self.witnessed],
            "undeclared": [gap.to_json_dict()
                           for gap in self.undeclared],
            "unwitnessed": [gap.to_json_dict()
                            for gap in self.unwitnessed],
            "observations": [obs.to_json_dict()
                             for obs in self.observations],
            "discarded": self.discarded,
            "learned_rows": [row.to_json_dict()
                             for row in self.learned_rows],
            "when_gaps": [gap.to_json_dict()
                          for gap in self.when_gaps],
            "when_loose": [gap.to_json_dict()
                           for gap in self.when_loose],
        }


# ----------------------------------------------------------------------
# witness minimization
# ----------------------------------------------------------------------

def _without_instruction(program: Program, index: int) -> Program:
    """``program`` with instruction ``index`` deleted: pcs renumbered,
    branch targets shifted across the gap (a branch *to* the deleted
    instruction lands on its successor)."""
    instructions = []
    for pc, inst in enumerate(program):
        if pc == index:
            continue
        target = inst.target
        if target is not None and target > index:
            target -= 1
        instructions.append(type(inst)(
            op=inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
            imm=inst.imm, width=inst.width, target=target,
            pc=len(instructions)))
    return Program(instructions, {},
                   secret_regions=program.secret_regions,
                   public_regions=program.public_regions)


def _case_with_program(case: GeneratedCase,
                       program: Program) -> GeneratedCase:
    return GeneratedCase(
        name=case.name, program=program, mem_writes=case.mem_writes,
        mem_blobs=case.mem_blobs, regs=case.regs, taint=case.taint,
        hierarchy=case.hierarchy, max_cycles=case.max_cycles,
        note=case.note)


def _case_cohorts(case: GeneratedCase, plugin_spec: PluginSpec,
                  patterns: tuple) -> tuple[list, list]:
    """(control variants, plug-in variants) for one case."""
    control = secret_variants(
        case.spec(plugins=(), label=f"{case.name}/control"), patterns)
    cohort = secret_variants(
        case.spec(plugins=(plugin_spec,), label=case.name), patterns)
    return control, cohort


def _reproduces(case: GeneratedCase, plugin_spec: PluginSpec,
                patterns: tuple, runner: Runner) -> bool:
    """Divergent under the plug-in AND clean under the control.

    A deletion candidate that no longer halts (deleted loop counter)
    simply fails to reproduce — it is rejected, not an error."""
    control, cohort = _case_cohorts(case, plugin_spec, patterns)
    try:
        results = runner(control + cohort)
    except SimulationError:
        return False
    control_res = results[:len(control)]
    cohort_res = results[len(control):]
    if any(_control_diverged(control_res[0], result)
           for result in control_res[1:]):
        return False
    return _plugin_diverged(cohort_res[0], cohort_res[1:],
                            plugin_spec.name)


def minimize_witness(case: GeneratedCase, plugin_spec: PluginSpec,
                     patterns: tuple = DEFAULT_PATTERNS,
                     runner: Runner | None = None) -> GeneratedCase:
    """Delta-minimize a divergent case: greedily delete instructions
    while the plug-in cohort still diverges and the control stays
    clean.  HALT is never deleted (termination stays structural, not
    ceiling-dependent).  Deterministic: first-deletable-wins, restart
    after every successful deletion until a fixpoint."""
    runner = runner or (lambda specs: run_batch(specs))
    tel = telemetry.REGISTRY
    current = case
    changed = True
    with tel.phase("lint.synthesize", "minimize"):
        while changed and len(current.program) > 1:
            changed = False
            for index, inst in enumerate(current.program):
                if inst.op is Op.HALT:
                    continue
                candidate = _case_with_program(
                    current,
                    _without_instruction(current.program, index))
                tel.inc("repro_synthesis_minimize_steps_total",
                        help="Deletion candidates tried by witness "
                             "minimization", plugin=plugin_spec.name)
                if _reproduces(candidate, plugin_spec, patterns,
                               runner):
                    current = candidate
                    changed = True
                    break
    return current


# ----------------------------------------------------------------------
# when-clause learning
# ----------------------------------------------------------------------

def _ablated_plugin_spec(plugin: str,
                         candidate: WhenCandidate,
                         ) -> PluginSpec | None:
    """The plug-in spec for an ablated construction, or ``None`` when
    the construction is invalid (e.g. an op-set kwarg ablated empty —
    the plug-in cannot be built, so the axis is trivially a
    condition)."""
    try:
        spec = PluginSpec.of(plugin, **candidate.construction())
        spec.build()
        return spec
    except (ValueError, TypeError, LintError):
        return None


def _rows_under(plugin: str, candidate: WhenCandidate,
                declared_rows: tuple[ContractRow, ...] | None,
                defaults: Mapping) -> tuple[ContractRow, ...]:
    """The declared rows that apply under ``candidate``'s ablated
    construction — recompiled from the descriptor, or (for the
    mutation hook's direct rows) re-filtered by their ``when``."""
    construction = candidate.construction()
    if declared_rows is None:
        try:
            return contract_rows(PluginSpec.of(plugin, **construction))
        except LintError:
            return ()
    return tuple(row for row in declared_rows
                 if when_holds(row.when, construction, defaults,
                               plugin))


def _learn_when(plugin: str, plugin_spec: PluginSpec,
                study: dict[frozenset, GeneratedCase],
                declared_rows: tuple[ContractRow, ...] | None,
                active_rows: tuple[ContractRow, ...],
                declared: frozenset, patterns: tuple, runner: Runner,
                minimize: bool,
                ) -> tuple[tuple, tuple, tuple]:
    """Ablation study over explained divergent signatures.

    Returns ``(learned_rows, when_gaps, when_loose)`` — see the module
    docstring.  One cohort runs per (ablation axis × distinct
    signature); everything is batched through one ``runner`` call.
    """
    tel = telemetry.REGISTRY
    candidates = when_candidates(plugin_spec)
    if not candidates or not study:
        return (), (), ()
    defaults = contract_defaults(plugin)
    ordered = sorted(study.items(),
                     key=lambda item: tuple(sorted(item[0])))
    jobs = []
    conditions: dict[frozenset, list] = {}
    for candidate in candidates:
        ablated_spec = _ablated_plugin_spec(plugin, candidate)
        if ablated_spec is None:
            # Unbuildable ablation: the plug-in cannot exist without
            # this clause, so it is necessary for every signature.
            for sig, _ in ordered:
                conditions.setdefault(sig, []).append(
                    candidate.condition)
            continue
        for sig, case in ordered:
            label = f"{case.name}/when/{candidate.kwarg}"
            cohort = secret_variants(
                case.spec(plugins=(ablated_spec,), label=label),
                patterns)
            jobs.append((candidate, ablated_spec, sig, case, cohort))
    gaps: list[ContractGap] = []
    if jobs:
        with tel.phase("lint.synthesize", "ablate"):
            results = runner([spec for *_, cohort in jobs
                              for spec in cohort])
        tel.inc("repro_synthesis_ablations_total", len(jobs),
                help="Ablated re-fuzz cohorts run by when-clause "
                     "synthesis", plugin=plugin)
        cursor = 0
        for candidate, ablated_spec, sig, case, cohort in jobs:
            cohort_res = results[cursor:cursor + len(cohort)]
            cursor += len(cohort)
            if not _plugin_diverged(cohort_res[0], cohort_res[1:],
                                    plugin):
                conditions.setdefault(sig, []).append(
                    candidate.condition)
                continue
            # The leak persists without this clause's support: some
            # declared row must still apply under the ablation.
            ablated_rows = _rows_under(plugin, candidate,
                                       declared_rows, defaults)
            covered = frozenset()
            for row in ablated_rows:
                covered |= row_pairs(row)
            if sig & covered:
                continue
            witness = minimize_witness(
                case, ablated_spec, patterns=patterns,
                runner=runner) if minimize else case
            gaps.append(ContractGap(
                kind="when_undeclared", plugin=plugin,
                pairs=tuple(sorted(sig)), case=case.name,
                detail=(f"still diverges under "
                        f"{candidate.describe()} but no declared row "
                        f"applies to that construction"),
                witness_source=render_source(witness.program),
                witness_spec=witness.spec(
                    plugins=(ablated_spec,),
                    label=f"{case.name}/when-witness").to_json()))
    # Aggregate learned conditional rows + flag loose declared rows.
    merged: dict[tuple, LearnedRow] = {}
    loose: list[ContractGap] = []
    loose_seen = set()
    for sig, case in ordered:
        conds = tuple(sorted(
            set(conditions.get(sig, ())),
            key=lambda cond: (cond[0], display_value(cond[1]))))
        if not conds:
            continue
        pairs = tuple(sorted(sig & declared))
        key = (pairs, conds)
        if key in merged:
            merged[key] = LearnedRow(
                plugin=plugin, pairs=pairs, when=conds,
                cases=merged[key].cases + (case.name,))
        else:
            merged[key] = LearnedRow(plugin=plugin, pairs=pairs,
                                     when=conds, cases=(case.name,))
        covering = [row for row in active_rows
                    if row_pairs(row) & sig]
        for kwarg, value in conds:
            for row in covering:
                if kwarg in dict(row.when) or row.ops_kwarg == kwarg:
                    continue
                loose_key = (kwarg, tuple(sorted(row_pairs(row))))
                if loose_key in loose_seen:
                    continue
                loose_seen.add(loose_key)
                loose.append(ContractGap(
                    kind="when_loose", plugin=plugin,
                    pairs=tuple(sorted(row_pairs(row) & sig)),
                    case=case.name,
                    detail=(f"row fires unconditionally but the "
                            f"observed leak needs "
                            f"{kwarg}={display_value(value)}")))
    return tuple(merged.values()), tuple(gaps), tuple(loose)


# ----------------------------------------------------------------------
# the synthesis pass
# ----------------------------------------------------------------------

def check_synthesis(plugin: str, budget: int = DEFAULT_BUDGET,
                    seed: int = 0,
                    patterns: tuple = DEFAULT_PATTERNS,
                    workers: int = 1, cache: object = None,
                    backend: str | None = None,
                    declared_rows: tuple[ContractRow, ...]
                    | None = None,
                    minimize: bool = True,
                    learn_when: bool = True) -> SynthesisResult:
    """Differential contract synthesis for one plug-in.

    Generates ``budget`` cases, runs control + plug-in secret-pair
    cohorts through the engine in one batch (the lockstep backend's
    native shape), abstracts every attributable divergence to its
    static leakage signature, and diffs learned vs declared pairs.
    Explained divergences are then re-fuzzed under the descriptor's
    ``"domains"`` ablations to learn minimal ``when`` conditions
    (``learn_when=False`` skips that study).

    ``declared_rows`` substitutes the compiled contract rows — the
    mutation hook the golden suite uses to prove the differ catches a
    deliberately weakened declaration.  Rows whose ``when`` conditions
    do not hold under the plug-in's *active* construction are dropped
    before diffing, exactly as descriptor compilation would drop them.
    ``minimize=False`` skips witness minimization (faster, e.g. for CI
    smoke budgets).
    """
    tel = telemetry.REGISTRY
    plugin_spec = PluginSpec.of(plugin)
    defaults = contract_defaults(plugin)
    active_kwargs = dict(defaults)
    active_kwargs.update(dict(plugin_spec.kwargs))
    rows = contract_rows(plugin_spec) if declared_rows is None \
        else tuple(row for row in declared_rows
                   if when_holds(row.when, active_kwargs, defaults,
                                 plugin))
    declared = frozenset()
    for row in rows:
        declared |= row_pairs(row)
    with tel.phase("lint.synthesize", "generate"):
        cases = CaseGenerator(seed=seed).cases_for(plugin, budget)
        batches = [(case, *_case_cohorts(case, plugin_spec, patterns))
                   for case in cases]
        fleet = [spec for _, control, cohort in batches
                 for spec in control + cohort]
    tel.inc("repro_synthesis_cases_total", len(cases),
            help="Generated differential cases per plug-in",
            plugin=plugin)
    with tel.phase("lint.synthesize", "fleet"):
        results = run_batch(fleet, workers=workers, cache=cache,
                            backend=backend)

    def runner(specs: Sequence[SimSpec]) -> Sequence:
        return run_batch(specs, workers=workers, cache=cache,
                         backend=backend)

    observations = []
    witnessed = set()
    undeclared = []
    study: dict[frozenset, GeneratedCase] = {}
    discarded = 0
    cursor = 0
    for case, control, cohort in batches:
        control_res = results[cursor:cursor + len(control)]
        cursor += len(control)
        cohort_res = results[cursor:cursor + len(cohort)]
        cursor += len(cohort)
        baseline_div = any(_control_diverged(control_res[0], result)
                           for result in control_res[1:])
        divergent = _plugin_diverged(cohort_res[0], cohort_res[1:],
                                     plugin)
        spec = cohort[0]
        signature = tainted_tap_pairs(case.program, taint=spec.taint,
                                      reg_consts=dict(spec.regs))
        explained = bool(signature & declared)
        observations.append(Observation(
            case=case.name, divergent=divergent,
            baseline_divergent=baseline_div,
            explained=explained,
            signature=tuple(sorted(signature)), note=case.note))
        if baseline_div:
            discarded += 1
            continue
        if not divergent:
            continue
        tel.inc("repro_synthesis_divergences_total",
                help="Attributable plug-in divergences found by "
                     "synthesis", plugin=plugin)
        if explained:
            witnessed |= signature & declared
            study.setdefault(signature, case)
            continue
        # Learned-but-undeclared: the checker could never flag this.
        witness = minimize_witness(case, plugin_spec,
                                   patterns=patterns, runner=runner) \
            if minimize else case
        witness_sig = tainted_tap_pairs(
            witness.program, taint=witness.taint,
            reg_consts=dict(witness.regs))
        undeclared.append(ContractGap(
            kind="undeclared", plugin=plugin,
            pairs=tuple(sorted(witness_sig)), case=case.name,
            detail=case.note,
            witness_source=render_source(witness.program),
            witness_spec=witness.spec(
                plugins=(plugin_spec,),
                label=f"{case.name}/witness").to_json()))

    learned_rows: tuple = ()
    when_gaps: tuple = ()
    when_loose: tuple = ()
    if learn_when:
        learned_rows, when_gaps, when_loose = _learn_when(
            plugin, plugin_spec, study, declared_rows, rows, declared,
            patterns, runner, minimize)
    unwitnessed = tuple(
        ContractGap(kind="unwitnessed", plugin=plugin,
                    pairs=tuple(sorted(row_pairs(row))),
                    detail=row.detail)
        for row in rows if not (row_pairs(row) & witnessed))
    learned = set(witnessed)
    for gap in undeclared:
        learned |= set(gap.pairs)
    return SynthesisResult(
        plugin=plugin, budget=budget, seed=seed,
        declared=tuple(sorted(declared)),
        learned=tuple(sorted(learned)),
        witnessed=tuple(sorted(witnessed)),
        undeclared=tuple(undeclared), unwitnessed=unwitnessed,
        observations=tuple(observations), discarded=discarded,
        learned_rows=learned_rows, when_gaps=when_gaps,
        when_loose=when_loose)


def synthesize_all(opts: Iterable[str] | None = None,
                   budget: int = DEFAULT_BUDGET, seed: int = 0,
                   patterns: tuple = DEFAULT_PATTERNS,
                   workers: int = 1, cache: object = None,
                   backend: str | None = None, minimize: bool = True,
                   learn_when: bool = True,
                   ) -> dict[str, SynthesisResult]:
    """Contract synthesis for every contracted plug-in (or ``opts``).

    Returns ``{plugin: SynthesisResult}`` in sorted name order.
    """
    names = tuple(opts) if opts is not None \
        else contracted_plugin_names()
    return {name: check_synthesis(
        name, budget=budget, seed=seed, patterns=patterns,
        workers=workers, cache=cache, backend=backend,
        minimize=minimize, learn_when=learn_when)
        for name in sorted(names)}


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def report_json(results: Mapping[str, SynthesisResult],
                budget: int | None = None,
                seed: int | None = None) -> dict:
    """Machine-readable report over ``{plugin: SynthesisResult}``."""
    payload = {
        "plugins": {name: result.to_json_dict()
                    for name, result in sorted(results.items())},
        "ok": all(result.ok for result in results.values()),
    }
    if budget is not None:
        payload["budget"] = budget
    if seed is not None:
        payload["seed"] = seed
    return payload


def render_report(results: Mapping[str, SynthesisResult]) -> str:
    """The learned-vs-declared status table for a result mapping."""
    header = (f"{'optimization':30s} {'declared':>8s} {'learned':>8s} "
              f"{'witnessed':>9s} {'gaps':>5s} {'unwit.':>6s} "
              f"{'when':>5s} {'verdict':>8s}")
    lines = [header, "-" * len(header)]
    for name, result in sorted(results.items()):
        verdict = "SOUND" if result.ok else "GAP"
        if result.ok and result.vacuous:
            verdict = "VACUOUS"
        lines.append(
            f"{name:30s} {len(result.declared):>8d} "
            f"{len(result.learned):>8d} {len(result.witnessed):>9d} "
            f"{len(result.undeclared) + len(result.when_gaps):>5d} "
            f"{len(result.unwitnessed):>6d} "
            f"{len(result.learned_rows):>5d} {verdict:>8s}")
    for name, result in sorted(results.items()):
        for row in result.learned_rows:
            conds = ", ".join(f"{kwarg}={display_value(value)}"
                              for kwarg, value in row.when)
            lines.append(f"  when {name}: {list(row.pairs)} "
                         f"only while {conds}")
        for gap in result.when_loose:
            lines.append(f"  loose {name}: {gap.detail}")
    gaps = [(name, gap) for name, result in sorted(results.items())
            for gap in result.undeclared + result.when_gaps]
    for name, gap in gaps:
        lines.append("")
        label = "LEARNED-BUT-UNDECLARED" if gap.kind == "undeclared" \
            else "WHEN-UNDECLARED"
        lines.append(f"{label} {name} "
                     f"(case {gap.case}): pairs {list(gap.pairs)}")
        if gap.detail:
            lines.append(f"  {gap.detail}")
        lines.append("minimized witness:")
        lines.extend("    " + line
                     for line in gap.witness_source.splitlines())
    return "\n".join(lines)
