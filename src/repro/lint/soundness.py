"""Differential soundness validation: dynamic divergence ⊆ static flags.

The checker's claim is *no false negatives*: if running a spec with two
different secrets makes any enabled optimization behave observably
differently (its MLD diverges), the checker must have flagged that
optimization on the program.  This module closes the loop:

1. :func:`~repro.lint.perturb.secret_variants` (the perturbation
   helper shared with :mod:`repro.lint.synthesize`) derives
   secret-pair specs by XOR-perturbing exactly the bytes the taint
   seed calls secret — everything else (program, geometry, seeds,
   public inputs) is held fixed, so any observable difference is
   attributable to the secret;
2. the variants run through :func:`repro.engine.runner.run_batch`
   (cache-friendly, deterministic);
3. :func:`divergent_plugins` compares per-plug-in observation stats
   and cycle counts between runs;
4. :func:`check_soundness` asserts the divergent set is a subset of
   the statically flagged set.

A spec whose variants never diverge passes vacuously — that is the
checker being *allowed* to over-approximate (flagging is permitted;
missing is not).
"""

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro import telemetry
from repro.engine.cache import ResultCache
from repro.engine.session import RunResult
from repro.engine.specs import SimSpec
from repro.lint.report import LintReport
from repro.engine.runner import run_batch
from repro.lint.checker import lint_spec
from repro.lint.perturb import (
    DEFAULT_PATTERNS, secret_regions_of, secret_variants,
)

__all__ = [
    "DEFAULT_PATTERNS", "SoundnessResult", "check_soundness",
    "divergent_plugins", "secret_regions_of", "secret_variants",
]


def divergent_plugins(result_a: RunResult, result_b: RunResult,
                      enabled: Iterable[str] = ()) -> set[str]:
    """Plug-in names whose dynamic behaviour differs between two runs.

    Per-plug-in observation stats are the MLD outcome counters the
    plug-ins maintain (silent vs non-silent cases, reuse hits, squash
    counts, packs, credits...).  A cycle-count difference with
    identical per-plug-in stats is still attributed to every enabled
    optimization: the timing *is* the observable, and on the
    single-plug-in attack specs the attribution is exact.
    """
    stats_a = result_a.observations.get("plugins", {})
    stats_b = result_b.observations.get("plugins", {})
    names = set(stats_a) | set(stats_b) | set(enabled)
    names.discard("pipeline-tracer")
    divergent = {name for name in names
                 if stats_a.get(name) != stats_b.get(name)}
    if result_a.cycles != result_b.cycles:
        divergent |= {name for name in names}
    return divergent


@dataclass
class SoundnessResult:
    """Outcome of one spec's differential soundness check."""

    label: str
    flagged: tuple              # plug-ins the checker flagged
    divergent: tuple            # plug-ins that dynamically diverged
    unflagged: tuple            # divergent but not flagged — BUG
    variants: int = 0
    details: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.unflagged

    @property
    def vacuous(self) -> bool:
        """True when no variant diverged (nothing was demonstrable)."""
        return not self.divergent


def check_soundness(spec: SimSpec,
                    patterns: Sequence[int] = DEFAULT_PATTERNS,
                    workers: int = 1,
                    cache: ResultCache | None = None,
                    report: LintReport | None = None,
                    backend: object = None) -> SoundnessResult:
    """Differential no-false-negatives check for one spec.

    Runs the secret-pair variants through the engine, diffs every
    variant against the baseline, and compares the dynamically
    divergent plug-in set against the statically flagged one.  Pass a
    precomputed ``report`` (from :func:`~repro.lint.checker.lint_spec`)
    to skip re-linting.

    ``backend`` selects the execution backend
    (:mod:`repro.engine.backends`).  The variant batch is the lockstep
    backend's native shape — N secret-perturbed trials of one program
    — so ``backend="lockstep"`` runs the whole differential in one
    shared-decode cohort with no per-trial process setup; results are
    bitwise identical whichever backend runs them.
    """
    tel = telemetry.REGISTRY
    report = report if report is not None else lint_spec(spec)
    flagged = set(report.leaking_plugins())
    variants = secret_variants(spec, patterns=patterns)
    tel.inc("repro_soundness_checks_total",
            help="Differential soundness checks run")
    tel.inc("repro_soundness_variants_total", max(0, len(variants) - 1),
            help="Secret-perturbed variants executed by soundness checks")
    with tel.phase("lint.soundness", "variants"):
        results = run_batch(variants, workers=workers, cache=cache,
                            backend=backend)
    baseline, rest = results[0], results[1:]
    enabled = tuple(plugin.name for plugin in spec.plugins)
    divergent: set[str] = set()
    details: list[tuple[str, list[str]]] = []
    for variant_spec, result in zip(variants[1:], rest):
        delta = divergent_plugins(baseline, result, enabled=enabled)
        if delta:
            details.append((variant_spec.label, sorted(delta)))
        divergent |= delta
    if divergent:
        tel.inc("repro_soundness_divergences_total", len(divergent),
                help="Plug-ins observed dynamically divergent per check")
    return SoundnessResult(
        label=spec.label or "<spec>",
        flagged=tuple(sorted(flagged)),
        divergent=tuple(sorted(divergent)),
        unflagged=tuple(sorted(divergent - flagged)),
        variants=len(variants) - 1,
        details=details)
