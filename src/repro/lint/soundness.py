"""Differential soundness validation: dynamic divergence ⊆ static flags.

The checker's claim is *no false negatives*: if running a spec with two
different secrets makes any enabled optimization behave observably
differently (its MLD diverges), the checker must have flagged that
optimization on the program.  This module closes the loop:

1. :func:`secret_variants` derives secret-pair specs by XOR-perturbing
   exactly the bytes the taint seed calls secret — everything else
   (program, geometry, seeds, public inputs) is held fixed, so any
   observable difference is attributable to the secret;
2. the variants run through :func:`repro.engine.runner.run_batch`
   (cache-friendly, deterministic);
3. :func:`divergent_plugins` compares per-plug-in observation stats
   and cycle counts between runs;
4. :func:`check_soundness` asserts the divergent set is a subset of
   the statically flagged set.

A spec whose variants never diverge passes vacuously — that is the
checker being *allowed* to over-approximate (flagging is permitted;
missing is not).
"""

from dataclasses import dataclass, field

from repro.engine.runner import run_batch
from repro.lint.checker import lint_spec

#: Byte patterns XORed over the secret regions to build variants.
#: 0xA5/0x5A flip mixed bit patterns, 0xFF flips everything; together
#: with the unmodified baseline they exercise equality MLDs (silent
#: stores, reuse, VP) and width MLDs (packing, early termination).
DEFAULT_PATTERNS = (0xA5, 0x5A, 0xFF)


def _perturb_write(entry, regions, pattern):
    addr, value, width = entry
    flipped = value
    for index in range(width):
        byte_addr = addr + index
        if any(start <= byte_addr < end for start, end in regions):
            flipped ^= pattern << (8 * index)
    return (addr, flipped, width)


def _perturb_blob(entry, regions, pattern):
    addr, data = entry
    blob = bytearray(bytes(data))
    for index in range(len(blob)):
        byte_addr = addr + index
        if any(start <= byte_addr < end for start, end in regions):
            blob[index] ^= pattern
    return (addr, bytes(blob))


def secret_regions_of(spec):
    """The spec's effective secret byte ranges (taint + directives)."""
    regions = list(spec.program.secret_regions)
    if spec.taint is not None:
        regions.extend(spec.taint.secret)
    return tuple(sorted(set(regions)))


def secret_variants(spec, patterns=DEFAULT_PATTERNS):
    """Baseline + secret-perturbed variants of ``spec``.

    Returns ``[spec, variant1, ...]``; with no secret regions declared
    the baseline alone comes back (nothing to perturb — the harness
    then passes vacuously).
    """
    regions = secret_regions_of(spec)
    variants = [spec]
    if not regions:
        return variants
    for pattern in patterns:
        mem_writes = tuple(_perturb_write(entry, regions, pattern)
                           for entry in spec.mem_writes)
        mem_blobs = tuple(_perturb_blob(entry, regions, pattern)
                          for entry in spec.mem_blobs)
        if mem_writes == spec.mem_writes and \
                mem_blobs == spec.mem_blobs:
            continue                    # secret not in the image
        variants.append(spec.replace(
            mem_writes=mem_writes, mem_blobs=mem_blobs,
            label=f"{spec.label or 'spec'}/secret^{pattern:#04x}"))
    return variants


def divergent_plugins(result_a, result_b, enabled=()):
    """Plug-in names whose dynamic behaviour differs between two runs.

    Per-plug-in observation stats are the MLD outcome counters the
    plug-ins maintain (silent vs non-silent cases, reuse hits, squash
    counts, packs, credits...).  A cycle-count difference with
    identical per-plug-in stats is still attributed to every enabled
    optimization: the timing *is* the observable, and on the
    single-plug-in attack specs the attribution is exact.
    """
    stats_a = result_a.observations.get("plugins", {})
    stats_b = result_b.observations.get("plugins", {})
    names = set(stats_a) | set(stats_b) | set(enabled)
    names.discard("pipeline-tracer")
    divergent = {name for name in names
                 if stats_a.get(name) != stats_b.get(name)}
    if result_a.cycles != result_b.cycles:
        divergent |= {name for name in names}
    return divergent


@dataclass
class SoundnessResult:
    """Outcome of one spec's differential soundness check."""

    label: str
    flagged: tuple              # plug-ins the checker flagged
    divergent: tuple            # plug-ins that dynamically diverged
    unflagged: tuple            # divergent but not flagged — BUG
    variants: int = 0
    details: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.unflagged

    @property
    def vacuous(self):
        """True when no variant diverged (nothing was demonstrable)."""
        return not self.divergent


def check_soundness(spec, patterns=DEFAULT_PATTERNS, workers=1,
                    cache=None, report=None, backend=None):
    """Differential no-false-negatives check for one spec.

    Runs the secret-pair variants through the engine, diffs every
    variant against the baseline, and compares the dynamically
    divergent plug-in set against the statically flagged one.  Pass a
    precomputed ``report`` (from :func:`~repro.lint.checker.lint_spec`)
    to skip re-linting.

    ``backend`` selects the execution backend
    (:mod:`repro.engine.backends`).  The variant batch is the lockstep
    backend's native shape — N secret-perturbed trials of one program
    — so ``backend="lockstep"`` runs the whole differential in one
    shared-decode cohort with no per-trial process setup; results are
    bitwise identical whichever backend runs them.
    """
    report = report if report is not None else lint_spec(spec)
    flagged = set(report.leaking_plugins())
    variants = secret_variants(spec, patterns=patterns)
    results = run_batch(variants, workers=workers, cache=cache,
                        backend=backend)
    baseline, rest = results[0], results[1:]
    enabled = tuple(plugin.name for plugin in spec.plugins)
    divergent = set()
    details = []
    for variant_spec, result in zip(variants[1:], rest):
        delta = divergent_plugins(baseline, result, enabled=enabled)
        if delta:
            details.append((variant_spec.label, sorted(delta)))
        divergent |= delta
    return SoundnessResult(
        label=spec.label or "<spec>",
        flagged=tuple(sorted(flagged)),
        divergent=tuple(sorted(divergent)),
        unflagged=tuple(sorted(divergent - flagged)),
        variants=len(variants) - 1,
        details=details)
