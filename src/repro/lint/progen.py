"""Seeded program generation for contract synthesis.

The synthesizer (:mod:`repro.lint.synthesize`) learns a plug-in's
leakage surface by running secret-pair cohorts over many small
programs and watching which ones make the plug-in's MLD diverge.  For
that to converge at a small budget the programs cannot be uniformly
random — each optimization only *does* anything on its trigger shape
(a store over an equal value, a reusable computation at one pc, a
pointer chase...).  This module provides:

* :class:`GeneratedCase` — one generated trial: an assembled program
  with ``.secret`` directives, its initial memory/register image, and
  taint metadata, convertible to a :class:`~repro.engine.specs.
  SimSpec` with any plug-in set;
* per-optimization *trigger templates* — tiny parameterized programs
  biased toward each plug-in's trigger shape, each constructed so the
  **baseline** secret value sits exactly on the trigger (store is
  silent, computation repeats, operand is narrow/zero/a power of two,
  pointer is in-bounds) and the XOR-perturbed variants fall off it;
* :class:`CaseGenerator` — a seeded (``random.Random``) source of
  cases per plug-in, mixing its trigger templates with generic
  straight-line programs, fully deterministic for a given seed;
* the hypothesis ISA strategies (:func:`regions`, :func:`programs`,
  :func:`canonical_programs`, :func:`generated_cases`), promoted from
  ``tests/test_property_roundtrip.py`` so property suites and the
  fuzzer share one program vocabulary.  Hypothesis is imported lazily
  — the synthesize CLI must run in environments that only carry the
  runtime dependencies.

Invariant relied on by the contract differ: generated programs never
write a produced result to ``x0`` (the checker discards x0 results
for any-producing-op contract rows, and the signature extractor
mirrors that only under this invariant).
"""

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.specs import HierarchySpec, PluginSpec, SimSpec, \
    TaintSpec
from repro.isa.assembler import Assembler, Program
from repro.isa.opcodes import BRANCH_OPS, Op

#: Cycle ceiling for every generated trial — generous for programs of
#: a few dozen instructions, tight enough to bound a fuzzing fleet.
TRIAL_MAX_CYCLES = 20_000

#: Baseline layout: one secret machine word, separate public scratch
#: lines (distinct cache sets under the default 64-set L1).
SECRET_ADDR = 0x140
SCRATCH_ADDR = 0x100
ARRAY_ADDR = 0x200

#: Safe public constants templates draw from: small, odd, non-zero,
#: non-power-of-two — never accidentally on a trigger.
_PUBLIC_CONSTS = (5, 9, 21, 37, 51)


@dataclass(frozen=True)
class GeneratedCase:
    """One generated synthesis trial, independent of any plug-in."""

    name: str
    program: Program
    mem_writes: tuple = ()
    mem_blobs: tuple = ()
    regs: tuple = ()
    taint: object = None            # TaintSpec or None
    hierarchy: object = None        # HierarchySpec or None (defaults)
    max_cycles: int = TRIAL_MAX_CYCLES
    note: str = ""

    def spec(self, plugins: Sequence[PluginSpec] = (),
             label: str = "", seed: int = 0) -> SimSpec:
        """A runnable :class:`SimSpec` for this case.

        ``plugins`` is a tuple of :class:`PluginSpec`; the empty tuple
        is the *control* configuration the synthesizer uses to discard
        divergence the baseline machine produces on its own.
        """
        return SimSpec(
            program=self.program, plugins=tuple(plugins),
            hierarchy=self.hierarchy if self.hierarchy is not None
            else HierarchySpec(),
            mem_writes=self.mem_writes, mem_blobs=self.mem_blobs,
            regs=self.regs, taint=self.taint,
            max_cycles=self.max_cycles, seed=seed,
            label=label or self.name)

    def secret_operands(self) -> tuple[tuple[tuple[int, int], ...],
                                       tuple[int, ...]]:
        """Declared secret byte ranges + secret registers (for the
        generator's own invariant: every case declares at least one)."""
        regions = tuple(self.program.secret_regions)
        regs = ()
        if self.taint is not None:
            regions += tuple(self.taint.secret)
            regs = tuple(self.taint.secret_regs)
        return regions, regs


def _secret_reg_case(name: str, build: Callable[[], Program], *,
                     secret_reg: int, baseline: int,
                     regs: Sequence[tuple[int, int]] = (),
                     note: str = "") -> GeneratedCase:
    """A case whose secret lives in one preloaded register."""
    program = build()
    return GeneratedCase(
        name=name, program=program,
        regs=tuple(sorted(dict(list(regs) + [(secret_reg, baseline)])
                          .items())),
        taint=TaintSpec.of(secret_regs=(secret_reg,)),
        note=note)


# ----------------------------------------------------------------------
# trigger templates — one or more per optimization
# ----------------------------------------------------------------------
# Every template returns a GeneratedCase whose *baseline* sits on the
# plug-in's trigger and whose XOR variants fall off it; the control
# (no-plug-in) run must be secret-independent, so addresses touched by
# demand accesses never depend on the secret value.

def _t_silent_store_value(rng: random.Random) -> GeneratedCase:
    """Silent stores, ``store_value`` tap: store the secret over an
    equal public word — silent in the baseline, not in the variants."""
    value = rng.choice(_PUBLIC_CONSTS)
    asm = Assembler()
    asm.secret(SECRET_ADDR, SECRET_ADDR + 8)
    asm.load(1, 0, SCRATCH_ADDR)        # warm the target line
    asm.load(2, 0, SECRET_ADDR)         # r2 <- secret
    asm.store(2, 0, SCRATCH_ADDR)       # silent iff secret == old
    asm.halt()
    return GeneratedCase(
        name="silent-store/store_value",
        program=asm.assemble(),
        mem_writes=((SECRET_ADDR, value, 8), (SCRATCH_ADDR, value, 8)),
        note="baseline secret equals the stored-over word")


def _t_silent_store_old_value(rng: random.Random) -> GeneratedCase:
    """Silent stores, ``old_memory_value`` tap: store a public word
    over the secret — silent iff the secret already equals it."""
    value = rng.choice(_PUBLIC_CONSTS)
    asm = Assembler()
    asm.secret(SECRET_ADDR, SECRET_ADDR + 8)
    asm.load(1, 0, SECRET_ADDR)         # warm the line (and read it)
    asm.li(3, value)
    asm.store(3, 0, SECRET_ADDR)        # silent iff old (secret) == value
    asm.halt()
    return GeneratedCase(
        name="silent-store/old_memory_value",
        program=asm.assemble(),
        mem_writes=((SECRET_ADDR, value, 8),),
        note="baseline secret equals the incoming store value")


def _reuse_loop(op: Op, secret_rs: str, const: int) -> Program:
    """Two trips over one static mul/div/rem pc: the first inserts
    ``(const, const)`` into the reuse table, the second looks up with
    the secret in ``secret_rs`` — a hit iff secret == const."""
    asm = Assembler()
    asm.li(1, 2)                        # trip counter
    asm.li(5, const)
    asm.mv(7, 5)                        # operand starts public
    asm.label("loop")
    if secret_rs == "rs1":
        asm._rr(op, 3, 7, 5)
    else:
        asm._rr(op, 3, 5, 7)
    asm.mv(7, 6)                        # switch to the secret register
    asm.addi(1, 1, -1)
    asm.bne(1, 0, "loop")
    asm.halt()
    return asm.assemble()


def _t_reuse(op: Op, secret_rs: str,
             ) -> Callable[[random.Random], GeneratedCase]:
    def template(rng: random.Random) -> GeneratedCase:
        const = rng.choice(_PUBLIC_CONSTS)
        return _secret_reg_case(
            f"reuse/{op.value}-{secret_rs}",
            lambda: _reuse_loop(op, secret_rs, const),
            secret_reg=6, baseline=const,
            note="baseline secret repeats the inserted computation")
    return template


def _t_compsimp_zero_mul(secret_rs: str,
                         ) -> Callable[[random.Random],
                                       GeneratedCase]:
    def template(rng: random.Random) -> GeneratedCase:
        const = rng.choice(_PUBLIC_CONSTS)
        asm = Assembler()
        asm.li(5, const)
        if secret_rs == "rs1":
            asm.mul(3, 6, 5)
        else:
            asm.mul(3, 5, 6)
        asm.halt()
        return _secret_reg_case(
            f"compsimp/zero_skip_mul-{secret_rs}",
            asm.assemble, secret_reg=6, baseline=0,
            note="baseline secret of zero skips the multiplier array")
    return template


def _t_compsimp_pow2(op: Op) -> Callable[[random.Random],
                                         GeneratedCase]:
    def template(rng: random.Random) -> GeneratedCase:
        dividend = rng.choice(_PUBLIC_CONSTS)
        asm = Assembler()
        asm.li(5, dividend)
        asm._rr(op, 3, 5, 6)
        asm.halt()
        return _secret_reg_case(
            f"compsimp/pow2_div-{op.value}",
            asm.assemble, secret_reg=6,
            baseline=rng.choice((4, 16, 64)),
            note="baseline secret divisor is a power of two")
    return template


def _t_value_prediction(rng: random.Random) -> GeneratedCase:
    """Train a load pc on a constant, then read the secret tail entry
    at the same pc — predicted correctly iff secret == the constant.

    The spin loop between array reads keeps each load's *training*
    (writeback time) ahead of the next trip's dispatch — prediction
    happens at dispatch, so back-to-back iterations would outrun the
    confidence counter."""
    value = rng.choice(_PUBLIC_CONSTS)
    entries = 8                         # 7 training loads + secret
    secret_at = ARRAY_ADDR + 8 * (entries - 1)
    asm = Assembler()
    asm.secret(secret_at, secret_at + 8)
    asm.li(1, entries)
    asm.li(2, ARRAY_ADDR)
    asm.label("loop")
    asm.load(3, 2)                      # one static pc for every entry
    asm.li(8, 16)
    asm.label("spin")
    asm.addi(8, 8, -1)
    asm.bne(8, 0, "spin")
    asm.addi(2, 2, 8)
    asm.addi(1, 1, -1)
    asm.bne(1, 0, "loop")
    asm.halt()
    writes = tuple((ARRAY_ADDR + 8 * i, value, 8)
                   for i in range(entries))
    return GeneratedCase(
        name="value-prediction/trained-tail",
        program=asm.assemble(), mem_writes=writes,
        note="baseline tail entry matches the trained prediction")


def _t_rfc_duplicate(rng: random.Random) -> GeneratedCase:
    """Register-file compression: produce a public 0/1, then produce
    the secret — compressible (zero-one *and* duplicate-window) iff
    the baseline secret equals it."""
    value = rng.choice((0, 1))
    asm = Assembler()
    asm.li(5, value)
    asm.mv(3, 5)                        # window now holds value
    asm.mv(4, 6)                        # secret result: dup iff == value
    asm.halt()
    return _secret_reg_case(
        "rfc/duplicate-result", asm.assemble,
        secret_reg=6, baseline=value,
        note="baseline secret result is a compressible duplicate")


def _t_packing(op: Op) -> Callable[[random.Random], GeneratedCase]:
    """Operand packing fires only when the ALU ports are oversubscribed
    — the overflow op issues anyway iff it can share a slot with an
    already-issued narrow pair.  A burst of simultaneously-ready adds
    (all waiting on one LI) exhausts any port width; whether the
    secret-operand op packs decides both the pack stats and the issue
    schedule."""
    def template(rng: random.Random) -> GeneratedCase:
        narrow = rng.choice(_PUBLIC_CONSTS)
        asm = Assembler()
        asm.li(5, narrow)
        asm._rr(op, 3, 6, 5)            # packs iff the secret is narrow
        for rd in (4, 7, 9, 10, 11, 12):
            asm._rr(Op.ADD, rd, 5, 5)   # narrow filler burst
        asm.halt()
        return _secret_reg_case(
            f"packing/{op.value}-narrow", asm.assemble,
            secret_reg=6, baseline=rng.choice((3, 12, 255)),
            note="baseline secret operand fits the narrow lane")
    return template


def _t_early_termination(rng: random.Random) -> GeneratedCase:
    """Early-terminating multiplier: rs2 significance decides latency
    — one significant byte in the baseline, eight in the variants."""
    const = rng.choice(_PUBLIC_CONSTS)
    asm = Assembler()
    asm.li(5, const)
    asm.mul(3, 5, 6)
    asm.halt()
    return _secret_reg_case(
        "early-term/rs2-narrow", asm.assemble,
        secret_reg=6, baseline=rng.choice((1, 3, 200)),
        note="baseline secret multiplier has one significant byte")


#: Indirect-prefetch layout: a pointer array Z whose demand-walked
#: prefix trains a stride plus a two-link chain (the default IMP is
#: three-level), with the secret pointer in the prefetch shadow just
#: past the walked prefix.  The Y/W targets follow a scrambled
#: permutation so the *consumer* load pcs never become
#: stride-confident themselves (a striding pc is excluded as a link
#: consumer).
_DMP_Z = 0x1000
_DMP_Y = 0x4000
_DMP_W = 0xA000
_DMP_PERM = (3, 1, 9, 0, 5, 2, 8, 6, 4, 7)


def _t_dmp_pointer_chase(rng: random.Random) -> GeneratedCase:
    """Indirect memory prefetcher: walk ``*(*Z[i])`` far enough to
    train the stride and both links, stop short of the secret pointer
    slot, then time a demand probe of the *baseline* secret's target —
    the line is warm iff the prefetcher (never the program)
    dereferenced the trained pointer value."""
    walked = 6                          # demand-walked prefix of Z
    shadow = 7                          # secret slot: fetched by the
    line = 0x40                         # delta-ahead job from i=3
    entries = 10
    y_of = {i: _DMP_Y + line * _DMP_PERM[i] for i in range(entries)}
    w_of = {i: _DMP_W + line * _DMP_PERM[i] for i in range(entries)}
    secret_at = _DMP_Z + 8 * shadow
    asm = Assembler()
    asm.secret(secret_at, secret_at + 8)
    asm.li(1, walked)
    asm.li(2, _DMP_Z)
    asm.label("loop")
    asm.load(3, 2)                      # Z[i]    (trains the stride)
    asm.load(4, 3)                      # *Z[i]   (link 1: Y)
    asm.load(5, 4)                      # **Z[i]  (link 2: W)
    asm.addi(2, 2, 8)
    asm.addi(1, 1, -1)
    asm.bne(1, 0, "loop")
    asm.li(8, 192)                      # settle window: let the
    asm.label("spin")                   # prefetch stages drain
    asm.addi(8, 8, -1)
    asm.bne(8, 0, "spin")
    asm.li(9, y_of[shadow])
    asm.load(10, 9)                     # hit iff the baseline secret
    asm.halt()                          # pointer was chased
    writes = tuple((_DMP_Z + 8 * i, y_of[i], 8)
                   for i in range(entries))
    writes += tuple((y_of[i], w_of[i], 8) for i in range(entries))
    return GeneratedCase(
        name="dmp/pointer-chase",
        program=asm.assemble(), mem_writes=writes,
        note="prefetcher, not the program, dereferences the secret "
             "pointer; the probe times its baseline target")


TRIGGER_TEMPLATES = {
    "silent-stores": (
        _t_silent_store_value, _t_silent_store_old_value),
    "computation-reuse": (
        _t_reuse(Op.MUL, "rs1"), _t_reuse(Op.MUL, "rs2"),
        _t_reuse(Op.DIV, "rs2"), _t_reuse(Op.REM, "rs1")),
    "computation-simplification": (
        _t_compsimp_zero_mul("rs1"), _t_compsimp_zero_mul("rs2"),
        _t_compsimp_pow2(Op.DIV), _t_compsimp_pow2(Op.REM)),
    "value-prediction": (_t_value_prediction,),
    "register-file-compression": (_t_rfc_duplicate,),
    "operand-packing": (
        _t_packing(Op.ADD), _t_packing(Op.XOR), _t_packing(Op.OR),
        _t_packing(Op.SUB)),
    "early-terminating-multiplier": (_t_early_termination,),
    "indirect-memory-prefetcher": (_t_dmp_pointer_chase,),
}


# ----------------------------------------------------------------------
# generic straight-line fuzz cases
# ----------------------------------------------------------------------

_GENERIC_ALU = (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL,
                Op.SRL, Op.MUL, Op.ADDI, Op.XORI, Op.ANDI)


def random_case(rng: random.Random, index: int = 0) -> GeneratedCase:
    """A generic straight-line program over a secret word and public
    scratch: random ALU traffic (never to x0, never dividing), loads
    and stores at *constant* addresses so the control machine stays
    secret-independent, an occasional forward branch, always halting."""
    asm = Assembler()
    asm.secret(SECRET_ADDR, SECRET_ADDR + 8)
    asm.load(1, 0, SECRET_ADDR)
    asm.load(2, 0, SCRATCH_ADDR)
    length = rng.randrange(4, 12)
    for _ in range(length):
        kind = rng.randrange(8)
        if kind < 5:
            op = rng.choice(_GENERIC_ALU)
            rd = rng.randrange(1, 8)
            if op.value.endswith("i"):
                asm._ri(op, rd, rng.randrange(1, 8),
                        rng.randrange(0, 64))
            else:
                asm._rr(op, rd, rng.randrange(1, 8),
                        rng.randrange(1, 8))
        elif kind < 6:
            asm.load(rng.randrange(1, 8), 0,
                     SCRATCH_ADDR + 8 * rng.randrange(4))
        elif kind < 7:
            asm.store(rng.randrange(1, 8), 0,
                      SCRATCH_ADDR + 8 * rng.randrange(4))
        else:
            skip = f"skip{len(asm)}"
            asm.beq(rng.randrange(1, 8), rng.randrange(1, 8), skip)
            asm.addi(rng.randrange(1, 8), 0, rng.randrange(16))
            asm.label(skip)
    asm.halt()
    return GeneratedCase(
        name=f"generic/straight-line-{index}",
        program=asm.assemble(),
        mem_writes=((SECRET_ADDR, rng.getrandbits(32), 8),
                    (SCRATCH_ADDR, rng.choice(_PUBLIC_CONSTS), 8)),
        note="unbiased straight-line traffic over one secret word")


def gated_case(rng: random.Random, index: int = 0) -> GeneratedCase:
    """Secret-gated public tail: the precision harness's key shape.

    A branch on the (tainted) secret whose arms reconverge at the next
    label — the branch compares the secret register against *itself*,
    so it is always taken and the two secret variants execute
    identically — followed by an all-public tail touching every
    trigger shape (load, silent store, mul, div, add).  The sticky
    analysis poisons the whole tail through the implicit-flow rule;
    the post-dominator analysis clears control taint at the join, so
    only the secret load itself can be flagged.  Dynamically nothing
    value-equality- or width-triggered in the tail can diverge, which
    makes every tail flag a measurable false positive.
    """
    const = rng.choice(_PUBLIC_CONSTS)
    asm = Assembler()
    asm.secret(SECRET_ADDR, SECRET_ADDR + 8)
    asm.load(1, 0, SECRET_ADDR)          # x1 <- secret
    asm.beq(1, 1, f"join{index}")        # tainted branch, always taken
    asm.addi(9, 0, 1)                    # influence region (dead)
    asm.label(f"join{index}")
    asm.li(5, const)
    asm.load(2, 0, SCRATCH_ADDR)         # public load
    asm.store(5, 0, SCRATCH_ADDR + 8)    # silent in every variant
    asm.mul(3, 5, 5)
    asm._rr(Op.DIV, 4, 5, 5)
    asm._rr(Op.ADD, 7, 5, 5)
    asm.halt()
    return GeneratedCase(
        name=f"gated/public-tail-{index}",
        program=asm.assemble(),
        mem_writes=((SECRET_ADDR, rng.getrandbits(32), 8),
                    (SCRATCH_ADDR, const, 8),
                    (SCRATCH_ADDR + 8, const, 8)),
        note="tainted branch reconverges before an all-public tail")


class CaseGenerator:
    """Deterministic case source: seed + plug-in name → cases.

    Cycles the plug-in's trigger templates (re-drawing their
    parameters each pass) and mixes in one generic straight-line case
    per cycle, so a budget above the template count keeps exploring
    instead of repeating.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def rng_for(self, plugin: str) -> random.Random:
        return random.Random(f"progen/{self.seed}/{plugin}")

    def cases_for(self, plugin: str,
                  budget: int) -> tuple[GeneratedCase, ...]:
        if plugin not in TRIGGER_TEMPLATES:
            raise KeyError(f"no trigger templates for {plugin!r}; "
                           f"known: {sorted(TRIGGER_TEMPLATES)}")
        templates = TRIGGER_TEMPLATES[plugin]
        rng = self.rng_for(plugin)
        period = len(templates) + 1     # one generic case per pass
        cases: list[GeneratedCase] = []
        for cursor in range(budget):
            slot = cursor % period
            if slot == len(templates):
                case = random_case(rng, index=cursor)
            else:
                case = templates[slot](rng)
            cases.append(_renamed(case, f"{case.name}#{cursor}"))
        return tuple(cases)


def _renamed(case: GeneratedCase, name: str) -> GeneratedCase:
    return GeneratedCase(
        name=name, program=case.program, mem_writes=case.mem_writes,
        mem_blobs=case.mem_blobs, regs=case.regs, taint=case.taint,
        hierarchy=case.hierarchy, max_cycles=case.max_cycles,
        note=case.note)


def plugin_spec_for(plugin: str) -> PluginSpec:
    """Default-constructed :class:`PluginSpec` for a registry name."""
    return PluginSpec.of(plugin)


# ----------------------------------------------------------------------
# hypothesis strategies (promoted from tests/test_property_roundtrip)
# ----------------------------------------------------------------------
# Imported lazily: the synthesize CLI runs in runtime-only
# environments (CI static-checks) where hypothesis is absent.

def _st() -> Any:
    from hypothesis import strategies as st
    return st


def regions(max_regions: int = 3) -> Any:
    """Strategy: up to ``max_regions`` random byte ranges."""
    st = _st()

    @st.composite
    def _regions(draw: Any) -> tuple[tuple[int, int], ...]:
        result: list[tuple[int, int]] = []
        for _ in range(draw(st.integers(0, max_regions))):
            start = draw(st.integers(0, 1 << 20))
            result.append((start, start + draw(st.integers(1, 64))))
        return tuple(result)

    return _regions()


def programs(with_regions: bool = False) -> Any:
    """Strategy: random valid programs (any op, resolved branch
    targets, optional ``.secret``/``.public`` directives)."""
    st = _st()
    from repro.isa import Instruction

    regs_st = st.integers(0, 31)
    widths = st.sampled_from([1, 2, 4, 8])
    imms = st.integers(-(1 << 32), (1 << 32) - 1)

    @st.composite
    def _programs(draw: Any) -> Program:
        length = draw(st.integers(min_value=1, max_value=24))
        instructions = []
        for pc in range(length):
            op = draw(st.sampled_from(sorted(Op,
                                             key=lambda o: o.value)))
            target = None
            if op in BRANCH_OPS or op is Op.JMP:
                # Any resolved target in [0, len] is valid
                # post-assembly.
                target = draw(st.integers(0, length))
            instructions.append(Instruction(
                op=op, rd=draw(regs_st), rs1=draw(regs_st),
                rs2=draw(regs_st), imm=draw(imms),
                width=draw(widths), target=target, pc=pc))
        secret = draw(regions()) if with_regions else ()
        public = draw(regions()) if with_regions else ()
        return Program(instructions, {}, secret_regions=secret,
                       public_regions=public)

    return _programs()


def canonical_programs() -> Any:
    """Strategy: programs the text form can express — fields an op
    does not use sit at their defaults (the wire form keeps every
    field, the source form only the meaningful ones)."""
    st = _st()
    from repro.isa import Instruction
    from repro.isa.opcodes import (
        ALU_RI_OPS, MEMORY_OPS, reads_rs1, reads_rs2, writes_register,
    )

    @st.composite
    def _canonical(draw: Any) -> Program:
        program = draw(programs(with_regions=True))
        canonical = []
        for inst in program.instructions:
            op = inst.op
            uses_imm = op in ALU_RI_OPS or op in MEMORY_OPS \
                or op is Op.LI
            canonical.append(Instruction(
                op=op,
                rd=inst.rd if writes_register(op) else 0,
                rs1=inst.rs1 if reads_rs1(op) else 0,
                rs2=inst.rs2 if reads_rs2(op) else 0,
                imm=inst.imm if uses_imm else 0,
                width=inst.width if op in MEMORY_OPS else 8,
                target=inst.target, pc=inst.pc))
        return Program(canonical, {},
                       secret_regions=program.secret_regions,
                       public_regions=program.public_regions)

    return _canonical()


def generated_cases() -> Any:
    """Strategy: every case the seeded generator can emit — drawn as
    (plug-in, seed, budget slot), so property tests cover exactly the
    distribution the synthesizer fuzzes with."""
    st = _st()

    @st.composite
    def _cases(draw: Any) -> GeneratedCase:
        plugin = draw(st.sampled_from(sorted(TRIGGER_TEMPLATES)))
        seed = draw(st.integers(0, 1 << 16))
        budget = draw(st.integers(1, 8))
        cases = CaseGenerator(seed=seed).cases_for(plugin, budget)
        return cases[draw(st.integers(0, len(cases) - 1))]

    return _cases()
