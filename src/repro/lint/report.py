"""Verdict structures and rendering for the static leakage checker."""

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One ``LEAKS(opt, mld)`` verdict at one static instruction."""

    pc: int
    op: str
    text: str                  # rendered instruction
    plugin: str
    mld: str
    taps: tuple                # tainted tap names, in contract order
    witness: tuple             # human-readable taint-flow frames
    detail: str = ""

    @property
    def verdict(self) -> str:
        return f"LEAKS({self.plugin}, {self.mld})"

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "pc": self.pc, "op": self.op, "text": self.text,
            "plugin": self.plugin, "mld": self.mld,
            "taps": list(self.taps), "witness": list(self.witness),
            "detail": self.detail, "verdict": self.verdict,
        }


@dataclass
class LintReport:
    """Full checker output for one program under one contract set."""

    program_name: str
    instructions: list          # rendered instruction texts, by pc
    findings: list = field(default_factory=list)
    contracts: tuple = ()       # plug-in names that were checked
    secret_regions: tuple = ()
    public_regions: tuple = ()
    unreachable: tuple = ()     # statically dead pcs (never flagged)

    @property
    def ok(self) -> bool:
        return not self.findings

    def flagged_pcs(self, plugin: str | None = None) -> list[int]:
        return sorted({finding.pc for finding in self.findings
                       if plugin is None or finding.plugin == plugin})

    def leaking_plugins(self) -> list[str]:
        return sorted({finding.plugin for finding in self.findings})

    def verdict(self, pc: int) -> str:
        """The per-instruction verdict string for ``pc``."""
        hits = [finding for finding in self.findings
                if finding.pc == pc]
        if not hits:
            return "SAFE"
        return "; ".join(finding.verdict for finding in hits)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "program": self.program_name,
            "contracts": list(self.contracts),
            "secret_regions": [list(region)
                               for region in self.secret_regions],
            "public_regions": [list(region)
                               for region in self.public_regions],
            "ok": self.ok,
            "verdicts": [
                {"pc": pc, "text": text, "verdict": self.verdict(pc)}
                for pc, text in enumerate(self.instructions)],
            "findings": [finding.to_json_dict()
                         for finding in self.findings],
            "unreachable": list(self.unreachable),
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, **kwargs)

    def render(self) -> str:
        """Terminal listing: one verdict per static instruction."""
        lines = [f"lint: {self.program_name or '<program>'}  "
                 f"[contracts: {', '.join(self.contracts) or 'none'}]"]
        for start, end in self.secret_regions:
            lines.append(f"  .secret {start:#x}..{end:#x}")
        for start, end in self.public_regions:
            lines.append(f"  .public {start:#x}..{end:#x}")
        by_pc: dict[int, list[Finding]] = {}
        for finding in self.findings:
            by_pc.setdefault(finding.pc, []).append(finding)
        for pc, text in enumerate(self.instructions):
            verdict = self.verdict(pc)
            if pc in self.unreachable:
                verdict = "DEAD"
            lines.append(f"  {pc:4d}  {text:<28s} {verdict}")
            for finding in by_pc.get(pc, ()):
                taps = ", ".join(finding.taps)
                lines.append(f"        ^ tainted taps: {taps}")
                for frame in finding.witness:
                    lines.append(f"          via {frame}")
        flagged = len({finding.pc for finding in self.findings})
        lines.append(
            f"  => {'CLEAN' if self.ok else 'LEAKS'}: "
            f"{len(self.findings)} finding(s) at {flagged} "
            f"instruction(s)")
        return "\n".join(lines)
