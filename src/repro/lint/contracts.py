"""Static leakage contracts, compiled from plug-in descriptors.

Every optimization plug-in class in :mod:`repro.optimizations` exports
a declarative ``LINT_CONTRACT`` descriptor naming which operand
positions feed its MLD — the static mirror of the dynamic leakage
function the plug-in implements.  The descriptor is plain data::

    LINT_CONTRACT = {
        "mld": "store_silence",              # MLD outcome label
        "rows": (
            {"ops": (Op.STORE,),             # ops the MLD observes
             "taps": ("store_value", "old_memory_value"),
             "detail": "store is elided iff ..."},
        ),
    }

Rows may be *conditional* on constructor kwargs: a ``"when"`` mapping
selects the row only when the named kwarg (with the descriptor's
``"defaults"`` filling in unspecified ones) equals — or, for
tuple-valued kwargs such as rule lists, contains — the given value.
That is how ``computation-simplification`` exposes one row per
configured rule and how ``computation-reuse`` exposes *no* rows for
the value-independent ``sn`` variant.  ``"ops"`` may also be the
string ``"kwarg:<name>"`` to follow an op-set kwarg (value prediction,
computation reuse), or ``None`` for "any result-producing op"
(register-file compression).

An optional ``"domains"`` mapping declares, per kwarg, the alternative
values the contract is *conditional over* — the ablation axes the
``when``-clause synthesizer (:mod:`repro.lint.synthesize`) re-fuzzes
under to learn minimal ``when`` conditions and to catch contracts that
are conditional on something reality is not.  For a tuple-valued kwarg
the domain lists members that may be dropped; for a scalar kwarg it
lists alternative values to switch to.

This module compiles descriptors + :class:`~repro.engine.specs.
PluginSpec` kwargs into concrete :class:`ContractRow` tuples for the
checker.  Keeping compilation here (and the descriptors as inert class
attributes) avoids any import cycle between the optimizations and the
lint layer.
"""

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.engine.specs import PluginSpec, plugin_factory, plugin_names
from repro.isa.opcodes import Op, reads_rs1, reads_rs2, writes_register

#: Tap names the checker knows how to resolve.
KNOWN_TAPS = frozenset({
    "rs1", "rs2", "store_value", "old_memory_value", "loaded_value",
    "address", "result",
})


def canonical_tap(op: Op, tap: str) -> str:
    """The canonical name of ``tap`` on ``op``.

    Several tap names are aliases for the same abstract value on a
    given op — ``store_value`` *is* ``rs2`` on a STORE, ``address``
    *is* ``rs1`` on a LOAD/STORE, ``loaded_value`` *is* ``result`` on
    a LOAD — and the checker resolves them identically.  Synthesis
    compares *sets* of (op, tap) pairs between learned and declared
    contracts, so both sides must speak the canonical vocabulary or
    equal contracts would diff as gaps.
    """
    if tap == "store_value" and op is Op.STORE:
        return "rs2"
    if tap == "address" and op in (Op.LOAD, Op.STORE):
        return "rs1"
    if tap == "loaded_value":
        return "result"
    return tap


def applicable_taps(op: Op) -> tuple[str, ...]:
    """The canonical taps that carry a value on ``op``, in a fixed
    order — the feature vector synthesis observes per instruction."""
    taps = []
    if reads_rs1(op):
        taps.append("rs1")
    if reads_rs2(op):
        taps.append("rs2")
    if op is Op.STORE:
        taps.append("old_memory_value")
    if writes_register(op):
        taps.append("result")
    return tuple(taps)


def producing_ops() -> tuple[Op, ...]:
    """Every op that writes a destination register, sorted by name —
    the expansion of a contract row whose ``ops`` is ``None``."""
    return tuple(sorted((op for op in Op if writes_register(op)),
                        key=lambda op: op.value))


def row_pairs(row: "ContractRow") -> frozenset[tuple[str, str]]:
    """One compiled row as a frozenset of canonical (op-name, tap)
    pairs — the unit the contract differ intersects.

    Pairs whose tap carries no value on the op (a ``result`` tap on an
    op-set that includes STORE, say) are dropped: the checker can never
    resolve them tainted, so they are unwitnessable by construction.
    """
    ops = row.ops if row.ops is not None else producing_ops()
    pairs = set()
    for op in ops:
        allowed = applicable_taps(op)
        for tap in row.taps:
            canon = canonical_tap(op, tap)
            if canon in allowed:
                pairs.add((op.value, canon))
    return frozenset(pairs)


class LintError(Exception):
    """Raised for malformed contracts or checker misuse."""


@dataclass(frozen=True)
class ContractRow:
    """One compiled contract clause: ops × taps → MLD outcome.

    ``when`` records the descriptor conditions the row was selected
    under, as a sorted ``((kwarg, value), ...)`` tuple — retained so
    the synthesizer can diff learned conditions against declared ones
    and re-evaluate selection under ablated constructions.
    ``ops_kwarg`` names the kwarg an ``"ops": "kwarg:<name>"`` row
    followed (empty for literal op sets): such a row is *structurally*
    conditional on that kwarg even though its ``when`` is empty.
    """

    plugin: str
    mld: str
    ops: object                # frozenset[Op] | None (any producing op)
    taps: tuple
    detail: str = ""
    when: tuple = ()
    ops_kwarg: str = ""

    def matches_op(self, op: Op) -> bool:
        if self.ops is None:
            return writes_register(op)
        return op in self.ops


def _coerce_ops(ops: Iterable | None) -> frozenset[Op] | None:
    if ops is None:
        return None
    coerced = frozenset(op if isinstance(op, Op) else Op(op)
                        for op in ops)
    if not coerced:
        raise LintError("contract row has an empty op set")
    return coerced


def _kwarg(name: str, kwargs: Mapping, defaults: Mapping,
           plugin: str) -> object:
    if name in kwargs:
        return kwargs[name]
    if name in defaults:
        return defaults[name]
    raise LintError(f"contract for {plugin!r} references kwarg "
                    f"{name!r} with no default")


def _condition_holds(actual: object, needed: object) -> bool:
    if isinstance(actual, (tuple, list, set, frozenset)):
        return needed in actual
    return actual == needed


def _row_selected(row: Mapping, kwargs: Mapping, defaults: Mapping,
                  plugin: str) -> bool:
    for name, needed in row.get("when", {}).items():
        if not _condition_holds(
                _kwarg(name, kwargs, defaults, plugin), needed):
            return False
    return True


def when_holds(when: Iterable[tuple[str, object]], kwargs: Mapping,
               defaults: Mapping, plugin: str) -> bool:
    """Would a compiled row with conditions ``when`` be selected
    under ``kwargs``?  Same semantics as descriptor ``"when"``
    mappings: membership for tuple-valued kwargs, equality otherwise.
    """
    return all(_condition_holds(_kwarg(name, kwargs, defaults, plugin),
                                needed)
               for name, needed in when)


def contract_rows(plugin_spec: PluginSpec) -> tuple[ContractRow, ...]:
    """Compile one plug-in's contract into :class:`ContractRow` tuples.

    A plug-in without a ``LINT_CONTRACT`` descriptor (the pipeline
    tracer, out-of-tree observers) contributes no rows: it asserts no
    MLD, so the checker has nothing to flag for it.
    """
    factory = plugin_factory(plugin_spec.name)
    descriptor = getattr(factory, "LINT_CONTRACT", None)
    if descriptor is None:
        return ()
    kwargs = dict(plugin_spec.kwargs)
    defaults = descriptor.get("defaults", {})
    mld = descriptor["mld"]
    rows = []
    for row in descriptor["rows"]:
        if not _row_selected(row, kwargs, defaults, plugin_spec.name):
            continue
        ops = row.get("ops")
        ops_kwarg = ""
        if isinstance(ops, str):
            if not ops.startswith("kwarg:"):
                raise LintError(f"bad ops reference {ops!r} in "
                                f"{plugin_spec.name!r} contract")
            ops_kwarg = ops[len("kwarg:"):]
            ops = _kwarg(ops_kwarg, kwargs, defaults,
                         plugin_spec.name)
        taps = tuple(row["taps"])
        unknown = set(taps) - KNOWN_TAPS
        if unknown:
            raise LintError(
                f"{plugin_spec.name!r} contract uses unknown taps "
                f"{sorted(unknown)}; known: {sorted(KNOWN_TAPS)}")
        when = tuple(sorted(row.get("when", {}).items()))
        rows.append(ContractRow(
            plugin=plugin_spec.name, mld=mld, ops=_coerce_ops(ops),
            taps=taps, detail=row.get("detail", ""), when=when,
            ops_kwarg=ops_kwarg))
    return tuple(rows)


def rows_for_specs(plugin_specs: Iterable[PluginSpec],
                   ) -> tuple[ContractRow, ...]:
    """Compile contracts for a tuple of :class:`PluginSpec`."""
    rows = []
    for spec in plugin_specs:
        rows.extend(contract_rows(spec))
    return tuple(rows)


def rows_for_names(names: Iterable[str]) -> tuple[ContractRow, ...]:
    """Compile contracts for registry names (default constructions)."""
    return rows_for_specs(tuple(PluginSpec.of(name) for name in names))


def contracted_plugin_names() -> tuple[str, ...]:
    """Registry names of every plug-in exporting a contract, sorted."""
    return tuple(
        name for name in plugin_names()
        if getattr(plugin_factory(name), "LINT_CONTRACT", None)
        is not None)


@dataclass(frozen=True)
class WhenCandidate:
    """One ablation axis of a plug-in construction.

    ``condition`` is the ``(kwarg, value)`` clause under test; running
    the plug-in with ``kwargs`` instead of its declared construction
    removes exactly that clause's support (drops the member for a
    tuple-valued kwarg, switches to an alternative for a scalar one).
    If a leak observed under the declared construction *dies* under
    ``kwargs``, the condition is necessary — a learned ``when``.  If it
    *persists* and no declared row applies under ``kwargs``, the
    declared contract is conditional on something reality is not.
    """

    plugin: str
    kwarg: str
    value: object
    kwargs: tuple = field(default=())   # sorted kwarg items, hashable

    @property
    def condition(self) -> tuple[str, object]:
        return (self.kwarg, self.value)

    def construction(self) -> dict:
        return dict(self.kwargs)

    def describe(self) -> str:
        ablated = dict(self.kwargs)[self.kwarg]
        if isinstance(ablated, tuple):
            shown = "(" + ",".join(display_value(v)
                                   for v in ablated) + ")"
        else:
            shown = display_value(ablated)
        return f"{self.kwarg}={shown}"


def display_value(value: object) -> str:
    """Render a kwarg/condition value for reports (ops → mnemonics)."""
    if isinstance(value, Op):
        return value.value
    if isinstance(value, (tuple, list, frozenset, set)):
        return "(" + ",".join(sorted(display_value(v) for v in value))             + ")"
    return str(value)


def contract_defaults(plugin: str) -> dict:
    """The descriptor-declared default construction of ``plugin``."""
    descriptor = getattr(plugin_factory(plugin), "LINT_CONTRACT", None)
    if descriptor is None:
        return {}
    return dict(descriptor.get("defaults", {}))


def when_candidates(plugin_spec: PluginSpec,
                    ) -> tuple[WhenCandidate, ...]:
    """The ablation axes of ``plugin_spec``, from its descriptor's
    ``"domains"`` — one candidate per droppable member (tuple-valued
    kwargs) or per alternative value (scalar kwargs), each carrying
    the full ablated construction to re-fuzz under."""
    factory = plugin_factory(plugin_spec.name)
    descriptor = getattr(factory, "LINT_CONTRACT", None)
    if descriptor is None:
        return ()
    defaults = descriptor.get("defaults", {})
    domains = descriptor.get("domains", {})
    kwargs = dict(plugin_spec.kwargs)
    active = dict(defaults)
    active.update(kwargs)
    for name, value in active.items():
        # Spec kwargs must fingerprint: sets become sorted tuples.
        if isinstance(value, (set, frozenset, list)):
            active[name] = tuple(sorted(
                value, key=lambda v: str(getattr(v, "value", v))))
    candidates = []
    for name in sorted(domains):
        if name not in active:
            raise LintError(
                f"{plugin_spec.name!r} contract declares a domain for "
                f"kwarg {name!r} with no default or spec value")
        current = active[name]
        if isinstance(current, (tuple, list, set, frozenset)):
            members = tuple(current)
            for value in domains[name]:
                if value not in members:
                    continue
                ablated = tuple(v for v in members if v != value)
                construction = dict(active)
                construction[name] = ablated
                candidates.append(WhenCandidate(
                    plugin=plugin_spec.name, kwarg=name, value=value,
                    kwargs=tuple(sorted(construction.items(),
                                        key=lambda item: item[0]))))
        else:
            for value in domains[name]:
                if value == current:
                    continue
                construction = dict(active)
                construction[name] = value
                candidates.append(WhenCandidate(
                    plugin=plugin_spec.name, kwarg=name, value=current,
                    kwargs=tuple(sorted(construction.items(),
                                        key=lambda item: item[0]))))
    return tuple(candidates)
