"""Static MLD leakage checker over assembled repro-ISA programs.

The paper's microarchitectural leakage descriptor (MLD) is a
*stateless function* of operand and state values, which makes leakage
reachability a static question: if no secret-tainted value can flow
into an MLD's operand inputs, the optimization cannot leak on that
program, no matter the schedule.  This package decides that question:

* :mod:`repro.lint.cfg` — control-flow graph + reaching definitions
  over :class:`~repro.isa.assembler.Program`;
* :mod:`repro.lint.taint` — a secret-taint abstract interpretation
  (registers, memory regions, control flags) seeded by ``.secret`` /
  ``.public`` assembler directives and
  :class:`~repro.engine.specs.TaintSpec` metadata;
* :mod:`repro.lint.contracts` — per-optimization *static leakage
  contracts* compiled from the declarative ``LINT_CONTRACT``
  descriptors each plug-in class exports;
* :mod:`repro.lint.checker` — the verdict pass: per static
  instruction, ``SAFE`` or ``LEAKS(opt, mld)`` with a taint-flow
  witness;
* :mod:`repro.lint.soundness` — the differential harness that runs
  secret-pair trials through :mod:`repro.engine.runner` and asserts
  every dynamically observed MLD divergence was statically flagged.

Surface: ``python -m repro lint <program.s> [--opts ...] [--json]``.
"""

from repro.lint.cfg import BasicBlock, build_cfg, reaching_definitions
from repro.lint.checker import lint_program, lint_spec
from repro.lint.contracts import (
    ContractRow, KNOWN_TAPS, LintError, contract_rows,
    contracted_plugin_names, rows_for_names, rows_for_specs,
)
from repro.lint.report import Finding, LintReport
from repro.lint.soundness import (
    SoundnessResult, check_soundness, divergent_plugins, secret_variants,
)
from repro.lint.taint import TaintAnalysis, analyze_taint

__all__ = [
    "BasicBlock", "ContractRow", "Finding", "KNOWN_TAPS", "LintError",
    "LintReport", "SoundnessResult", "TaintAnalysis", "analyze_taint",
    "build_cfg", "check_soundness", "contract_rows",
    "contracted_plugin_names", "divergent_plugins", "lint_program",
    "lint_spec",
    "reaching_definitions", "rows_for_names", "rows_for_specs",
    "secret_variants",
]
