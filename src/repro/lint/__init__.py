"""Static MLD leakage checker over assembled repro-ISA programs.

The paper's microarchitectural leakage descriptor (MLD) is a
*stateless function* of operand and state values, which makes leakage
reachability a static question: if no secret-tainted value can flow
into an MLD's operand inputs, the optimization cannot leak on that
program, no matter the schedule.  This package decides that question:

* :mod:`repro.lint.cfg` — control-flow graph + reaching definitions
  over :class:`~repro.isa.assembler.Program`;
* :mod:`repro.lint.taint` — a secret-taint abstract interpretation
  (registers, memory regions, control flags) seeded by ``.secret`` /
  ``.public`` assembler directives and
  :class:`~repro.engine.specs.TaintSpec` metadata;
* :mod:`repro.lint.contracts` — per-optimization *static leakage
  contracts* compiled from the declarative ``LINT_CONTRACT``
  descriptors each plug-in class exports;
* :mod:`repro.lint.checker` — the verdict pass: per static
  instruction, ``SAFE`` or ``LEAKS(opt, mld)`` with a taint-flow
  witness;
* :mod:`repro.lint.perturb` — the shared secret-pair XOR perturbation
  helper both differential harnesses build their variants with;
* :mod:`repro.lint.soundness` — the differential harness that runs
  secret-pair trials through :mod:`repro.engine.runner` and asserts
  every dynamically observed MLD divergence was statically flagged;
* :mod:`repro.lint.progen` — seeded generation of trigger-shaped
  programs with secret annotations (plus the promoted hypothesis ISA
  strategies);
* :mod:`repro.lint.synthesize` — contract *synthesis*: learn each
  plug-in's leakage contract from differential secret-pair fuzzing
  and diff it against the declared ``LINT_CONTRACT``, reporting
  learned-but-undeclared (soundness blind spot) and
  declared-but-never-witnessed (imprecision) gaps with minimized
  witness programs, plus kwarg-conditional ``when`` clauses learned
  by re-fuzzing under the descriptors' declared ablation domains;
* :mod:`repro.lint.precision` — the precision harness (the dual of
  soundness): classify every static LEAKS verdict over the corpus as
  confirmed or false positive by differential trial, path-sensitive
  and sticky analyses side by side.

The taint analysis is *path-aware*: control taint raised at a
secret-dependent branch is confined to the branch's post-dominator
region (:mod:`repro.lint.cfg`), with statically-infeasible edges
pruned by the constant lattice; ``path_sensitive=False`` selects the
old sticky over-approximation as a measurable baseline.

Surface: ``python -m repro lint <program.s> [--opts ...] [--json]``,
``python -m repro synthesize [--opt NAME] [--budget N] [--json]``,
and ``python -m repro precision [--budget N] [--json]``.
"""

from repro.lint.cfg import (
    BasicBlock, build_cfg, immediate_postdominators,
    postdominator_sets, reaching_definitions,
)
from repro.lint.checker import lint_program, lint_spec, \
    tainted_tap_pairs
from repro.lint.contracts import (
    ContractRow, KNOWN_TAPS, LintError, WhenCandidate,
    applicable_taps, canonical_tap, contract_defaults, contract_rows,
    contracted_plugin_names, display_value, producing_ops, row_pairs,
    rows_for_names, rows_for_specs, when_candidates, when_holds,
)
from repro.lint.perturb import (
    DEFAULT_PATTERNS, perturb_spec, replicate, secret_regions_of,
    secret_regs_of, secret_variants, xor_blob, xor_regs, xor_write,
)
from repro.lint.precision import (
    PrecisionReport, TrialOutcome, check_precision, example_cases,
)
from repro.lint.progen import CaseGenerator, GeneratedCase, \
    TRIGGER_TEMPLATES, gated_case
from repro.lint.report import Finding, LintReport
from repro.lint.soundness import (
    SoundnessResult, check_soundness, divergent_plugins,
)
from repro.lint.synthesize import (
    ContractGap, LearnedRow, Observation, SynthesisResult,
    check_synthesis, minimize_witness, render_report, report_json,
    synthesize_all,
)
from repro.lint.taint import TaintAnalysis, analyze_taint

__all__ = [
    "BasicBlock", "CaseGenerator", "ContractGap", "ContractRow",
    "DEFAULT_PATTERNS", "Finding", "GeneratedCase", "KNOWN_TAPS",
    "LearnedRow", "LintError", "LintReport", "Observation",
    "PrecisionReport", "SoundnessResult", "SynthesisResult",
    "TRIGGER_TEMPLATES", "TaintAnalysis", "TrialOutcome",
    "WhenCandidate", "analyze_taint", "applicable_taps", "build_cfg",
    "canonical_tap", "check_precision", "check_soundness",
    "check_synthesis", "contract_defaults", "contract_rows",
    "contracted_plugin_names", "display_value", "divergent_plugins",
    "example_cases", "gated_case", "immediate_postdominators",
    "lint_program", "lint_spec", "minimize_witness", "perturb_spec",
    "postdominator_sets", "producing_ops", "reaching_definitions",
    "render_report", "replicate", "report_json", "row_pairs",
    "rows_for_names", "rows_for_specs", "secret_regions_of",
    "secret_regs_of", "secret_variants", "synthesize_all",
    "tainted_tap_pairs", "when_candidates", "when_holds", "xor_blob",
    "xor_regs", "xor_write",
]
