"""Secret-taint abstract interpretation over repro-ISA programs.

The abstract state tracks, per program point:

* **registers** — for each architectural register an abstract value
  ``AV(tainted, const, origin)``: may it carry secret-derived data,
  and (when exactly known) which constant it holds.  Constant folding
  reuses :mod:`repro.isa.semantics` — the *same* functions the
  pipeline executes — so the analysis can never disagree with the
  simulator about an arithmetic fact.
* **memory** — secret byte ranges seeded from ``.secret`` directives /
  :class:`~repro.engine.specs.TaintSpec` (with ``.public`` carved
  out), plus a weak-update record of constant-address stores and two
  escape flags for stores through unknown addresses.
* **control** — the set of *open* tainted branches: branches whose
  condition was tainted and whose influence region (branch →
  immediate post-dominator) the current program point still sits in.
  While the set is non-empty, *which* instructions execute is itself
  a secret, so every produced value (and every MLD tap) is treated as
  tainted.  Each branch is dropped from the set on the edge into its
  immediate post-dominator — the join point where both arms have
  reconverged.  That is sound because every value *written* inside
  the region was tainted on the way, so abstract values that could
  disagree at the join are already tainted; agreeing values never
  depended on the branch.  A branch with no post-dominator (an arm
  that cannot reach the exit) stays open forever — the sticky
  fallback.  ``path_sensitive=False`` keeps every branch open
  forever, which *is* the classic sticky implicit-flow
  over-approximation; it is retained as the measurable baseline for
  :mod:`repro.lint.precision`.

Statically infeasible edges are pruned with the constant lattice:
when both branch operands are exact untainted constants the fixpoint
follows only the real successor (via the simulator's own
:func:`~repro.isa.semantics.branch_taken`), the feasible successor
map shrinks, and the post-dominators are recomputed over the pruned
graph — iterated until the feasible map stops changing.  Computing
post-dominators over a *superset* of the feasible edges only ever
yields a later join point, so each round of the iteration is sound.

The fixpoint is a join-monotone worklist at instruction granularity.
``const`` flattens to ``None`` on conflict and a per-pc widening
threshold drops constants on pathological programs, so the lattice
has finite height and the loop always terminates.
"""

from collections.abc import Iterable, Mapping, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Op, is_branch, reads_rs1, reads_rs2, writes_register,
)
from repro.isa.semantics import (
    alu_result, branch_taken, effective_address,
)
from repro.lint.cfg import (
    immediate_postdominators, static_successors, successors,
)

#: Witness chains are capped: deep provenance reads poorly and the
#: fixpoint only needs *a* path, not all of them.
MAX_ORIGIN_FRAMES = 8

#: After this many joins at one pc, constants are widened away there.
WIDEN_AFTER = 32

#: A provenance chain: ``(pc, "what happened")`` frames, oldest first.
Origin = tuple[tuple[int, str], ...]


class AV:
    """Abstract value: taint bit + optional exact constant + origin.

    ``origin`` is a tuple of human-readable witness frames explaining
    where the taint came from; it is deliberately excluded from
    equality/hash so provenance bookkeeping can never affect the
    fixpoint.
    """

    __slots__ = ("tainted", "const", "origin")

    def __init__(self, tainted: bool = False, const: int | None = None,
                 origin: Origin = ()) -> None:
        self.tainted = tainted
        self.const = const
        self.origin = origin if tainted else ()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AV) and self.tainted == other.tainted
                and self.const == other.const)

    def __hash__(self) -> int:
        return hash((self.tainted, self.const))

    def __repr__(self) -> str:
        flag = "T" if self.tainted else "-"
        const = "?" if self.const is None else hex(self.const)
        return f"AV({flag},{const})"

    def widened(self) -> "AV":
        return self if self.const is None else \
            AV(self.tainted, None, self.origin)


UNTAINTED = AV(False, None)
ZERO = AV(False, 0)


def _join_av(a: AV, b: AV) -> AV:
    if a == b:
        return a if a.origin or not b.origin else b
    tainted = a.tainted or b.tainted
    const = a.const if a.const == b.const else None
    origin = a.origin or b.origin
    return AV(tainted, const, origin)


def _extend(origin: Origin, frame: tuple[int, str]) -> Origin:
    if len(origin) >= MAX_ORIGIN_FRAMES:
        return origin
    return origin + (frame,)


def _subtract_intervals(regions: Iterable[tuple[int, int]],
                        carve: Iterable[tuple[int, int]],
                        ) -> tuple[tuple[int, int], ...]:
    """Subtract ``carve`` intervals from ``regions`` (all end-exclusive)."""
    result = list(regions)
    for cstart, cend in carve:
        next_result = []
        for start, end in result:
            if cend <= start or cstart >= end:
                next_result.append((start, end))
                continue
            if start < cstart:
                next_result.append((start, cstart))
            if cend < end:
                next_result.append((cend, end))
        result = next_result
    return tuple(sorted(result))


def _overlaps(regions: Iterable[tuple[int, int]], start: int,
              end: int) -> bool:
    return any(rstart < end and start < rend for rstart, rend in regions)


class MemState:
    """Abstract memory: secret seed regions + weak store record."""

    __slots__ = ("secret_regions", "stores", "unknown_store",
                 "unknown_tainted_store")

    #: Beyond this many distinct constant store addresses, collapse to
    #: the unknown-store summary (keeps the state bounded on
    #: pathological programs; never reached by the attack gadgets).
    MAX_TRACKED_STORES = 256

    def __init__(self, secret_regions: Iterable[tuple[int, int]] = (),
                 stores: Mapping[tuple[int, int], AV] | None = None,
                 unknown_store: bool = False,
                 unknown_tainted_store: bool = False) -> None:
        self.secret_regions = tuple(secret_regions)
        self.stores = dict(stores or {})    # (addr, width) -> AV
        self.unknown_store = unknown_store
        self.unknown_tainted_store = unknown_tainted_store

    def key(self) -> tuple:
        return (self.secret_regions,
                tuple(sorted((addr, width, av.tainted, av.const)
                             for (addr, width), av in
                             self.stores.items())),
                self.unknown_store, self.unknown_tainted_store)

    def copy(self) -> "MemState":
        return MemState(self.secret_regions, self.stores,
                        self.unknown_store, self.unknown_tainted_store)

    def any_secret(self) -> bool:
        """Is *any* abstract memory location possibly tainted?"""
        return (bool(self.secret_regions) or self.unknown_tainted_store
                or any(av.tainted for av in self.stores.values()))

    def taint_at(self, addr: int | None, width: int) -> bool:
        """May ``[addr, addr+width)`` hold secret data?  ``addr=None``
        means the address is unknown — any tainted location answers."""
        if addr is None:
            return self.any_secret()
        if self.unknown_tainted_store:
            return True
        end = addr + width
        if _overlaps(self.secret_regions, addr, end):
            return True
        return any(av.tainted and saddr < end and addr < saddr + swidth
                   for (saddr, swidth), av in self.stores.items())

    def origin_at(self, addr: int | None, width: int) -> str:
        """A witness frame for :meth:`taint_at` (best effort)."""
        if addr is not None:
            end = addr + width
            for rstart, rend in self.secret_regions:
                if rstart < end and addr < rend:
                    return f".secret {rstart:#x}..{rend:#x}"
            for (saddr, swidth), av in sorted(self.stores.items()):
                if av.tainted and saddr < end and addr < saddr + swidth:
                    return (av.origin[-1][1] if av.origin
                            else f"tainted store @ {saddr:#x}")
        if self.unknown_tainted_store:
            return "tainted store to unknown address"
        if self.secret_regions:
            regions = ", ".join(f"{start:#x}..{end:#x}"
                                for start, end in self.secret_regions)
            return f"unknown address may alias .secret {regions}"
        return "tainted store to unknown address"

    def record_store(self, addr: int | None, width: int,
                     av: AV) -> None:
        if addr is None or len(self.stores) >= self.MAX_TRACKED_STORES:
            self.unknown_store = True
            if av.tainted:
                self.unknown_tainted_store = True
            return
        existing = self.stores.get((addr, width))
        self.stores[(addr, width)] = av if existing is None \
            else _join_av(existing, av)

    def join(self, other: "MemState") -> "MemState":
        if self.key() == other.key():
            return self
        secret = tuple(sorted(set(self.secret_regions)
                              | set(other.secret_regions)))
        stores = dict(self.stores)
        for key, av in other.stores.items():
            stores[key] = av if key not in stores \
                else _join_av(stores[key], av)
        return MemState(
            secret, stores,
            self.unknown_store or other.unknown_store,
            self.unknown_tainted_store or other.unknown_tainted_store)


class State:
    """One program point's abstract state.

    ``control`` is the frozenset of open tainted-branch pcs (empty =
    no implicit flow in scope; truthiness therefore matches the old
    sticky-bool reading).  ``control_origins`` maps each open branch
    to its provenance chain; like ``AV.origin`` it is excluded from
    :meth:`key` so witness bookkeeping can never affect the fixpoint.
    Both are treated as immutable — never mutated in place.
    """

    __slots__ = ("regs", "mem", "control", "control_origins")

    def __init__(self, regs: tuple[AV, ...], mem: MemState,
                 control: frozenset[int] = frozenset(),
                 control_origins: Mapping[int, Origin] | None = None,
                 ) -> None:
        self.regs = regs                  # tuple of 32 AVs, x0 pinned
        self.mem = mem
        self.control = frozenset(control)
        self.control_origins = dict(control_origins or {})

    @property
    def control_origin(self) -> Origin:
        """Provenance of the oldest open tainted branch (for witnesses)."""
        if not self.control:
            return ()
        return self.control_origins.get(min(self.control), ())

    def key(self) -> tuple:
        return (tuple((av.tainted, av.const) for av in self.regs),
                self.mem.key(), tuple(sorted(self.control)))

    def reg(self, index: int) -> AV:
        return self.regs[index]

    def with_reg(self, index: int, av: AV) -> "State":
        if index == 0:
            return self
        regs = list(self.regs)
        regs[index] = av
        return State(tuple(regs), self.mem, self.control,
                     self.control_origins)

    def without_branches(self, closed: frozenset[int]) -> "State":
        """Drop branches whose influence region ends here."""
        remaining = self.control - closed
        if remaining == self.control:
            return self
        origins = {pc: origin
                   for pc, origin in self.control_origins.items()
                   if pc in remaining}
        return State(self.regs, self.mem, remaining, origins)

    def join(self, other: "State") -> "State":
        regs = tuple(_join_av(a, b)
                     for a, b in zip(self.regs, other.regs))
        origins = dict(other.control_origins)
        origins.update(self.control_origins)
        return State(regs, self.mem.join(other.mem),
                     self.control | other.control, origins)

    def widened(self) -> "State":
        return State(tuple(av.widened() for av in self.regs),
                     self.mem, self.control, self.control_origins)


def _initial_state(secret_regions: Iterable[tuple[int, int]],
                   public_regions: Iterable[tuple[int, int]],
                   secret_regs: set[int],
                   reg_consts: dict[int, int]) -> State:
    regs = []
    for index in range(32):
        if index == 0:
            regs.append(ZERO)
        elif index in secret_regs:
            regs.append(AV(True, None,
                           ((-1, f"secret register x{index}"),)))
        else:
            regs.append(AV(False, reg_consts.get(index)))
    secret = _subtract_intervals(secret_regions, public_regions)
    return State(tuple(regs), MemState(secret_regions=secret))


class TaintAnalysis:
    """Fixpoint result: per-pc in-states plus query helpers."""

    def __init__(self, program: Sequence[Instruction],
                 states: dict[int, State],
                 exit_state: State | None,
                 ipdom: Mapping[int, int | None] | None = None,
                 feasible: Mapping[int, tuple[int, ...]] | None = None,
                 path_sensitive: bool = False) -> None:
        self.program = program
        self.states = states              # pc -> State (absent: unreachable)
        self.exit_state = exit_state
        self.ipdom = dict(ipdom or {})
        self.feasible = dict(feasible or {})
        self.path_sensitive = path_sensitive

    def state(self, pc: int) -> State | None:
        return self.states.get(pc)

    def reachable(self, pc: int) -> bool:
        return self.states.get(pc) is not None

    def reg_taint(self, pc: int, reg: int) -> bool:
        state = self.states.get(pc)
        return bool(state and state.reg(reg).tainted)

    def resolve_address(self, pc: int) -> int | None:
        """Constant effective address of the memory op at ``pc``."""
        state = self.states.get(pc)
        if state is None:
            return None
        inst = self.program[pc]
        base = state.reg(inst.rs1).const
        if base is None:
            return None
        return effective_address(base, inst.imm)

    def result_av(self, pc: int) -> AV:
        """Abstract value produced by the instruction at ``pc``."""
        state = self.states.get(pc)
        if state is None:
            return UNTAINTED
        return _produced_value(self.program[pc], state, pc)


def _produced_value(inst: Instruction, state: State, pc: int) -> AV:
    """The AV an instruction writes to ``rd`` (loads, ALU, rdcycle)."""
    op = inst.op
    if op is Op.LOAD:
        addr = None
        base = state.reg(inst.rs1).const
        if base is not None:
            addr = effective_address(base, inst.imm)
        addr_av = state.reg(inst.rs1)
        tainted = state.mem.taint_at(addr, inst.width) or addr_av.tainted
        origin: Origin = ()
        if tainted:
            if addr_av.tainted:
                origin = _extend(addr_av.origin,
                                 (pc, "load via tainted address"))
            else:
                where = "unknown address" if addr is None \
                    else f"{addr:#x}"
                origin = _extend(
                    ((pc, state.mem.origin_at(addr, inst.width)),),
                    (pc, f"load from {where}"))
        return AV(tainted, None, origin)
    if op is Op.RDCYCLE:
        # The cycle counter is the receiver's timer: architecturally
        # public, even though its *value* is what attacks measure.
        return AV(False, None)
    a_av = state.reg(inst.rs1) if reads_rs1(op) else ZERO
    b_av = state.reg(inst.rs2) if reads_rs2(op) else ZERO
    tainted = (a_av.tainted and reads_rs1(op)) or \
              (b_av.tainted and reads_rs2(op))
    const = None
    a, b = a_av.const, b_av.const
    needs_a, needs_b = reads_rs1(op), reads_rs2(op)
    if (not needs_a or a is not None) and (not needs_b or b is not None):
        const = alu_result(op, a if needs_a else 0,
                           b if needs_b else 0, inst.imm)
    origin = a_av.origin or b_av.origin
    if tainted:
        origin = _extend(origin, (pc, f"{op.value} result"))
    return AV(tainted, const, origin)


def analyze_taint(program: Sequence[Instruction],
                  secret_regions: Iterable[tuple[int, int]] = (),
                  public_regions: Iterable[tuple[int, int]] = (),
                  secret_regs: Iterable[int] = (),
                  reg_consts: Mapping[int, int] | None = None,
                  path_sensitive: bool = True) -> TaintAnalysis:
    """Run the abstract interpretation to fixpoint.

    ``secret_regions`` / ``public_regions`` are merged with the
    program's own directives by the caller (:mod:`repro.lint.checker`);
    ``secret_regs`` marks initially tainted registers and
    ``reg_consts`` optionally pins known initial register constants
    (from :class:`~repro.engine.specs.SimSpec` ``regs``).

    With ``path_sensitive`` (the default) control taint is scoped to
    each tainted branch's post-dominator region and infeasible edges
    are pruned; pruning can tighten the post-dominators, so the two
    are iterated until the feasible successor map reaches a fixpoint.
    ``path_sensitive=False`` reproduces the sticky-flag baseline:
    control taint, once raised, never clears.
    """
    init = _initial_state(tuple(secret_regions), tuple(public_regions),
                          set(secret_regs), dict(reg_consts or {}))
    size = len(program)
    if not size:
        return TaintAnalysis(program, {}, init,
                             path_sensitive=path_sensitive)
    if not path_sensitive:
        states, exit_state = _fixpoint(program, init, None)
        return TaintAnalysis(program, states, exit_state,
                             feasible=_feasible_map(program, states),
                             path_sensitive=False)
    feasible = static_successors(program)
    seen_maps = {_map_key(feasible)}
    ipdom = immediate_postdominators(program, feasible)
    while True:
        states, exit_state = _fixpoint(program, init, ipdom)
        observed = _feasible_map(program, states)
        key = _map_key(observed)
        if key in seen_maps:
            break
        seen_maps.add(key)
        feasible = observed
        ipdom = immediate_postdominators(program, feasible)
    return TaintAnalysis(program, states, exit_state, ipdom=ipdom,
                         feasible=observed, path_sensitive=True)


def _map_key(succs: Mapping[int, tuple[int, ...]]) -> tuple:
    return tuple(sorted((pc, tuple(sorted(out)))
                        for pc, out in succs.items()))


def _feasible_map(program: Sequence[Instruction], states: Mapping[int, State],
                  ) -> dict[int, tuple[int, ...]]:
    """Successor edges actually followed at the fixpoint.

    Unreachable pcs get no out-edges, and exactly-folded branches keep
    only their real successor — this is the pruned graph the next
    post-dominator round runs on.
    """
    feasible: dict[int, tuple[int, ...]] = {}
    for pc in range(len(program)):
        state = states.get(pc)
        if state is None:
            feasible[pc] = ()
            continue
        size = len(program)
        edges = _transfer(program[pc], state, pc, size)
        feasible[pc] = tuple(sorted({succ for succ, _ in edges}))
    return feasible


def _fixpoint(program: Sequence[Instruction], init: State,
              ipdom: Mapping[int, int | None] | None,
              ) -> tuple[dict[int, State], State | None]:
    """One worklist run.  ``ipdom=None`` means sticky control taint;
    otherwise each open branch is closed on the edge into its
    immediate post-dominator."""
    size = len(program)
    states = {0: init}
    exit_states: list[State] = []
    visits = {pc: 0 for pc in range(size)}
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        state = states[pc]
        inst = program[pc]
        for succ, out in _transfer(inst, state, pc, size):
            if ipdom is not None and out.control:
                closed = frozenset(branch for branch in out.control
                                   if ipdom.get(branch) == succ)
                if closed:
                    out = out.without_branches(closed)
            if succ >= size:
                exit_states.append(out)
                continue
            current = states.get(succ)
            if current is None:
                states[succ] = out
                worklist.append(succ)
                continue
            joined = current.join(out)
            if joined.key() != current.key():
                visits[succ] += 1
                if visits[succ] > WIDEN_AFTER:
                    joined = joined.widened()
                states[succ] = joined
                worklist.append(succ)
    exit_state = None
    for state in exit_states:
        exit_state = state if exit_state is None \
            else exit_state.join(state)
    return states, exit_state


def _transfer(inst: Instruction, state: State, pc: int,
              size: int) -> tuple[tuple[int, State], ...]:
    """Successor states of executing ``inst`` in ``state``."""
    op = inst.op
    if op is Op.HALT:
        return ((size, state),)
    if op is Op.JMP:
        return ((inst.target, state),)
    if is_branch(op):
        a_av, b_av = state.reg(inst.rs1), state.reg(inst.rs2)
        out = state
        if a_av.tainted or b_av.tainted:
            origin = _extend(a_av.origin or b_av.origin,
                             (pc, f"branch {op.value} on tainted "
                                  f"condition"))
            origins = dict(state.control_origins)
            origins.setdefault(pc, origin)
            out = State(state.regs, state.mem,
                        state.control | {pc}, origins)
        if a_av.const is not None and b_av.const is not None \
                and not (a_av.tainted or b_av.tainted):
            # Exact fold: only the real successor is reachable.
            taken = branch_taken(op, a_av.const, b_av.const)
            return ((inst.target if taken else pc + 1, out),)
        fall, taken = pc + 1, inst.target
        if fall == taken:
            return ((fall, out),)
        return ((fall, out), (taken, out))
    if op is Op.STORE:
        value_av = state.reg(inst.rs2)
        base_av = state.reg(inst.rs1)
        addr = None
        if base_av.const is not None:
            addr = effective_address(base_av.const, inst.imm)
        stored = value_av
        if state.control and not stored.tainted:
            stored = AV(True, stored.const,
                        _extend(state.control_origin,
                                (pc, "store under tainted control")))
        if base_av.tainted:
            addr = None                   # tainted pointer: anywhere
        mem = state.mem.copy()
        mem.record_store(addr, inst.width, stored)
        if base_av.tainted and not mem.unknown_tainted_store:
            # A secret-addressed store of a public value still makes
            # memory contents secret-dependent (which word changed?).
            mem.unknown_tainted_store = True
        out = State(state.regs, mem, state.control,
                    state.control_origins)
        return ((pc + 1, out),)
    if op in (Op.FENCE, Op.NOP):
        return ((pc + 1, state),)
    if writes_register(op):
        value = _produced_value(inst, state, pc)
        if state.control and not value.tainted:
            value = AV(True, value.const,
                       _extend(state.control_origin,
                               (pc, "written under tainted control")))
        return ((pc + 1, state.with_reg(inst.rd, value)),)
    return ((pc + 1, state),)


__all__ = [
    "AV", "MAX_ORIGIN_FRAMES", "MemState", "Origin", "State",
    "TaintAnalysis", "UNTAINTED", "WIDEN_AFTER", "ZERO",
    "analyze_taint", "successors",
]
