"""Two-level cache hierarchy with a flat latency model.

Latencies are the channel: every demand access returns the number of
cycles it takes, determined by where the line is found.  Prefetches can
optionally be routed into a small *prefetch buffer* in front of L1 —
the "defense" discussed (and dismissed) in Section V-B3 of the paper:
buffered prefetches stay out of L1, but still fill L2, so a receiver that
probes L2 timing still sees them.
"""

import random
from dataclasses import dataclass, field

from repro.memory.cache import Cache
from repro.stats import NULL_STATS
from repro.trace.buffer import NULL_TRACE


@dataclass
class MemoryLatencies:
    """Cycle costs by hit level.

    The defaults give a > 100-cycle gap between an L1 hit and a memory
    access, matching the paper's observation that a single store miss
    produces an easily distinguishable end-to-end difference (Figure 6).

    ``jitter`` adds seeded, uniform ±jitter cycles to every *memory*
    access (DRAM scheduling, refresh, bus contention), the dominant
    source of timing spread on real systems; the simulator stays
    reproducible because the stream is seeded.
    """

    l1_hit: int = 2
    l2_hit: int = 12
    memory: int = 120
    store_perform: int = 1
    jitter: int = 0
    seed: int = 0
    _rng: object = field(default=None, repr=False, compare=False)

    def memory_latency(self):
        """The (possibly jittered) DRAM access latency."""
        if not self.jitter:
            return self.memory
        if self._rng is None:
            self._rng = random.Random(self.seed)
        return self.memory + self._rng.randint(-self.jitter, self.jitter)


class MemoryHierarchy:
    """L1 + optional L2 presence model over a :class:`FlatMemory`.

    The hierarchy is write-through for data (values always live in the
    backing :class:`FlatMemory`) but write-allocate for presence: a store
    may only *perform* when its line is in L1, which is the property the
    silent-store amplification gadget exploits (Section V-A2).
    """

    def __init__(self, memory, l1=None, l2=None, latencies=None,
                 prefetch_buffer_size=0, tlb=None, metrics=None,
                 trace=None):
        self.memory = memory
        self.l1 = l1 if l1 is not None else Cache()
        self.l2 = l2
        self.latencies = latencies if latencies is not None else MemoryLatencies()
        self.prefetch_buffer_size = prefetch_buffer_size
        #: Optional TLB: demand accesses AND prefetches translate
        #: through it (the IMP sits close to the core for exactly this;
        #: Section IV-D2).
        self.tlb = tlb
        self._prefetch_buffer = []  # FIFO of line addresses
        #: Shared :class:`repro.stats.SimStats`; the engine's Session
        #: replaces this with the run's record.  The legacy ``stats``
        #: dict below stays for existing callers/tests.
        self.metrics = metrics if metrics is not None else NULL_STATS
        #: Shared :class:`repro.trace.TraceBuffer` (clocked by the
        #: attached core via :meth:`CPU.install_trace`).
        self.trace = trace if trace is not None else NULL_TRACE
        self.stats = {
            "reads": 0, "writes": 0, "prefetches": 0,
            "l1_hits": 0, "l2_hits": 0, "memory_accesses": 0,
            "prefetch_buffer_hits": 0,
        }
        #: Monotone activity counter: bumped on every state-bearing
        #: access (demand reads, writes, prefetches, store fills).  The
        #: fast-path core (:mod:`repro.pipeline.fastpath`) compares it
        #: across a cycle to prove the memory system saw no activity —
        #: including plug-in-initiated traffic — before skipping ahead.
        self.epoch = 0

    # -- presence ------------------------------------------------------------

    def line_in_l1(self, addr):
        return self.l1.contains(addr)

    def line_in_l2(self, addr):
        return self.l2 is not None and self.l2.contains(addr)

    def in_prefetch_buffer(self, addr):
        return self.l1.line_of(addr) in self._prefetch_buffer

    # -- demand accesses -------------------------------------------------------

    def read(self, addr, width=8, fill=True):
        """Demand read: returns ``(value, latency_cycles, hit_level)``.

        ``hit_level`` is one of ``"l1"``, ``"pb"``, ``"l2"``, ``"mem"``.
        """
        self.epoch += 1
        self.stats["reads"] += 1
        value = self.memory.read(addr, width)
        latency, level = self._access_for_latency(addr, fill)
        return value, latency, level

    def access_latency(self, addr, fill=True):
        """Latency-only access (used for instruction-less probes)."""
        self.epoch += 1
        latency, _ = self._access_for_latency(addr, fill)
        return latency

    def _access_for_latency(self, addr, fill):
        if self.tlb is not None:
            translation = self.tlb.access(addr)
            if self.metrics.enabled:
                self.metrics.inc("mem.tlb.walks" if translation
                                 else "mem.tlb.hits")
            if translation and self.trace.enabled:
                self.trace.emit("mem", "tlb_walk", addr=addr,
                                info=f"latency={translation}")
        else:
            translation = 0
        latency, level = self._cache_access(addr, fill)
        return translation + latency, level

    def _fill_l1(self, addr):
        evicted = self.l1.fill_line(addr)
        if evicted is not None and self.trace.enabled:
            self.trace.emit("mem", "l1_evict", addr=evicted)

    def _fill_l2(self, addr):
        evicted = self.l2.fill_line(addr)
        if evicted is not None and self.trace.enabled:
            self.trace.emit("mem", "l2_evict", addr=evicted)

    def _cache_access(self, addr, fill):
        lat = self.latencies
        metrics_on = self.metrics.enabled
        trace_on = self.trace.enabled
        if self.l1.contains(addr):
            self.l1.touch(addr)
            self.stats["l1_hits"] += 1
            if metrics_on:
                self.metrics.inc("mem.l1.hits")
            if trace_on:
                self.trace.emit("mem", "l1_hit", addr=addr)
            return lat.l1_hit, "l1"
        if metrics_on:
            self.metrics.inc("mem.l1.misses")
        line = self.l1.line_of(addr)
        if line in self._prefetch_buffer:
            # Promote from the prefetch buffer into L1.
            self.stats["prefetch_buffer_hits"] += 1
            self._prefetch_buffer.remove(line)
            if fill:
                self._fill_l1(addr)
            if metrics_on:
                self.metrics.inc("mem.pb.hits")
                self.metrics.observe("mem.miss_latency", lat.l1_hit + 1,
                                     bin_width=8)
            if trace_on:
                self.trace.emit("mem", "pb_hit", addr=addr,
                                info=f"latency={lat.l1_hit + 1}")
            return lat.l1_hit + 1, "pb"
        if self.l2 is not None and self.l2.contains(addr):
            self.l2.touch(addr)
            self.stats["l2_hits"] += 1
            if fill:
                self._fill_l1(addr)
            if metrics_on:
                self.metrics.inc("mem.l2.hits")
                self.metrics.observe("mem.miss_latency", lat.l2_hit,
                                     bin_width=8)
            if trace_on:
                self.trace.emit("mem", "l2_hit", addr=addr,
                                info=f"latency={lat.l2_hit}")
            return lat.l2_hit, "l2"
        self.stats["memory_accesses"] += 1
        if fill:
            if self.l2 is not None:
                self._fill_l2(addr)
            self._fill_l1(addr)
        latency = lat.memory_latency()
        if metrics_on:
            if self.l2 is not None:
                self.metrics.inc("mem.l2.misses")
            self.metrics.inc("mem.dram.accesses")
            self.metrics.observe("mem.miss_latency", latency, bin_width=8)
        if trace_on:
            self.trace.emit("mem", "dram_access", addr=addr,
                            info=f"latency={latency}")
        return latency, "mem"

    def request_line_for_store(self, addr):
        """Bring ``addr``'s line into L1 for a store to perform.

        Returns the fill latency (0 when already resident).  This is the
        path that the amplification gadget stretches: a non-silent store
        whose line was evicted pays the full memory latency here while
        head-of-line blocking the store queue.
        """
        if self.l1.contains(addr):
            return 0
        self.epoch += 1
        latency, _ = self._access_for_latency(addr, fill=True)
        return latency

    def write(self, addr, value, width=8):
        """Architecturally perform a store (line must already be in L1)."""
        self.epoch += 1
        self.stats["writes"] += 1
        if self.metrics.enabled:
            self.metrics.inc("mem.writes")
        self.memory.write(addr, value, width)
        self.l1.touch(addr)

    # -- prefetches -----------------------------------------------------------

    def prefetch(self, addr):
        """Prefetcher-initiated fill.

        Fills L2 always; fills L1 directly unless a prefetch buffer is
        configured, in which case the line is parked in the buffer.
        Translates through the TLB when one is attached — the IMP
        prefetches virtual addresses (Section IV-D2), leaving
        page-granularity footprints too.
        """
        self.epoch += 1
        self.stats["prefetches"] += 1
        if self.metrics.enabled:
            self.metrics.inc("mem.prefetches")
        if self.trace.enabled:
            self.trace.emit("mem", "prefetch", addr=addr)
        if self.tlb is not None:
            walk = self.tlb.access(addr)
            if self.metrics.enabled:
                self.metrics.inc("mem.tlb.walks" if walk
                                 else "mem.tlb.hits")
            if walk and self.trace.enabled:
                self.trace.emit("mem", "tlb_walk", addr=addr,
                                info=f"latency={walk}")
        if self.l2 is not None:
            self._fill_l2(addr)
        if self.prefetch_buffer_size > 0:
            line = self.l1.line_of(addr)
            if line not in self._prefetch_buffer:
                self._prefetch_buffer.append(line)
                if len(self._prefetch_buffer) > self.prefetch_buffer_size:
                    self._prefetch_buffer.pop(0)
        else:
            self._fill_l1(addr)

    # -- utilities --------------------------------------------------------------

    def snapshot_into(self, metrics=None):
        """Copy end-of-run structure counters into a stats record.

        Eviction/fill totals live inside the per-level :class:`Cache`
        (and :class:`TLB`) objects; snapshotting them once at the end
        of a run keeps the per-access hot path free of extra writes.
        Counters sum under merge, so per-trial snapshots aggregate
        correctly across a batch.
        """
        metrics = metrics if metrics is not None else self.metrics
        if not metrics.enabled:
            return metrics
        metrics.inc("mem.l1.evictions", self.l1.stats["evictions"])
        if self.l2 is not None:
            metrics.inc("mem.l2.evictions", self.l2.stats["evictions"])
        if self.tlb is not None:
            metrics.inc("mem.tlb.evictions", self.tlb.stats["evictions"])
        return metrics

    def flush_all(self):
        self.l1.flush()
        if self.l2 is not None:
            self.l2.flush()
        if self.tlb is not None:
            self.tlb.flush()
        self._prefetch_buffer.clear()
