"""Flat byte-addressable backing memory.

This is the architectural data memory (``Arch data_memory`` in the MLD
framework).  It is shared by the interpreter, the cache hierarchy and —
critically for the paper's prefetcher attack — the data memory-dependent
prefetcher, which dereferences its contents with no bounds knowledge.
"""

_WORD_MASK = (1 << 64) - 1


class MemoryError_(Exception):
    """Raised on out-of-range physical accesses."""


class FlatMemory:
    """A fixed-size little-endian byte array with word accessors."""

    def __init__(self, size=1 << 22):
        self.size = size
        self._data = bytearray(size)

    def _check(self, addr, width):
        if addr < 0 or addr + width > self.size:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + width:#x}) outside physical "
                f"memory of size {self.size:#x}")

    def read(self, addr, width=8):
        """Read ``width`` bytes at ``addr``, zero-extended to a word."""
        self._check(addr, width)
        return int.from_bytes(self._data[addr:addr + width], "little")

    def write(self, addr, value, width=8):
        """Write the low ``width`` bytes of ``value`` at ``addr``."""
        self._check(addr, width)
        self._data[addr:addr + width] = (
            (value & _WORD_MASK).to_bytes(8, "little")[:width])

    def read_bytes(self, addr, length):
        self._check(addr, length)
        return bytes(self._data[addr:addr + length])

    def write_bytes(self, addr, data):
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    def fill(self, addr, length, byte=0):
        self._check(addr, length)
        self._data[addr:addr + length] = bytes([byte]) * length
