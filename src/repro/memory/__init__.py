"""Memory substrate: flat memory, set-associative caches, hierarchy."""

from repro.memory.cache import Cache, ReplacementPolicy
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies
from repro.memory.tlb import TLB

__all__ = [
    "Cache", "ReplacementPolicy", "FlatMemory",
    "MemoryHierarchy", "MemoryLatencies", "TLB",
]
