"""A set-associative cache model.

The cache is a *presence* model: it tracks which lines are resident (data
lives in :class:`~repro.memory.flatmem.FlatMemory`), which is all that the
paper's channels need — hits vs misses, set occupancy and evictions are
the observable outcomes (Figure 2, Example 3).
"""

import random


class ReplacementPolicy:
    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class Cache:
    """One level of set-associative cache.

    Parameters
    ----------
    num_sets, ways, line_size:
        Geometry.  ``line_size`` must be a power of two.
    policy:
        One of :class:`ReplacementPolicy`.  ``random`` uses ``seed`` for
        reproducibility.
    """

    def __init__(self, num_sets=64, ways=4, line_size=64,
                 policy=ReplacementPolicy.LRU, seed=0):
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self.policy = policy
        self._rng = random.Random(seed)
        # Each set is a list of tags; for LRU the most recently used tag is
        # last, for FIFO the oldest inserted is first.
        self._sets = [[] for _ in range(num_sets)]
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    @property
    def capacity_bytes(self):
        return self.num_sets * self.ways * self.line_size

    def line_of(self, addr):
        """Line-aligned address containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def set_index(self, addr):
        """The set that ``addr`` maps to."""
        return (addr // self.line_size) % self.num_sets

    def tag_of(self, addr):
        return addr // self.line_size // self.num_sets

    def contains(self, addr):
        """Presence check with no replacement-state side effects."""
        return self.tag_of(addr) in self._sets[self.set_index(addr)]

    def touch(self, addr):
        """Promote ``addr``'s line for LRU purposes if resident."""
        tags = self._sets[self.set_index(addr)]
        tag = self.tag_of(addr)
        if tag in tags and self.policy == ReplacementPolicy.LRU:
            tags.remove(tag)
            tags.append(tag)

    def access(self, addr, fill=True):
        """Look up ``addr``; on a miss optionally fill its line.

        Returns ``(hit, evicted_line_addr_or_None)``.
        """
        index = self.set_index(addr)
        tags = self._sets[index]
        tag = self.tag_of(addr)
        if tag in tags:
            self.stats["hits"] += 1
            if self.policy == ReplacementPolicy.LRU:
                tags.remove(tag)
                tags.append(tag)
            return True, None
        self.stats["misses"] += 1
        if not fill:
            return False, None
        evicted = None
        if len(tags) >= self.ways:
            if self.policy == ReplacementPolicy.RANDOM:
                victim = self._rng.randrange(len(tags))
            else:
                victim = 0  # LRU and FIFO both evict the head.
            evicted_tag = tags.pop(victim)
            evicted = (evicted_tag * self.num_sets + index) * self.line_size
            self.stats["evictions"] += 1
        tags.append(tag)
        return False, evicted

    def fill_line(self, addr):
        """Install ``addr``'s line (used for prefetch and write fills)."""
        hit, evicted = self.access(addr, fill=True)
        return evicted if not hit else None

    def invalidate(self, addr):
        """Remove ``addr``'s line if resident; returns True if removed."""
        tags = self._sets[self.set_index(addr)]
        tag = self.tag_of(addr)
        if tag in tags:
            tags.remove(tag)
            return True
        return False

    def flush(self):
        """Empty the whole cache."""
        self._sets = [[] for _ in range(self.num_sets)]

    def resident_lines(self):
        """All resident line addresses (for tests and attack tooling)."""
        lines = []
        for index, tags in enumerate(self._sets):
            for tag in tags:
                lines.append((tag * self.num_sets + index) * self.line_size)
        return lines

    def set_occupancy(self, index):
        """Number of resident ways in set ``index``."""
        return len(self._sets[index])
