"""A TLB model.

Two roles in the reproduction:

* the TLB is one of the *Baseline* channels of Table I (it leaks load/
  store addresses at page granularity — Gras et al.'s TLBleed is the
  paper's citation [52]);
* the indirect-memory prefetcher is "typically located close to the
  core (to be able to access the TLB) and prefetch[es] over virtual
  addresses" (Section IV-D2) — with a TLB attached, both demand
  accesses and IMP prefetches pay translation latency and leave
  page-granularity footprints.

Translation is identity (virtual == physical); the TLB contributes
latency and observable occupancy, which is all the channels need.
"""


class TLB:
    """Fully-associative, LRU translation buffer."""

    def __init__(self, entries=64, page_size=4096, walk_latency=30):
        if page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.entries = entries
        self.page_size = page_size
        self.walk_latency = walk_latency
        self._pages = []  # LRU: most recently used last
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def page_of(self, addr):
        return addr // self.page_size

    def contains(self, addr):
        return self.page_of(addr) in self._pages

    def access(self, addr):
        """Translate ``addr``; returns the added latency (0 on a hit)."""
        page = self.page_of(addr)
        if page in self._pages:
            self.stats["hits"] += 1
            self._pages.remove(page)
            self._pages.append(page)
            return 0
        self.stats["misses"] += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(0)
            self.stats["evictions"] += 1
        self._pages.append(page)
        return self.walk_latency

    def flush(self):
        self._pages.clear()

    def resident_pages(self):
        return list(self._pages)
