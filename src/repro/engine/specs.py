"""Declarative simulation specifications.

Every experiment in the repo is a *replay* attack: thousands of
independent simulator runs, each fully described by (program, core
config, memory-hierarchy geometry, optimization plug-ins, initial
memory image, initial registers).  :class:`SimSpec` captures exactly
that description as plain, picklable data so that one spec can be

* **built** into a ready-to-run core (:meth:`SimSpec.build` via
  :class:`repro.engine.session.Session`),
* **shipped** to a worker process by the trial runner
  (:mod:`repro.engine.runner`), and
* **fingerprinted** into a stable content hash that keys the result
  cache (:mod:`repro.engine.cache`).

Specs never hold live simulator objects — caches, hierarchies and
plug-ins are described by small frozen dataclasses and only
instantiated at build time, so a spec is cheap to copy, hash and
pickle.
"""

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field

from repro.isa.assembler import Program, normalize_regions
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.memory.cache import Cache
from repro.memory.flatmem import FlatMemory
from repro.memory.hierarchy import MemoryHierarchy, MemoryLatencies
from repro.memory.tlb import TLB
from repro.pipeline.config import CPUConfig


class SpecError(Exception):
    """Raised for malformed specs (unknown plug-ins, bad geometry)."""


# ----------------------------------------------------------------------
# hierarchy description
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level (see :class:`repro.memory.Cache`)."""

    num_sets: int = 64
    ways: int = 4
    line_size: int = 64
    policy: str = "lru"
    seed: int = 0

    def build(self, extra_seed=0):
        return Cache(num_sets=self.num_sets, ways=self.ways,
                     line_size=self.line_size, policy=self.policy,
                     seed=self.seed ^ extra_seed)


@dataclass(frozen=True)
class TLBSpec:
    """Geometry of the optional TLB (see :class:`repro.memory.TLB`)."""

    entries: int = 64
    page_size: int = 4096
    walk_latency: int = 30

    def build(self):
        return TLB(entries=self.entries, page_size=self.page_size,
                   walk_latency=self.walk_latency)


@dataclass(frozen=True)
class LatencySpec:
    """Picklable mirror of :class:`repro.memory.MemoryLatencies`.

    The live class carries a lazily-created RNG; this spec carries only
    the numbers, so it hashes and pickles cleanly.
    """

    l1_hit: int = 2
    l2_hit: int = 12
    memory: int = 120
    store_perform: int = 1
    jitter: int = 0
    seed: int = 0

    @classmethod
    def from_latencies(cls, latencies):
        """Lift a live :class:`MemoryLatencies` into a spec."""
        if isinstance(latencies, cls) or latencies is None:
            return latencies if latencies is not None else cls()
        return cls(l1_hit=latencies.l1_hit, l2_hit=latencies.l2_hit,
                   memory=latencies.memory,
                   store_perform=latencies.store_perform,
                   jitter=latencies.jitter, seed=latencies.seed)

    def build(self, extra_seed=0):
        return MemoryLatencies(
            l1_hit=self.l1_hit, l2_hit=self.l2_hit, memory=self.memory,
            store_perform=self.store_perform, jitter=self.jitter,
            seed=self.seed ^ extra_seed)


@dataclass(frozen=True)
class HierarchySpec:
    """Full memory-system description: backing memory + caches + TLB."""

    memory_size: int = 1 << 20
    l1: CacheSpec = CacheSpec()
    l2: object = None                 # CacheSpec or None
    latencies: LatencySpec = LatencySpec()
    prefetch_buffer_size: int = 0
    tlb: object = None                # TLBSpec or None

    def build(self, memory=None, extra_seed=0):
        """Instantiate a :class:`MemoryHierarchy` (and its memory)."""
        if memory is None:
            memory = FlatMemory(self.memory_size)
        l2 = self.l2.build(extra_seed) if self.l2 is not None else None
        tlb = self.tlb.build() if self.tlb is not None else None
        return MemoryHierarchy(
            memory, l1=self.l1.build(extra_seed), l2=l2,
            latencies=self.latencies.build(extra_seed),
            prefetch_buffer_size=self.prefetch_buffer_size, tlb=tlb)


# ----------------------------------------------------------------------
# plug-in description
# ----------------------------------------------------------------------

#: Registry of plug-in factories keyed by the plug-in class ``name``
#: attribute.  Populated lazily (to keep import order flexible) plus
#: via :func:`register_plugin` for out-of-tree plug-ins.
_PLUGIN_REGISTRY = {}


def _builtin_plugins():
    from repro import optimizations as opt
    from repro.pipeline.trace import PipelineTracer
    return {
        "pipeline-tracer": PipelineTracer,
        "silent-stores": opt.SilentStorePlugin,
        "computation-reuse": opt.ComputationReusePlugin,
        "computation-simplification": opt.ComputationSimplificationPlugin,
        "value-prediction": opt.ValuePredictionPlugin,
        "register-file-compression": opt.RegisterFileCompressionPlugin,
        "operand-packing": opt.OperandPackingPlugin,
        "early-terminating-multiplier": opt.EarlyTerminatingMultiplierPlugin,
        "indirect-memory-prefetcher": opt.IndirectMemoryPrefetcher,
    }


def register_plugin(name, factory):
    """Register an out-of-tree plug-in factory for :class:`PluginSpec`."""
    _PLUGIN_REGISTRY[name] = factory


def plugin_names():
    """Every registered plug-in name (built-ins included), sorted."""
    if not _PLUGIN_REGISTRY:
        _PLUGIN_REGISTRY.update(_builtin_plugins())
    return sorted(_PLUGIN_REGISTRY)


def plugin_factory(name):
    if not _PLUGIN_REGISTRY:
        _PLUGIN_REGISTRY.update(_builtin_plugins())
    try:
        return _PLUGIN_REGISTRY[name]
    except KeyError:
        raise SpecError(f"unknown plug-in {name!r}; known: "
                        f"{sorted(_PLUGIN_REGISTRY)}") from None


@dataclass(frozen=True)
class PluginSpec:
    """An optimization plug-in by registry name + constructor kwargs."""

    name: str
    kwargs: tuple = ()      # sorted (key, value) pairs

    @classmethod
    def of(cls, name, **kwargs):
        return cls(name=name, kwargs=tuple(sorted(kwargs.items())))

    def build(self):
        return plugin_factory(self.name)(**dict(self.kwargs))


# ----------------------------------------------------------------------
# trace description
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSpec:
    """Configuration of the run's :class:`repro.trace.TraceBuffer`.

    ``categories`` is a tuple of category names to record (empty means
    all of :data:`repro.trace.CATEGORIES`); ``sample`` keeps every
    N-th event per category.  Attaching a ``TraceSpec`` to a
    :class:`SimSpec` never changes simulated behaviour — emission is
    observation only — but it does enter the fingerprint (see
    :meth:`SimSpec.fingerprint`) because the resulting
    :class:`~repro.engine.session.RunResult` carries the trace payload.
    """

    capacity: int = 65536
    categories: tuple = ()
    sample: int = 1

    def build(self, metrics=None):
        from repro.trace.buffer import TraceBuffer
        return TraceBuffer(
            capacity=self.capacity,
            categories=self.categories if self.categories else None,
            sample=self.sample, metrics=metrics)


# ----------------------------------------------------------------------
# taint description
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TaintSpec:
    """Static taint seed for the :mod:`repro.lint` checker.

    ``secret`` / ``public`` are canonical ``(start, end)`` byte ranges
    (end exclusive) marking which parts of the initial memory image
    hold secrets (resp. attacker-chosen data); ``secret_regs`` names
    architectural registers preloaded with secret values.  The spec is
    *metadata about* a simulation, not part of it: attaching or
    changing a ``TaintSpec`` never alters simulated behaviour, so —
    like ``fastpath`` — it stays outside :meth:`SimSpec.fingerprint`
    and cached results survive annotation.  Program-level ``.secret`` /
    ``.public`` directives are merged in by the checker.
    """

    secret: tuple = ()        # (start, end) byte ranges, end exclusive
    public: tuple = ()
    secret_regs: tuple = ()   # architectural register indices

    @classmethod
    def of(cls, secret=(), public=(), secret_regs=()):
        """Build a normalized spec (sorted, validated regions)."""
        return cls(secret=normalize_regions(secret, "secret"),
                   public=normalize_regions(public, "public"),
                   secret_regs=tuple(sorted(set(
                       int(reg) for reg in secret_regs))))


# ----------------------------------------------------------------------
# the simulation spec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimSpec:
    """One complete, picklable simulation description.

    ``mem_writes`` are word-granular ``(addr, value, width)`` writes and
    ``mem_blobs`` are ``(addr, bytes)`` images; together they form the
    initial memory image.  ``regs`` preloads architectural registers.
    ``seed`` perturbs every seeded randomness source in the built
    simulation (latency jitter, random-replacement caches), which is
    how the trial runner derives independent-but-reproducible trials.
    ``record_regs`` names architectural registers whose final values
    are captured into the run's observations.  ``label`` and ``meta``
    are presentation-only and excluded from the fingerprint;
    ``collect_stats`` toggles the run's :mod:`repro.stats` record and
    never changes simulated behaviour (it enters the fingerprint only
    when False — see :meth:`fingerprint`).  ``trace`` optionally
    attaches a :class:`TraceSpec`; a traced run's
    :class:`~repro.engine.session.RunResult` carries the deterministic
    event payload, so a non-``None`` trace is its own fingerprint
    dimension (again see :meth:`fingerprint`).  ``fastpath`` selects
    the :class:`~repro.pipeline.fastpath.FastPathCPU` kernel (the
    default) or the reference :class:`~repro.pipeline.cpu.CPU` loop;
    the two are bitwise-equivalent by contract, so the toggle never
    enters the fingerprint and both kernels share cached results.
    ``taint`` optionally attaches a :class:`TaintSpec` for the static
    leakage checker; like ``fastpath`` it is lint metadata about the
    run, never changes (or re-fingerprints) the simulation, and
    existing cache entries survive its addition.  ``backend`` is a
    scheduling *hint* naming the execution backend
    (:mod:`repro.engine.backends`) a batch of such specs prefers
    (``""`` means no preference); every backend is bitwise-equivalent
    by contract, so — exactly like ``fastpath`` — the hint never
    enters the fingerprint and all backends share cached results.
    """

    program: Program
    config: object = None             # CPUConfig or None for defaults
    hierarchy: HierarchySpec = HierarchySpec()
    plugins: tuple = ()               # PluginSpec instances
    mem_writes: tuple = ()            # (addr, value, width)
    mem_blobs: tuple = ()             # (addr, bytes)
    regs: tuple = ()                  # (arch_index, value)
    max_cycles: object = None
    seed: int = 0
    record_regs: tuple = ()
    label: str = ""
    meta: tuple = ()                  # free-form (key, value) pairs
    collect_stats: bool = True
    trace: object = None              # TraceSpec or None (tracing off)
    fastpath: bool = True             # fast-path kernel (bitwise-equal)
    taint: object = None              # TaintSpec or None (lint metadata)
    backend: str = ""                 # execution-backend hint ("" = any)

    def replace(self, **changes):
        return dataclasses.replace(self, **changes)

    # -- building ------------------------------------------------------

    def build_memory(self):
        memory = FlatMemory(self.hierarchy.memory_size)
        for addr, data in self.mem_blobs:
            memory.write_bytes(addr, bytes(data))
        for addr, value, width in self.mem_writes:
            memory.write(addr, value, width)
        return memory

    def build(self):
        """Instantiate a ready :class:`repro.engine.session.Session`."""
        from repro.engine.session import Session
        return Session.from_spec(self)

    # -- serialization -------------------------------------------------

    def to_json_dict(self):
        """Canonical JSON-able form of the complete spec.

        :meth:`from_json_dict` reconstructs a spec with the identical
        :meth:`fingerprint`, so specs can be persisted, diffed and
        shipped across machines without invalidating cached results.
        Plug-in kwargs must themselves be JSON-able.
        """
        return {
            "program": {
                "instructions": [
                    [inst.op.value, inst.rd, inst.rs1, inst.rs2,
                     inst.imm, inst.width,
                     -1 if inst.target is None else int(inst.target),
                     inst.annotation]
                    for inst in self.program],
                "labels": dict(self.program.labels),
                "secret_regions": _canonical(
                    self.program.secret_regions),
                "public_regions": _canonical(
                    self.program.public_regions),
            },
            "config": (None if self.config is None
                       else _canonical(self.config)),
            "hierarchy": _canonical(self.hierarchy),
            "plugins": _canonical(self.plugins),
            "mem_writes": _canonical(self.mem_writes),
            "mem_blobs": [[addr, bytes(data).hex()]
                          for addr, data in self.mem_blobs],
            "regs": _canonical(self.regs),
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "record_regs": _canonical(self.record_regs),
            "label": self.label,
            "meta": _canonical(self.meta),
            "collect_stats": self.collect_stats,
            "trace": (None if self.trace is None
                      else _canonical(self.trace)),
            "fastpath": self.fastpath,
            "taint": (None if self.taint is None
                      else _canonical(self.taint)),
            "backend": self.backend,
        }

    def to_json(self, **kwargs):
        return json.dumps(self.to_json_dict(), sort_keys=True, **kwargs)

    @classmethod
    def from_json_dict(cls, data):
        """Rebuild a spec from :meth:`to_json_dict` output."""
        instructions = [
            Instruction(op=Op(op), rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                        width=width,
                        target=None if target == -1 else target,
                        pc=pc, annotation=annotation)
            for pc, (op, rd, rs1, rs2, imm, width, target, annotation)
            in enumerate(data["program"]["instructions"])]
        program = Program(
            instructions, data["program"]["labels"],
            secret_regions=_from_canonical(
                data["program"].get("secret_regions", [])),
            public_regions=_from_canonical(
                data["program"].get("public_regions", [])))
        return cls(
            program=program,
            config=_from_canonical(data["config"]),
            hierarchy=_from_canonical(data["hierarchy"]),
            plugins=_from_canonical(data["plugins"]),
            mem_writes=_from_canonical(data["mem_writes"]),
            mem_blobs=tuple((addr, bytes.fromhex(blob))
                            for addr, blob in data["mem_blobs"]),
            regs=_from_canonical(data["regs"]),
            max_cycles=data["max_cycles"],
            seed=data["seed"],
            record_regs=_from_canonical(data["record_regs"]),
            label=data.get("label", ""),
            meta=_from_canonical(data.get("meta", [])),
            collect_stats=data.get("collect_stats", True),
            trace=_from_canonical(data.get("trace")),
            fastpath=data.get("fastpath", True),
            taint=_from_canonical(data.get("taint")),
            backend=data.get("backend", ""))

    @classmethod
    def from_json(cls, text):
        return cls.from_json_dict(json.loads(text))

    # -- fingerprinting ------------------------------------------------

    def fingerprint(self):
        """Stable content hash of everything that affects the run.

        ``result_version`` stamps the :class:`RunResult` schema, not
        the simulation: bumping it orphans persisted cache entries
        whose payloads predate a new result field (version 2 added
        ``metrics``, version 3 added ``trace``).  ``collect_stats``
        enters the hash only when False, so the default keeps one
        fingerprint per simulation while a metrics-less run can never
        satisfy a metrics-wanting cache lookup.  Symmetrically,
        ``trace`` enters the hash only when not None: the default keeps
        one fingerprint per simulation while a traced run (whose result
        carries the event payload) caches separately per trace
        configuration.  ``fastpath`` never enters the hash: the
        fast-path kernel is bitwise-equivalent to the reference loop
        (enforced by ``tests/test_fastpath_equivalence.py``), so a
        result computed by either kernel satisfies both — which is
        also what lets the differential suite compare cached goldens
        across kernels at all.  ``taint`` likewise never enters the
        hash: it only seeds the static checker, so annotating a spec
        with lint metadata keeps every previously cached result (and
        golden-fingerprint pin) valid.  ``backend`` is a scheduling
        hint with the same bitwise-equivalence contract as ``fastpath``
        (enforced by ``tests/test_engine_backends.py``), so it stays
        outside the hash too and every backend shares one cache entry
        per simulation.

        The digest is memoized on the (frozen) instance: sweeps and
        repeated batches fingerprint the same spec object many times,
        and the hash is a pure function of its content.  ``replace()``
        builds a fresh instance, so derived specs never inherit a
        stale memo.
        """
        memo = self.__dict__.get("_fingerprint_memo")
        if memo is not None:
            return memo
        payload = {
            "result_version": 3,
            "program": self.program.encode().hex(),
            "config": _fp_canonical(self.config if self.config is not None
                                    else CPUConfig()),
            "hierarchy": _fp_canonical(self.hierarchy),
            "plugins": _fp_canonical(self.plugins),
            "mem_writes": _canonical(self.mem_writes),
            "mem_blobs": [[addr, bytes(data).hex()]
                          for addr, data in self.mem_blobs],
            "regs": _canonical(self.regs),
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "record_regs": _canonical(self.record_regs),
        }
        if not self.collect_stats:
            payload["collect_stats"] = False
        if self.trace is not None:
            payload["trace"] = _canonical(self.trace)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()
        object.__setattr__(self, "_fingerprint_memo", digest)
        return digest


#: Memo for :func:`_fp_canonical`, keyed by the (hashable, frozen)
#: spec component itself.  Bounded by the number of distinct configs
#: and hierarchy geometries a process touches.
_FP_CANONICAL_CACHE = {}


def _fp_canonical(obj):
    """:func:`_canonical`, memoized for hashable spec components.

    Trial batches re-fingerprint thousands of specs that share one
    config and hierarchy description; canonicalizing those nested
    dataclasses dominates the hash cost.  Cached values are shared, so
    this variant is only for :meth:`SimSpec.fingerprint`, which
    serializes the result without mutating it.
    """
    try:
        cached = _FP_CANONICAL_CACHE.get(obj)
    except TypeError:           # unhashable (mutable config, dict kwarg)
        return _canonical(obj)
    if cached is None:
        cached = _canonical(obj)
        _FP_CANONICAL_CACHE[obj] = cached
    return cached


def _canonical(obj):
    """Canonical JSON-able form for fingerprinting nested specs."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)
                  if not f.name.startswith("_")}
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (bytes, bytearray)):
        return bytes(obj).hex()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise SpecError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


def _spec_types():
    from repro.pipeline.config import CPUConfig
    return {cls.__name__: cls
            for cls in (CacheSpec, TLBSpec, LatencySpec, HierarchySpec,
                        PluginSpec, TraceSpec, TaintSpec, CPUConfig)}


def _from_canonical(obj):
    """Inverse of :func:`_canonical`.

    Collapsed representations come back in the spec's native shape:
    lists become tuples (every sequence field on a spec is a tuple) and
    ``__type__``-tagged dicts become the named spec dataclass.  Enum
    fields stay as their values — the spec classes accept those
    wherever they accept the enum.
    """
    if isinstance(obj, dict):
        if "__type__" in obj:
            cls = _spec_types().get(obj["__type__"])
            if cls is None:
                raise SpecError(
                    f"unknown spec type {obj['__type__']!r}")
            return cls(**{name: _from_canonical(value)
                          for name, value in obj.items()
                          if name != "__type__"})
        return {key: _from_canonical(value)
                for key, value in obj.items()}
    if isinstance(obj, list):
        return tuple(_from_canonical(item) for item in obj)
    return obj
