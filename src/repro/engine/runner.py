"""Trial fan-out: run many independent specs, serially or in parallel.

The paper's experiments are embarrassingly parallel — Figure 6 needs
many encryption calls per guess type, replay narrowing issues hundreds
of oracle queries, key recovery budgets up to 524,288 of them — and
every trial is an independent simulator run.  :func:`run_batch` is the
one fan-out point: it takes a list of picklable
:class:`~repro.engine.specs.SimSpec`, consults the optional result
cache, ships cache misses to a ``ProcessPoolExecutor`` when
``workers > 1`` (with a graceful in-process fallback for
``workers <= 1``), and returns results in input order — bitwise
identical to a serial run, because every randomness source in a spec
is seeded.

:func:`derive_seed` gives deterministic per-trial seeds: hash the base
seed with the trial index, so trial *i* sees the same perturbation no
matter how the batch is scheduled.
"""

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.trace.batch import record_executed_trial

#: Bin width (microseconds) of the ``engine.trial_wall_us`` histogram.
_WALL_BIN_US = 10_000


def derive_seed(base_seed, index):
    """A stable, well-mixed per-trial seed (independent of scheduling)."""
    blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def execute_spec(spec, fingerprint=None):
    """Build and run one spec (module-level: picklable for the pool).

    ``fingerprint`` is the spec's precomputed content hash; passing it
    spares :meth:`Session.from_spec` from hashing the spec again (the
    hash covers the whole program and memory image, so for short runs
    recomputing it was a measurable fraction of the trial).
    """
    from repro.engine.session import Session
    return Session.from_spec(spec, fingerprint=fingerprint).run()


def _execute_job(job):
    """Pool target: ``(spec, fingerprint) -> RunResult``."""
    spec, fingerprint = job
    return execute_spec(spec, fingerprint)


def _timed_execute(job):
    """Like :func:`_execute_job`, plus wall-clock + worker telemetry.

    Returns ``(result, start_us, elapsed_us, pid)``.  The telemetry
    never enters the :class:`RunResult` — wall time and pids are
    scheduling-dependent, and results must stay bitwise identical
    between serial and pooled runs; it feeds ``batch_stats`` and the
    caller-owned :class:`repro.trace.BatchTrace` instead.
    """
    spec, fingerprint = job
    start_us = time.perf_counter_ns() // 1000
    result = execute_spec(spec, fingerprint)
    elapsed_us = max(1, time.perf_counter_ns() // 1000 - start_us)
    return result, start_us, elapsed_us, os.getpid()


def run_spec(spec, cache=None, bypass_cache=False):
    """Run one spec through the optional result cache.

    The fingerprint is derived exactly once and shared by the cache
    probe, the session build and the stored result.
    """
    fingerprint = spec.fingerprint()
    if cache is not None and not bypass_cache:
        hit = cache.get(fingerprint)
        if hit is not None:
            return hit
    result = execute_spec(spec, fingerprint)
    if cache is not None:
        cache.put(result)
    return result


def run_batch(specs, workers=1, cache=None, bypass_cache=False,
              chunksize=None, batch_stats=None, batch_trace=None):
    """Run ``specs`` and return their results in input order.

    ``workers > 1`` fans cache misses out across that many worker
    processes; ``workers <= 1`` (the default) runs everything in
    process.  Results are identical either way.

    ``batch_stats`` (an optional :class:`~repro.stats.SimStats`)
    receives *engine-level* telemetry: cache hits/misses, executed
    trial count, a per-trial wall-time histogram and the number of
    distinct worker processes used.  ``batch_trace`` (an optional
    :class:`repro.trace.BatchTrace`) receives the event-level view of
    the same story: one wall-clock span per executed trial tagged with
    its worker pid, and one instant per cache hit — exportable to a
    Perfetto-loadable Chrome trace.  These quantities depend on
    scheduling, which is exactly why they live here and never in a
    :class:`RunResult`.
    """
    specs = list(specs)
    # One fingerprint derivation per trial, shared by the cache probe,
    # the (possibly pooled) session build, and the stored result.
    fingerprints = [spec.fingerprint() for spec in specs]
    results = [None] * len(specs)
    pending = []
    track = batch_stats is not None and batch_stats.enabled
    timed = track or batch_trace is not None
    for index, spec in enumerate(specs):
        if cache is not None and not bypass_cache:
            hit = cache.get(fingerprints[index])
            if hit is not None:
                results[index] = hit
                if track:
                    batch_stats.inc("engine.cache_hits")
                if batch_trace is not None:
                    batch_trace.record_cache_hit(spec.label, index)
                continue
        pending.append(index)
    if track:
        batch_stats.inc("engine.batches")
        batch_stats.inc("engine.trials_executed", len(pending))
        if cache is not None and not bypass_cache:
            batch_stats.inc("engine.cache_misses", len(pending))

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            if timed:
                result, start_us, elapsed_us, pid = _timed_execute(
                    (specs[index], fingerprints[index]))
                if track:
                    batch_stats.observe("engine.trial_wall_us",
                                        elapsed_us,
                                        bin_width=_WALL_BIN_US)
                record_executed_trial(batch_trace, specs[index].label,
                                      index, start_us, elapsed_us, pid)
                results[index] = result
            else:
                results[index] = execute_spec(specs[index],
                                              fingerprints[index])
        if track and pending:
            batch_stats.peak("engine.workers_used", 1)
    else:
        if chunksize is None:
            chunksize = max(1, len(pending) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            job = [(specs[index], fingerprints[index])
                   for index in pending]
            if timed:
                pids = set()
                fresh = pool.map(_timed_execute, job,
                                 chunksize=chunksize)
                for index, (result, start_us, elapsed_us,
                            pid) in zip(pending, fresh):
                    results[index] = result
                    if track:
                        batch_stats.observe("engine.trial_wall_us",
                                            elapsed_us,
                                            bin_width=_WALL_BIN_US)
                    record_executed_trial(batch_trace,
                                          specs[index].label, index,
                                          start_us, elapsed_us, pid)
                    pids.add(pid)
                if track:
                    batch_stats.peak("engine.workers_used", len(pids))
            else:
                fresh = pool.map(_execute_job, job, chunksize=chunksize)
                for index, result in zip(pending, fresh):
                    results[index] = result

    if cache is not None:
        for index in pending:
            cache.put(results[index])
    return results


def run_trials(make_spec, trials, workers=1, cache=None,
               bypass_cache=False, batch_stats=None, batch_trace=None):
    """Map ``make_spec(trial) -> SimSpec`` over ``trials`` and run all.

    Convenience wrapper for replay loops: the caller supplies a spec
    factory and the (arbitrary, cheap) trial descriptors; building
    specs happens up front in the parent, so only specs need pickle.
    """
    return run_batch([make_spec(trial) for trial in trials],
                     workers=workers, cache=cache,
                     bypass_cache=bypass_cache, batch_stats=batch_stats,
                     batch_trace=batch_trace)
