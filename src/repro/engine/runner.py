"""Trial fan-out: build jobs, probe the cache once, hand misses off.

The paper's experiments are embarrassingly parallel — Figure 6 needs
many encryption calls per guess type, replay narrowing issues hundreds
of oracle queries, key recovery budgets up to 524,288 of them — and
every trial is an independent simulator run.  :func:`run_batch` is the
one fan-out point, and since the backend refactor it does exactly
three things:

1. build one idempotent :class:`~repro.engine.backends.TrialJob` per
   spec, keyed by the spec's content fingerprint (derived once and
   shared by the cache probe, the session build and the stored
   result);
2. probe the optional :class:`~repro.engine.cache.ResultCache` once,
   in bulk (:meth:`~repro.engine.cache.ResultCache.probe_many`), so
   the store is scanned per batch, not stat'ed per trial;
3. hand only the misses to the selected
   :class:`~repro.engine.backends.ExecutionBackend` — serial, process
   pool, or lockstep cohorts — and deposit the fresh results back.

Results come back in input order, bitwise identical across every
backend, because every randomness source in a spec is seeded.
Backend selection priority: the explicit ``backend=`` argument (name
or instance), the ``REPRO_BACKEND`` environment variable, a unanimous
``SimSpec.backend`` hint, then the legacy ``workers`` heuristic.

:func:`derive_seed` gives deterministic per-trial seeds: hash the base
seed with the trial index, so trial *i* sees the same perturbation no
matter how the batch is scheduled.
"""

import hashlib

from repro import telemetry
from repro.engine.backends import (
    TrialJob, execute_spec, resolve_backend,
)
from repro.trace.batch import record_executed_trial

__all__ = [
    "derive_seed", "execute_spec", "run_batch", "run_spec",
    "run_trials",
]

#: Bin width (microseconds) of the ``engine.trial_wall_us`` histogram.
_WALL_BIN_US = 10_000


def derive_seed(base_seed, index):
    """A stable, well-mixed per-trial seed (independent of scheduling)."""
    blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def run_spec(spec, cache=None, bypass_cache=False):
    """Run one spec through the optional result cache.

    The fingerprint is derived exactly once and shared by the cache
    probe, the session build and the stored result.
    """
    fingerprint = spec.fingerprint()
    if cache is not None and not bypass_cache:
        hit = cache.get(fingerprint)
        if hit is not None:
            return hit
    result = execute_spec(spec, fingerprint)
    if cache is not None:
        cache.put(result)
    return result


def _probe(cache, fingerprints, bypass_cache):
    """Bulk cache probe; a list aligned with ``fingerprints`` (or None
    when there is nothing to probe).  Falls back to per-fingerprint
    ``get`` for duck-typed caches without ``probe_many``."""
    if cache is None or bypass_cache:
        return None
    probe_many = getattr(cache, "probe_many", None)
    if probe_many is not None:
        return probe_many(fingerprints)
    return [cache.get(fingerprint) for fingerprint in fingerprints]


def run_batch(specs, workers=1, cache=None, bypass_cache=False,
              chunksize=None, batch_stats=None, batch_trace=None,
              backend=None):
    """Run ``specs`` and return their results in input order.

    ``backend`` selects the execution backend by name (``"serial"``,
    ``"pool"``, ``"lockstep"``) or as a ready
    :class:`~repro.engine.backends.ExecutionBackend` instance (which
    the caller owns — the runner never opens or closes it).  With no
    explicit backend the historical behaviour is preserved exactly:
    ``workers > 1`` fans cache misses across that many pooled worker
    processes, ``workers <= 1`` (the default) runs everything in
    process.  Results are identical whichever backend runs them.

    ``batch_stats`` (an optional :class:`~repro.stats.SimStats`)
    receives *engine-level* scheduling counters: cache hits/misses,
    executed trial count, a per-trial wall-time histogram, and the
    number of distinct workers used.  ``batch_trace`` (an optional
    :class:`repro.trace.BatchTrace`) receives the event-level view of
    the same story: one wall-clock span per executed trial tagged with
    its worker pid, and one instant per cache hit — exportable to a
    Perfetto-loadable Chrome trace.  These quantities depend on
    scheduling, which is exactly why they live here and never in a
    :class:`RunResult`.

    Independently of both, the process-wide
    :data:`repro.telemetry.REGISTRY` (when enabled) accumulates the
    fleet view across *every* batch: per-backend batch/trial counters
    (``repro_backend_batches_total{backend=...}``), per-trial
    wall-clock histograms, and a phase profile of this function's four
    steps — job build, cache probe, backend submit, result merge —
    under ``repro_phase_seconds{layer="engine.runner"}``.
    """
    tel = telemetry.REGISTRY
    with tel.phase("engine.runner", "build"):
        specs = list(specs)
        # One fingerprint derivation per trial, shared by the cache
        # probe, the (possibly pooled) session build, and the stored
        # result.
        fingerprints = [spec.fingerprint() for spec in specs]
    results = [None] * len(specs)
    track = batch_stats is not None and batch_stats.enabled
    timed = track or batch_trace is not None or tel.enabled

    with tel.phase("engine.runner", "probe"):
        hits = _probe(cache, fingerprints, bypass_cache)
        jobs = []
        for index, spec in enumerate(specs):
            hit = hits[index] if hits is not None else None
            if hit is not None:
                results[index] = hit
                if track:
                    batch_stats.inc("engine.cache_hits")
                if batch_trace is not None:
                    batch_trace.record_cache_hit(spec.label, index)
                continue
            jobs.append(TrialJob(index=index, spec=spec,
                                 fingerprint=fingerprints[index]))

    chosen = resolve_backend(backend, workers=workers,
                             chunksize=chunksize, pending=len(jobs),
                             specs=specs)
    tel.inc("repro_backend_batches_total",
            help="Batches submitted per execution backend",
            backend=chosen.name)
    if jobs:
        tel.inc("repro_backend_trials_total", len(jobs),
                help="Cache-missing trials executed per backend",
                backend=chosen.name)
    if track:
        batch_stats.inc("engine.batches")
        batch_stats.inc("engine.trials_executed", len(jobs))
        if cache is not None and not bypass_cache:
            batch_stats.inc("engine.cache_misses", len(jobs))

    if jobs:
        with tel.phase("engine.runner", "submit"):
            executed = chosen.submit(jobs, timed=timed)
        with tel.phase("engine.runner", "merge"):
            workers_used = set()
            for job, trial in zip(jobs, executed):
                results[job.index] = trial.result
                if track:
                    batch_stats.observe("engine.trial_wall_us",
                                        trial.elapsed_us,
                                        bin_width=_WALL_BIN_US)
                tel.observe("repro_trial_seconds",
                            trial.elapsed_us / 1e6,
                            help="Wall-clock seconds per executed "
                                 "trial", backend=chosen.name)
                record_executed_trial(batch_trace, job.spec.label,
                                      job.index, trial.start_us,
                                      trial.elapsed_us, trial.worker)
                if trial.worker is not None:
                    workers_used.add(trial.worker)
            if track:
                batch_stats.peak("engine.workers_used",
                                 max(1, len(workers_used)))

    if cache is not None:
        with tel.phase("engine.runner", "merge"):
            for job in jobs:
                cache.put(results[job.index])
    return results


def run_trials(make_spec, trials, workers=1, cache=None,
               bypass_cache=False, batch_stats=None, batch_trace=None,
               backend=None):
    """Map ``make_spec(trial) -> SimSpec`` over ``trials`` and run all.

    Convenience wrapper for replay loops: the caller supplies a spec
    factory and the (arbitrary, cheap) trial descriptors; building
    specs happens up front in the parent, so only specs need pickle.
    """
    return run_batch([make_spec(trial) for trial in trials],
                     workers=workers, cache=cache,
                     bypass_cache=bypass_cache, batch_stats=batch_stats,
                     batch_trace=batch_trace, backend=backend)
