"""The experiment engine: one way to build and run every simulation.

Four layers (Section II-2's replay-attack structure, industrialized):

* **Specs** (:mod:`repro.engine.specs`) — :class:`SimSpec` and friends:
  a declarative, picklable, content-hashable description of one
  simulation (program + :class:`CPUConfig` + hierarchy + plug-ins +
  memory image + registers + seed).
* **Sessions** (:mod:`repro.engine.session`) — :class:`Session` builds
  a spec into a ready core and packages each run as a structured,
  JSON-serializable :class:`RunResult`.
* **Runner + cache** (:mod:`repro.engine.runner`,
  :mod:`repro.engine.cache`) — :func:`run_batch` builds idempotent
  trial jobs keyed by the spec fingerprint, bulk-probes the optional
  content-addressed :class:`ResultCache`, and hands only misses to the
  selected execution backend.
* **Backends** (:mod:`repro.engine.backends`) — the pluggable
  *how-trials-execute* layer behind the :class:`ExecutionBackend`
  protocol: :class:`SerialBackend` (in-process, trace-friendly),
  :class:`PoolBackend` (process-pool fan-out), and
  :class:`LockstepBatchBackend` (interleaved same-program cohorts with
  shared decode state).  All backends are bitwise-equivalent; pick one
  per call (``backend="lockstep"``), per environment
  (``REPRO_BACKEND=lockstep``), or per spec (``SimSpec.backend``).

Typical use::

    from repro.engine import SimSpec, PluginSpec, run_batch

    specs = [SimSpec(program=program,
                     plugins=(PluginSpec.of("silent-stores"),),
                     mem_writes=((0x8000, guess, 2),),
                     label=f"guess={guess:#x}")
             for guess in range(256)]
    results = run_batch(specs, workers=4)          # pool backend
    variants = run_batch(specs, backend="lockstep")  # shared-state cohorts
    cycles = [result.cycles for result in results]
"""

from repro.engine.backends import (
    ExecutedTrial, ExecutionBackend, LockstepBatchBackend, PoolBackend,
    REPRO_BACKEND_ENV, SerialBackend, TrialJob, backend_from_name,
    backend_names, register_backend, resolve_backend,
)
from repro.engine.cache import ResultCache
from repro.engine.runner import (
    derive_seed, execute_spec, run_batch, run_spec, run_trials,
)
from repro.engine.session import RunResult, Session
from repro.engine.specs import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec,
    SpecError, TaintSpec, TLBSpec, TraceSpec, register_plugin,
)
from repro.stats import SimStats, merge_all
from repro.trace import BatchTrace

__all__ = [
    "BatchTrace", "CacheSpec", "ExecutedTrial", "ExecutionBackend",
    "HierarchySpec", "LatencySpec", "LockstepBatchBackend",
    "PluginSpec", "PoolBackend", "REPRO_BACKEND_ENV", "ResultCache",
    "RunResult", "SerialBackend", "Session", "SimSpec", "SimStats",
    "SpecError", "TLBSpec", "TaintSpec", "TraceSpec", "TrialJob",
    "backend_from_name", "backend_names", "derive_seed",
    "execute_spec", "merge_all", "register_backend", "register_plugin",
    "resolve_backend", "run_batch", "run_spec", "run_trials",
]
