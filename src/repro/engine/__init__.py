"""The experiment engine: one way to build and run every simulation.

Three layers (Section II-2's replay-attack structure, industrialized):

* **Specs** (:mod:`repro.engine.specs`) — :class:`SimSpec` and friends:
  a declarative, picklable, content-hashable description of one
  simulation (program + :class:`CPUConfig` + hierarchy + plug-ins +
  memory image + registers + seed).
* **Sessions** (:mod:`repro.engine.session`) — :class:`Session` builds
  a spec into a ready core and packages each run as a structured,
  JSON-serializable :class:`RunResult`.
* **Runner + cache** (:mod:`repro.engine.runner`,
  :mod:`repro.engine.cache`) — :func:`run_batch` fans independent
  trials across worker processes with deterministic per-trial seeds
  and an optional content-addressed :class:`ResultCache`.

Typical use::

    from repro.engine import SimSpec, PluginSpec, run_batch

    specs = [SimSpec(program=program,
                     plugins=(PluginSpec.of("silent-stores"),),
                     mem_writes=((0x8000, guess, 2),),
                     label=f"guess={guess:#x}")
             for guess in range(256)]
    results = run_batch(specs, workers=4)
    cycles = [result.cycles for result in results]
"""

from repro.engine.cache import ResultCache
from repro.engine.runner import (
    derive_seed, execute_spec, run_batch, run_spec, run_trials,
)
from repro.engine.session import RunResult, Session
from repro.engine.specs import (
    CacheSpec, HierarchySpec, LatencySpec, PluginSpec, SimSpec,
    SpecError, TaintSpec, TLBSpec, TraceSpec, register_plugin,
)
from repro.stats import SimStats, merge_all
from repro.trace import BatchTrace

__all__ = [
    "BatchTrace", "CacheSpec", "HierarchySpec", "LatencySpec",
    "PluginSpec", "ResultCache", "RunResult", "Session", "SimSpec",
    "SimStats", "SpecError", "TLBSpec", "TaintSpec", "TraceSpec",
    "derive_seed",
    "execute_spec", "merge_all", "register_plugin", "run_batch",
    "run_spec", "run_trials",
]
