"""Pluggable trial-execution backends for the engine runner.

The runner's job is *what* to run — building idempotent
:class:`TrialJob` descriptors, probing the result cache, depositing
results.  *How* cache misses execute is this layer's job, behind the
small :class:`ExecutionBackend` protocol:

* :class:`SerialBackend` — everything in the submitting process, in
  input order.  Debugger- and trace-friendly; the reference scheduling
  every other backend must match bitwise.
* :class:`PoolBackend` — today's ``ProcessPoolExecutor`` fan-out,
  behavior-preserving: an ephemeral pool per submit unless the caller
  :meth:`~ExecutionBackend.open`\\ s the backend to keep one warm
  across batches.
* :class:`LockstepBatchBackend` — runs cohorts of trials of the same
  program *interleaved in lockstep* in one process: every core in a
  cohort shares the process-wide decoded-template cache and interned
  operand keys from the first trial onward, and per-trial setup
  (process spawn, spec pickling, cold caches) is amortized away.  This
  is the shape of the lint soundness harness and the channel-capacity
  bench — N secret-variant trials of one program — and the substrate a
  future structure-of-arrays batched kernel plugs into.

Every backend obeys the same contract: ``submit(jobs)`` returns one
:class:`ExecutedTrial` per job, in input order, with results **bitwise
identical** across backends (every randomness source in a spec is
seeded, and cores never share mutable simulation state).  Scheduling
telemetry — wall-clock spans, worker ids — lives in the
:class:`ExecutedTrial` envelope and never inside a
:class:`~repro.engine.session.RunResult`.

Selection is threaded, in priority order: an explicit ``backend=``
argument to :func:`repro.engine.runner.run_batch` (name or instance),
the ``REPRO_BACKEND`` environment variable (the CI lockstep leg, the
``python -m repro --backend`` flag), a unanimous
:attr:`~repro.engine.specs.SimSpec.backend` hint on the submitted
specs, and finally the legacy ``workers`` heuristic (serial for
``workers <= 1`` or singleton batches, pool otherwise).
"""

import os
import time

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import telemetry

#: Environment variable naming the default backend for every
#: :func:`repro.engine.runner.run_batch` call that doesn't pass one
#: explicitly.  Empty or unset means "no override".
REPRO_BACKEND_ENV = "REPRO_BACKEND"

#: Worker count used when a pool backend is forced by name without an
#: explicit ``workers`` (e.g. ``REPRO_BACKEND=pool`` on a serial call).
DEFAULT_POOL_WORKERS = 4


def _now_us():
    return time.perf_counter_ns() // 1000


# ----------------------------------------------------------------------
# jobs and outcomes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrialJob:
    """One idempotent unit of trial work.

    ``fingerprint`` is the spec's content hash — the job's identity:
    submitting the same job twice (to any backend, in any process)
    yields byte-identical results, which is what lets the runner probe
    the cache once up front and hand only misses to the backend.
    ``index`` is the job's position in the submitting batch, carried so
    backends that reorder internally (cohort grouping) can report
    results against the caller's order.
    """

    index: int
    spec: object
    fingerprint: str


@dataclass
class ExecutedTrial:
    """One finished trial plus its scheduling telemetry.

    ``start_us``/``elapsed_us``/``worker`` feed the caller-owned
    ``batch_stats`` and :class:`repro.trace.BatchTrace` records; they
    are scheduling-dependent and never enter the
    :class:`~repro.engine.session.RunResult`.  Untimed submissions
    carry zeros (and ``worker = None`` when the executing process id is
    unknowable, e.g. an untimed pool map).  For lockstep trials
    ``elapsed_us`` is the trial's accumulated busy time across its
    interleaved quanta, not a contiguous wall-clock span.
    """

    result: object
    start_us: int = 0
    elapsed_us: int = 0
    worker: object = None


def execute_spec(spec, fingerprint=None):
    """Build and run one spec (module-level: picklable for the pool).

    ``fingerprint`` is the spec's precomputed content hash; passing it
    spares :meth:`Session.from_spec` from hashing the spec again (the
    hash covers the whole program and memory image, so for short runs
    recomputing it was a measurable fraction of the trial).
    """
    from repro.engine.session import Session
    return Session.from_spec(spec, fingerprint=fingerprint).run()


def _execute_job(job):
    """Pool target: ``(spec, fingerprint) -> RunResult``."""
    spec, fingerprint = job
    return execute_spec(spec, fingerprint)


def _timed_execute(job):
    """Like :func:`_execute_job`, plus wall-clock + worker telemetry.

    Returns ``(result, start_us, elapsed_us, pid)``.  The telemetry
    never enters the :class:`RunResult` — wall time and pids are
    scheduling-dependent, and results must stay bitwise identical
    across backends; it feeds ``batch_stats`` and the caller-owned
    :class:`repro.trace.BatchTrace` instead.
    """
    spec, fingerprint = job
    start_us = _now_us()
    result = execute_spec(spec, fingerprint)
    elapsed_us = max(1, _now_us() - start_us)
    return result, start_us, elapsed_us, os.getpid()


def _pool_begin_job():
    """Reset the worker-local registry before a pooled job.

    Fork-started workers inherit a *copy* of the parent's registry;
    without the reset, the first shipped snapshot would re-merge counts
    the parent already holds (double counting).  Resetting the worker's
    copy never touches the parent's registry.
    """
    telemetry.REGISTRY.reset()


def _pool_finish_job():
    """Heartbeat + drained snapshot to ship back (None when disabled)."""
    if not telemetry.REGISTRY.enabled:
        return None
    telemetry.worker_heartbeat()
    return telemetry.REGISTRY.drain()


def _pool_execute_job(job):
    """Pool target shipping a per-job telemetry snapshot alongside."""
    _pool_begin_job()
    result = _execute_job(job)
    return result, _pool_finish_job()


def _pool_timed_execute(job):
    """Timed pool target, likewise snapshot-shipping."""
    _pool_begin_job()
    result, start_us, elapsed_us, pid = _timed_execute(job)
    return result, start_us, elapsed_us, pid, _pool_finish_job()


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------

class ExecutionBackend:
    """How a batch of cache-missing :class:`TrialJob`\\ s executes.

    Capability flags (class attributes) let callers pick without
    isinstance checks:

    * ``parallel`` — trials may run concurrently in other processes;
    * ``in_process`` — trials run inside the submitting process (so
      in-process state like a debugger, coverage, or the warm template
      cache is visible to them);
    * ``shares_decode_state`` — trials of one program share decoded
      templates/interned keys *within a submit* by construction.

    Lifecycle: :meth:`open` acquires long-lived resources (a warm
    process pool), :meth:`close` releases them; both are optional and
    idempotent, and the class is a context manager.  ``submit`` must
    work on a backend that was never opened — it then acquires and
    releases per call.  The runner never opens backends it resolves by
    name; persistence is the caller's choice.
    """

    name = "abstract"
    parallel = False
    in_process = True
    shares_decode_state = False

    def open(self):
        return self

    def close(self):
        pass

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc):
        self.close()

    def submit(self, jobs, timed=False):
        """Execute ``jobs``; one :class:`ExecutedTrial` each, in input
        order.  ``timed`` asks for per-trial wall telemetry (skipped
        otherwise — the clock reads are measurable on micro-trials)."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the reference scheduling."""

    name = "serial"
    parallel = False
    in_process = True
    shares_decode_state = False

    def submit(self, jobs, timed=False):
        out = []
        for job in jobs:
            payload = (job.spec, job.fingerprint)
            if timed:
                result, start_us, elapsed_us, pid = _timed_execute(payload)
                out.append(ExecutedTrial(result, start_us, elapsed_us,
                                         pid))
            else:
                out.append(ExecutedTrial(_execute_job(payload),
                                         worker=os.getpid()))
        return out


class PoolBackend(ExecutionBackend):
    """Process-pool fan-out (the engine's historical ``workers > 1``).

    Without :meth:`open`, every submit builds and tears down its own
    ``ProcessPoolExecutor`` — exactly the pre-backend ``run_batch``
    behaviour, preserved so existing callers see identical scheduling.
    :meth:`open` keeps one pool warm across submits for callers with
    many batches (the future audit service's worker fleet).
    """

    name = "pool"
    parallel = True
    in_process = False
    shares_decode_state = False

    def __init__(self, workers=DEFAULT_POOL_WORKERS, chunksize=None):
        self.workers = max(2, int(workers))
        self.chunksize = chunksize
        self._pool = None

    def open(self):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _map(self, pool, jobs, timed):
        payload = [(job.spec, job.fingerprint) for job in jobs]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(payload) // (4 * self.workers))
        tel = telemetry.REGISTRY
        submit_us = _now_us()
        target = _pool_timed_execute if timed else _pool_execute_job
        mapped = pool.map(target, payload, chunksize=chunksize)
        out = []
        for item in mapped:
            snapshot = item[-1]
            if snapshot:
                tel.merge(snapshot)
            if timed:
                result, start_us, elapsed_us, pid, _ = item
                # Time from batch submission until the worker picked
                # the job up: the pool's queueing delay (includes pool
                # spawn for ephemeral pools, amortized for warm ones).
                tel.observe("repro_backend_queue_wait_seconds",
                            max(0, start_us - submit_us) / 1e6,
                            help="Seconds a trial waited between "
                                 "batch submit and worker pickup",
                            backend=self.name)
                out.append(ExecutedTrial(result, start_us, elapsed_us,
                                         pid))
            else:
                out.append(ExecutedTrial(item[0]))
        return out

    def submit(self, jobs, timed=False):
        if self._pool is not None:
            return self._map(self._pool, jobs, timed)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return self._map(pool, jobs, timed)


class _Lane(object):
    """One trial's seat in a lockstep cohort."""

    __slots__ = ("pos", "session", "limit", "start_us", "busy_us",
                 "result")

    def __init__(self, pos, session, limit, start_us, busy_us):
        self.pos = pos
        self.session = session
        self.limit = limit
        self.start_us = start_us
        self.busy_us = busy_us
        self.result = None


class LockstepBatchBackend(ExecutionBackend):
    """Interleaved in-process cohorts with shared decode state.

    Jobs are grouped by program identity, each group split into cohorts
    of at most ``cohort`` trials; a cohort's sessions are all built up
    front and their cores advanced round-robin, ``quantum`` cooperative
    steps per turn (``cpu.advance`` — one cycle, or one fast-forward
    jump on the fast-path kernel).  Interleaving is pure scheduling:
    cores never share mutable simulation state, so results are bitwise
    identical to serial execution — the process-wide decoded-template
    cache and operand interning they *do* share are content-keyed and
    append-only.

    What this buys over :class:`PoolBackend` on the secret-variant
    workloads (lint soundness, channel capacity, future fuzzing
    fleets): no process spawn or spec/result pickling per batch, and
    every trial after the first runs against warm per-program decode
    state.  A trial that raises (e.g. :class:`SimulationError` at its
    cycle limit) propagates, as it does from every backend.
    """

    name = "lockstep"
    parallel = False
    in_process = True
    shares_decode_state = True

    def __init__(self, cohort=16, quantum=64):
        self.cohort = max(1, int(cohort))
        self.quantum = max(1, int(quantum))

    def _cohorts(self, jobs):
        """Positions grouped by program identity, capped at ``cohort``.

        Secret-variant specs share one :class:`Program` object (the
        soundness harness perturbs only the memory image), so identity
        grouping puts exactly those trials in one cohort.
        """
        groups = {}
        order = []
        for pos, job in enumerate(jobs):
            key = id(job.spec.program)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(pos)
        for key in order:
            positions = groups[key]
            for start in range(0, len(positions), self.cohort):
                yield positions[start:start + self.cohort]

    def _run_cohort(self, jobs, positions, timed, out):
        from repro.engine.session import Session
        lanes = []
        for pos in positions:
            job = jobs[pos]
            start_us = _now_us() if timed else 0
            session = Session.from_spec(job.spec,
                                        fingerprint=job.fingerprint)
            busy_us = (_now_us() - start_us) if timed else 0
            lanes.append(_Lane(pos, session, session.resolve_limit(),
                               start_us, busy_us))
        live = list(lanes)
        quantum = self.quantum
        quanta_turns = 0
        while live:
            still = []
            for lane in live:
                turn_us = _now_us() if timed else 0
                advance = lane.session.cpu.advance
                limit = lane.limit
                running = True
                for _ in range(quantum):
                    if not advance(limit):
                        running = False
                        break
                quanta_turns += 1
                if running:
                    still.append(lane)
                else:
                    lane.result = lane.session.finish()
                if timed:
                    lane.busy_us += _now_us() - turn_us
            live = still
        pid = os.getpid()
        for lane in lanes:
            out[lane.pos] = ExecutedTrial(
                lane.result, start_us=lane.start_us,
                elapsed_us=max(1, lane.busy_us) if timed else 0,
                worker=pid)
        return quanta_turns

    def submit(self, jobs, timed=False):
        jobs = list(jobs)
        out = [None] * len(jobs)
        cohorts = 0
        quanta_turns = 0
        for positions in self._cohorts(jobs):
            quanta_turns += self._run_cohort(jobs, positions, timed, out)
            cohorts += 1
        tel = telemetry.REGISTRY
        if tel.enabled and cohorts:
            tel.inc("repro_lockstep_cohorts_total", cohorts,
                    help="Same-program cohorts the lockstep backend "
                         "interleaved")
            tel.inc("repro_lockstep_quanta_total", quanta_turns,
                    help="Cooperative advance quanta granted across "
                         "lockstep lanes")
        return out


# ----------------------------------------------------------------------
# registry and resolution
# ----------------------------------------------------------------------

#: name -> factory(workers, chunksize) for name-based selection.
_BACKEND_REGISTRY = {
    "serial": lambda workers, chunksize: SerialBackend(),
    "pool": lambda workers, chunksize: PoolBackend(
        workers=workers if workers and workers > 1
        else DEFAULT_POOL_WORKERS,
        chunksize=chunksize),
    "lockstep": lambda workers, chunksize: LockstepBatchBackend(),
}


def register_backend(name, factory):
    """Register an out-of-tree backend: ``factory(workers, chunksize)``
    must return an :class:`ExecutionBackend`."""
    _BACKEND_REGISTRY[name] = factory


def backend_names():
    """Every registered backend name, sorted."""
    return sorted(_BACKEND_REGISTRY)


def backend_from_name(name, workers=1, chunksize=None):
    """Instantiate a registered backend by name."""
    try:
        factory = _BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; known: "
            f"{backend_names()}") from None
    return factory(workers, chunksize)


def resolve_backend(backend=None, workers=1, chunksize=None,
                    pending=None, specs=()):
    """The backend a batch should use (see module docstring for the
    priority order).  ``pending`` is the number of cache-missing jobs;
    the legacy heuristic keeps singleton batches in process exactly as
    the pre-backend runner did."""
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(REPRO_BACKEND_ENV) or None
    if name is None:
        hints = {getattr(spec, "backend", "") for spec in specs}
        if len(hints) == 1:
            name = hints.pop() or None
    if name is None or name == "auto":
        count = len(specs) if pending is None else pending
        if workers <= 1 or count <= 1:
            return SerialBackend()
        return PoolBackend(workers=workers, chunksize=chunksize)
    return backend_from_name(name, workers=workers, chunksize=chunksize)


__all__ = [
    "DEFAULT_POOL_WORKERS", "ExecutedTrial", "ExecutionBackend",
    "LockstepBatchBackend", "PoolBackend", "REPRO_BACKEND_ENV",
    "SerialBackend", "TrialJob", "backend_from_name", "backend_names",
    "execute_spec", "register_backend", "resolve_backend",
]
