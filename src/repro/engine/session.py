"""Simulation sessions and structured run results.

A :class:`Session` is one ready-to-run simulation: the built memory,
hierarchy, plug-ins and core.  Sessions come from two places:

* :meth:`Session.from_spec` — the declarative path: a picklable
  :class:`~repro.engine.specs.SimSpec` is instantiated from scratch
  (this is what the trial runner ships to worker processes);
* :meth:`Session.from_parts` — the escape hatch for callers that must
  run on a *persistent* hierarchy (the sandbox runtime's Prime+Probe
  receiver state lives in the hierarchy across phases).

``Session.run`` returns a :class:`RunResult`: the cycle count, the
core's statistics, and a generic observation record (hierarchy
counters, plug-in counters, requested architectural registers) that is
JSON-serializable — the unit the result cache stores and benches dump
under ``benchmarks/results/*.json``.
"""

import dataclasses
import json
from dataclasses import dataclass, field

from repro.isa.bits import mask
from repro.pipeline.cpu import CPU
from repro.pipeline.fastpath import FastPathCPU
from repro.stats import NULL_STATS, SimStats


@dataclass
class RunResult:
    """Outcome of one simulation run, serializable to JSON.

    ``metrics`` is the run's :class:`~repro.stats.SimStats` record in
    ``as_dict`` form.  It holds only deterministic, simulation-derived
    quantities (no wall time, no process ids), so results stay bitwise
    identical across serial and pooled execution and across cache
    replays.  Old cached results without the field load as ``{}``.

    ``trace`` is the :meth:`repro.trace.TraceBuffer.as_payload` form of
    the run's event trace when the spec carried a
    :class:`~repro.engine.specs.TraceSpec` (``{}`` otherwise).  Like
    ``metrics`` it is purely simulation-derived — event cycles, never
    wall time — so traced results obey the same bitwise-determinism
    contract; engine wall-clock telemetry lives in the caller-owned
    :class:`repro.trace.BatchTrace` instead.
    """

    fingerprint: str
    label: str
    cycles: int
    stats: dict
    observations: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    trace: dict = field(default_factory=dict)
    cached: bool = False

    def to_json(self, **kwargs):
        return json.dumps(dataclasses.asdict(self), sort_keys=True,
                          **kwargs)

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(**{f.name: data[f.name]
                      for f in dataclasses.fields(cls) if f.name in data})


class Session:
    """One built simulation: program + memory system + core + plug-ins."""

    def __init__(self, cpu, spec=None, fingerprint=""):
        self.cpu = cpu
        self.spec = spec
        self._fingerprint = fingerprint

    # -- construction --------------------------------------------------

    @classmethod
    def from_spec(cls, spec, fingerprint=None):
        """Build a session; ``fingerprint`` skips recomputing the hash
        when the caller (runner, cache) already derived it."""
        memory = spec.build_memory()
        hierarchy = spec.hierarchy.build(memory=memory,
                                         extra_seed=spec.seed)
        plugins = [plugin_spec.build() for plugin_spec in spec.plugins]
        metrics = SimStats() if spec.collect_stats else NULL_STATS
        hierarchy.metrics = metrics
        trace = (spec.trace.build(metrics=metrics)
                 if spec.trace is not None else None)
        cpu_cls = FastPathCPU if getattr(spec, "fastpath", True) else CPU
        cpu = cpu_cls(spec.program, hierarchy, config=spec.config,
                      plugins=plugins, metrics=metrics, trace=trace)
        for index, value in spec.regs:
            cpu.prf_value[cpu.rename_map[index]] = mask(value)
        if fingerprint is None:
            fingerprint = spec.fingerprint()
        return cls(cpu, spec=spec, fingerprint=fingerprint)

    @classmethod
    def from_parts(cls, program, hierarchy, config=None, plugins=(),
                   label="", metrics=None, fastpath=True):
        """Wrap pre-built simulator parts (persistent-state callers)."""
        if metrics is not None:
            hierarchy.metrics = metrics
        cpu_cls = FastPathCPU if fastpath else CPU
        cpu = cpu_cls(program, hierarchy, config=config,
                      plugins=list(plugins), metrics=metrics)
        session = cls(cpu)
        session._label = label
        return session

    # -- conveniences --------------------------------------------------

    @property
    def hierarchy(self):
        return self.cpu.hierarchy

    @property
    def memory(self):
        return self.cpu.memory

    @property
    def plugins(self):
        return self.cpu.plugins

    def plugin(self, name):
        """The attached plug-in with registry ``name`` (or None)."""
        for plugin in self.cpu.plugins:
            if plugin.name == name:
                return plugin
        return None

    def arch_reg(self, index):
        return self.cpu.arch_reg(index)

    # -- running -------------------------------------------------------

    def resolve_limit(self, max_cycles=None):
        """The run's effective cycle limit: explicit argument, then the
        spec's ``max_cycles``, then the core config's default — the
        same resolution order :meth:`run` has always used, exposed so
        execution backends driving cores through ``cpu.advance`` apply
        the identical limit."""
        if max_cycles is None and self.spec is not None:
            max_cycles = self.spec.max_cycles
        if max_cycles is None:
            max_cycles = self.cpu.config.max_cycles
        return max_cycles

    def run(self, max_cycles=None):
        """Run to completion and package a :class:`RunResult`."""
        limit = self.resolve_limit(max_cycles)
        while self.cpu.advance(limit):
            pass
        return self.finish()

    def finish(self):
        """Package the (halted) core's outcome as a :class:`RunResult`.

        Split out of :meth:`run` so execution backends that drive the
        core themselves (the lockstep backend interleaves many cores
        through ``cpu.advance``) produce byte-identical results through
        the same packaging path.
        """
        spec = self.spec
        self.cpu.stats.cycles = self.cpu.cycle
        stats = self.cpu.stats
        observations = {
            "hierarchy": dict(self.hierarchy.stats),
            "plugins": {plugin.name: dict(plugin.stats)
                        for plugin in self.cpu.plugins
                        if isinstance(getattr(plugin, "stats", None),
                                      dict)},
        }
        if spec is not None and spec.record_regs:
            observations["regs"] = {
                str(index): self.cpu.arch_reg(index)
                for index in spec.record_regs}
        metrics = self.cpu.metrics
        if metrics.enabled:
            metrics.inc("engine.trials")
            self.hierarchy.snapshot_into(metrics)
        # The trace payload rides along only when the *spec* asked for
        # it: a plug-in-installed buffer (e.g. pipeline-tracer) is not
        # part of the fingerprint, so it must not change the result.
        traced = (spec is not None and spec.trace is not None
                  and self.cpu.trace.enabled)
        return RunResult(
            fingerprint=self._fingerprint,
            label=(spec.label if spec is not None
                   else getattr(self, "_label", "")),
            cycles=stats.cycles,
            stats=stats.as_dict(),
            observations=observations,
            metrics=metrics.as_dict() if metrics.enabled else {},
            trace=self.cpu.trace.as_payload() if traced else {})
