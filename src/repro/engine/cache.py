"""Content-addressed result cache.

Replay experiments re-simulate identical points constantly: a bench
sweep re-runs the grid every invocation, key-recovery calibration
repeats the same two probes per slot, and narrowing searches re-query
overlapping prefixes.  Since a :class:`~repro.engine.specs.SimSpec`
fingerprint covers *everything* that determines a run's outcome
(program bytes, core config, hierarchy geometry, plug-ins, memory
image, registers, seed), a finished :class:`RunResult` can be reused
for any spec with the same fingerprint.

The cache is in-memory by default; give it a directory and every
result is also persisted as ``<fingerprint>.json``, surviving across
processes and sessions (bench re-runs skip already-simulated points).

Persistence is safe under concurrency: several pooled workers (or
several bench processes) may try to create the cache directory and
write the same fingerprint at once, so directory creation is
``exist_ok`` and every file write goes through a uniquely-named
temporary file followed by an atomic :func:`os.replace` — readers
never observe a partially-written JSON file, and the last writer of
identical content wins harmlessly.
"""

import dataclasses
import os
import tempfile

from repro import telemetry
from repro.engine.session import RunResult


class ResultCache:
    """Maps spec fingerprints to :class:`RunResult` records.

    A corrupted or truncated persisted entry (a crashed writer on a
    filesystem without atomic rename, a bad disk, a hand-edited file)
    is treated as a **miss**, never an error: the trial re-executes and
    the subsequent :meth:`put` atomically replaces the bad file.  Each
    such entry bumps :attr:`corrupt` and the process-wide
    ``repro_cache_corrupt_total`` telemetry counter — a growing count
    is a store-health signal, not a crash mid-batch.
    """

    def __init__(self, path=None):
        self.path = path
        self._results = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    def __len__(self):
        return len(self._results)

    def __contains__(self, fingerprint):
        return self.get(fingerprint) is not None

    def _file_for(self, fingerprint):
        return os.path.join(self.path, f"{fingerprint}.json")

    def _load(self, fingerprint):
        """Read one persisted result into the in-memory map (or None).

        A file that is missing is a plain miss; one that exists but
        cannot be read or parsed back into a :class:`RunResult` is a
        *corrupt* miss — counted, tolerated, and overwritten by the
        next :meth:`put` of the re-executed trial.
        """
        try:
            with open(self._file_for(fingerprint)) as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            self._count_corrupt()
            return None
        try:
            result = RunResult.from_json(text)
        except (KeyError, TypeError, ValueError):
            # Truncated JSON, a non-dict payload, or missing required
            # fields: the entry is unusable — treat it as a miss.
            self._count_corrupt()
            return None
        telemetry.REGISTRY.inc(
            "repro_cache_read_bytes_total", len(text),
            help="Bytes read from the persistent result store")
        self._results[fingerprint] = result
        return result

    def _count_corrupt(self):
        self.corrupt += 1
        telemetry.REGISTRY.inc(
            "repro_cache_corrupt_total",
            help="Persisted cache entries dropped as corrupt/truncated")

    def _count_probes(self, hits, misses):
        tel = telemetry.REGISTRY
        if not tel.enabled:
            return
        if hits:
            tel.inc("repro_cache_hits_total", hits,
                    help="Result-cache probe hits")
        if misses:
            tel.inc("repro_cache_misses_total", misses,
                    help="Result-cache probe misses")

    def get(self, fingerprint):
        """The cached result (marked ``cached=True``), or None."""
        result = self._results.get(fingerprint)
        if result is None and self.path is not None:
            result = self._load(fingerprint)
        if result is None:
            self.misses += 1
            self._count_probes(0, 1)
            return None
        self.hits += 1
        self._count_probes(1, 0)
        return dataclasses.replace(result, cached=True)

    def probe_many(self, fingerprints):
        """Bulk lookup: one result-or-None per fingerprint, in order.

        The semantics (including the hit/miss counters and the
        ``cached=True`` marking) match one :meth:`get` per fingerprint;
        what changes is the store traffic.  A persistent cache is
        scanned **once** — a single directory listing — and only files
        known to exist are opened, so a thousand-trial batch costs one
        ``listdir`` instead of a thousand per-trial ``stat``/``open``
        attempts.  Duplicate fingerprints within one batch behave like
        the sequential probes always did: every occurrence before the
        result is deposited misses.  A corrupted persisted entry is a
        miss (see :meth:`_load`) — one bad file never aborts the
        batch's probe.
        """
        listing = None
        out = []
        hits = misses = 0
        for fingerprint in fingerprints:
            result = self._results.get(fingerprint)
            if result is None and self.path is not None:
                if listing is None:
                    try:
                        listing = set(os.listdir(self.path))
                    except FileNotFoundError:
                        listing = set()
                if f"{fingerprint}.json" in listing:
                    result = self._load(fingerprint)
            if result is None:
                self.misses += 1
                misses += 1
                out.append(None)
            else:
                self.hits += 1
                hits += 1
                out.append(dataclasses.replace(result, cached=True))
        self._count_probes(hits, misses)
        return out

    def put(self, result):
        if not result.fingerprint:
            return  # from_parts sessions are not content-addressed
        self._results[result.fingerprint] = result
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.path, prefix=f".{result.fingerprint}.",
                suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    text = result.to_json()
                    handle.write(text)
                os.replace(tmp_path, self._file_for(result.fingerprint))
                telemetry.REGISTRY.inc(
                    "repro_cache_write_bytes_total", len(text),
                    help="Bytes written to the persistent result store")
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except FileNotFoundError:
                    pass
                raise

    def clear(self):
        self._results.clear()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
