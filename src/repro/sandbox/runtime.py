"""Sandbox runtime: array layout, map updates, verified execution.

Models the kernel side of the eBPF scenario (Section V-B):

* sandbox arrays live in *kernel* memory, laid out contiguously from
  ``sandbox_base`` — the attacker knows this layout;
* the attacker populates arrays from user space via ``map_update``
  (the moral equivalent of ``bpf(BPF_MAP_UPDATE_ELEM, ...)``);
* kernel secrets live elsewhere in the same physical memory — outside
  the sandbox, unreachable by any verified program, but squarely inside
  the 3-level IMP's universal-read-gadget reach (Section IV-D4);
* ``run`` verifies, JITs and executes the program on the out-of-order
  core with whatever optimization plug-ins are attached (the IMP, for
  the attack).
"""

from repro.engine import Session
from repro.sandbox.jit import Jit
from repro.sandbox.verifier import Verifier


class SandboxError(Exception):
    """Raised for layout problems (overlap, unknown arrays)."""


def _align(value, alignment):
    return (value + alignment - 1) & ~(alignment - 1)


class SandboxRuntime:
    """Owns the memory layout and the verify → JIT → run pipeline."""

    def __init__(self, hierarchy, sandbox_base=0x1_0000,
                 array_alignment=64, verifier=None):
        self.hierarchy = hierarchy
        self.memory = hierarchy.memory
        self.sandbox_base = sandbox_base
        self.array_alignment = array_alignment
        self.verifier = verifier if verifier is not None else Verifier()
        self.layout = {}
        self.sandbox_end = sandbox_base
        self.program = None
        self.machine_program = None
        self.jit = None
        self.verifier_states = None
        self.last_result = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def load_program(self, program):
        """Verify, lay out arrays, and JIT.  Raises VerifierError on
        rejection — nothing is laid out for rejected programs."""
        self.verifier_states = self.verifier.verify(program)
        self.program = program
        cursor = self.sandbox_base
        self.layout = {}
        for array in program.arrays.values():
            cursor = _align(cursor, self.array_alignment)
            if cursor + array.size_bytes > self.memory.size:
                raise SandboxError(
                    f"array {array.name!r} does not fit in memory")
            self.layout[array.name] = cursor
            cursor += array.size_bytes
        self.sandbox_end = cursor
        self.jit = Jit(program, self.layout)
        self.machine_program = self.jit.compile()
        return self.machine_program

    # ------------------------------------------------------------------
    # user-space map access (attacker-controlled data)
    # ------------------------------------------------------------------

    def _element_addr(self, name, index):
        if name not in self.layout:
            raise SandboxError(f"array {name!r} not laid out")
        array = self.program.arrays[name]
        if not 0 <= index < array.length:
            raise SandboxError(
                f"map_update index {index} out of bounds for {name!r}")
        return self.layout[name] + index * array.elem_size

    def map_update(self, name, index, value):
        """Write one element from "user space" (bounds-checked)."""
        addr = self._element_addr(name, index)
        width = min(8, self.program.arrays[name].elem_size)
        self.memory.write(addr, value, width)

    def map_read(self, name, index):
        addr = self._element_addr(name, index)
        width = min(8, self.program.arrays[name].elem_size)
        return self.memory.read(addr, width)

    def array_base(self, name):
        if name not in self.layout:
            raise SandboxError(f"array {name!r} not laid out")
        return self.layout[name]

    # ------------------------------------------------------------------
    # kernel-side helpers (the victim's world)
    # ------------------------------------------------------------------

    def place_kernel_secret(self, addr, data):
        """Place victim data outside the sandbox (e.g. kernel memory)."""
        if self.sandbox_base <= addr < self.sandbox_end:
            raise SandboxError("secret placed inside the sandbox")
        self.memory.write_bytes(addr, data)

    def read_kernel(self, addr, length):
        return self.memory.read_bytes(addr, length)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, plugins=(), config=None, max_cycles=None,
            fastpath=True):
        """Execute the loaded program; returns the finished CPU.

        Goes through an engine :class:`Session` over the runtime's
        *persistent* hierarchy — sandbox state (arrays, receiver cache
        sets) must survive across runs, so the session wraps existing
        parts instead of building from a spec.  ``fastpath`` selects
        the kernel exactly as :attr:`SimSpec.fastpath` does.
        """
        if self.machine_program is None:
            raise SandboxError("no program loaded")
        session = Session.from_parts(self.machine_program,
                                     self.hierarchy, config=config,
                                     plugins=plugins, fastpath=fastpath)
        self.last_result = session.run(max_cycles=max_cycles)
        return session.cpu
