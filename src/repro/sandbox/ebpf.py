"""A small eBPF-like sandbox bytecode (Section V-B of the paper).

The attacker in the sandbox setting runs code of this form inside the
victim's address space.  Mirroring Linux eBPF as used by the paper:

* programs manipulate ten registers ``r0..r9``;
* arrays are declared up front (``BPF_ARRAY``) and accessed through
  ``lookup`` which returns a *pointer or NULL* — an out-of-bounds lookup
  returns NULL, so the mandatory NULL checks "are bounds checks in
  disguise" (Section V-B1);
* a static verifier rejects programs that dereference possibly-NULL
  pointers or don't terminate (``repro.sandbox.verifier``);
* accepted programs are JIT-compiled to the simulator ISA
  (``repro.sandbox.jit``), with lookups becoming inline bounds checks
  exactly as in the paper's Figure 7b.
"""

import enum
from dataclasses import dataclass

NUM_BPF_REGS = 10


class BpfOp(enum.Enum):
    MOV_IMM = "mov_imm"
    MOV_REG = "mov_reg"
    ADD_IMM = "add_imm"
    ADD_REG = "add_reg"
    SUB_IMM = "sub_imm"
    AND_IMM = "and_imm"
    XOR_REG = "xor_reg"
    LSH_IMM = "lsh_imm"
    RSH_IMM = "rsh_imm"
    LOOKUP = "lookup"
    LOAD = "load"
    STORE = "store"
    JEQ_IMM = "jeq_imm"
    JNE_IMM = "jne_imm"
    JLT_IMM = "jlt_imm"
    JGE_IMM = "jge_imm"
    JMP = "jmp"
    EXIT = "exit"


ALU_IMM_OPS = frozenset({BpfOp.MOV_IMM, BpfOp.ADD_IMM, BpfOp.SUB_IMM,
                         BpfOp.AND_IMM, BpfOp.LSH_IMM, BpfOp.RSH_IMM})
ALU_REG_OPS = frozenset({BpfOp.MOV_REG, BpfOp.ADD_REG, BpfOp.XOR_REG})
BRANCH_OPS = frozenset({BpfOp.JEQ_IMM, BpfOp.JNE_IMM, BpfOp.JLT_IMM,
                        BpfOp.JGE_IMM})


@dataclass
class BpfInst:
    op: BpfOp
    rd: int = 0
    rs: int = 0
    imm: int = 0
    array: str = ""
    off: int = 0
    width: int = 8
    target: object = None

    def __str__(self):
        fields = [self.op.value, f"r{self.rd}"]
        if self.array:
            fields.append(self.array)
        if self.op in ALU_REG_OPS or self.op is BpfOp.LOOKUP:
            fields.append(f"r{self.rs}")
        if self.op in ALU_IMM_OPS or self.op in BRANCH_OPS:
            fields.append(str(self.imm))
        if self.target is not None:
            fields.append(f"-> {self.target}")
        return " ".join(fields)


@dataclass(frozen=True)
class BpfArray:
    """A BPF_ARRAY declaration: named, fixed element size and length.

    ``elem_size`` must be a power of two (the JIT scales indices with a
    shift, as in Figure 7b's ``shl``).  Note the attacker may declare
    arrays of *large* elements — e.g. 64-byte structs — which is what
    gives the final prefetch cache-line resolution in the URG attack.
    """

    name: str
    elem_size: int
    length: int

    def __post_init__(self):
        if self.elem_size & (self.elem_size - 1):
            raise ValueError("elem_size must be a power of two")

    @property
    def size_bytes(self):
        return self.elem_size * self.length

    @property
    def shift(self):
        return self.elem_size.bit_length() - 1


class BpfProgramError(Exception):
    """Malformed program (bad register, unresolved label, ...)."""


class BpfProgram:
    """Builder + container for a sandbox program."""

    def __init__(self, arrays=()):
        self.arrays = {array.name: array for array in arrays}
        self.instructions = []
        self.labels = {}

    def declare(self, array):
        if array.name in self.arrays:
            raise BpfProgramError(f"duplicate array {array.name!r}")
        self.arrays[array.name] = array
        return array

    def _reg(self, reg):
        if not 0 <= reg < NUM_BPF_REGS:
            raise BpfProgramError(f"bad register r{reg}")
        return reg

    def _emit(self, **kwargs):
        self.instructions.append(BpfInst(**kwargs))
        return self

    def label(self, name):
        if name in self.labels:
            raise BpfProgramError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return self

    def mov_imm(self, rd, imm):
        return self._emit(op=BpfOp.MOV_IMM, rd=self._reg(rd), imm=imm)

    def mov_reg(self, rd, rs):
        return self._emit(op=BpfOp.MOV_REG, rd=self._reg(rd),
                          rs=self._reg(rs))

    def add_imm(self, rd, imm):
        return self._emit(op=BpfOp.ADD_IMM, rd=self._reg(rd), imm=imm)

    def add_reg(self, rd, rs):
        return self._emit(op=BpfOp.ADD_REG, rd=self._reg(rd),
                          rs=self._reg(rs))

    def sub_imm(self, rd, imm):
        return self._emit(op=BpfOp.SUB_IMM, rd=self._reg(rd), imm=imm)

    def and_imm(self, rd, imm):
        return self._emit(op=BpfOp.AND_IMM, rd=self._reg(rd), imm=imm)

    def xor_reg(self, rd, rs):
        return self._emit(op=BpfOp.XOR_REG, rd=self._reg(rd),
                          rs=self._reg(rs))

    def lsh_imm(self, rd, imm):
        return self._emit(op=BpfOp.LSH_IMM, rd=self._reg(rd), imm=imm)

    def rsh_imm(self, rd, imm):
        return self._emit(op=BpfOp.RSH_IMM, rd=self._reg(rd), imm=imm)

    def lookup(self, rd, array, index_reg):
        """``rd = array.lookup(&index)`` — pointer or NULL."""
        if array not in self.arrays:
            raise BpfProgramError(f"unknown array {array!r}")
        return self._emit(op=BpfOp.LOOKUP, rd=self._reg(rd), array=array,
                          rs=self._reg(index_reg))

    def load(self, rd, ptr_reg, off=0, width=None):
        """``rd = *(ptr + off)`` — verifier requires a NULL-checked ptr."""
        return self._emit(op=BpfOp.LOAD, rd=self._reg(rd),
                          rs=self._reg(ptr_reg), off=off,
                          width=8 if width is None else width)

    def store(self, ptr_reg, src_reg, off=0, width=None):
        """``*(ptr + off) = src`` — same NULL-check discipline as load."""
        return self._emit(op=BpfOp.STORE, rd=self._reg(ptr_reg),
                          rs=self._reg(src_reg), off=off,
                          width=8 if width is None else width)

    def jeq_imm(self, rd, imm, target):
        return self._emit(op=BpfOp.JEQ_IMM, rd=self._reg(rd), imm=imm,
                          target=target)

    def jne_imm(self, rd, imm, target):
        return self._emit(op=BpfOp.JNE_IMM, rd=self._reg(rd), imm=imm,
                          target=target)

    def jlt_imm(self, rd, imm, target):
        return self._emit(op=BpfOp.JLT_IMM, rd=self._reg(rd), imm=imm,
                          target=target)

    def jge_imm(self, rd, imm, target):
        return self._emit(op=BpfOp.JGE_IMM, rd=self._reg(rd), imm=imm,
                          target=target)

    def jmp(self, target):
        return self._emit(op=BpfOp.JMP, target=target)

    def exit(self):
        return self._emit(op=BpfOp.EXIT)

    def finalize(self):
        """Resolve labels in place; returns self."""
        for inst in self.instructions:
            if isinstance(inst.target, str):
                if inst.target not in self.labels:
                    raise BpfProgramError(
                        f"unresolved label {inst.target!r}")
                inst.target = self.labels[inst.target]
            if inst.target is not None and not (
                    0 <= inst.target <= len(self.instructions)):
                raise BpfProgramError(f"target {inst.target} out of range")
        return self

    def listing(self):
        lines = []
        pc_to_labels = {}
        for name, pc in self.labels.items():
            pc_to_labels.setdefault(pc, []).append(name)
        for pc, inst in enumerate(self.instructions):
            for name in pc_to_labels.get(pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {pc:3d}  {inst}")
        return "\n".join(lines)
