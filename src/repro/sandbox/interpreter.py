"""Reference interpreter for sandbox bytecode.

Executes a :class:`BpfProgram` directly against the array layout — the
semantic ground truth the JIT is differentially tested against.  Like
the kernel's own interpreter fallback, it bounds-checks lookups at run
time (returning NULL out of bounds) and refuses NULL dereferences.
"""

from repro.sandbox.ebpf import (
    ALU_IMM_OPS, ALU_REG_OPS, BpfOp, BRANCH_OPS, NUM_BPF_REGS,
)

MASK64 = (1 << 64) - 1


class BpfRuntimeError(Exception):
    """NULL dereference or runaway program in the reference interpreter."""


class BpfInterpreter:
    """Executes finalized programs over a memory + layout."""

    def __init__(self, program, layout, memory):
        program.finalize()
        self.program = program
        self.layout = dict(layout)
        self.memory = memory

    def run(self, max_steps=100_000):
        """Run to EXIT; returns the final register file (list of 10)."""
        regs = [0] * NUM_BPF_REGS
        pc = 0
        insts = self.program.instructions
        for _step in range(max_steps):
            if not 0 <= pc < len(insts):
                raise BpfRuntimeError(f"pc {pc} out of program")
            inst = insts[pc]
            op = inst.op
            if op is BpfOp.EXIT:
                return regs
            if op in ALU_IMM_OPS:
                regs[inst.rd] = self._alu_imm(op, regs[inst.rd],
                                              inst.imm)
                pc += 1
            elif op in ALU_REG_OPS:
                regs[inst.rd] = self._alu_reg(op, regs[inst.rd],
                                              regs[inst.rs])
                pc += 1
            elif op is BpfOp.LOOKUP:
                array = self.program.arrays[inst.array]
                index = regs[inst.rs] & MASK64
                if index < array.length:
                    regs[inst.rd] = (self.layout[inst.array]
                                     + index * array.elem_size)
                else:
                    regs[inst.rd] = 0
                pc += 1
            elif op is BpfOp.LOAD:
                pointer = regs[inst.rs]
                if pointer == 0:
                    raise BpfRuntimeError(
                        f"pc {pc}: NULL dereference at runtime")
                regs[inst.rd] = self.memory.read(pointer + inst.off,
                                                 inst.width)
                pc += 1
            elif op is BpfOp.STORE:
                pointer = regs[inst.rd]
                if pointer == 0:
                    raise BpfRuntimeError(
                        f"pc {pc}: NULL dereference at runtime")
                self.memory.write(pointer + inst.off, regs[inst.rs],
                                  inst.width)
                pc += 1
            elif op is BpfOp.JMP:
                pc = inst.target
            elif op in BRANCH_OPS:
                pc = (inst.target if self._taken(op, regs[inst.rd],
                                                 inst.imm)
                      else pc + 1)
            else:
                raise BpfRuntimeError(f"pc {pc}: unknown op {op}")
        raise BpfRuntimeError(f"no EXIT within {max_steps} steps")

    @staticmethod
    def _alu_imm(op, value, imm):
        if op is BpfOp.MOV_IMM:
            return imm & MASK64
        if op is BpfOp.ADD_IMM:
            return (value + imm) & MASK64
        if op is BpfOp.SUB_IMM:
            return (value - imm) & MASK64
        if op is BpfOp.AND_IMM:
            return value & imm & MASK64
        if op is BpfOp.LSH_IMM:
            return (value << (imm & 63)) & MASK64
        if op is BpfOp.RSH_IMM:
            return (value & MASK64) >> (imm & 63)
        raise BpfRuntimeError(f"bad ALU imm op {op}")

    @staticmethod
    def _alu_reg(op, value_d, value_s):
        if op is BpfOp.MOV_REG:
            return value_s
        if op is BpfOp.ADD_REG:
            return (value_d + value_s) & MASK64
        if op is BpfOp.XOR_REG:
            return value_d ^ value_s
        raise BpfRuntimeError(f"bad ALU reg op {op}")

    @staticmethod
    def _taken(op, value, imm):
        value &= MASK64
        imm &= MASK64
        if op is BpfOp.JEQ_IMM:
            return value == imm
        if op is BpfOp.JNE_IMM:
            return value != imm
        if op is BpfOp.JLT_IMM:
            return value < imm
        if op is BpfOp.JGE_IMM:
            return value >= imm
        raise BpfRuntimeError(f"bad branch {op}")
