"""JIT: compile verified sandbox programs to the simulator ISA.

Mirrors the paper's Figure 7b: a ``lookup`` becomes an inline
unsigned-compare bounds check plus a shift/add address computation, and
a ``load`` through the returned pointer is a plain machine load — **no
additional memory accesses** are made between reading ``Z[i]`` and
``Y[Z[i]]``, which is precisely the pattern the indirect-memory
prefetcher is built to recognize (Section V-B1: "we see no additional
memory accesses made in between reading Z[i] and Y[Z[i]] into the
register file").

BPF registers ``r0..r9`` map to machine registers ``x10..x19``;
``x20``/``x21`` are JIT temporaries.
"""

from repro.isa.assembler import Assembler
from repro.sandbox.ebpf import BpfOp

BPF_REG_BASE = 10
TEMP0 = 20
TEMP1 = 21

#: The NULL pointer value the JIT materializes for failed lookups.
NULL = 0


class JitError(Exception):
    """Raised for programs the JIT cannot lower (should not happen for
    verifier-accepted programs)."""


def machine_reg(bpf_reg):
    """The machine register holding BPF register ``r<bpf_reg>``."""
    return BPF_REG_BASE + bpf_reg


class Jit:
    """Compiles a finalized :class:`BpfProgram` against an array layout.

    ``layout`` maps array name -> base address (assigned by the sandbox
    runtime).
    """

    def __init__(self, program, layout):
        self.program = program
        self.layout = dict(layout)
        self._counter = 0
        #: Filled during compile(): bpf pc -> machine pc of first insn.
        self.pc_map = {}
        #: Machine pcs of the LOAD instructions, keyed by bpf pc — used
        #: by tests to identify which load PCs the prefetcher trains on.
        self.load_pcs = {}

    def _fresh(self, stem):
        self._counter += 1
        return f"__jit_{stem}_{self._counter}"

    def compile(self):
        """Returns an assembled :class:`repro.isa.Program`."""
        program = self.program
        asm = Assembler()
        bpf_labels = {}  # bpf pc -> asm label name
        for pc in range(len(program.instructions) + 1):
            bpf_labels[pc] = f"__bpf_pc_{pc}"
        for pc, inst in enumerate(program.instructions):
            asm.label(bpf_labels[pc])
            self.pc_map[pc] = len(asm)
            self._lower(asm, inst, bpf_labels, pc)
        asm.label(bpf_labels[len(program.instructions)])
        asm.label("__bpf_exit_fallthrough")
        asm.halt()
        return asm.assemble()

    def _lower(self, asm, inst, bpf_labels, pc):
        op = inst.op
        rd = machine_reg(inst.rd)
        rs = machine_reg(inst.rs)
        if op is BpfOp.MOV_IMM:
            asm.li(rd, inst.imm)
        elif op is BpfOp.MOV_REG:
            asm.mv(rd, rs)
        elif op is BpfOp.ADD_IMM:
            asm.addi(rd, rd, inst.imm)
        elif op is BpfOp.ADD_REG:
            asm.add(rd, rd, rs)
        elif op is BpfOp.SUB_IMM:
            asm.addi(rd, rd, -inst.imm)
        elif op is BpfOp.AND_IMM:
            asm.andi(rd, rd, inst.imm)
        elif op is BpfOp.XOR_REG:
            asm.xor(rd, rd, rs)
        elif op is BpfOp.LSH_IMM:
            asm.slli(rd, rd, inst.imm)
        elif op is BpfOp.RSH_IMM:
            asm.srli(rd, rd, inst.imm)
        elif op is BpfOp.LOOKUP:
            self._lower_lookup(asm, inst, rd, rs)
        elif op is BpfOp.LOAD:
            self.load_pcs[pc] = len(asm)
            asm.load(rd, rs, inst.off, width=inst.width)
        elif op is BpfOp.STORE:
            asm.store(rs, rd, inst.off, width=inst.width)
        elif op is BpfOp.JEQ_IMM:
            self._lower_branch(asm, "beq", rd, inst.imm,
                               bpf_labels[inst.target])
        elif op is BpfOp.JNE_IMM:
            self._lower_branch(asm, "bne", rd, inst.imm,
                               bpf_labels[inst.target])
        elif op is BpfOp.JLT_IMM:
            self._lower_branch(asm, "bltu", rd, inst.imm,
                               bpf_labels[inst.target])
        elif op is BpfOp.JGE_IMM:
            self._lower_branch(asm, "bgeu", rd, inst.imm,
                               bpf_labels[inst.target])
        elif op is BpfOp.JMP:
            asm.jmp(bpf_labels[inst.target])
        elif op is BpfOp.EXIT:
            asm.jmp("__bpf_exit_fallthrough")
        else:
            raise JitError(f"cannot lower {op}")

    def _lower_lookup(self, asm, inst, rd, rs):
        """Figure 7b: cmp/jae bounds check + shl/add address compute."""
        array = self.program.arrays[inst.array]
        base = self.layout[inst.array]
        null_label = self._fresh("null")
        done_label = self._fresh("done")
        asm.annotate(f"bounds check {inst.array}[idx] < {array.length}")
        asm.li(TEMP0, array.length)
        asm.bgeu(rs, TEMP0, null_label)
        if array.shift:
            asm.slli(rd, rs, array.shift)   # rax = idx << log2(elem)
        else:
            asm.mv(rd, rs)
        asm.li(TEMP1, base)
        asm.add(rd, rd, TEMP1)              # rax = &array[idx]
        asm.jmp(done_label)
        asm.label(null_label)
        asm.li(rd, NULL)
        asm.label(done_label)

    def _lower_branch(self, asm, kind, rd, imm, label):
        asm.li(TEMP0, imm)
        getattr(asm, kind)(rd, TEMP0, label)
