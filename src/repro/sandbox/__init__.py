"""eBPF-like sandbox: bytecode, verifier, JIT, runtime."""

from repro.sandbox.ebpf import (
    BpfArray, BpfInst, BpfOp, BpfProgram, BpfProgramError,
)
from repro.sandbox.jit import Jit, JitError, machine_reg
from repro.sandbox.runtime import SandboxError, SandboxRuntime
from repro.sandbox.verifier import RegState, Verifier, VerifierError

__all__ = [
    "BpfArray", "BpfInst", "BpfOp", "BpfProgram", "BpfProgramError",
    "Jit", "JitError", "machine_reg", "SandboxError", "SandboxRuntime",
    "RegState", "Verifier", "VerifierError",
]
