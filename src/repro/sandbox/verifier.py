"""Static verifier for sandbox programs (Section V-B1).

The verifier performs exhaustive symbolic path exploration — like the
Linux eBPF verifier it models — tracking an abstract type per register:

* ``scalar`` (with a known constant when derivable),
* ``ptr(array)`` — a *non-NULL* pointer into a declared array element,
* ``maybe_null(array)`` — the result of ``lookup``; dereferencing it is
  rejected until a branch proves it non-zero.

This is what makes the paper's observation concrete: the attacker's
program with its ``if (!v) return 0`` incantations *passes* ("these are
bounds checks in disguise because an out-of-bounds lookup returns
NULL"), the software never reads out of bounds — and the hardware
prefetcher breaks the sandbox anyway.

Loops are handled by unrolling during exploration (constant-bounded
loops terminate the walk; anything that exceeds the state budget is
rejected as too complex, as real eBPF does).
"""

from dataclasses import dataclass

from repro.sandbox.ebpf import (
    ALU_IMM_OPS, ALU_REG_OPS, BpfOp, BRANCH_OPS, NUM_BPF_REGS,
)


class VerifierError(Exception):
    """Program rejected; the message states the offending pc and rule."""


@dataclass(frozen=True)
class RegState:
    """Abstract value of one register."""

    kind: str                 # "scalar" | "ptr" | "maybe_null"
    array: str = ""
    const: object = None      # known constant for scalars, else None
    tainted: bool = False     # derived from a secret-declared array

    @staticmethod
    def scalar(const=None, tainted=False):
        return RegState("scalar", const=const, tainted=tainted)

    @staticmethod
    def pointer(array, tainted=False):
        return RegState("ptr", array=array, tainted=tainted)

    @staticmethod
    def maybe_null(array, tainted=False):
        return RegState("maybe_null", array=array, tainted=tainted)


INITIAL_REGS = tuple(RegState.scalar(0) for _ in range(NUM_BPF_REGS))


class Verifier:
    """Path-exploring verifier with a state budget.

    ``secret_arrays`` names declared arrays whose contents are secret:
    the verifier then runs a taint pass alongside safety checking and
    records :attr:`taint_flows` — ``(pc, kind, detail)`` events for
    every point where secret-derived data reaches an operation whose
    microarchitectural behaviour depends on its value (``load_secret``,
    ``tainted_alu``, ``tainted_branch``, ``tainted_store``,
    ``tainted_index_lookup``).  Taint never *rejects* a program — the
    paper's point is exactly that the safety rules pass leaky programs;
    the events are what ``repro.lint`` consumes to audit them.
    """

    def __init__(self, state_budget=500_000, secret_arrays=()):
        self.state_budget = state_budget
        self.secret_arrays = frozenset(secret_arrays)
        self.taint_flows = []
        self._flow_keys = set()

    def _flow(self, pc, kind, detail):
        key = (pc, kind, detail)
        if key not in self._flow_keys:
            self._flow_keys.add(key)
            self.taint_flows.append(key)

    def verify(self, program):
        """Raises :class:`VerifierError` if the program is unsafe.

        Returns the number of abstract states explored on success.
        """
        program.finalize()
        self.taint_flows = []
        self._flow_keys = set()
        insts = program.instructions
        if not insts:
            raise VerifierError("empty program")
        worklist = [(0, INITIAL_REGS, False)]
        explored = 0
        seen = set()
        while worklist:
            pc, regs, via_back_edge = worklist.pop()
            if (pc, regs) in seen:
                if via_back_edge:
                    # A back-edge reached an abstract state we have
                    # already been in: the verifier cannot prove the
                    # loop terminates.  Real eBPF rejects this.
                    raise VerifierError(
                        f"pc {pc}: cannot prove loop termination")
                continue
            seen.add((pc, regs))
            explored += 1
            if explored > self.state_budget:
                raise VerifierError(
                    f"program too complex (> {self.state_budget} states)")
            if pc >= len(insts):
                raise VerifierError(
                    f"pc {pc}: control flow falls off the program")
            inst = insts[pc]
            for succ_pc, succ_regs in self._step(pc, inst, regs, program):
                worklist.append((succ_pc, succ_regs, succ_pc <= pc))
        self.taint_flows.sort()
        return explored

    def _step(self, pc, inst, regs, program):
        """Abstractly execute ``inst``; yields successor (pc, regs)."""
        op = inst.op
        regs = list(regs)
        if op is BpfOp.EXIT:
            return
        if op in ALU_IMM_OPS:
            self._check_scalar(pc, regs[inst.rd], f"r{inst.rd}",
                               allow_fresh=op is BpfOp.MOV_IMM)
            if regs[inst.rd].tainted and op is not BpfOp.MOV_IMM:
                self._flow(pc, "tainted_alu", f"r{inst.rd}")
            regs[inst.rd] = self._alu_imm(op, regs[inst.rd], inst.imm)
            yield (pc + 1, tuple(regs))
            return
        if op in ALU_REG_OPS:
            if op is not BpfOp.MOV_REG:
                self._check_scalar(pc, regs[inst.rd], f"r{inst.rd}")
                self._check_scalar(pc, regs[inst.rs], f"r{inst.rs}")
                for reg_idx in (inst.rd, inst.rs):
                    if regs[reg_idx].tainted:
                        self._flow(pc, "tainted_alu", f"r{reg_idx}")
                regs[inst.rd] = self._alu_reg(op, regs[inst.rd],
                                              regs[inst.rs])
            else:
                regs[inst.rd] = regs[inst.rs]
            yield (pc + 1, tuple(regs))
            return
        if op is BpfOp.LOOKUP:
            self._check_scalar(pc, regs[inst.rs], f"r{inst.rs} (index)")
            if regs[inst.rs].tainted:
                # A secret-dependent lookup index: the access pattern
                # into the array is itself the leak (the DMP gadget).
                self._flow(pc, "tainted_index_lookup", inst.array)
            regs[inst.rd] = RegState.maybe_null(
                inst.array, tainted=regs[inst.rs].tainted)
            yield (pc + 1, tuple(regs))
            return
        if op in (BpfOp.LOAD, BpfOp.STORE):
            ptr_reg = inst.rs if op is BpfOp.LOAD else inst.rd
            ptr = regs[ptr_reg]
            self._check_dereference(pc, ptr, ptr_reg, inst, program)
            if op is BpfOp.LOAD:
                secret_src = ptr.array in self.secret_arrays
                if secret_src:
                    self._flow(pc, "load_secret", ptr.array)
                regs[inst.rd] = RegState.scalar(
                    tainted=secret_src or ptr.tainted)
            else:
                value = regs[inst.rs]
                if value.kind != "scalar":
                    raise VerifierError(
                        f"pc {pc}: storing a pointer r{inst.rs} to "
                        "memory is not allowed (pointer leak)")
                if value.tainted or ptr.tainted:
                    # Secret store value (silent-store channel) or a
                    # secret-selected store target.
                    self._flow(pc, "tainted_store", ptr.array)
            yield (pc + 1, tuple(regs))
            return
        if op is BpfOp.JMP:
            yield (inst.target, tuple(regs))
            return
        if op in BRANCH_OPS:
            yield from self._branch(pc, inst, regs)
            return
        raise VerifierError(f"pc {pc}: unknown opcode {op}")

    def _branch(self, pc, inst, regs):
        reg = regs[inst.rd]
        op = inst.op
        if reg.tainted:
            # Secret-dependent control flow: every later observable
            # (timing, which MLDs fire at all) inherits the secret.
            self._flow(pc, "tainted_branch", f"r{inst.rd}")
        # NULL-check refinement: comparing a maybe_null pointer with 0.
        if reg.kind == "maybe_null" and inst.imm == 0 and op in (
                BpfOp.JEQ_IMM, BpfOp.JNE_IMM):
            null_regs = list(regs)
            null_regs[inst.rd] = RegState.scalar(0)
            ptr_regs = list(regs)
            ptr_regs[inst.rd] = RegState.pointer(reg.array,
                                                 tainted=reg.tainted)
            if op is BpfOp.JEQ_IMM:
                yield (inst.target, tuple(null_regs))   # taken: NULL
                yield (pc + 1, tuple(ptr_regs))          # fall: non-NULL
            else:
                yield (inst.target, tuple(ptr_regs))     # taken: non-NULL
                yield (pc + 1, tuple(null_regs))
            return
        if reg.kind != "scalar":
            raise VerifierError(
                f"pc {pc}: branch on pointer r{inst.rd} without a "
                "NULL comparison")
        if reg.const is not None:
            taken = self._evaluate(op, reg.const, inst.imm)
            yield ((inst.target, tuple(regs)) if taken
                   else (pc + 1, tuple(regs)))
            return
        yield (inst.target, tuple(regs))
        yield (pc + 1, tuple(regs))

    @staticmethod
    def _evaluate(op, value, imm):
        value &= (1 << 64) - 1
        imm &= (1 << 64) - 1
        if op is BpfOp.JEQ_IMM:
            return value == imm
        if op is BpfOp.JNE_IMM:
            return value != imm
        if op is BpfOp.JLT_IMM:
            return value < imm
        if op is BpfOp.JGE_IMM:
            return value >= imm
        raise VerifierError(f"unknown branch {op}")

    @staticmethod
    def _check_dereference(pc, ptr, ptr_reg, inst, program):
        if ptr.kind == "maybe_null":
            raise VerifierError(
                f"pc {pc}: dereference of possibly-NULL pointer "
                f"r{ptr_reg} (missing NULL check after lookup)")
        if ptr.kind != "ptr":
            raise VerifierError(
                f"pc {pc}: dereference of non-pointer r{ptr_reg}")
        array = program.arrays[ptr.array]
        if inst.off < 0 or inst.off + inst.width > array.elem_size:
            raise VerifierError(
                f"pc {pc}: access [{inst.off}, "
                f"{inst.off + inst.width}) outside element of "
                f"{ptr.array!r} (elem_size {array.elem_size})")

    @staticmethod
    def _check_scalar(pc, reg, what, allow_fresh=False):
        if reg.kind != "scalar" and not allow_fresh:
            raise VerifierError(
                f"pc {pc}: arithmetic on pointer {what} is not allowed")

    @staticmethod
    def _alu_imm(op, reg, imm):
        tainted = reg.tainted and op is not BpfOp.MOV_IMM
        if reg.const is None and op is not BpfOp.MOV_IMM:
            return RegState.scalar(tainted=tainted)
        mask64 = (1 << 64) - 1
        value = 0 if reg.const is None else reg.const
        if op is BpfOp.MOV_IMM:
            return RegState.scalar(imm & mask64)
        if op is BpfOp.ADD_IMM:
            return RegState.scalar((value + imm) & mask64, tainted)
        if op is BpfOp.SUB_IMM:
            return RegState.scalar((value - imm) & mask64, tainted)
        if op is BpfOp.AND_IMM:
            return RegState.scalar(value & imm & mask64, tainted)
        if op is BpfOp.LSH_IMM:
            return RegState.scalar((value << (imm & 63)) & mask64,
                                   tainted)
        if op is BpfOp.RSH_IMM:
            return RegState.scalar((value & mask64) >> (imm & 63),
                                   tainted)
        raise VerifierError(f"unknown ALU op {op}")

    @staticmethod
    def _alu_reg(op, reg_d, reg_s):
        tainted = reg_d.tainted or reg_s.tainted
        if reg_d.const is None or reg_s.const is None:
            return RegState.scalar(tainted=tainted)
        mask64 = (1 << 64) - 1
        if op is BpfOp.ADD_REG:
            return RegState.scalar((reg_d.const + reg_s.const) & mask64,
                                   tainted)
        if op is BpfOp.XOR_REG:
            return RegState.scalar((reg_d.const ^ reg_s.const) & mask64,
                                   tainted)
        raise VerifierError(f"unknown ALU op {op}")
