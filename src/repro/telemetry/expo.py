"""Serialize a metrics registry: Prometheus text exposition and JSON.

Two wire formats over the same :meth:`MetricsRegistry.snapshot`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, one sample line per
  label set, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``.  This is what ``GET /metrics`` serves and what
  ``promtool``/any Prometheus scraper ingests.
* :func:`render_json` — the snapshot itself under a stable envelope,
  for artifacts and the ``python -m repro report --json`` output.

Both accept a live registry or a snapshot dict, so pool-worker
snapshots and the process registry render identically.
"""

__all__ = ["CONTENT_TYPE", "render_json", "render_prometheus"]

#: The content type Prometheus scrapers expect from ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _snapshot_of(source):
    if hasattr(source, "snapshot"):
        return source.snapshot()
    return source or {}


def _escape(value):
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_text(items, extra=()):
    pairs = [f'{name}="{_escape(value)}"'
             for name, value in (*items, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _help_text(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(source):
    """The registry/snapshot as Prometheus text exposition."""
    snapshot = _snapshot_of(source)
    lines = []
    for name, payload in snapshot.items():
        kind = payload["kind"]
        help_text = payload.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_help_text(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for key, value in payload["samples"]:
            items = [tuple(item) for item in key]
            if kind == "histogram":
                cumulative = 0
                bounds = list(value["bounds"]) + ["+Inf"]
                for bound, count in zip(bounds, value["counts"]):
                    cumulative += count
                    le = bound if bound == "+Inf" \
                        else _format_value(bound)
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text(items, [('le', le)])} "
                        f"{cumulative}")
                lines.append(f"{name}_sum{_label_text(items)} "
                             f"{_format_value(value['total'])}")
                lines.append(f"{name}_count{_label_text(items)} "
                             f"{value['count']}")
            else:
                lines.append(f"{name}{_label_text(items)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else "\n"


def render_json(source):
    """The registry/snapshot as a stable JSON-able envelope."""
    snapshot = _snapshot_of(source)
    families = sum(1 for _ in snapshot)
    samples = sum(len(payload["samples"])
                  for payload in snapshot.values())
    return {"format": "repro-telemetry-v1", "families": families,
            "samples": samples, "metrics": snapshot}
