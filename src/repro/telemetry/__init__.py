"""Fleet observability: wall-clock metrics for the engine itself.

The third observability layer, complementing the two *simulated* ones:

=============  =======================  ===============================
layer          observes                 unit
=============  =======================  ===============================
repro.stats    simulated events         counts per :class:`RunResult`
repro.trace    simulated time           cycles per event
repro.telemetry  the engine fleet      wall-clock seconds, live totals
=============  =======================  ===============================

* :mod:`repro.telemetry.registry` — :class:`MetricsRegistry`
  (label-aware counters / gauges / bounded wall-clock histograms with
  snapshot-merge semantics and a zero-cost disabled path) and the
  process-wide :data:`REGISTRY` every orchestration layer records into.
* :mod:`repro.telemetry.expo` — Prometheus text exposition and JSON
  serializers.
* :mod:`repro.telemetry.server` — the stdlib ``/metrics`` +
  ``/healthz`` HTTP endpoint (``python -m repro serve-metrics``).
* :mod:`repro.telemetry.report` — the merged run report
  (``python -m repro report``).

Telemetry is invisible to the simulation: it never enters a
:class:`~repro.engine.specs.SimSpec` fingerprint or a
:class:`~repro.engine.session.RunResult`, and simulated outcomes are
bitwise identical with it enabled or disabled (the differential suite
pins this).  Disable with ``REPRO_TELEMETRY=0`` or
:func:`set_enabled`; ``benchmarks/bench_telemetry_overhead.py`` gates
the disabled path at ≤2% on the fig6 KIPS workload.
"""

import os
import time

from repro.telemetry.expo import (
    CONTENT_TYPE, render_json, render_prometheus,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS, Counter, Gauge, MetricsRegistry, PHASE_METRIC,
    REPRO_TELEMETRY_ENV, WallHistogram, _env_enabled,
)

__all__ = [
    "CONTENT_TYPE", "Counter", "DEFAULT_BUCKETS", "Gauge",
    "MetricsRegistry", "PHASE_METRIC", "REGISTRY",
    "REPRO_TELEMETRY_ENV", "WallHistogram", "enabled", "phase",
    "render_json", "render_prometheus", "set_enabled",
    "worker_heartbeat",
]

#: The process-wide registry.  In-process execution records straight
#: into it; pool workers drain their (forked) copy per job and ship the
#: snapshot back for the parent to merge.
REGISTRY = MetricsRegistry(enabled=_env_enabled())


def enabled():
    """Is fleet telemetry recording in this process?"""
    return REGISTRY.enabled


def set_enabled(flag):
    """Enable/disable the process registry (``REPRO_TELEMETRY`` sets
    the initial state)."""
    REGISTRY.set_enabled(flag)


def phase(layer, phase):
    """``with telemetry.phase("engine.runner", "probe"): ...`` — time
    one orchestration phase into the process registry."""
    return REGISTRY.phase(layer, phase)


def worker_heartbeat(trials=1, registry=None):
    """Record this worker process's liveness: a last-seen wall-clock
    gauge plus a per-worker trial counter, both labelled by pid.  Pool
    workers call this per job; the snapshot merge's gauge-max rule
    keeps the freshest heartbeat per pid in the parent."""
    registry = REGISTRY if registry is None else registry
    if not registry.enabled:
        return
    pid = str(os.getpid())
    registry.set("repro_worker_heartbeat_timestamp_seconds",
                 time.time(),  # det-lint: allow — fleet liveness, never simulated state
                 help="Unix time this worker last completed a trial",
                 pid=pid)
    registry.inc("repro_worker_trials_total", trials,
                 help="Trials completed per worker process", pid=pid)
