"""A stdlib HTTP endpoint over the process metrics registry.

The first standing piece of the leakage-audit-as-a-service roadmap
item: a :class:`http.server.ThreadingHTTPServer` exposing

* ``GET /metrics`` — Prometheus text exposition of the registry (the
  format any scraper ingests), rendered at request time, so a scrape
  during a live ``run_batch`` sees the fleet mid-flight;
* ``GET /healthz`` — a JSON liveness probe with the registry's family
  and sample counts.

The server holds no state of its own — it reads whatever registry it
was given (the process-wide :data:`repro.telemetry.REGISTRY` by
default) under the registry's own lock, so serving never blocks
recording for longer than one snapshot.

Use :func:`start_metrics_server` for the embedded form (daemon thread,
ephemeral port — what the tests and the audit service will use) or
``python -m repro serve-metrics`` for the foreground CLI form.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.expo import CONTENT_TYPE, render_prometheus

__all__ = ["DEFAULT_PORT", "MetricsServer", "start_metrics_server"]

#: Default ``serve-metrics`` port (ephemeral ``port=0`` in tests).
DEFAULT_PORT = 9844


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry"

    def _send(self, status, content_type, body):
        if isinstance(body, str):
            body = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        path = self.path.split("?", 1)[0]
        registry = self.server.registry
        if path == "/metrics":
            self._send(200, CONTENT_TYPE, render_prometheus(registry))
        elif path in ("/healthz", "/health"):
            snapshot = registry.snapshot()
            self._send(200, "application/json", json.dumps({
                "status": "ok",
                "telemetry_enabled": registry.enabled,
                "families": len(snapshot),
                "samples": sum(len(payload["samples"])
                               for payload in snapshot.values()),
            }, sort_keys=True))
        else:
            self._send(404, "application/json", json.dumps(
                {"error": f"unknown path {path!r}",
                 "paths": ["/metrics", "/healthz"]}))

    def log_message(self, format, *args):
        pass                    # requests are telemetry, not stdout noise


class MetricsServer(ThreadingHTTPServer):
    """The /metrics + /healthz endpoint bound to ``registry``."""

    daemon_threads = True

    def __init__(self, host="127.0.0.1", port=0, registry=None):
        if registry is None:
            from repro.telemetry import REGISTRY
            registry = REGISTRY
        self.registry = registry
        super().__init__((host, port), _MetricsHandler)

    @property
    def port(self):
        return self.server_address[1]

    @property
    def url(self):
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def start_metrics_server(host="127.0.0.1", port=0, registry=None):
    """Bind a :class:`MetricsServer` and serve it from a daemon thread.

    Returns the server (``.url``/``.port`` give the bound address,
    ``.shutdown()`` stops it).  ``port=0`` picks an ephemeral port.
    """
    server = MetricsServer(host=host, port=port, registry=registry)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics", daemon=True)
    thread.start()
    server._thread = thread
    return server
