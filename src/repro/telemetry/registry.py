"""Process-wide, label-aware fleet metrics: the third observability layer.

The repo already observes the *simulated* machine twice over —
:mod:`repro.stats` counts simulated events and :mod:`repro.trace`
records simulated cycles — but nothing observed the engine fleet
itself: where a sweep spends wall-clock time, how often the result
cache hits, which execution backend ran how many trials, whether the
warm pool's workers are alive.  :class:`MetricsRegistry` is that third
layer.  It is deliberately *outside* the simulation: nothing recorded
here may feed simulated state (results stay bitwise identical with
telemetry on or off), nothing here enters a
:class:`~repro.engine.specs.SimSpec` fingerprint, and a
:class:`~repro.engine.session.RunResult` never carries it.

Three metric kinds with Prometheus-compatible semantics:

* **counters** — monotone event counts (``repro_cache_hits_total``);
  snapshots merge by summing.
* **gauges** — last-written values (worker heartbeat timestamps);
  snapshots merge by taking the maximum, so the freshest heartbeat
  wins across workers.
* **histograms** — wall-clock distributions over a *bounded*, fixed
  bucket layout (:data:`DEFAULT_BUCKETS` plus a +Inf overflow), so a
  long-running fleet's registry never grows with the data; snapshots
  merge by summing per-bucket counts.

Every metric family may carry labels (``backend="lockstep"``,
``phase="probe"``), giving one naming scheme across the fleet instead
of ad-hoc dotted counters per subsystem.

Process model: one module-level :data:`~repro.telemetry.REGISTRY` per
process.  In-process backends (serial, lockstep) record straight into
it; pool workers record into their own (forked) registry, which the
pool target resets per job and ships back as a picklable
:meth:`MetricsRegistry.drain` snapshot that the parent
:meth:`MetricsRegistry.merge`\\ s — merging is associative and
commutative, so a 4-worker fan-out aggregates to the same totals as a
serial run.

Disabled mode (``REPRO_TELEMETRY=0`` or :func:`set_enabled`): every
recording call returns immediately after one attribute test, handle
lookups return shared null metrics, and :meth:`MetricsRegistry.phase`
returns a no-op context manager without reading the clock —
``benchmarks/bench_telemetry_overhead.py`` gates the disabled path at
≤2% of the enabled mode's wall time on the fig6 KIPS workload.
"""

import bisect
import os
import re
import threading
import time

__all__ = [
    "DEFAULT_BUCKETS", "Counter", "Gauge", "MetricsRegistry",
    "PHASE_METRIC", "WallHistogram",
]

#: Environment variable gating the process-wide registry; unset or any
#: value other than the listed "off" spellings means enabled.
REPRO_TELEMETRY_ENV = "REPRO_TELEMETRY"

_OFF_VALUES = {"0", "off", "false", "no"}

#: Bounded upper bounds (seconds) for wall-clock histograms.  The span
#: covers sub-millisecond cache probes up to ten-second bench phases;
#: anything slower lands in the +Inf overflow bucket.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: The one histogram family every phase-profiling hook records into,
#: labelled by ``layer`` (which subsystem) and ``phase`` (which step).
PHASE_METRIC = "repro_phase_seconds"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _env_enabled():
    value = os.environ.get(REPRO_TELEMETRY_ENV, "")
    return value.strip().lower() not in _OFF_VALUES


# ----------------------------------------------------------------------
# metric instruments
# ----------------------------------------------------------------------

class Counter:
    """A monotone event count; merge: sum."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters are monotone; inc() takes "
                             f"amount >= 0, got {amount}")
        self.value += amount

    def as_value(self):
        return self.value

    def merge_value(self, value):
        self.value += value


class Gauge:
    """A last-written value; merge: max (freshest heartbeat wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def as_value(self):
        return self.value

    def merge_value(self, value):
        if value > self.value:
            self.value = value


class WallHistogram:
    """A bounded-bucket distribution; merge: per-bucket sum.

    ``bounds`` are the inclusive upper edges; one extra overflow bucket
    catches everything above the last bound, so the layout — hence the
    registry's memory — is fixed no matter what gets observed.
    """

    __slots__ = ("bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, bounds=DEFAULT_BUCKETS):
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty "
                             "ascending sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_value(self):
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total}

    def merge_value(self, value):
        if tuple(value["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histograms with bucket bounds "
                f"{tuple(value['bounds'])} and {self.bounds}")
        for index, extra in enumerate(value["counts"]):
            self.counts[index] += extra
        self.count += value["count"]
        self.total += value["total"]

    @classmethod
    def from_value(cls, value):
        hist = cls(bounds=value["bounds"])
        hist.merge_value(value)
        return hist


class _NullMetric:
    """Shared handle returned by a disabled registry: records nothing."""

    __slots__ = ()
    value = 0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_METRIC = _NullMetric()


class _NullPhase:
    """No-op ``phase`` context manager: no clock reads when disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _PhaseTimer:
    """Times one ``with`` block into a phase histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist):
        self._hist = hist
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._hist.observe(time.perf_counter() - self._start)
        return False


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

class _Family:
    """One named metric family: kind + help + per-label-set samples."""

    __slots__ = ("name", "kind", "help", "bounds", "samples")

    def __init__(self, name, kind, help="", bounds=DEFAULT_BUCKETS):
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = tuple(bounds)
        self.samples = {}       # sorted (label, value) items -> metric

    def sample(self, key):
        metric = self.samples.get(key)
        if metric is None:
            if self.kind == "counter":
                metric = Counter()
            elif self.kind == "gauge":
                metric = Gauge()
            else:
                metric = WallHistogram(bounds=self.bounds)
            self.samples[key] = metric
        return metric


def _label_key(labels):
    """Canonical, hashable, deterministic form of a label mapping."""
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value))
                        for name, value in labels.items()))


class MetricsRegistry:
    """Label-aware counters, gauges, and wall-clock histograms.

    Thread-safe: the metrics HTTP server snapshots from its own thread
    while the main thread records.  All operations take one short lock;
    recording sites are per-batch/per-trial (never per simulated
    cycle), so the lock is far off every hot path.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families = {}

    def set_enabled(self, flag):
        """Flip recording on or off (off = the zero-cost path)."""
        self.enabled = bool(flag)

    # -- handles -------------------------------------------------------

    def _family(self, name, kind, help, bounds=DEFAULT_BUCKETS):
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            family = _Family(name, kind, help=help, bounds=bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}")
        else:
            if help and not family.help:
                family.help = help
        return family

    def counter(self, name, help="", **labels):
        """The counter handle for ``name`` + ``labels`` (or a shared
        null handle when disabled)."""
        if not self.enabled:
            return _NULL_METRIC
        with self._lock:
            return self._family(name, "counter", help).sample(
                _label_key(labels))

    def gauge(self, name, help="", **labels):
        if not self.enabled:
            return _NULL_METRIC
        with self._lock:
            return self._family(name, "gauge", help).sample(
                _label_key(labels))

    def histogram(self, name, help="", bounds=DEFAULT_BUCKETS,
                  **labels):
        if not self.enabled:
            return _NULL_METRIC
        with self._lock:
            return self._family(name, "histogram", help,
                                bounds=bounds).sample(_label_key(labels))

    # -- recording -----------------------------------------------------

    def inc(self, name, amount=1, help="", **labels):
        """Add ``amount`` to counter ``name`` with ``labels``."""
        if not self.enabled:
            return
        with self._lock:
            self._family(name, "counter", help).sample(
                _label_key(labels)).inc(amount)

    def set(self, name, value, help="", **labels):
        """Set gauge ``name`` with ``labels`` to ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self._family(name, "gauge", help).sample(
                _label_key(labels)).set(value)

    def observe(self, name, value, help="", bounds=DEFAULT_BUCKETS,
                **labels):
        """Record ``value`` into histogram ``name`` with ``labels``."""
        if not self.enabled:
            return
        with self._lock:
            self._family(name, "histogram", help, bounds=bounds).sample(
                _label_key(labels)).observe(value)

    def phase(self, layer, phase):
        """Context manager timing one fleet phase into
        :data:`PHASE_METRIC` — ``with REGISTRY.phase("engine.runner",
        "probe"): ...``.  Disabled mode returns a shared no-op manager
        without touching the clock."""
        if not self.enabled:
            return _NULL_PHASE
        return _PhaseTimer(self.histogram(
            PHASE_METRIC,
            help="Wall-clock seconds per orchestration phase",
            layer=layer, phase=phase))

    # -- reading -------------------------------------------------------

    def value(self, name, default=0, **labels):
        """One sample's current value (tests and report rendering)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return default
            metric = family.samples.get(_label_key(labels))
            return default if metric is None else metric.as_value()

    def total(self, name):
        """Sum of a counter family across every label set."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            return sum(metric.as_value()
                       for metric in family.samples.values())

    # -- snapshots -----------------------------------------------------

    def snapshot(self):
        """Picklable, JSON-able, deterministic view of every family.

        ``{name: {"kind": ..., "help": ..., "samples": [[labels,
        value], ...]}}`` with names and label items sorted.  Histogram
        values are their ``as_value`` dicts.
        """
        with self._lock:
            out = {}
            for name in sorted(self._families):
                family = self._families[name]
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "samples": [
                        [[list(item) for item in key],
                         family.samples[key].as_value()]
                        for key in sorted(family.samples)],
                }
            return out

    def merge(self, snapshot):
        """Fold a :meth:`snapshot` (e.g. shipped from a pool worker)
        into this registry; counters sum, gauges max, histograms add
        per-bucket.  Returns ``self``.  Disabled registries ignore
        merges, keeping the off mode observation-free."""
        if not snapshot or not self.enabled:
            return self
        with self._lock:
            for name, payload in snapshot.items():
                bounds = DEFAULT_BUCKETS
                if payload["kind"] == "histogram" and payload["samples"]:
                    bounds = tuple(payload["samples"][0][1]["bounds"])
                family = self._family(name, payload["kind"],
                                      payload.get("help", ""),
                                      bounds=bounds)
                for key, value in payload["samples"]:
                    key = tuple(tuple(item) for item in key)
                    family.sample(key).merge_value(value)
        return self

    def reset(self):
        """Drop every recorded sample (keeps the enabled flag)."""
        with self._lock:
            self._families.clear()

    def drain(self):
        """Snapshot then reset — the per-job shipping primitive pool
        workers use, so each job's snapshot holds only its own delta
        (never state forked in from the parent)."""
        snap = self.snapshot()
        self.reset()
        return snap
