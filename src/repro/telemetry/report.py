"""One run report across all three observability layers.

``python -m repro report`` answers "where did the run actually go?" in
a single page by merging

* the **fleet** view — a telemetry snapshot (wall-clock phase
  profile, cache traffic, per-backend trial counts, worker liveness);
* the **simulated** view — merged :class:`~repro.stats.SimStats`
  records out of ``RunResult.metrics`` (simulated events: stalls,
  hits, squashes);
* the **throughput** view — the ``BENCH_PERF.json`` KIPS report, when
  one exists.

:func:`run_demo_fleet` gives the CLI something real to report on
without arguments: it runs the Figure 5 amplified probes twice through
:func:`~repro.engine.runner.run_batch` against a scratch cache (the
second pass hits), so every phase, cache, and backend metric is
populated by genuine engine traffic.
"""

import json

from repro.telemetry.registry import PHASE_METRIC

__all__ = [
    "build_report", "load_perf", "phase_table", "render_report",
    "run_demo_fleet",
]


def run_demo_fleet(registry=None, backend=None):
    """Exercise the engine fleet; returns (telemetry snapshot, merged
    simulated-metrics dict).

    Two ``run_batch`` passes over the Figure 5 amplified probes against
    one in-memory cache: the first pass misses and executes, the second
    hits — so the snapshot carries every phase histogram, the cache
    hit *and* miss counters, and per-backend trial counts, which is
    exactly the surface ``/metrics`` and the report table render.
    """
    from repro.attacks.amplification import amplified_probe_spec
    from repro.engine.cache import ResultCache
    from repro.engine.runner import run_batch
    from repro.stats import SimStats, merge_all
    if registry is None:
        from repro.telemetry import REGISTRY as registry
    secret = 0x1234
    specs = [
        amplified_probe_spec(secret, secret, gadget=True,
                             label="report_silent"),
        amplified_probe_spec(secret, 0x4321, gadget=True,
                             label="report_nonsilent"),
        amplified_probe_spec(secret, secret, gadget=False,
                             label="report_plain_silent"),
        amplified_probe_spec(secret, 0x4321, gadget=False,
                             label="report_plain_nonsilent"),
    ]
    cache = ResultCache()
    batch_stats = SimStats()
    results = run_batch(specs, cache=cache, batch_stats=batch_stats,
                        backend=backend)
    run_batch(specs, cache=cache, batch_stats=batch_stats,
              backend=backend)
    simulated = merge_all(result.metrics for result in results)
    simulated.merge(batch_stats)
    return registry.snapshot(), simulated.as_dict()


def load_perf(path):
    """The ``BENCH_PERF.json`` payload, or None when absent/unreadable."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def build_report(snapshot=None, simulated=None, perf=None):
    """Assemble the merged run-report payload (JSON-able)."""
    return {
        "report": "repro run report",
        "layers": {
            "telemetry": "wall-clock fleet (this process)",
            "simulated": "merged RunResult.metrics (simulated events)",
            "bench_perf": "BENCH_PERF.json throughput (if present)",
        },
        "telemetry": snapshot or {},
        "simulated": simulated or {},
        "bench_perf": perf,
    }


def phase_table(snapshot):
    """Rows ``(layer, phase, count, total_s, mean_ms)`` from a
    snapshot's :data:`PHASE_METRIC` family, slowest first."""
    family = (snapshot or {}).get(PHASE_METRIC)
    if not family:
        return []
    rows = []
    for key, value in family["samples"]:
        labels = dict(tuple(item) for item in key)
        count = value["count"]
        total = value["total"]
        rows.append((labels.get("layer", "?"), labels.get("phase", "?"),
                     count, total,
                     total / count * 1000.0 if count else 0.0))
    return sorted(rows, key=lambda row: -row[3])


def _render_fleet(snapshot, lines):
    rows = phase_table(snapshot)
    if rows:
        lines.append("  phase profile (wall-clock):")
        lines.append(f"    {'layer':22s} {'phase':10s} {'calls':>7s} "
                     f"{'total s':>9s} {'mean ms':>9s}")
        for layer, phase, count, total, mean_ms in rows:
            lines.append(f"    {layer:22s} {phase:10s} {count:7d} "
                         f"{total:9.3f} {mean_ms:9.3f}")
    scalars = []
    for name, payload in snapshot.items():
        if payload["kind"] not in ("counter", "gauge"):
            continue
        for key, value in payload["samples"]:
            labels = ",".join(f"{label}={text}"
                              for label, text in
                              (tuple(item) for item in key))
            suffix = f"{{{labels}}}" if labels else ""
            mark = "  (gauge)" if payload["kind"] == "gauge" else ""
            scalars.append(f"    {name + suffix:56s} {value:>14}{mark}")
    if scalars:
        lines.append("  counters and gauges:")
        lines.extend(scalars)
    if not rows and not scalars:
        lines.append("  (no fleet telemetry recorded)")


def _render_perf(perf, lines):
    workloads = (perf or {}).get("workloads")
    if not workloads:
        lines.append("  (no BENCH_PERF.json found — run "
                     "`python -m repro bench`)")
        return
    from repro.analysis.throughput import render_table
    lines.extend("  " + line for line in render_table(perf).splitlines())
    backends = perf.get("backends") or {}
    if "lockstep_vs_pool" in backends:
        lines.append(f"  lockstep vs pool: "
                     f"{backends['lockstep_vs_pool']:.2f}x "
                     f"(identical: {backends.get('identical')})")


def render_report(report):
    """The human-readable single-page run report."""
    from repro.stats import render_stats
    lines = ["== run report =="]
    lines.append("")
    lines.append("-- fleet telemetry (wall-clock, this process) --")
    _render_fleet(report.get("telemetry") or {}, lines)
    lines.append("")
    lines.append("-- simulated metrics (merged RunResult.metrics) --")
    simulated = report.get("simulated") or {}
    if simulated:
        lines.append(render_stats(simulated, indent=""))
    else:
        lines.append("  (no simulated metrics in this report)")
    lines.append("")
    lines.append("-- simulator throughput (BENCH_PERF.json) --")
    _render_perf(report.get("bench_perf"), lines)
    return "\n".join(lines)
