"""Chrome trace-event export (Perfetto / ``chrome://tracing`` loadable).

Maps the simulator's event stream onto the Chrome trace-event JSON
format (the ``traceEvents`` array of ``"X"`` complete spans, ``"i"``
instants and ``"M"`` metadata records that both Perfetto and
``chrome://tracing`` open directly):

* each traced run becomes one *process*; instruction lifetimes
  (dispatch → retire/squash) are complete spans, greedily packed onto
  pipeline lanes so overlapping instructions render on separate rows
  (the classic pipeline-diagram view);
* store-queue, memory and optimization events become instants on
  dedicated tracks, so a Figure-5 head-of-line stall reads as a burst
  of ``hol_stall`` marks under the blocked store's span;
* an engine batch (:class:`~repro.trace.batch.BatchTrace`) becomes one
  process with a track per worker pid carrying trial spans, plus a
  cache track of hit instants.

Timestamps are cycles reported as microseconds (one cycle == 1 "us"):
the units are nominal, the *shape* is what the viewer is for.
"""

import json

from repro.trace.buffer import events_of

#: tid offsets for the non-pipeline tracks of a run process.
_TRACK_TIDS = {"fetch": 900, "sq": 901, "mem": 902, "opt": 903}


def _metadata(pid, name, tid=None):
    event = {"ph": "M", "pid": pid,
             "name": "process_name" if tid is None else "thread_name",
             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def _pack_lanes(spans):
    """Greedy interval packing: span -> lane index (no overlap per lane)."""
    lane_free_at = []
    lanes = []
    for start, end in spans:
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                lane_free_at[lane] = end
                lanes.append(lane)
                break
        else:
            lane_free_at.append(end)
            lanes.append(len(lane_free_at) - 1)
    return lanes


def run_trace_events(trace, label="run", pid=1):
    """Chrome trace events for one run's trace (buffer or payload)."""
    events = events_of(trace)
    out = [_metadata(pid, label)]

    # Instruction lifecycle -> one span per dynamic instruction.
    insts = {}
    for cycle, category, name, seq, pc, addr, info in events:
        if category != "inst" or seq < 0:
            continue
        rec = insts.setdefault(seq, {"first": cycle, "last": cycle,
                                     "pc": pc, "text": "", "marks": [],
                                     "squashed": False})
        rec["first"] = min(rec["first"], cycle)
        rec["last"] = max(rec["last"], cycle)
        if name == "dispatch" and info:
            rec["text"] = info
        if name == "squash":
            rec["squashed"] = True
        rec["marks"].append((cycle, name))

    ordered = sorted(insts.items())
    lanes = _pack_lanes([(rec["first"], rec["last"] + 1)
                         for _seq, rec in ordered])
    used_lanes = 0
    for (seq, rec), lane in zip(ordered, lanes):
        used_lanes = max(used_lanes, lane + 1)
        name = rec["text"] or f"#{seq}"
        if rec["squashed"]:
            name += " [SQUASHED]"
        out.append({
            "ph": "X", "pid": pid, "tid": lane, "name": name,
            "cat": "inst", "ts": rec["first"],
            "dur": max(1, rec["last"] - rec["first"]),
            "args": {"seq": seq, "pc": rec["pc"],
                     "events": [f"{mark}@{cycle}"
                                for cycle, mark in rec["marks"]]},
        })
    for lane in range(used_lanes):
        out.append(_metadata(pid, f"pipeline lane {lane}", tid=lane))

    # Everything else -> instants on per-category tracks.
    seen_tracks = set()
    for cycle, category, name, seq, pc, addr, info in events:
        tid = _TRACK_TIDS.get(category)
        if tid is None:
            continue
        seen_tracks.add((tid, category))
        args = {}
        if seq >= 0:
            args["seq"] = seq
        if addr >= 0:
            args["addr"] = hex(addr)
        if info:
            args["info"] = info
        out.append({"ph": "i", "pid": pid, "tid": tid, "name": name,
                    "cat": category, "ts": cycle, "s": "t", "args": args})
    for tid, category in sorted(seen_tracks):
        out.append(_metadata(pid, f"{category} events", tid=tid))
    return out


def chrome_document(trace_events):
    """Wrap a flat event list in the JSON-object trace format."""
    return {"traceEvents": list(trace_events), "displayTimeUnit": "ms"}


def write_chrome_trace(path, trace_events):
    """Write a Perfetto-loadable JSON file; returns ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_document(trace_events), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
    return path
