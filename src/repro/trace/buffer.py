"""Cycle-accurate event tracing: typed events in a bounded ring buffer.

Where :mod:`repro.stats` answers *how much* (counters, maxima,
histograms), this module answers *when* and *why*: every layer of the
simulator — the out-of-order core, the memory hierarchy, and the
optimization plug-ins — emits typed events into one
:class:`TraceBuffer`, so a run can be replayed as a timeline (the
Figure 4 store cases, the Figure 5 head-of-line amplification) instead
of an aggregate delta.

Events are plain tuples ``(cycle, category, name, seq, pc, addr,
info)`` — picklable, JSON-able, and cheap to emit.  ``seq``/``pc``/
``addr`` are ``-1`` when not applicable; ``info`` is a short free-form
string (instruction text at dispatch, an MLD outcome tag on plug-in
firings, a latency on cache fills).

The buffer is a bounded ring: when ``capacity`` is reached the oldest
event is overwritten and the overwrite is counted (``dropped``, plus
the ``trace.dropped_events`` counter of the attached
:class:`~repro.stats.SimStats`), so a full trace never grows without
bound and truncation is always visible.  Per-category filters and
per-category sampling keep full-fleet traces affordable.

Everything recorded here is derived from simulated state only (cycle
numbers, addresses, sequence numbers), so a trace payload is bitwise
deterministic across serial and pooled execution — the same contract
as :class:`~repro.stats.SimStats`.  Wall-clock engine telemetry lives
in :class:`~repro.trace.batch.BatchTrace` instead, mirroring the
``batch_stats`` split.

Disabled mode: :data:`NULL_TRACE` (a :class:`NullTraceBuffer`) accepts
every ``emit`` as a no-op; hot paths additionally guard on
:attr:`TraceBuffer.enabled` so an untraced run pays one attribute test
per site.
"""

from collections import deque

from repro.stats import NULL_STATS

#: The event taxonomy.  See DESIGN.md ("The trace layer") for what each
#: layer emits into which category.
#:
#: * ``fetch``  — the front end fetched an instruction (pc only).
#: * ``inst``   — instruction lifecycle: dispatch, issue, complete,
#:   retire, squash_request, squash, flush.
#: * ``sq``     — store-queue events: address_resolved, ss_load_issued,
#:   ss_load_returned, fill_request, hol_stall, silent_dequeue, perform.
#: * ``mem``    — hierarchy events: l1_hit/l2_hit/pb_hit/dram_access,
#:   l1_evict/l2_evict, tlb_walk, prefetch.
#: * ``opt``    — optimization-plug-in firings, tagged with their MLD
#:   outcome in ``info`` (e.g. ``case_a_silent``, ``mispredict_squash``).
#: * ``engine`` — engine-level spans (rendered from
#:   :class:`~repro.trace.batch.BatchTrace`, never emitted in-run).
CATEGORIES = ("fetch", "inst", "sq", "mem", "opt", "engine")

#: What the Figure-4 :class:`~repro.pipeline.trace.PipelineTracer`
#: consumes: instruction lifecycle plus store-queue events.
PIPELINE_CATEGORIES = ("inst", "sq")


class TraceError(Exception):
    """Raised for malformed trace configurations."""


class TraceBuffer:
    """Bounded ring buffer of trace events (see module docstring).

    Parameters
    ----------
    capacity:
        Ring size in events; the oldest event is overwritten (and
        counted as dropped) once full.
    categories:
        Iterable of :data:`CATEGORIES` members to record; ``None`` or
        empty records everything.
    sample:
        Keep every ``sample``-th event *per category* (1 = keep all).
        Sampling is positional over the (deterministic) event stream,
        so sampled traces stay reproducible.
    metrics:
        Optional :class:`~repro.stats.SimStats` that receives the
        ``trace.dropped_events`` counter.
    """

    enabled = True

    __slots__ = ("capacity", "categories", "sample", "metrics", "_clock",
                 "_events", "_sampled", "emitted", "dropped", "filtered")

    def __init__(self, capacity=65536, categories=None, sample=1,
                 metrics=None):
        if capacity <= 0:
            raise TraceError("capacity must be positive")
        if sample <= 0:
            raise TraceError("sample must be positive")
        if categories:
            unknown = sorted(set(categories) - set(CATEGORIES))
            if unknown:
                raise TraceError(f"unknown trace categories {unknown}; "
                                 f"known: {sorted(CATEGORIES)}")
            self.categories = frozenset(categories)
        else:
            self.categories = None
        self.capacity = capacity
        self.sample = sample
        self.metrics = metrics if metrics is not None else NULL_STATS
        self._clock = None
        self._events = deque(maxlen=capacity)
        self._sampled = {}
        self.emitted = 0    # events accepted into the ring
        self.dropped = 0    # accepted events later overwritten
        self.filtered = 0   # events rejected by filter or sampling

    # -- recording -----------------------------------------------------

    def set_clock(self, clock):
        """Install a zero-arg current-cycle callable (the core's clock),
        used when ``emit`` is called without an explicit ``cycle``."""
        self._clock = clock

    def emit(self, category, name, cycle=None, seq=-1, pc=-1, addr=-1,
             info=""):
        """Record one event (subject to the filter and sampling)."""
        if self.categories is not None and category not in self.categories:
            self.filtered += 1
            return
        if self.sample > 1:
            seen = self._sampled.get(category, 0)
            self._sampled[category] = seen + 1
            if seen % self.sample:
                self.filtered += 1
                return
        if cycle is None:
            cycle = self._clock() if self._clock is not None else 0
        if len(self._events) == self.capacity:
            self.dropped += 1
            self.metrics.inc("trace.dropped_events")
        self._events.append((cycle, category, name, seq, pc, addr, info))
        self.emitted += 1

    # -- reading -------------------------------------------------------

    def __len__(self):
        return len(self._events)

    def __bool__(self):
        return bool(self._events)

    def events(self, category=None):
        """Retained events oldest-first (optionally one category)."""
        if category is None:
            return list(self._events)
        return [event for event in self._events if event[1] == category]

    def clear(self):
        self._events.clear()
        self._sampled.clear()
        self.emitted = 0
        self.dropped = 0
        self.filtered = 0

    # -- serialization -------------------------------------------------

    def as_payload(self):
        """Deterministic JSON-able form (the ``RunResult.trace`` field)."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "categories": (sorted(self.categories)
                           if self.categories is not None else []),
            "emitted": self.emitted,
            "dropped": self.dropped,
            "filtered": self.filtered,
            "events": [list(event) for event in self._events],
        }

    def __repr__(self):
        return (f"TraceBuffer(capacity={self.capacity}, "
                f"events={len(self._events)}, dropped={self.dropped})")


class NullTraceBuffer(TraceBuffer):
    """Disabled-mode trace: every ``emit`` is a no-op.

    Shares the read/serialize interface (always empty) so instrumented
    code never branches on the mode — except per-cycle hot paths, which
    check :attr:`enabled` once per site.
    """

    enabled = False

    __slots__ = ()

    def __init__(self):
        super().__init__(capacity=1)

    def set_clock(self, clock):
        pass

    def emit(self, category, name, cycle=None, seq=-1, pc=-1, addr=-1,
             info=""):
        pass


#: Shared disabled-mode instance (emit is a no-op, so one global
#: buffer is safe to hand to every component).
NULL_TRACE = NullTraceBuffer()


def events_of(trace):
    """Event tuples from a :class:`TraceBuffer` or an ``as_payload``
    dict (e.g. a ``RunResult.trace`` field)."""
    if isinstance(trace, TraceBuffer):
        return trace.events()
    if not trace:
        return []
    return [tuple(event) for event in trace.get("events", ())]
