"""Cycle-accurate event tracing for every layer of the simulator.

* :mod:`repro.trace.buffer` — :class:`TraceBuffer`, a bounded ring of
  typed events with per-category filters and sampling, plus the
  disabled-mode :data:`NULL_TRACE`.
* :mod:`repro.trace.perfetto` — Chrome trace-event JSON export
  (Perfetto / ``chrome://tracing`` loadable).
* :mod:`repro.trace.timeline` — gem5-pipeview/Konata-style ASCII
  timeline rendering for terminals.
* :mod:`repro.trace.batch` — :class:`BatchTrace`, the caller-owned
  wall-clock engine telemetry record (per-worker tracks, cache hits).

Enable per-spec with ``SimSpec(trace=TraceSpec(), ...)``; drive from
the shell with ``python -m repro trace``.  See DESIGN.md ("The trace
layer") for the event taxonomy and the determinism boundary.
"""

from repro.trace.batch import BatchTrace
from repro.trace.buffer import (
    CATEGORIES, NULL_TRACE, NullTraceBuffer, PIPELINE_CATEGORIES,
    TraceBuffer, TraceError, events_of,
)
from repro.trace.perfetto import (
    chrome_document, run_trace_events, write_chrome_trace,
)
from repro.trace.timeline import render_timeline

__all__ = [
    "BatchTrace", "CATEGORIES", "NULL_TRACE", "NullTraceBuffer",
    "PIPELINE_CATEGORIES", "TraceBuffer", "TraceError",
    "chrome_document", "events_of", "render_timeline",
    "run_trace_events", "write_chrome_trace",
]
