"""ASCII pipeline timeline rendering (gem5-pipeview / Konata style).

Turns a run's trace payload into a terminal timeline: one row per
dynamic instruction, one column per cycle (or per ``scale`` cycles
when the window is wider than the terminal), with lifecycle stages and
store-queue events overlaid:

``D``  dispatch          ``@``  store address resolved
``I``  issue             ``$``  SS-Load issued / returned
``C``  complete          ``F``  store line fill requested
``R``  retire            ``!``  store-queue head-of-line stall
``x``  squashed          ``P``  store performed (non-silent)
``=``  waiting in RS     ``s``  silent dequeue
``-``  executing         ``.``  in flight

A dedicated footer row aggregates every ``sq`` head-of-line stall in
the window, so the Figure 5 amplification — a burst of ``!`` columns
while the non-silent target store re-fetches its line — is visible
even when the per-instruction rows are truncated.
"""

from repro.trace.buffer import events_of

#: Marker precedence within one column (later entries win).
_PRIORITY = [".", "=", "-", "D", "I", "C", "R", "@", "$", "F", "P", "s",
             "!", "x"]
_RANK = {mark: rank for rank, mark in enumerate(_PRIORITY)}

_SQ_MARKS = {
    "address_resolved": "@",
    "ss_load_issued": "$",
    "ss_load_returned": "$",
    "fill_request": "F",
    "hol_stall": "!",
    "silent_dequeue": "s",
    "perform": "P",
}

_INST_MARKS = {
    "dispatch": "D",
    "issue": "I",
    "complete": "C",
    "retire": "R",
    "squash": "x",
}

LEGEND = ("D dispatch  I issue  C complete  R retire  x squash  "
          "@ addr resolved  $ ss-load  F fill  ! HOL stall  "
          "P perform  s silent dequeue")


class _Row:
    __slots__ = ("seq", "pc", "text", "marks", "first", "last",
                 "issue", "complete")

    def __init__(self, seq, pc):
        self.seq = seq
        self.pc = pc
        self.text = ""
        self.marks = []     # (cycle, marker char)
        self.first = None
        self.last = None
        self.issue = None
        self.complete = None

    def note(self, cycle, mark):
        self.marks.append((cycle, mark))
        self.first = cycle if self.first is None else min(self.first,
                                                          cycle)
        self.last = cycle if self.last is None else max(self.last, cycle)


def _collect_rows(events):
    rows = {}
    hol_cycles = []
    for cycle, category, name, seq, pc, addr, info in events:
        if category == "sq" and name == "hol_stall":
            hol_cycles.append(cycle)
        if seq < 0:
            continue
        if category == "inst":
            mark = _INST_MARKS.get(name)
        elif category == "sq":
            mark = _SQ_MARKS.get(name)
        else:
            continue
        if mark is None:
            continue
        row = rows.get(seq)
        if row is None:
            row = rows[seq] = _Row(seq, pc)
        if name == "dispatch" and info:
            row.text = info
        if name == "issue":
            row.issue = cycle
        elif name == "complete":
            row.complete = cycle
        row.note(cycle, mark)
    return rows, hol_cycles


def _paint(row, lo, scale, columns):
    """Render one instruction row into a character list."""
    cells = [" "] * columns

    def column(cycle):
        return min(columns - 1, max(0, (cycle - lo) // scale))

    def put(cycle, mark):
        slot = column(cycle)
        if _RANK.get(mark, 0) >= _RANK.get(cells[slot], -1):
            cells[slot] = mark

    first, last = row.first, row.last
    for cycle in range(max(first, lo), last + 1, scale):
        stage = "."
        if row.issue is not None and cycle < row.issue:
            stage = "="
        elif (row.issue is not None and row.complete is not None
                and row.issue <= cycle < row.complete):
            stage = "-"
        put(cycle, stage)
    for cycle, mark in row.marks:
        put(cycle, mark)
    return "".join(cells).rstrip()


def _axis(lo, hi, scale, columns, indent):
    """Two header lines: cycle numbers and a tick ruler."""
    numbers = [" "] * columns
    ticks = []
    for slot in range(columns):
        cycle = lo + slot * scale
        if slot % 10 == 0:
            ticks.append("|")
            label = str(cycle)
            for offset, char in enumerate(label):
                if slot + offset < columns:
                    numbers[slot + offset] = char
        else:
            ticks.append(".")
    return [indent + "".join(numbers).rstrip(),
            indent + "".join(ticks)]


def render_timeline(trace, start=None, end=None, width=72, max_rows=40):
    """Render a trace (buffer or payload) as an ASCII timeline.

    ``start``/``end`` bound the cycle window (defaults cover every
    event); ``width`` caps the number of timeline columns (cycles are
    grouped ``scale``-per-column as needed); ``max_rows`` caps the
    instruction rows (oldest first, truncation reported).
    """
    events = events_of(trace)
    rows, hol_cycles = _collect_rows(events)
    if not rows and not hol_cycles:
        return "(no pipeline events traced)"

    cycles = [row.first for row in rows.values()] \
        + [row.last for row in rows.values()] + hol_cycles
    lo = min(cycles) if start is None else start
    hi = max(cycles) if end is None else end
    span = max(1, hi - lo + 1)
    scale = max(1, -(-span // width))
    columns = min(width, -(-span // scale))

    visible = [row for _seq, row in sorted(rows.items())
               if row.last >= lo and row.first <= hi]
    truncated = max(0, len(visible) - max_rows)
    if truncated:
        visible = visible[:max_rows]

    label_width = 30
    indent = " " * (label_width + 1)
    lines = [f"cycles {lo}..{hi}"
             + (f"  ({scale} cycles/column)" if scale > 1 else "")]
    lines.extend(_axis(lo, hi, scale, columns, indent))
    for row in visible:
        text = row.text or "(?)"
        label = f"#{row.seq:<4d} {text}"
        if len(label) > label_width:
            label = label[:label_width - 1] + "…"
        lines.append(f"{label:<{label_width}s} "
                     + _paint(row, lo, scale, columns))
    if truncated:
        lines.append(f"... ({truncated} more instructions not shown)")

    window_hol = [cycle for cycle in hol_cycles if lo <= cycle <= hi]
    if window_hol:
        cells = [" "] * columns
        for cycle in window_hol:
            cells[min(columns - 1, (cycle - lo) // scale)] = "!"
        lines.append(f"{'SQ head-of-line stalls':<{label_width}s} "
                     + "".join(cells).rstrip()
                     + f"  ({len(window_hol)} cycles)")
    lines.append("")
    lines.append(LEGEND)
    return "\n".join(lines)
