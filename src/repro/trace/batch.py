"""Engine-level batch tracing: trial spans, worker tracks, cache hits.

A :class:`BatchTrace` is the wall-clock counterpart of the
``batch_stats`` record that :func:`repro.engine.runner.run_batch`
accepts: the caller owns it, passes it into a batch, and gets back
*scheduling-dependent* telemetry — when each trial started and
finished, which worker process ran it, and which specs were satisfied
from the result cache.  None of this may ever enter a
:class:`~repro.engine.session.RunResult` (results must stay bitwise
identical between serial and pooled runs), which is exactly why it
lives in a side record.

:meth:`BatchTrace.to_chrome_trace` renders the batch as one Perfetto
process: one track per worker pid carrying trial spans, plus a cache
track of hit instants — the fleet-scale view of engine behaviour the
ROADMAP's production goals need.
"""

import time

from repro.trace.perfetto import _metadata

#: pid of the engine process in exported Chrome traces (run traces use
#: pids >= 1; 0 keeps the engine tracks sorted first).
ENGINE_PID = 0


def _now_us():
    """Engine-clock microseconds (monotonic, comparable across the
    parent and its worker processes on the platforms we run on)."""
    return time.perf_counter_ns() // 1000


class BatchTrace:
    """Caller-owned wall-clock telemetry for one or more batches."""

    def __init__(self, label="engine batch"):
        self.label = label
        self.trials = []       # dicts: executed trials with spans
        self.cache_hits = []   # dicts: specs satisfied from the cache

    def __len__(self):
        return len(self.trials) + len(self.cache_hits)

    def record_trial(self, label, index, start_us, duration_us, pid):
        self.trials.append({
            "label": label or f"trial[{index}]", "index": index,
            "start_us": start_us, "duration_us": duration_us, "pid": pid,
        })

    def record_cache_hit(self, label, index, ts_us=None):
        self.cache_hits.append({
            "label": label or f"trial[{index}]", "index": index,
            "ts_us": ts_us if ts_us is not None else _now_us(),
        })

    # -- export --------------------------------------------------------

    def to_chrome_trace(self):
        """Chrome trace events: per-worker tracks + a cache-hit track."""
        out = [_metadata(ENGINE_PID, self.label)]
        times = ([trial["start_us"] for trial in self.trials]
                 + [hit["ts_us"] for hit in self.cache_hits])
        origin = min(times) if times else 0
        workers = sorted({trial["pid"] for trial in self.trials})
        for track, pid in enumerate(workers, start=1):
            out.append(_metadata(ENGINE_PID, f"worker {pid}", tid=track))
        track_of = {pid: track for track, pid in enumerate(workers,
                                                           start=1)}
        for trial in self.trials:
            out.append({
                "ph": "X", "pid": ENGINE_PID,
                "tid": track_of[trial["pid"]],
                "name": trial["label"], "cat": "engine",
                "ts": trial["start_us"] - origin,
                "dur": max(1, trial["duration_us"]),
                "args": {"index": trial["index"], "pid": trial["pid"]},
            })
        if self.cache_hits:
            out.append(_metadata(ENGINE_PID, "result cache", tid=99))
            for hit in self.cache_hits:
                out.append({
                    "ph": "i", "pid": ENGINE_PID, "tid": 99,
                    "name": f"cache hit: {hit['label']}",
                    "cat": "engine", "ts": hit["ts_us"] - origin,
                    "s": "t", "args": {"index": hit["index"]},
                })
        return out

    def __repr__(self):
        return (f"BatchTrace(trials={len(self.trials)}, "
                f"cache_hits={len(self.cache_hits)}, "
                f"workers={len({t['pid'] for t in self.trials})})")


def record_executed_trial(batch_trace, label, index, start_us,
                          duration_us, pid):
    """No-op-tolerant helper for the runner (``batch_trace`` may be
    None); keeps the fan-out loops free of conditionals."""
    if batch_trace is not None:
        batch_trace.record_trial(label, index, start_us, duration_us,
                                 pid)


__all__ = ["BatchTrace", "ENGINE_PID", "record_executed_trial"]
