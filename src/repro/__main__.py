"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``tables``   print Table I and Table II (default)
``urg``      run the Figures 1/7 universal-read-gadget demo
``fig6``     run the Figure 6 silent-store histogram
``audit``    show the MLD framework auditing a toy optimization
``stats``    render the stats blocks in benchmarks/results/*.json
             (or in explicitly listed result/RunResult JSON files)
``trace``    run the Figure 5 amplified probes with event tracing on,
             render ASCII pipeline timelines, and export a
             Perfetto-loadable Chrome trace (``--out PATH`` to choose
             the JSON destination)
``bench``    measure simulated-instruction throughput (KIPS) of the
             fig5/fig6/fig7 workloads under the reference and
             fast-path kernels, print the speedup table, and write
             ``BENCH_PERF.json`` (``--out PATH`` to choose the
             destination; ``--quick`` for a smaller fig6/fig7 load)
``lint``     statically check ``.s`` programs for MLD leakage:
             ``python -m repro lint prog.s [--opts a,b,...] [--json]
             [--out PATH]`` — taint from the program's ``.secret`` /
             ``.public`` directives, contracts from the named
             optimizations (default: every one with a contract);
             ``--sticky`` selects the path-blind baseline analysis;
             exits 1 if any program leaks, 2 on lint error/bad input
``precision`` classify every static LEAKS verdict over the
             progen/gated/example corpus by secret-pair differential
             trial — confirmed vs false positive, path-sensitive vs
             sticky side by side:
             ``python -m repro precision [--opt a,b] [--budget N]
             [--seed N] [--json] [--out PATH]
             [--max-false-positives N]`` — exits 1 on any soundness
             escape or when the false-positive ratchet is exceeded
``synthesize`` learn each optimization's leakage contract by
             differential secret-pair fuzzing and diff it against the
             declared LINT_CONTRACT:
             ``python -m repro synthesize [--opt NAME] [--budget N]
             [--seed N] [--no-minimize] [--json] [--out PATH]`` —
             prints the learned-vs-declared status table (or the JSON
             report CI archives); exits 1 on any learned-but-
             undeclared clause
``backends`` list the registered trial-execution backends and their
             capability flags
``serve-metrics`` expose the process telemetry registry over HTTP
             (``GET /metrics`` Prometheus text, ``GET /healthz``):
             ``python -m repro serve-metrics [--port N] [--host H]
             [--once]`` — by default runs the demo fleet so the
             endpoint has live data, then serves until interrupted;
             ``--once`` prints the exposition and exits
``report``   one-page run report merging the telemetry snapshot
             (wall-clock phase profile, cache/backends counters) with
             merged simulated ``RunResult.metrics`` and the
             ``BENCH_PERF.json`` throughput report when present:
             ``python -m repro report [--json] [--out PATH]
             [--perf PATH]``

Every command accepts a global ``--backend NAME`` flag (equivalent to
setting ``REPRO_BACKEND=NAME``) that selects the execution backend —
``serial``, ``pool``, or ``lockstep`` — for every engine batch the
command runs.  Results are bitwise identical across backends; only
scheduling and wall-clock change.
"""

import sys


def cmd_tables():
    from repro.core.classification import render_table as render_ii
    from repro.core.landscape import render_table as render_i
    print("Table I — leakage landscape\n")
    print(render_i())
    print("\n")
    print(render_ii())


def cmd_urg():
    from repro.attacks.dmp_attack import DMPSandboxAttack
    secret = b"Pandora 2021"
    attack = DMPSandboxAttack()
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, secret)
    results = attack.leak_bytes(attack.config.kernel_secret_base,
                                len(secret))
    leaked = bytes(r.leaked_byte or 0 for r in results)
    print(f"kernel secret: {secret!r}")
    print(f"leaked via 3-level IMP + Prime+Probe: {leaked!r}")
    print(f"accuracy: {sum(r.correct for r in results)}/{len(results)}")


def cmd_fig6():
    from repro.analysis.histogram import TimingHistogram
    from repro.attacks.bsaes_attack import (
        BSAESSilentStoreAttack, BSAESVictimServer,
    )
    server = BSAESVictimServer(bytes(range(16)), b"public-header-00")
    attack = BSAESSilentStoreAttack(server, bytes(range(16, 32)))
    samples = attack.histogram_runs(runs_per_type=12)
    histogram = TimingHistogram()
    histogram.extend("correct guess", samples["correct"])
    histogram.extend("incorrect guess", samples["incorrect"])
    print(histogram.render(bin_width=16))
    print(f"\nseparation: "
          f"{histogram.separation('correct guess', 'incorrect guess')} "
          "cycles (paper: > 100)")


def cmd_audit():
    import runpy
    import os
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "leakage_audit.py")
    runpy.run_path(path, run_name="__main__")


def cmd_stats(*paths):
    """Render stats blocks from results JSON (bench or RunResult)."""
    import glob
    import json
    import os
    from repro.stats import extract_stats_blocks, render_stats
    paths = list(paths)
    if not paths:
        results_dir = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir,
            "benchmarks", "results")
        paths = sorted(glob.glob(os.path.join(results_dir, "*.json")))
    if not paths:
        print("no results JSON found; run the benches first:\n"
              "  PYTHONPATH=src python -m pytest benchmarks -q")
        return
    shown = 0
    for path in paths:
        with open(path) as handle:
            payload = json.load(handle)
        name = os.path.splitext(os.path.basename(path))[0]
        for label, block in extract_stats_blocks(payload, source=name):
            print(render_stats(block, title=label))
            print()
            shown += 1
    if not shown:
        print("no stats blocks found in: " + ", ".join(paths))


def cmd_trace(*args):
    """Trace the Figure 5 amplified probes and export the evidence.

    Runs the silent (secret == store value) and non-silent probes with
    a full :class:`~repro.engine.TraceSpec`, prints one ASCII timeline
    per run — the non-silent one shows the store-queue head-of-line
    stall burst (``!``) that *is* the amplification — and writes every
    run as a separate process of one Perfetto-loadable Chrome trace.
    """
    import os
    from repro.attacks.amplification import amplified_probe_spec
    from repro.engine import TraceSpec, execute_spec
    from repro.trace import (
        chrome_document, render_timeline, run_trace_events,
        write_chrome_trace,
    )
    out = None
    args = list(args)
    if "--out" in args:
        flag = args.index("--out")
        try:
            out = args[flag + 1]
        except IndexError:
            print("usage: python -m repro trace [--out PATH]")
            return
        del args[flag:flag + 2]
    if out is None:
        out = os.path.join(os.path.dirname(__file__), os.pardir,
                           os.pardir, "benchmarks", "results",
                           "trace_fig5.json")
    specs = [
        amplified_probe_spec(0x1111, 0x1111, label="fig5 silent probe"),
        amplified_probe_spec(0x2222, 0x1111,
                             label="fig5 non-silent probe"),
    ]
    events = []
    for pid, spec in enumerate(specs, start=1):
        result = execute_spec(spec.replace(trace=TraceSpec()))
        stalls = result.metrics.get("counters", {}).get(
            "pipeline.sq.head_of_line_stall_cycles", 0)
        print(f"=== {result.label}: {result.cycles} cycles, "
              f"{stalls} SQ head-of-line stall cycles ===")
        print(render_timeline(result.trace))
        print()
        events.extend(run_trace_events(result.trace, label=result.label,
                                       pid=pid))
    os.makedirs(os.path.dirname(os.path.abspath(out)), exist_ok=True)
    write_chrome_trace(out, events)
    print(f"wrote {len(events)} Chrome trace events to {out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")


def cmd_bench(*args):
    """KIPS throughput of the attack workloads, both kernels.

    Every workload runs under the reference loop and the fast-path
    kernel; the table shows simulated KIPS for each plus the wall-clock
    speedup, and the ``identical`` column is the bitwise-equivalence
    check (per-run cycle counts, stats and attack outcomes must match
    across kernels — a speedup bought with drift is a bug, and the
    differential suite would also fail).
    """
    from repro.analysis.throughput import (
        REPORT_NAME, render_backend_table, render_table, run_suite,
        write_report,
    )
    args = list(args)
    out = REPORT_NAME
    if "--out" in args:
        flag = args.index("--out")
        try:
            out = args[flag + 1]
        except IndexError:
            print("usage: python -m repro bench [--out PATH] [--quick]")
            return
        del args[flag:flag + 2]
    quick = "--quick" in args
    report = run_suite(runs_per_type=4 if quick else 12,
                       secret=b"Pan!" if quick else b"Pandora!",
                       best_of=1 if quick else 5)
    print(render_table(report))
    print("\nexecution backends (lint-soundness secret-pair workload):")
    print(render_backend_table(report))
    path = write_report(report, path=out)
    print(f"\nwrote {path}")
    drifted = [name for name, entry in report["workloads"].items()
               if not entry["identical"]]
    if drifted:
        print(f"ERROR: kernels diverged on: {', '.join(drifted)}")
        raise SystemExit(1)
    if not report.get("backends", {}).get("identical", True):
        print("ERROR: execution backends produced divergent results")
        raise SystemExit(1)


def cmd_backends():
    """List the registered execution backends and their capabilities."""
    from repro.engine import REPRO_BACKEND_ENV, backend_from_name, \
        backend_names
    print(f"{'backend':10s} {'parallel':>8s} {'in-process':>10s} "
          f"{'shared-decode':>13s}")
    for name in backend_names():
        backend = backend_from_name(name)
        print(f"{name:10s} {str(backend.parallel):>8s} "
              f"{str(backend.in_process):>10s} "
              f"{str(backend.shares_decode_state):>13s}")
    print(f"\nselect with --backend NAME or {REPRO_BACKEND_ENV}=NAME "
          "(or per-call: run_batch(..., backend=NAME))")


def cmd_lint(*args):
    """Static MLD leakage check of ``.s`` programs.

    ``python -m repro lint prog.s [prog2.s ...] [--opts a,b] [--json]
    [--out PATH] [--sticky]``.  Default contracts are every registered
    optimization that exports one; ``--opts`` narrows to a
    comma-separated list of registry names.  ``--sticky`` disables the
    post-dominator implicit-flow scoping (the path-blind baseline the
    precision harness measures against).  ``--json`` prints (or with
    ``--out`` writes) the machine-readable report the CI job archives.
    Exit codes: 0 clean, 1 LEAKS found, 2 lint error / bad input.
    """
    import json
    from repro.isa.assembler import AssemblyError
    from repro.isa.text import assemble_file
    from repro.lint import contracted_plugin_names, lint_program, \
        rows_for_names
    usage = ("usage: python -m repro lint <prog.s> [--opts a,b] "
             "[--json] [--out PATH] [--sticky]")
    args = list(args)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    path_sensitive = "--sticky" not in args
    if not path_sensitive:
        args.remove("--sticky")
    out = None
    if "--out" in args:
        flag = args.index("--out")
        try:
            out = args[flag + 1]
        except IndexError:
            print(usage)
            return 2
        del args[flag:flag + 2]
    opts = contracted_plugin_names()
    if "--opts" in args:
        flag = args.index("--opts")
        try:
            opts = tuple(name for name in args[flag + 1].split(",")
                         if name)
        except IndexError:
            print(usage)
            return 2
        del args[flag:flag + 2]
    if not args:
        print(usage)
        return 2
    try:
        contracts = rows_for_names(opts)
    except Exception as error:
        print(f"lint: bad --opts: {error}")
        return 2
    reports = []
    for path in args:
        try:
            program = assemble_file(path)
        except (OSError, AssemblyError) as error:
            print(f"lint: {error}")
            return 2
        reports.append(lint_program(program, contracts=contracts,
                                    program_name=path,
                                    path_sensitive=path_sensitive))
    payload = {"reports": [report.to_json_dict() for report in reports],
               "ok": all(report.ok for report in reports)}
    if as_json or out:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if out:
            with open(out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote lint report to {out}")
        else:
            print(text)
    if not as_json:
        for report in reports:
            print(report.render())
            print()
    return 0 if payload["ok"] else 1


def cmd_synthesize(*args):
    """Learned-vs-declared contract diff over the plug-in catalog.

    ``python -m repro synthesize [--opt NAME[,NAME...]] [--budget N]
    [--seed N] [--no-minimize] [--json] [--out PATH]``.  Default scope
    is every registered optimization with a contract.  ``--json``
    prints (or with ``--out`` writes) the machine-readable contract-
    diff report the CI job archives.  Returns 1 if synthesis learned
    any clause the declared contract misses.
    """
    import json
    from repro.engine import ResultCache
    from repro.lint import contracted_plugin_names, render_report, \
        report_json, synthesize_all
    usage = ("usage: python -m repro synthesize [--opt a,b] "
             "[--budget N] [--seed N] [--no-minimize] [--json] "
             "[--out PATH]")
    args = list(args)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    minimize = "--no-minimize" not in args
    if not minimize:
        args.remove("--no-minimize")

    def flag_value(name):
        if name not in args:
            return None
        flag = args.index(name)
        try:
            value = args[flag + 1]
        except IndexError:
            raise SystemExit(usage)
        del args[flag:flag + 2]
        return value

    out = flag_value("--out")
    opts = flag_value("--opt")
    budget = flag_value("--budget")
    seed = flag_value("--seed")
    if args:
        print(usage)
        return 1
    try:
        from repro.lint.synthesize import DEFAULT_BUDGET
        budget = DEFAULT_BUDGET if budget is None else int(budget)
        seed = 0 if seed is None else int(seed)
    except ValueError:
        print(usage)
        return 1
    names = contracted_plugin_names() if opts is None \
        else tuple(name for name in opts.split(",") if name)
    unknown = set(names) - set(contracted_plugin_names())
    if unknown:
        print(f"synthesize: no contract for {sorted(unknown)}; "
              f"known: {list(contracted_plugin_names())}")
        return 1
    results = synthesize_all(opts=names, budget=budget, seed=seed,
                             cache=ResultCache(), minimize=minimize)
    payload = report_json(results, budget=budget, seed=seed)
    if as_json or out:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if out:
            with open(out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote contract-diff report to {out}")
        else:
            print(text)
    if not as_json:
        print(render_report(results))
    return 0 if payload["ok"] else 1


def cmd_precision(*args):
    """Classify static LEAKS verdicts as confirmed or false positive.

    ``python -m repro precision [--opt a,b] [--budget N] [--seed N]
    [--json] [--out PATH] [--max-false-positives N]``.  Lints the
    progen/gated/example corpus with both the path-sensitive analysis
    and the sticky baseline, runs secret-pair differential trials for
    every flag, and prints the per-plugin false-positive table (or the
    JSON report CI archives).  Exit codes: 0 ok, 1 if any confirmed
    divergence went unflagged (soundness escape) or the path-sensitive
    false-positive count exceeds ``--max-false-positives`` (the CI
    ratchet), 2 on bad usage.
    """
    import json
    from repro.engine import ResultCache
    from repro.lint import contracted_plugin_names
    from repro.lint.precision import DEFAULT_BUDGET, check_precision
    usage = ("usage: python -m repro precision [--opt a,b] "
             "[--budget N] [--seed N] [--json] [--out PATH] "
             "[--max-false-positives N]")
    args = list(args)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")

    def flag_value(name):
        if name not in args:
            return None
        flag = args.index(name)
        try:
            value = args[flag + 1]
        except IndexError:
            raise SystemExit(usage)
        del args[flag:flag + 2]
        return value

    out = flag_value("--out")
    opts = flag_value("--opt")
    budget = flag_value("--budget")
    seed = flag_value("--seed")
    max_fp = flag_value("--max-false-positives")
    if args:
        print(usage)
        return 2
    try:
        budget = DEFAULT_BUDGET if budget is None else int(budget)
        seed = 0 if seed is None else int(seed)
        max_fp = None if max_fp is None else int(max_fp)
    except ValueError:
        print(usage)
        return 2
    names = None if opts is None \
        else tuple(name for name in opts.split(",") if name)
    if names is not None:
        unknown = set(names) - set(contracted_plugin_names())
        if unknown:
            print(f"precision: no contract for {sorted(unknown)}; "
                  f"known: {list(contracted_plugin_names())}")
            return 2
    report = check_precision(budget=budget, seed=seed, opts=names,
                             cache=ResultCache())
    if as_json or out:
        text = json.dumps(report.to_json_dict(), indent=2,
                          sort_keys=True)
        if out:
            with open(out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote precision report to {out}")
        else:
            print(text)
    if not as_json:
        print(report.render())
    if not report.ok:
        print(f"ERROR: {report.missed} confirmed divergence(s) "
              "not statically flagged")
        return 1
    if max_fp is not None and report.false_positives > max_fp:
        print(f"ERROR: {report.false_positives} false positives "
              f"exceed the pinned ratchet of {max_fp}")
        return 1
    return 0


def cmd_serve_metrics(*args):
    """Serve the process telemetry registry over HTTP.

    ``python -m repro serve-metrics [--port N] [--host H] [--once]``.
    Runs the demo fleet first so ``/metrics`` has genuine engine
    traffic to show, then serves until interrupted.  ``--once`` skips
    the server entirely and prints the Prometheus exposition of the
    demo-fleet registry to stdout (the scriptable form).
    """
    from repro import telemetry
    from repro.telemetry.report import run_demo_fleet
    from repro.telemetry.server import DEFAULT_PORT, \
        start_metrics_server
    usage = ("usage: python -m repro serve-metrics [--port N] "
             "[--host H] [--once]")
    args = list(args)
    once = "--once" in args
    if once:
        args.remove("--once")

    def flag_value(name):
        if name not in args:
            return None
        flag = args.index(name)
        try:
            value = args[flag + 1]
        except IndexError:
            raise SystemExit(usage)
        del args[flag:flag + 2]
        return value

    host = flag_value("--host") or "127.0.0.1"
    port = flag_value("--port")
    if args:
        print(usage)
        return 1
    try:
        port = DEFAULT_PORT if port is None else int(port)
    except ValueError:
        print(usage)
        return 1
    if not telemetry.enabled():
        print("note: telemetry is disabled (REPRO_TELEMETRY=0); "
              "/metrics will be empty")
    else:
        run_demo_fleet()
    if once:
        print(telemetry.render_prometheus(telemetry.REGISTRY), end="")
        return 0
    server = start_metrics_server(host=host, port=port)
    print(f"serving telemetry on {server.url}/metrics "
          f"(and {server.url}/healthz); Ctrl-C to stop")
    try:
        server._thread.join()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def cmd_report(*args):
    """One-page run report across all three observability layers.

    ``python -m repro report [--json] [--out PATH] [--perf PATH]``.
    Runs the demo fleet to populate the telemetry registry, merges its
    snapshot with the simulated ``RunResult.metrics`` it produced, and
    folds in ``BENCH_PERF.json`` (``--perf`` to point elsewhere) when
    present.  ``--json`` prints (or with ``--out`` writes) the
    machine-readable payload the CI job archives.
    """
    import json
    from repro.analysis.throughput import REPORT_NAME
    from repro.telemetry.report import (
        build_report, load_perf, render_report, run_demo_fleet,
    )
    usage = ("usage: python -m repro report [--json] [--out PATH] "
             "[--perf PATH]")
    args = list(args)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")

    def flag_value(name):
        if name not in args:
            return None
        flag = args.index(name)
        try:
            value = args[flag + 1]
        except IndexError:
            raise SystemExit(usage)
        del args[flag:flag + 2]
        return value

    out = flag_value("--out")
    perf_path = flag_value("--perf") or REPORT_NAME
    if args:
        print(usage)
        return 1
    snapshot, simulated = run_demo_fleet()
    report = build_report(snapshot=snapshot, simulated=simulated,
                          perf=load_perf(perf_path))
    if as_json or out:
        text = json.dumps(report, indent=2, sort_keys=True)
        if out:
            with open(out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote run report to {out}")
        else:
            print(text)
    if not as_json:
        print(render_report(report))
    return 0


COMMANDS = {"tables": cmd_tables, "urg": cmd_urg, "fig6": cmd_fig6,
            "audit": cmd_audit, "stats": cmd_stats, "trace": cmd_trace,
            "bench": cmd_bench, "lint": cmd_lint,
            "synthesize": cmd_synthesize, "precision": cmd_precision,
            "backends": cmd_backends,
            "serve-metrics": cmd_serve_metrics, "report": cmd_report}


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--backend" in argv:
        # Global flag: route every engine batch this command runs
        # through the named execution backend (same effect as setting
        # REPRO_BACKEND in the environment).
        import os
        from repro.engine import REPRO_BACKEND_ENV, backend_names
        flag = argv.index("--backend")
        try:
            name = argv[flag + 1]
        except IndexError:
            print("usage: python -m repro [command] --backend "
                  + "|".join(backend_names()))
            return 1
        if name not in backend_names():
            print(f"unknown backend {name!r}; known: {backend_names()}")
            return 1
        del argv[flag:flag + 2]
        os.environ[REPRO_BACKEND_ENV] = name
    command = argv[0] if argv else "tables"
    if command not in COMMANDS:
        print(__doc__)
        return 1
    rc = COMMANDS[command](*argv[1:])
    return int(rc or 0)


if __name__ == "__main__":
    raise SystemExit(main())
