"""Empirical information-theoretic leakage measurement (Section IV-A3).

MLDs give an *upper bound* on channel capacity (``log2 |S|``); this
module estimates how much of that bound an actual timing channel
achieves, from (secret, measured cycles) samples — mutual information
between the secret and the observation, with observations optionally
discretized into bins to tolerate jitter.
"""

import math
from collections import Counter


def _entropy(counts, total):
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def mutual_information(pairs, bin_width=1):
    """I(secret; observation) in bits, from (secret, cycles) samples.

    ``bin_width`` coarsens the timing observations (a real receiver's
    timer granularity / noise floor).  The plug-in estimator is exact
    when samples cover the joint distribution; benches use it on
    exhaustive secret sweeps.
    """
    if not pairs:
        return 0.0
    binned = [(secret, cycles // bin_width) for secret, cycles in pairs]
    total = len(binned)
    joint = Counter(binned)
    secrets = Counter(secret for secret, _obs in binned)
    observations = Counter(obs for _secret, obs in binned)
    return (_entropy(secrets, total) + _entropy(observations, total)
            - _entropy(joint, total))


def leakage_per_observation(measure, secrets, samples_per_secret=1,
                            bin_width=1):
    """Drive ``measure(secret) -> cycles`` and estimate the leak.

    Returns ``(bits, pairs)``: mutual information plus the raw samples
    for rendering.
    """
    pairs = []
    for secret in secrets:
        for _repeat in range(samples_per_secret):
            pairs.append((secret, measure(secret)))
    return mutual_information(pairs, bin_width=bin_width), pairs


def capacity_achieved(bits, mld_outcomes):
    """Fraction of the MLD capacity bound a channel achieves."""
    bound = math.log2(mld_outcomes) if mld_outcomes > 1 else 0.0
    if bound == 0.0:
        return 0.0
    return bits / bound
