"""Measurement analysis: histograms, distinguishability, replay drivers."""

from repro.analysis.experiments import (
    ReplaySeries, distinguishability, run_replay,
)
from repro.analysis.histogram import TimingHistogram, apply_receiver_noise
from repro.analysis.information import (
    capacity_achieved, leakage_per_observation, mutual_information,
)

__all__ = [
    "ReplaySeries", "distinguishability", "run_replay",
    "TimingHistogram", "apply_receiver_noise", "capacity_achieved",
    "leakage_per_observation", "mutual_information",
]
