"""Timing histograms and distinguishability metrics.

Used by the Figure 6 reproduction and by every timing attack's
verification: the attacker's question is always "are these two
distributions separable?", and these helpers answer it the way a real
receiver would (threshold between clusters), plus render the paper-style
ASCII histogram.
"""

import math
from collections import Counter


class TimingHistogram:
    """Labeled cycle samples (e.g. "correct" vs "incorrect" guesses)."""

    def __init__(self):
        self._samples = {}

    def add(self, label, cycles):
        self._samples.setdefault(label, []).append(cycles)

    def extend(self, label, cycles_iterable):
        self._samples.setdefault(label, []).extend(cycles_iterable)

    def labels(self):
        return list(self._samples)

    def samples(self, label):
        return list(self._samples[label])

    def summary(self, label):
        data = self._samples[label]
        mean = sum(data) / len(data)
        variance = sum((x - mean) ** 2 for x in data) / len(data)
        return {
            "count": len(data),
            "min": min(data),
            "max": max(data),
            "mean": mean,
            "std": math.sqrt(variance),
        }

    def separation(self, fast_label, slow_label):
        """Gap between the fast cluster's max and the slow cluster's min.

        Positive = perfectly separable (the paper's Figure 6 shows a
        > 100-cycle gap)."""
        return (min(self._samples[slow_label])
                - max(self._samples[fast_label]))

    def threshold(self, fast_label, slow_label):
        """Receiver decision threshold (midpoint of the gap)."""
        return (max(self._samples[fast_label])
                + min(self._samples[slow_label])) // 2

    def overlap_count(self, fast_label, slow_label):
        """Samples that a midpoint threshold would misclassify."""
        cut = self.threshold(fast_label, slow_label)
        wrong = sum(1 for x in self._samples[fast_label] if x >= cut)
        wrong += sum(1 for x in self._samples[slow_label] if x < cut)
        return wrong

    def render(self, bin_width=16, width=50):
        """ASCII rendering in the style of Figure 6."""
        all_samples = [x for data in self._samples.values() for x in data]
        if not all_samples:
            return "(empty histogram)"
        lo = min(all_samples) // bin_width * bin_width
        hi = max(all_samples) // bin_width * bin_width + bin_width
        lines = []
        for label in self._samples:
            lines.append(f"[{label}]")
            counts = Counter((x - lo) // bin_width
                             for x in self._samples[label])
            peak = max(counts.values())
            for bin_index in range((hi - lo) // bin_width):
                count = counts.get(bin_index, 0)
                if count == 0:
                    continue
                bar = "#" * max(1, round(width * count / peak))
                lines.append(
                    f"  {lo + bin_index * bin_width:6d}  {bar} ({count})")
        return "\n".join(lines)


def apply_receiver_noise(samples, sigma, seed=0):
    """Additive measurement noise (system activity, timer quantization).

    The simulator is deterministic; real receivers are not.  Benches use
    this to show the channel survives realistic measurement noise.
    """
    import random
    rng = random.Random(seed)
    return [max(0, int(x + rng.gauss(0, sigma))) for x in samples]
