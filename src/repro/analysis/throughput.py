"""Simulated-instruction throughput (KIPS) of the attack workloads.

One measurement harness shared by ``benchmarks/bench_core_throughput.py``
and the ``python -m repro bench`` CLI: run the paper's three end-to-end
workloads — the Figure 5 amplification probes, the Figure 6 BSAES
timing-histogram attack, and the Figure 7 eBPF universal-read-gadget —
under both simulation kernels (the reference
:class:`~repro.pipeline.cpu.CPU` loop and the
:class:`~repro.pipeline.fastpath.FastPathCPU` kernel), and report

* **KIPS** — thousands of simulated (retired) instructions per
  wall-clock second, the simulator-throughput figure of merit;
* **speedup** — reference wall time over fast-path wall time;
* **identical** — whether the two kernels produced bitwise-identical
  per-run cycle counts and attack outcomes (they must: the fast path's
  contract is exactness, and a speedup bought with drift is a bug).

:func:`run_suite` packages all of that into the ``BENCH_PERF.json``
report written at the repository root by :func:`write_report`.
Wall-clock numbers are machine-dependent and deliberately live only in
this report — never in a :class:`~repro.engine.session.RunResult`.
"""

import contextlib
import gc
import json
import time

from repro import telemetry

__all__ = [
    "BACKENDS", "WORKLOADS", "measure_backends", "measure_workload",
    "run_suite", "write_report", "render_backend_table", "render_table",
    "REPORT_NAME",
]

WORKLOADS = ("fig5", "fig6", "fig7")

#: Execution backends the per-backend KIPS comparison covers.
BACKENDS = ("serial", "pool", "lockstep")

REPORT_NAME = "BENCH_PERF.json"

#: Victim/attacker keys for the Figure 6 workload (same values as
#: ``benchmarks/bench_fig6_bsaes_histogram.py``).
_FIG6_VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_FIG6_ATTACKER_KEY = bytes(range(16, 32))

_FIG7_SECRET = b"Pandora!"


def _now():
    return time.perf_counter()


@contextlib.contextmanager
def _measurement_conditions():
    """Stabilize wall-clock timing of short batches.

    ``gc.freeze()`` moves every object alive *before* the timed region
    into the permanent generation, so collections triggered inside it
    only scan the measurement's own garbage.  Without this, the cost of
    each GC pass scales with however much unrelated state the host
    process carries (a bare CLI vs a loaded pytest session differed by
    ~25% on the fast kernel), which is environment noise, not simulator
    speed.  Collection itself stays enabled — disabling GC outright
    defers storms into the timed region and is strictly worse.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _fig5_specs(fastpath):
    from repro.attacks.amplification import amplified_probe_spec
    secret = 0x1234
    specs = [
        amplified_probe_spec(secret, secret, gadget=True,
                             label="gadget_silent"),
        amplified_probe_spec(secret, 0x4321, gadget=True,
                             label="gadget_nonsilent"),
        amplified_probe_spec(secret, secret, gadget=False,
                             label="plain_silent"),
        amplified_probe_spec(secret, 0x4321, gadget=False,
                             label="plain_nonsilent"),
    ]
    return [spec.replace(fastpath=fastpath) for spec in specs]


def _fig6_specs(fastpath, runs_per_type):
    from repro.attacks.bsaes_attack import (
        BSAESSilentStoreAttack, BSAESVictimServer,
    )
    server = BSAESVictimServer(_FIG6_VICTIM_KEY, b"public-header-00")
    attack = BSAESSilentStoreAttack(server, _FIG6_ATTACKER_KEY)
    specs = attack.histogram_specs(runs_per_type=runs_per_type,
                                   target_slot=4)
    return [spec.replace(fastpath=fastpath) for spec in specs]


def _measure_batch(specs, repeat=1):
    """Run a spec batch serially; returns (measurement, outcome-sig).

    ``repeat`` re-executes the whole batch that many times inside one
    timed region.  The figure workloads finish in tens of milliseconds,
    where a single-iteration wall clock is mostly scheduler and
    allocator noise; repetition grows the timed region to a stable
    size.  Every iteration is deterministic, so each one's results are
    also checked against the first — a free extra equivalence trial.
    """
    from repro.engine import run_batch
    with _measurement_conditions():
        start = _now()
        batches = [run_batch(specs) for _ in range(max(1, repeat))]
        wall_s = _now() - start
    results = batches[0]
    cycles = [result.cycles for result in results]
    per_iteration = sum(result.stats["retired"] for result in results)
    instructions = per_iteration * len(batches)
    measurement = {
        "runs": len(results) * len(batches),
        "wall_s": wall_s,
        "instructions": instructions,
        "sim_cycles": sum(cycles) * len(batches),
        "kips": instructions / wall_s / 1000.0 if wall_s else 0.0,
    }
    # The outcome signature is everything simulation-derived: per-run
    # cycle counts plus the full per-run stats dicts.  Fold every
    # repeat iteration in; a nondeterministic kernel shows up here.
    signature = {"cycles": cycles,
                 "stats": [result.stats for result in results],
                 "repeats_identical": all(
                     [r.to_json() for r in batch]
                     == [r.to_json() for r in results]
                     for batch in batches[1:])}
    return measurement, signature


def _measure_fig7(fastpath, secret):
    """End-to-end URG leak with a per-run counting shim on the runtime."""
    from repro.attacks.dmp_attack import DMPSandboxAttack
    attack = DMPSandboxAttack()
    attack.runtime.place_kernel_secret(
        attack.config.kernel_secret_base, secret)
    totals = {"instructions": 0, "sim_cycles": 0, "runs": 0}
    per_run_cycles = []
    original_run = attack.runtime.run

    def counting_run(plugins=(), config=None, max_cycles=None):
        cpu = original_run(plugins=plugins, config=config,
                           max_cycles=max_cycles, fastpath=fastpath)
        totals["instructions"] += cpu.stats.retired
        totals["sim_cycles"] += cpu.stats.cycles
        totals["runs"] += 1
        per_run_cycles.append(cpu.stats.cycles)
        return cpu

    attack.runtime.run = counting_run
    with _measurement_conditions():
        start = _now()
        results = attack.leak_bytes(attack.config.kernel_secret_base,
                                    len(secret))
        wall_s = _now() - start
    leaked = [result.leaked_byte for result in results]
    measurement = {
        "runs": totals["runs"],
        "wall_s": wall_s,
        "instructions": totals["instructions"],
        "sim_cycles": totals["sim_cycles"],
        "kips": (totals["instructions"] / wall_s / 1000.0
                 if wall_s else 0.0),
    }
    signature = {"cycles": per_run_cycles, "leaked": leaked,
                 "sim_cycles": totals["sim_cycles"]}
    return measurement, signature


def _soundness_batches():
    """The lint-soundness secret-pair workload, as variant batches.

    One probe spec per attack module (mirroring the test catalog),
    each expanded to its secret-XOR variants — and kept as one batch
    per spec, because that is exactly the per-spec ``run_batch`` shape
    :func:`repro.lint.soundness.check_soundness` issues.  Many small
    batches of tiny same-program trials is the workload the lockstep
    backend exists for.
    """
    from repro.attacks.amplification import amplified_probe_spec
    from repro.attacks.bsaes_attack import (
        BSAESSilentStoreAttack, BSAESVictimServer,
    )
    from repro.attacks.compsimp_attack import ZeroSkipAttack
    from repro.attacks.packing_attack import OperandPackingAttack
    from repro.attacks.replay import SilentStoreWidthOracle
    from repro.attacks.reuse_attack import ComputationReuseAttack
    from repro.attacks.rfc_attack import RegisterFileCompressionAttack
    from repro.attacks.vp_attack import ValuePredictionAttack
    from repro.lint.soundness import secret_variants
    server = BSAESVictimServer(_FIG6_VICTIM_KEY, b"public-header-00")
    bsaes = BSAESSilentStoreAttack(server, _FIG6_ATTACKER_KEY)
    specs = [
        amplified_probe_spec(0x1234, 0x4321, gadget=True,
                             label="amp_nonsilent"),
        bsaes.measure_spec(
            [(37 * (slot + 3)) & 0xFFFF for slot in range(8)],
            target_slot=4, label="bsaes_probe"),
        ZeroSkipAttack().measure_spec(0, 1),
        OperandPackingAttack().measure_spec(5),
        SilentStoreWidthOracle(0xAABBCCDD)._measure_spec(0xDD, 0, 1),
        ComputationReuseAttack(41).measure_spec(41),
        RegisterFileCompressionAttack().measure_spec(1),
        ValuePredictionAttack(0x42).measure_spec(0x42),
    ]
    return [secret_variants(spec) for spec in specs]


def measure_backends(backends=BACKENDS, workers=4, best_of=3):
    """Per-backend KIPS on the lint-soundness secret-pair workload.

    Every backend runs the identical batches through ``run_batch``
    (name-resolved per call, so the pool pays its real per-batch spawn
    cost exactly as ``check_soundness(workers=4)`` does today) and the
    serialized results are cross-checked — the backend contract is
    bitwise equivalence, so ``identical`` must come back True.
    ``lockstep_vs_pool`` is the headline: the lockstep backend's
    wall-clock advantage over the process pool on this
    many-small-batches shape.
    """
    from repro.engine import run_batch
    batches = _soundness_batches()
    section = {
        "workload": "lint-soundness secret-pair differential "
                    "(one variant batch per attack spec)",
        "batches": len(batches),
    }
    signatures = {}
    tel = telemetry.REGISTRY
    for name in backends:
        best = None
        tel.inc("repro_bench_measurements_total", max(1, best_of),
                help="Benchmark measurements taken per workload and "
                     "kernel", workload="soundness", kernel=name)
        for _ in range(max(1, best_of)):
            with _measurement_conditions():
                start = _now()
                outcomes = [run_batch(batch, workers=workers,
                                      backend=name)
                            for batch in batches]
                wall_s = _now() - start
            results = [result for outcome in outcomes
                       for result in outcome]
            instructions = sum(result.stats["retired"]
                               for result in results)
            measurement = {
                "runs": len(results),
                "wall_s": wall_s,
                "instructions": instructions,
                "sim_cycles": sum(result.cycles for result in results),
                "kips": (instructions / wall_s / 1000.0
                         if wall_s else 0.0),
            }
            if best is None or wall_s < best["wall_s"]:
                best = measurement
            signature = [result.to_json() for result in results]
            signatures.setdefault(name, signature)
            if signature != signatures[name]:
                signatures[name] = ["<nondeterministic>"]
        section[name] = best
    first = signatures[backends[0]]
    section["identical"] = all(signatures[name] == first
                               for name in backends)
    if "pool" in section and "lockstep" in section:
        lockstep_wall = section["lockstep"]["wall_s"]
        section["lockstep_vs_pool"] = (
            section["pool"]["wall_s"] / lockstep_wall
            if lockstep_wall else 0.0)
    return section


def _fastpath_sample(spec):
    """Fast-path telemetry from one representative spec of a batch."""
    from repro.engine.session import Session
    session = Session.from_spec(spec.replace(fastpath=True))
    session.run()
    return session.cpu.fastpath.as_dict()


def measure_workload(name, fastpath, runs_per_type=12,
                     secret=_FIG7_SECRET):
    """Measure one workload under one kernel.

    Returns ``(measurement, signature)``: the wall-clock measurement
    dict and the simulation-derived outcome signature used for the
    cross-kernel equivalence check.
    """
    tel = telemetry.REGISTRY
    kernel = "fastpath" if fastpath else "reference"
    tel.inc("repro_bench_measurements_total",
            help="Benchmark measurements taken per workload and kernel",
            workload=name, kernel=kernel)
    with tel.phase("analysis.throughput", name):
        if name == "fig5":
            # 4 tiny probes: repeat heavily to reach a timeable region.
            return _measure_batch(_fig5_specs(fastpath), repeat=8)
        if name == "fig6":
            return _measure_batch(_fig6_specs(fastpath, runs_per_type),
                                  repeat=3)
        if name == "fig7":
            return _measure_fig7(fastpath, secret)
    raise ValueError(f"unknown workload {name!r}; known: {WORKLOADS}")


def run_suite(workloads=WORKLOADS, runs_per_type=12,
              secret=_FIG7_SECRET, best_of=5):
    """Measure every workload under both kernels.

    Each (workload, kernel) pair runs ``best_of`` times and keeps the
    fastest wall clock (the usual benchmarking guard against one-off
    scheduler noise and interpreter warm-up — the first repetition of a
    short batch routinely pays 30-50% in cold bytecode and allocator
    state); outcome signatures must agree across *all* runs of *both*
    kernels, so every repetition also doubles as an equivalence trial.
    """
    report = {"report": "simulated-instruction throughput",
              "unit": "KIPS = 1000 simulated retired instructions "
                      "per wall-clock second",
              "workloads": {}}
    for name in workloads:
        entry = {}
        signatures = []
        for kernel, fastpath in (("reference", False), ("fastpath", True)):
            best = None
            for _ in range(max(1, best_of)):
                measurement, signature = measure_workload(
                    name, fastpath, runs_per_type=runs_per_type,
                    secret=secret)
                signatures.append(signature)
                if best is None or measurement["wall_s"] < best["wall_s"]:
                    best = measurement
            entry[kernel] = best
        entry["speedup"] = (entry["reference"]["wall_s"]
                            / entry["fastpath"]["wall_s"]
                            if entry["fastpath"]["wall_s"] else 0.0)
        entry["identical"] = all(sig == signatures[0]
                                 for sig in signatures[1:])
        if name in ("fig5", "fig6"):
            specs = (_fig5_specs(True) if name == "fig5"
                     else _fig6_specs(True, runs_per_type))
            entry["fastpath_counters"] = _fastpath_sample(specs[0])
        report["workloads"][name] = entry
    report["backends"] = measure_backends(
        best_of=max(1, min(best_of, 3)))
    return report


def write_report(report, path=REPORT_NAME):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_table(report):
    """The CLI's KIPS table, one row per workload."""
    lines = [
        f"{'workload':10s} {'runs':>5s} {'instructions':>13s} "
        f"{'ref KIPS':>9s} {'fast KIPS':>10s} {'speedup':>8s} "
        f"{'identical':>9s}",
    ]
    for name, entry in report["workloads"].items():
        ref, fast = entry["reference"], entry["fastpath"]
        lines.append(
            f"{name:10s} {fast['runs']:5d} {fast['instructions']:13d} "
            f"{ref['kips']:9.1f} {fast['kips']:10.1f} "
            f"{entry['speedup']:7.2f}x "
            f"{str(entry['identical']):>9s}")
    return "\n".join(lines)


def render_backend_table(report):
    """Per-backend KIPS on the soundness workload, one row each."""
    section = report.get("backends")
    if not section:
        return "(no backend measurements)"
    lines = [
        f"{'backend':10s} {'runs':>5s} {'wall s':>8s} {'KIPS':>9s}",
    ]
    for name in BACKENDS:
        entry = section.get(name)
        if entry is None:
            continue
        lines.append(f"{name:10s} {entry['runs']:5d} "
                     f"{entry['wall_s']:8.3f} {entry['kips']:9.1f}")
    lines.append(
        f"lockstep vs pool: {section.get('lockstep_vs_pool', 0.0):.2f}x"
        f"   identical: {section.get('identical')}")
    return "\n".join(lines)
