"""Replay-experiment drivers (Section II-2).

Microarchitectural attacks are active: the attacker runs many
experiments, varying its preconditioning, and aggregates observations.
These helpers standardize that loop for the repo's timing attacks and
collect the statistics the benches report.

:func:`run_replay` is an engine client: a ``measure`` that returns a
:class:`repro.engine.SimSpec` (instead of a cycle count) is executed
through :func:`repro.engine.run_batch` — fanning trials across worker
processes when ``workers > 1`` and reusing cached results — while the
plain ``measure(precondition) -> cycles`` form keeps working unchanged.
"""

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ReplaySeries:
    """Measurements across preconditionings of one experiment."""

    name: str
    observations: list = field(default_factory=list)  # (precondition, cycles)

    def add(self, precondition, cycles):
        self.observations.append((precondition, cycles))

    def fastest(self):
        return min(self.observations, key=lambda item: item[1])

    def slowest(self):
        return max(self.observations, key=lambda item: item[1])

    def outliers(self):
        """Preconditionings whose timing stands apart from the mode.

        For equality-transmitter optimizations the matching
        precondition is the lone fast outlier.  When several cycle
        counts tie for the mode, the *smallest* such count is taken as
        the mode — a deterministic choice (``Counter.most_common``
        alone would break ties by insertion order).
        """
        counts = Counter(cycles for _p, cycles in self.observations)
        top = max(counts.values())
        mode_cycles = min(cycles for cycles, n in counts.items()
                          if n == top)
        return [(p, c) for p, c in self.observations if c != mode_cycles]


def run_replay(measure, preconditions, name="replay", workers=1,
               cache=None):
    """Run ``measure(precondition)`` over preconditions.

    ``measure`` may return either a cycle count (measured inline) or a
    :class:`repro.engine.SimSpec`, in which case the engine runs the
    batch — in parallel across ``workers`` processes, through the
    optional result ``cache`` — and the series records each spec's
    total cycles.
    """
    from repro.engine import SimSpec, run_batch

    series = ReplaySeries(name=name)
    preconditions = list(preconditions)
    produced = [measure(precondition) for precondition in preconditions]
    if produced and isinstance(produced[0], SimSpec):
        results = run_batch(produced, workers=workers, cache=cache)
        for precondition, result in zip(preconditions, results):
            series.add(precondition, result.cycles)
    else:
        for precondition, cycles in zip(preconditions, produced):
            series.add(precondition, cycles)
    return series


def distinguishability(fast_cycles, slow_cycles):
    """Simple separability check used across attack verifications."""
    return {
        "gap": min(slow_cycles) - max(fast_cycles),
        "separable": min(slow_cycles) > max(fast_cycles),
    }
