"""Replay-experiment drivers (Section II-2).

Microarchitectural attacks are active: the attacker runs many
experiments, varying its preconditioning, and aggregates observations.
These helpers standardize that loop for the repo's timing attacks and
collect the statistics the benches report.
"""

from dataclasses import dataclass, field


@dataclass
class ReplaySeries:
    """Measurements across preconditionings of one experiment."""

    name: str
    observations: list = field(default_factory=list)  # (precondition, cycles)

    def add(self, precondition, cycles):
        self.observations.append((precondition, cycles))

    def fastest(self):
        return min(self.observations, key=lambda item: item[1])

    def slowest(self):
        return max(self.observations, key=lambda item: item[1])

    def outliers(self):
        """Preconditionings whose timing stands apart from the mode.

        For equality-transmitter optimizations the matching
        precondition is the lone fast outlier.
        """
        from collections import Counter
        counts = Counter(cycles for _p, cycles in self.observations)
        mode_cycles, _n = counts.most_common(1)[0]
        return [(p, c) for p, c in self.observations if c != mode_cycles]


def run_replay(measure, preconditions, name="replay"):
    """Run ``measure(precondition) -> cycles`` over preconditions."""
    series = ReplaySeries(name=name)
    for precondition in preconditions:
        series.add(precondition, measure(precondition))
    return series


def distinguishability(fast_cycles, slow_cycles):
    """Simple separability check used across attack verifications."""
    return {
        "gap": min(slow_cycles) - max(fast_cycles),
        "separable": min(slow_cycles) > max(fast_cycles),
    }
