"""Data memory-dependent prefetching (Sections I, IV-D2, V-B).

A model of the *indirect-memory prefetcher* (IMP) of Yu et al.
(MICRO'15, Intel patent US9582422B2), in both its 2-level
(``Y[Z[i]]``) and 3-level (``X[Y[Z[i]]]``) forms.

How the model learns, mirroring the IMP design (Section V-B2):

1. A **stride detector** watches per-PC load addresses and flags
   streaming loads (the ``Z[i]`` accesses).
2. An **indirection solver** watches pairs of (producer value, consumer
   address) samples.  From two samples with distinct producer values it
   solves ``addr = base + (value << shift)`` for power-of-two scales —
   exactly how IMP recovers ``&Y[0]`` and the element size without any
   software cooperation.
3. Confirmed links are chained behind a streaming PC.  On each stream
   advance, the prefetcher walks the chain ``delta`` iterations ahead:
   it **reads program data memory directly** (``z = mem[z_addr]``,
   ``y = mem[baseY + (z << shift)]``) and prefetches each derived line.

The crucial security property is faithful to hardware: the prefetcher
has *no knowledge of array bounds* (Section V-B2), so attacker-planted
values past the end of ``Z`` steer its dereferences anywhere in memory,
and the final prefetch's cache fill transmits the loaded value — the
universal read gadget of Figure 1.

Prefetches go through :meth:`MemoryHierarchy.prefetch`, so the prefetch
buffer "defense" of Section V-B3 can be switched on to show it only
aggravates the attack (L2 still fills).
"""

from collections import deque
from dataclasses import dataclass, field

from repro.isa.opcodes import Op
from repro.memory.flatmem import MemoryError_
from repro.pipeline.plugins import FF_WAKEUP, OptimizationPlugin


@dataclass
class StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0
    width: int = 8


@dataclass
class IndirectionLink:
    """A solved relation: consumer_addr = base + (producer_value << shift)."""

    producer_pc: int
    consumer_pc: int
    base: int
    shift: int
    width: int  # consumer load width in bytes
    confidence: int = 1

    def target(self, value):
        return self.base + (value << self.shift)


@dataclass
class PrefetchJob:
    """One in-flight chained prefetch walk."""

    z_addr: int
    z_width: int
    links: list
    stage: int = 0
    ready_cycle: int = 0
    value: int = 0
    trace: list = field(default_factory=list)


class IndirectMemoryPrefetcher(OptimizationPlugin):
    """IMP: 2- or 3-level indirect-memory prefetcher."""

    name = "indirect-memory-prefetcher"

    #: The chained walk advances in ``end_of_cycle`` whenever the head
    #: job's stage latency has elapsed; :meth:`ff_next_cycle` bounds a
    #: skip to that point.  Learning hooks are pure (driven by retired
    #: loads), so an empty job queue imposes no constraint.
    ff_policy = FF_WAKEUP

    def ff_next_cycle(self):
        if not self._jobs:
            return None
        return max(self.cpu.cycle + 1, self._jobs[0].ready_cycle)

    #: Static leakage contract (:mod:`repro.lint.contracts`): the
    #: indirection solver dereferences values returned by loads — a
    #: secret loaded value becomes a prefetch *address*, observable
    #: through the cache (the paper's universal read gadget).
    LINT_CONTRACT = {
        "mld": "prefetch_target",
        "rows": (
            {"ops": (Op.LOAD,), "taps": ("loaded_value",),
             "detail": "loaded values are dereferenced as prefetch "
                       "pointers"},
        ),
        "defaults": {"levels": 3},
        # A two-level prefetcher still dereferences loaded values, so
        # the contract must hold under the levels ablation too.
        "domains": {"levels": (2, 3)},
    }

    def __init__(self, levels=3, delta=4, stride_threshold=2,
                 link_threshold=2, stage_latency=8, max_jobs=8,
                 history_length=6, record_trace=False):
        super().__init__()
        if levels < 2:
            raise ValueError("an indirect prefetcher needs >= 2 levels")
        self.levels = levels
        #: Prefetch distance (the paper's ``i + Δ``; IMP uses Δ=4).
        self.delta = delta
        self.stride_threshold = stride_threshold
        self.link_threshold = link_threshold
        #: Cycles each chained dereference takes.
        self.stage_latency = stage_latency
        self.max_jobs = max_jobs
        self.record_trace = record_trace

        self._strides = {}
        self._samples = {}  # (producer_pc, consumer_pc) -> (value, addr)
        self._links = {}    # (producer_pc, consumer_pc) -> IndirectionLink
        self._recent = deque(maxlen=history_length)
        self._jobs = []
        self.prefetch_log = []  # (cycle, addr) of every issued prefetch
        self.stats = {"stream_advances": 0, "links_confirmed": 0,
                      "jobs_launched": 0, "prefetches": 0,
                      "out_of_memory_aborts": 0}

    def reset(self):
        self._strides.clear()
        self._samples.clear()
        self._links.clear()
        self._recent.clear()
        self._jobs.clear()
        self.prefetch_log.clear()

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------

    def on_load_response(self, dyn, addr, value):
        pc = dyn.pc
        self._update_stride(pc, addr, dyn.inst.width)
        self._update_links(pc, addr, dyn.inst.width)
        self._recent.append((pc, addr, value, dyn.seq))
        self._maybe_launch(pc, addr)

    def _update_stride(self, pc, addr, width):
        entry = self._strides.get(pc)
        if entry is None:
            self._strides[pc] = StrideEntry(last_addr=addr, width=width)
            return
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr

    def _update_links(self, consumer_pc, consumer_addr, width):
        # A confidently-striding load is handled by the stream engine and
        # never enters the indirect table as a consumer (IMP separates
        # the stream detector from the indirect-pattern detector).
        stride = self._strides.get(consumer_pc)
        if stride is not None and stride.confidence >= self.stride_threshold:
            return
        # Out-of-order completion interleaves iterations, so several
        # producer values of the same PC can sit in the history at once.
        # A link is re-confirmed when ANY of them predicts this consumer
        # address, and degraded only when none does.
        per_key = {}
        for producer_pc, _p_addr, producer_value, _seq in self._recent:
            if producer_pc == consumer_pc:
                continue
            key = (producer_pc, consumer_pc)
            per_key.setdefault(key, []).append(producer_value)
        for key, values in per_key.items():
            link = self._links.get(key)
            if link is not None:
                if any(link.target(value) == consumer_addr
                       for value in values):
                    link.confidence += 1
                else:
                    link.confidence -= 1
                    if link.confidence <= 0:
                        del self._links[key]
                continue
            sample = self._samples.get(key)
            solved = None
            if sample is not None:
                for value in values:
                    solved = self._solve(sample[0], sample[1], value,
                                         consumer_addr)
                    if solved is not None:
                        break
            self._samples[key] = (values[-1], consumer_addr)
            if solved is None:
                continue
            base, shift = solved
            self._links[key] = IndirectionLink(
                key[0], consumer_pc, base, shift, width)
            self.stats["links_confirmed"] += 1

    @staticmethod
    def _solve(value0, addr0, value1, addr1):
        """Solve addr = base + (value << shift) from two samples."""
        dv = value1 - value0
        da = addr1 - addr0
        if dv == 0 or da == 0:
            return None
        if da % dv:
            return None
        scale = da // dv
        if scale <= 0 or scale & (scale - 1):
            return None
        shift = scale.bit_length() - 1
        base = addr1 - (value1 << shift)
        if base < 0:
            return None
        return base, shift

    # ------------------------------------------------------------------
    # prefetch launch and chained walk
    # ------------------------------------------------------------------

    def _best_link_from(self, producer_pc):
        """Highest-confidence confirmed link with the given producer.

        Confidence selection matters: accidental correlations can form
        short-lived links, but only the true indirection re-confirms on
        every iteration.
        """
        best = None
        for link in self._links.values():
            if link.producer_pc != producer_pc:
                continue
            if link.confidence < self.link_threshold:
                continue
            if best is None or link.confidence > best.confidence:
                best = link
        return best

    def _chain_for(self, stream_pc):
        """Find the confirmed link chain rooted at a streaming PC.

        An N-level prefetcher chains N-1 links (2-level: ``Y[Z[i]]``,
        3-level: ``X[Y[Z[i]]]`` as in IMP, 4-level:
        ``W[X[Y[Z[i]]]]`` as in Ainsworth & Jones's graph prefetcher).
        """
        chain = []
        producer_pc = stream_pc
        visited = {stream_pc}
        for _level in range(self.levels - 1):
            link = self._best_link_from(producer_pc)
            if link is None or link.consumer_pc in visited:
                return None
            chain.append(link)
            visited.add(link.consumer_pc)
            producer_pc = link.consumer_pc
        return chain

    def _maybe_launch(self, pc, addr):
        stride = self._strides.get(pc)
        if stride is None or stride.confidence < self.stride_threshold:
            return
        chain = self._chain_for(pc)
        if chain is None:
            return
        self.stats["stream_advances"] += 1
        if len(self._jobs) >= self.max_jobs:
            return
        job = PrefetchJob(
            z_addr=addr + self.delta * stride.stride,
            z_width=stride.width, links=chain,
            ready_cycle=self.cpu.cycle + self.stage_latency)
        self._jobs.append(job)
        self.stats["jobs_launched"] += 1
        self.metrics.inc("opt.imp.jobs_launched")

    def end_of_cycle(self, free_load_ports):
        if not self._jobs:
            return 0
        job = self._jobs[0]
        if self.cpu.cycle < job.ready_cycle:
            return 0
        self._step_job(job)
        if job.stage > len(job.links):
            self._jobs.pop(0)
        return 0

    def _step_job(self, job):
        memory = self.cpu.memory
        try:
            if job.stage == 0:
                # Dereference Z[i + Δ] — no bounds check, by design.
                self._prefetch(job, job.z_addr)
                job.value = memory.read(job.z_addr, job.z_width)
            else:
                link = job.links[job.stage - 1]
                addr = link.target(job.value)
                self._prefetch(job, addr)
                if job.stage < len(job.links):
                    job.value = memory.read(addr, link.width)
        except MemoryError_:
            # Off the end of physical memory: hardware would squash the
            # prefetch; the job dies.
            self.stats["out_of_memory_aborts"] += 1
            job.stage = len(job.links) + 1
            return
        job.stage += 1
        job.ready_cycle = self.cpu.cycle + self.stage_latency

    def _prefetch(self, job, addr):
        self.cpu.hierarchy.prefetch(addr)
        self.stats["prefetches"] += 1
        self.metrics.inc("opt.imp.prefetches")
        self.prefetch_log.append((self.cpu.cycle, addr))
        if self.trace.enabled:
            self.trace.emit("opt", self.name, addr=addr,
                            info=f"prefetch_stage{job.stage}")
        if self.record_trace:
            job.trace.append(addr)

    def drain(self):
        """Run all queued prefetch jobs to completion.

        A hardware prefetcher keeps walking its chains after the
        triggering program finishes; the simulator stops stepping at
        HALT, so attack drivers and tests call this to flush the queue.
        """
        while self._jobs:
            job = self._jobs[0]
            self._step_job(job)
            if job.stage > len(job.links):
                self._jobs.pop(0)

    # ------------------------------------------------------------------
    # inspection (used by tests and the URG analysis)
    # ------------------------------------------------------------------

    @property
    def links(self):
        return list(self._links.values())

    def streaming_pcs(self):
        return [pc for pc, entry in self._strides.items()
                if entry.confidence >= self.stride_threshold]
