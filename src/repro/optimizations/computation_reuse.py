"""Computation reuse (Section IV-C2 of the paper).

Hardware memoization à la *dynamic instruction reuse* (Sodani & Sohi,
ISCA'97).  Two table-keying variants are implemented because the paper's
defense discussion (Section VI-A3) contrasts them:

* **Sv** — keyed by operand *values* ``(pc, v1, v2)``.  Highest reuse,
  but the hit/miss outcome is a function of operand values, which is
  exactly the equality transmitter of Figure 3, Example 6.
* **Sn** — keyed by operand register *names* and their architectural
  versions.  A hit only reveals that the same static instruction
  re-executed with un-overwritten source registers — control-flow-class
  information that constant-time programming already treats as public.

A hit returns the result in one cycle and skips the functional unit
(freeing a multiply/divide unit), which is the timing channel.
"""

from collections import OrderedDict

from repro.isa.opcodes import Op
from repro.pipeline.plugins import FF_PURE, OptimizationPlugin

DEFAULT_REUSABLE_OPS = frozenset({Op.MUL, Op.DIV, Op.REM})


class ComputationReusePlugin(OptimizationPlugin):
    """Memoization table with LRU replacement and Sv/Sn keying."""

    name = "computation-reuse"

    #: Table lookups/updates happen only at dispatch/issue/writeback;
    #: nothing fires on a quiet cycle, so skipping is exact.
    ff_policy = FF_PURE

    VARIANTS = ("sv", "sn")

    #: Static leakage contract (:mod:`repro.lint.contracts`): only the
    #: value-keyed ``sv`` variant leaks — its table hits iff the
    #: operand tuple repeats.  The name-keyed ``sn`` variant keys on
    #: (pc, producer names) and is value-independent, so it selects no
    #: rows and every instruction is statically SAFE under it.
    LINT_CONTRACT = {
        "mld": "reuse_hit",
        "rows": (
            {"ops": "kwarg:ops", "taps": ("rs1", "rs2"),
             "when": {"variant": "sv"},
             "detail": "reuse table hits iff the operand value tuple "
                       "was seen before"},
        ),
        "defaults": {"variant": "sv", "ops": DEFAULT_REUSABLE_OPS},
        # Ablation axes for when-clause synthesis: the sn variant keys
        # the table on value *versions*, so operand-value leaks must
        # die under it — that is what makes the sv condition minimal.
        "domains": {"variant": ("sv", "sn")},
    }

    def __init__(self, variant="sv", ops=DEFAULT_REUSABLE_OPS,
                 table_size=256):
        super().__init__()
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        self.variant = variant
        self.ops = frozenset(ops)
        self.table_size = table_size
        self._table = OrderedDict()
        self.stats = {"lookups": 0, "hits": 0, "insertions": 0}

    def reset(self):
        self._table.clear()

    def _key(self, dyn):
        inst = dyn.inst
        if self.variant == "sv":
            return (dyn.pc, dyn.src_values[0], dyn.src_values[1], inst.imm)
        versions = dyn.exec_info or {}
        return (dyn.pc, inst.rs1, inst.rs2,
                versions.get("reuse_ver", (None, None)))

    def on_dispatch(self, dyn):
        if self.variant == "sn" and dyn.inst.op in self.ops:
            if dyn.exec_info is None:
                dyn.exec_info = {}
            dyn.exec_info["reuse_ver"] = (
                self.cpu.arch_version[dyn.inst.rs1],
                self.cpu.arch_version[dyn.inst.rs2])

    def lookup_reuse(self, dyn):
        if dyn.inst.op not in self.ops:
            return False
        self.stats["lookups"] += 1
        key = self._key(dyn)
        if key in self._table:
            self._table.move_to_end(key)
            self.stats["hits"] += 1
            if self.trace.enabled:
                self.trace.emit("opt", self.name, seq=dyn.seq, pc=dyn.pc,
                                info=f"reuse_hit_{self.variant}")
            return True
        return False

    def on_result(self, dyn, value):
        if dyn.inst.op not in self.ops or dyn.squashed:
            return
        key = self._key(dyn)
        if key not in self._table:
            self.stats["insertions"] += 1
        self._table[key] = value
        self._table.move_to_end(key)
        while len(self._table) > self.table_size:
            self._table.popitem(last=False)

    @property
    def hit_rate(self):
        if not self.stats["lookups"]:
            return 0.0
        return self.stats["hits"] / self.stats["lookups"]
