"""Value prediction (Section IV-C3 of the paper).

A confidence-thresholded last-value predictor in the style of Lipasti et
al. (MICRO'96) / the CVP championship baselines.  Predictions break load
dependences at dispatch; verification happens at writeback, and a wrong
prediction squashes everything younger than the predicted instruction —
the squash penalty is the receiver-visible outcome, symmetric with
branch-predictor attacks (Section IV-C4).

The MLD (Figure 3, Example 7) says the observable outcome concatenates
the entry's confidence with whether the prediction matched the resolved
value: both are modeled here (no prediction below threshold, squash on
mismatch above it).
"""

from repro.isa.opcodes import Op
from repro.pipeline.plugins import FF_PURE, OptimizationPlugin


class ValuePredictionPlugin(OptimizationPlugin):
    """PC-indexed value predictor with saturating confidence.

    Two prediction heuristics from the literature the paper surveys:

    * ``"last_value"`` — predict the previous resolved value (Lipasti
      et al.);
    * ``"stride"`` — predict previous value + learned stride, covering
      pointer-bump and counter loads a last-value predictor misses.

    Table entries are ``[value, confidence, stride]``.
    """

    name = "value-prediction"

    #: Predicts at dispatch, verifies at writeback — pure.
    ff_policy = FF_PURE

    PREDICTORS = ("last_value", "stride")

    #: Static leakage contract (:mod:`repro.lint.contracts`): correct
    #: vs squashed prediction is decided by comparing the predicted
    #: value against the real one, so the produced (loaded) value feeds
    #: the MLD regardless of predictor heuristic.  Predicted ops follow
    #: the ``ops`` constructor kwarg.
    LINT_CONTRACT = {
        "mld": "value_misprediction",
        "rows": (
            {"ops": "kwarg:ops", "taps": ("loaded_value",),
             "detail": "predict-then-verify squashes iff the produced "
                       "value differs from the prediction"},
        ),
        "defaults": {"ops": (Op.LOAD,)},
        # Dropping LOAD from the predicted op set must kill the leak:
        # the row is structurally conditional on the ops kwarg.
        "domains": {"ops": (Op.LOAD,)},
    }

    def __init__(self, ops=(Op.LOAD,), threshold=2, max_confidence=7,
                 table_size=1024, predictor="last_value"):
        super().__init__()
        if predictor not in self.PREDICTORS:
            raise ValueError(f"predictor must be one of "
                             f"{self.PREDICTORS}")
        self.ops = frozenset(ops)
        self.threshold = threshold
        self.max_confidence = max_confidence
        self.table_size = table_size
        self.predictor = predictor
        self._table = {}  # pc -> [value, confidence, stride]
        self.stats = {"predictions": 0, "correct": 0, "incorrect": 0,
                      "trainings": 0}

    def reset(self):
        self._table.clear()

    def _predicted_value(self, entry):
        if self.predictor == "stride":
            return (entry[0] + entry[2]) & ((1 << 64) - 1)
        return entry[0]

    def on_dispatch(self, dyn):
        if dyn.inst.op not in self.ops or dyn.pdst is None:
            return
        entry = self._table.get(dyn.pc)
        if entry is None or entry[1] < self.threshold:
            return
        prediction = self._predicted_value(entry)
        dyn.vp_predicted = True
        dyn.vp_value = prediction
        self.cpu.prf_value[dyn.pdst] = prediction
        self.cpu.prf_ready[dyn.pdst] = True
        self.stats["predictions"] += 1
        self.metrics.inc("opt.vp.predictions")
        if self.trace.enabled:
            self.trace.emit("opt", self.name, seq=dyn.seq, pc=dyn.pc,
                            info="predict")

    def on_result(self, dyn, value):
        if dyn.inst.op not in self.ops or dyn.squashed:
            return
        self.stats["trainings"] += 1
        entry = self._table.get(dyn.pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[dyn.pc] = [value, 0, 0]
        else:
            if self.predictor == "stride":
                stride = (value - entry[0]) & ((1 << 64) - 1)
                if stride == entry[2]:
                    entry[1] = min(self.max_confidence, entry[1] + 1)
                else:
                    entry[2] = stride
                    entry[1] = 0
                entry[0] = value
            elif entry[0] == value:
                entry[1] = min(self.max_confidence, entry[1] + 1)
            else:
                entry[0] = value
                entry[1] = 0
        if dyn.vp_predicted:
            if value == dyn.vp_value:
                self.stats["correct"] += 1
                self.metrics.inc("opt.vp.correct")
                outcome = "correct"
            else:
                # The mismatch squashes everything younger (the
                # receiver-visible penalty the VP attack times).
                self.stats["incorrect"] += 1
                self.metrics.inc("opt.vp.mispredict_squashes")
                outcome = "mispredict_squash"
            if self.trace.enabled:
                self.trace.emit("opt", self.name, seq=dyn.seq,
                                pc=dyn.pc, info=outcome)

    def prime(self, pc, value, confidence=None, stride=0):
        """Attacker preconditioning: install a prediction directly.

        Used by active attacks (Section II-2) that train the predictor
        through aliasing code before the victim runs.
        """
        if confidence is None:
            confidence = self.threshold
        self._table[pc] = [value, confidence, stride]
