"""Silent stores (Section IV-C1, V-A of the paper).

Implements the *read-port stealing* scheme of Lepak & Lipasti ("Silent
stores for free", MICRO'00), as the paper does in gem5: once a store's
address resolves, a free load port is stolen to issue an *SS-Load* that
reads the current memory contents at the store address.  If the SS-Load
returns before the store is performed and the loaded value equals the
store data, the store is marked silent and later dequeues without
touching memory.

The four possible sequences of Figure 4 map to outcomes as follows:

* Case A — SS-Load returns in time, values equal → ``SILENT``.
* Case B — SS-Load returns in time, values differ → ``NONSILENT``.
* Case C — no free load port when the address resolved → no candidacy.
* Case D — SS-Load returns after the store performed (here: the SS-Load
  missed L1 and, with the default no-allocate policy, never returns) →
  no candidacy.

A store without candidacy behaves exactly as on a machine without silent
stores (the paper notes Case C is "operationally equivalent" to the
baseline).
"""

from repro.isa.opcodes import Op
from repro.pipeline.dyninst import SilentState
from repro.pipeline.plugins import FF_WAKEUP, OptimizationPlugin


class SilentStorePlugin(OptimizationPlugin):
    """Read-port-stealing silent-store detection."""

    name = "silent-stores"

    #: Static leakage contract (:mod:`repro.lint.contracts`): the
    #: dynamic MLD elides a store iff the value being stored equals the
    #: word already in memory, so both sides of that comparison feed
    #: the observable outcome (Figure 4's silent/non-silent cases).
    LINT_CONTRACT = {
        "mld": "store_silence",
        "rows": (
            {"ops": (Op.STORE,),
             "taps": ("store_value", "old_memory_value"),
             "detail": "store is elided iff the stored value equals "
                       "the old memory value"},
        ),
        "defaults": {"ss_load_allocates": False},
        # The silence MLD does not depend on how the SS-Load fills the
        # cache; the synthesizer verifies this by re-fuzzing with the
        # flag flipped and expecting the leak to persist.
        "domains": {"ss_load_allocates": (False, True)},
    }

    #: ``end_of_cycle`` retries the port steal (and ages the Case C
    #: retry window) every cycle while candidates are pending, so
    #: fast-forward must tick through those cycles; with an empty
    #: pending list every remaining hook is event-driven.
    ff_policy = FF_WAKEUP

    def ff_next_cycle(self):
        return self.cpu.cycle + 1 if self._pending else None

    def __init__(self, ss_load_allocates=False, retry_cycles=0):
        super().__init__()
        #: When True, an SS-Load that misses L1 performs a full (filling)
        #: memory access and still returns; the default models a port
        #: steal that only reads the L1 array.
        self.ss_load_allocates = ss_load_allocates
        #: How many extra cycles to retry for a free load port before
        #: giving up on candidacy (paper's Case C is a single attempt).
        self.retry_cycles = retry_cycles
        self._pending = []
        self.stats = {
            "ss_loads_issued": 0,
            "case_a_silent": 0,
            "case_b_nonsilent": 0,
            "case_c_no_port": 0,
            "case_d_late": 0,
        }

    def reset(self):
        self._pending.clear()

    def on_store_address_resolved(self, entry):
        self._pending.append((entry, self.cpu.cycle))

    def end_of_cycle(self, free_load_ports):
        used = 0
        keep = []
        for entry, resolved_cycle in self._pending:
            if (entry.dyn.squashed or entry.performed
                    or entry.ss_load_issued):
                continue
            if used < free_load_ports:
                used += 1
                self._issue_ss_load(entry)
            elif self.cpu.cycle - resolved_cycle >= self.retry_cycles:
                entry.silent = SilentState.NO_CANDIDATE
                self.stats["case_c_no_port"] += 1
                self.metrics.inc("opt.silent_stores.no_port")
                if self.trace.enabled:
                    self.trace.emit("opt", self.name,
                                    seq=entry.dyn.seq, pc=entry.dyn.pc,
                                    addr=entry.addr if entry.addr_ready
                                    else -1,
                                    info="case_c_no_port")
            else:
                keep.append((entry, resolved_cycle))
        self._pending = keep
        return used

    def _issue_ss_load(self, entry):
        entry.ss_load_issued = True
        self.stats["ss_loads_issued"] += 1
        self.metrics.inc("opt.silent_stores.ss_loads_issued")
        if self.trace.enabled:
            self.trace.emit("sq", "ss_load_issued", seq=entry.dyn.seq,
                            pc=entry.dyn.pc, addr=entry.addr)
        hierarchy = self.cpu.hierarchy
        if hierarchy.line_in_l1(entry.addr):
            hierarchy.l1.touch(entry.addr)
            latency = hierarchy.latencies.l1_hit
        elif self.ss_load_allocates:
            latency = hierarchy.access_latency(entry.addr)
        else:
            # The port steal only reads the L1 array; a miss means the
            # SS-Load never returns (Case D by the time the store
            # performs).
            return
        self.cpu.schedule(latency, lambda e=entry: self._ss_response(e))

    def _ss_response(self, entry):
        if entry.dyn.squashed:
            return
        if entry.performed:
            return  # Case D; counted when the store performed
        entry.ss_load_value = self.cpu.memory.read(entry.addr, entry.width)
        entry.ss_load_returned = True
        if self.trace.enabled:
            self.trace.emit("sq", "ss_load_returned", seq=entry.dyn.seq,
                            pc=entry.dyn.pc, addr=entry.addr)

    def on_store_performed(self, entry):
        metrics = self.metrics
        outcome = None
        if entry.silent is SilentState.SILENT:
            self.stats["case_a_silent"] += 1
            # The paper's term for a detected-silent store: the write
            # itself is squashed (dequeues without touching memory).
            metrics.inc("opt.silent_stores.squashes")
            outcome = "case_a_silent"
        elif entry.silent is SilentState.NONSILENT:
            self.stats["case_b_nonsilent"] += 1
            metrics.inc("opt.silent_stores.nonsilent")
            outcome = "case_b_nonsilent"
        elif entry.ss_load_issued and not entry.ss_load_returned:
            self.stats["case_d_late"] += 1
            metrics.inc("opt.silent_stores.late_ss_loads")
            outcome = "case_d_late"
        if outcome is not None and self.trace.enabled:
            self.trace.emit("opt", self.name, seq=entry.dyn.seq,
                            pc=entry.dyn.pc, addr=entry.addr,
                            info=outcome)
