"""Computation simplification (Section IV-B1 of the paper).

Techniques that simplify or skip instruction execution when operand
values satisfy certain conditions — the zero-skip multiplier of the
paper's Example 2 is the canonical case, but the literature applies the
idea to everything from square roots down to bitwise AND/OR.

Each rule is named so that attacks and the MLD analysis can refer to the
exact trigger condition.  Latency shortening is the observable outcome;
results are never changed (the core always computes the real value).
"""

from repro.isa.opcodes import Op
from repro.pipeline.plugins import FF_PURE, OptimizationPlugin

#: Latency of a simplified (skipped / trivialized) operation.
TRIVIAL_LATENCY = 1


def zero_skip_mul(dyn):
    """MUL with a zero operand skips the multiplier array."""
    return dyn.inst.op is Op.MUL and (
        dyn.src_values[0] == 0 or dyn.src_values[1] == 0)


def one_skip_mul(dyn):
    """MUL by one is a register move."""
    return dyn.inst.op is Op.MUL and (
        dyn.src_values[0] == 1 or dyn.src_values[1] == 1)


def pow2_div(dyn):
    """DIV/REM by a power of two degrades to a shift/mask."""
    if dyn.inst.op not in (Op.DIV, Op.REM):
        return False
    divisor = dyn.src_values[1]
    return divisor != 0 and (divisor & (divisor - 1)) == 0


def zero_over_anything_div(dyn):
    """0 / x needs no division at all."""
    return dyn.inst.op in (Op.DIV, Op.REM) and dyn.src_values[0] == 0


def trivial_bitwise(dyn):
    """AND/OR/XOR with an absorbing or identity operand short-circuits.

    Pushed to the extreme, even the bitwise ops that constant-time code
    leans on become unsafe (papers [78, 80, 81] in the survey): AND
    with 0 or all-ones, OR with all-ones or 0, XOR with 0 — all skip
    the logic array.
    """
    op = dyn.inst.op
    all_ones = (1 << 64) - 1
    operands = dyn.src_values[:2]
    if op is Op.AND:
        return 0 in operands or all_ones in operands
    if op is Op.OR:
        return all_ones in operands or 0 in operands
    if op is Op.XOR:
        return 0 in operands
    return False


def trivial_add(dyn):
    """ADD/SUB with a zero operand bypasses the adder."""
    op = dyn.inst.op
    if op is Op.ADD:
        return 0 in dyn.src_values[:2]
    if op is Op.SUB:
        return dyn.src_values[1] == 0
    return False


#: Rule sets selectable by name when constructing the plug-in.
RULES = {
    "zero_skip_mul": zero_skip_mul,
    "one_skip_mul": one_skip_mul,
    "pow2_div": pow2_div,
    "zero_over_anything_div": zero_over_anything_div,
    "trivial_bitwise": trivial_bitwise,
    "trivial_add": trivial_add,
}

#: The conservative default: what's closest to known implementations.
DEFAULT_RULES = ("zero_skip_mul", "pow2_div")


class ComputationSimplificationPlugin(OptimizationPlugin):
    """Shortens execution latency when a named rule fires."""

    name = "computation-simplification"

    #: Only ``execute_latency`` (invoked at issue) — pure.
    ff_policy = FF_PURE

    #: Static leakage contract (:mod:`repro.lint.contracts`): each rule
    #: is a trivial-operand test, so its MLD reads exactly the operand
    #: positions the predicate inspects.  Rows are selected by the
    #: ``rules`` constructor kwarg — an unconfigured rule cannot fire
    #: dynamically and is not flagged statically.
    LINT_CONTRACT = {
        "mld": "trivial_operand",
        "rows": (
            {"ops": (Op.MUL,), "taps": ("rs1", "rs2"),
             "when": {"rules": "zero_skip_mul"},
             "detail": "multiply skips the array when either operand "
                       "is zero"},
            {"ops": (Op.MUL,), "taps": ("rs1", "rs2"),
             "when": {"rules": "one_skip_mul"},
             "detail": "multiply by one becomes a move"},
            {"ops": (Op.DIV, Op.REM), "taps": ("rs2",),
             "when": {"rules": "pow2_div"},
             "detail": "divide by a power of two degrades to a shift"},
            {"ops": (Op.DIV, Op.REM), "taps": ("rs1",),
             "when": {"rules": "zero_over_anything_div"},
             "detail": "zero dividend needs no division"},
            {"ops": (Op.AND, Op.OR, Op.XOR), "taps": ("rs1", "rs2"),
             "when": {"rules": "trivial_bitwise"},
             "detail": "absorbing/identity operand skips the logic "
                       "array"},
            {"ops": (Op.ADD, Op.SUB), "taps": ("rs1", "rs2"),
             "when": {"rules": "trivial_add"},
             "detail": "zero operand bypasses the adder"},
        ),
        "defaults": {"rules": DEFAULT_RULES},
        # Every configured rule is an ablation axis: dropping a rule
        # from the construction must kill exactly the leaks its row
        # declares, which is how the per-rule when clauses are learned.
        "domains": {"rules": ("zero_skip_mul", "one_skip_mul",
                              "pow2_div", "zero_over_anything_div",
                              "trivial_bitwise", "trivial_add")},
    }

    def __init__(self, rules=DEFAULT_RULES, trivial_latency=TRIVIAL_LATENCY):
        super().__init__()
        unknown = set(rules) - set(RULES)
        if unknown:
            raise ValueError(f"unknown simplification rules: {sorted(unknown)}")
        self.rules = tuple(rules)
        self.trivial_latency = trivial_latency
        self.stats = {rule: 0 for rule in self.rules}

    def reset(self):
        self.stats = {rule: 0 for rule in self.rules}

    def execute_latency(self, dyn, default_latency):
        for rule in self.rules:
            if RULES[rule](dyn):
                self.stats[rule] += 1
                return min(default_latency, self.trivial_latency)
        return default_latency
