"""Pipeline compression (Section IV-B2 of the paper).

Two members of the family are modeled:

* **Operand packing** (Brooks & Martonosi, HPCA'99; Figure 3, Example 4):
  two arithmetic operations share one execution-unit slot in a cycle when
  *all four* operand values are narrow (``msb < 16``).  The observable
  outcome is issue throughput — exactly the two-outcome MLD of Example 4.

* **Early-terminating (digit-serial) multiplication** (Großschädl et
  al., ICISC'09): multiply latency shrinks with the significance of an
  operand, the mechanism behind a demonstrated constant-time break.
"""

from repro.isa.bits import is_narrow, significant_bytes
from repro.isa.opcodes import Op, SIMPLE_ALU_OPS, reads_rs2
from repro.pipeline.plugins import FF_PURE, OptimizationPlugin

NARROW_BITS = 16


def operand_values(dyn):
    """The arithmetic operand values of a dynamic instruction.

    Register-immediate forms contribute their immediate as the second
    operand; LI contributes only its immediate.
    """
    op = dyn.inst.op
    if op is Op.LI:
        return (dyn.inst.imm,)
    if reads_rs2(op):
        return (dyn.src_values[0], dyn.src_values[1])
    return (dyn.src_values[0], dyn.inst.imm)


class OperandPackingPlugin(OptimizationPlugin):
    """Pack two narrow-operand ALU ops into one slot."""

    name = "operand-packing"

    #: Only ``pack_pair`` (invoked at issue) — pure.
    ff_policy = FF_PURE

    #: Static leakage contract (:mod:`repro.lint.contracts`): a pair
    #: packs iff every operand of both instructions is narrow, so the
    #: register operands' widths feed the MLD (immediates are program
    #: text, never secret).
    LINT_CONTRACT = {
        "mld": "pack_width",
        "rows": (
            {"ops": SIMPLE_ALU_OPS, "taps": ("rs1", "rs2"),
             "detail": "two ALU ops share one slot iff all their "
                       "operands are narrow"},
        ),
        "defaults": {"narrow_bits": NARROW_BITS},
        # Widening the narrowness threshold changes *which* values
        # pack, never *whether* operand values decide it.
        "domains": {"narrow_bits": (NARROW_BITS, 32)},
    }

    def __init__(self, narrow_bits=NARROW_BITS):
        super().__init__()
        self.narrow_bits = narrow_bits
        self.stats = {"pack_checks": 0, "packs": 0}

    def _narrow(self, dyn):
        return all(is_narrow(value & ((1 << 64) - 1), self.narrow_bits)
                   for value in operand_values(dyn))

    def pack_pair(self, first, second):
        if (first.inst.op not in SIMPLE_ALU_OPS
                or second.inst.op not in SIMPLE_ALU_OPS):
            return False
        self.stats["pack_checks"] += 1
        if self._narrow(first) and self._narrow(second):
            self.stats["packs"] += 1
            return True
        return False


class EarlyTerminatingMultiplierPlugin(OptimizationPlugin):
    """Digit-serial multiply: latency tracks operand significance.

    Latency is ``1 + ceil(significant_bytes(rs2) / digit_bytes)`` capped
    at the baseline multiply latency, so an all-narrow multiplier stream
    runs measurably faster — the significance-compression channel.
    """

    name = "early-terminating-multiplier"

    #: Only ``execute_latency`` (invoked at issue) — pure.
    ff_policy = FF_PURE

    #: Static leakage contract (:mod:`repro.lint.contracts`): the
    #: digit-serial array terminates after rs2's significant digits,
    #: so only the multiplier operand feeds the latency MLD.
    LINT_CONTRACT = {
        "mld": "early_termination",
        "rows": (
            {"ops": (Op.MUL,), "taps": ("rs2",),
             "detail": "multiply latency tracks the significant bytes "
                       "of rs2"},
        ),
        "defaults": {"digit_bytes": 2},
        # Coarser digits quantize the latency staircase without making
        # it value-independent.
        "domains": {"digit_bytes": (2, 4)},
    }

    def __init__(self, digit_bytes=2):
        super().__init__()
        self.digit_bytes = digit_bytes
        self.stats = {"early_terminations": 0}

    def execute_latency(self, dyn, default_latency):
        if dyn.inst.op is not Op.MUL:
            return default_latency
        digits = -(-significant_bytes(dyn.src_values[1]) // self.digit_bytes)
        latency = 1 + digits
        if latency < default_latency:
            self.stats["early_terminations"] += 1
            return latency
        return default_latency
