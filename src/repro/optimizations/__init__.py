"""The seven optimization classes studied by the paper, as core plug-ins."""

from repro.optimizations.computation_reuse import ComputationReusePlugin
from repro.optimizations.computation_simplification import (
    ComputationSimplificationPlugin,
)
from repro.optimizations.dmp import (
    IndirectionLink, IndirectMemoryPrefetcher, StrideEntry,
)
from repro.optimizations.pipeline_compression import (
    EarlyTerminatingMultiplierPlugin, OperandPackingPlugin,
)
from repro.optimizations.register_file_compression import (
    RegisterFileCompressionPlugin,
)
from repro.optimizations.silent_stores import SilentStorePlugin
from repro.optimizations.value_prediction import ValuePredictionPlugin

__all__ = [
    "ComputationReusePlugin", "ComputationSimplificationPlugin",
    "IndirectionLink", "IndirectMemoryPrefetcher", "StrideEntry",
    "EarlyTerminatingMultiplierPlugin", "OperandPackingPlugin",
    "RegisterFileCompressionPlugin", "SilentStorePlugin",
    "ValuePredictionPlugin",
]
