"""Register-file compression (Section IV-D1 of the paper).

Value locality in the physical register file is exploited to increase
the *effective* number of physical registers (Balakrishnan & Sohi,
MICRO'03 and friends).  Two matching policies from the literature:

* ``"zero-one"`` — only the common values 0/1 compress (Figure 3,
  Example 8's MLD is this variant);
* ``"any"`` — any result value that duplicates a recently produced live
  value compresses.

Modeling note (also recorded in DESIGN.md): rather than emulating the
pointer-indirection hardware that lets two logical registers share one
physical register, we model the *performance effect* — each compressible
result earns a credit, and a credit materializes an extra physical
register exactly when the rename stage would otherwise stall on an empty
free list.  The architectural results are untouched; the data-dependent
rename stall relief — the leak — is preserved, because credits are a
function of the values in the register file (``Arch register_file`` in
the MLD), which is what makes this a *memory-centric* optimization that
leaks data at rest.
"""

from collections import deque

from repro.pipeline.plugins import FF_PURE, OptimizationPlugin


class RegisterFileCompressionPlugin(OptimizationPlugin):
    """Value-duplication rename-headroom model."""

    name = "register-file-compression"

    #: Duplicate tracking rides writeback/rename events — pure.
    ff_policy = FF_PURE

    VARIANTS = ("any", "zero-one")

    #: Static leakage contract (:mod:`repro.lint.contracts`): rename
    #: headroom is granted iff the produced value duplicates one in
    #: the window (``any``) or is a compressible constant
    #: (``zero-one``) — either way the register *contents* feed the
    #: MLD, for every result-producing op.
    LINT_CONTRACT = {
        "mld": "compression_credit",
        "rows": (
            {"ops": None, "taps": ("result",),
             "detail": "physical-register credit depends on the "
                       "produced register value"},
        ),
        "defaults": {"variant": "any"},
        # Both variants grant credit on value equality — the row is
        # declared unconditional, and the zero-one ablation checks it.
        "domains": {"variant": ("any", "zero-one")},
    }

    def __init__(self, variant="any", pool_size=16, window=48):
        super().__init__()
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        self.variant = variant
        self.pool_size = pool_size
        self.window = window
        self._recent_values = deque(maxlen=window)
        self._pool = []
        self._pool_set = frozenset()
        self.credits = 0
        self.stats = {"compressible_results": 0, "pool_grants": 0,
                      "pool_reclaims": 0}

    def attach(self, cpu):
        super().attach(cpu)
        pool = cpu.allocate_plugin_pool(self.pool_size)
        self._pool = list(pool)
        self._pool_set = frozenset(pool)

    def reset(self):
        self._recent_values.clear()
        self.credits = 0

    def _compressible(self, value):
        if self.variant == "zero-one":
            return value <= 1
        return value in self._recent_values

    def on_result(self, dyn, value):
        if dyn.pdst is None:
            return
        if self._compressible(value):
            self.stats["compressible_results"] += 1
            self.credits = min(self.pool_size, self.credits + 1)
        if self.variant == "any":
            self._recent_values.append(value)

    def provide_phys_reg(self):
        if self.credits > 0 and self._pool:
            self.credits -= 1
            self.stats["pool_grants"] += 1
            return self._pool.pop()
        return None

    def reclaim_phys_reg(self, preg):
        if preg in self._pool_set:
            self._pool.append(preg)
            self.stats["pool_reclaims"] += 1
            return True
        return False
