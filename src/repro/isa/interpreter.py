"""Golden-model architectural interpreter.

Executes programs one instruction at a time with no timing model.  The
pipeline's architectural results are differentially tested against this
interpreter, which is what lets us trust that the optimizations we add
(silent stores, value prediction, computation reuse, ...) are
*performance-only* — they may change cycle counts but never results.
"""

from repro.isa.bits import mask
from repro.isa.opcodes import Op
from repro.isa.semantics import alu_result, branch_taken, effective_address
from repro.memory.flatmem import FlatMemory

NUM_ARCH_REGS = 32


class InterpreterError(Exception):
    """Raised for runaway programs or unknown opcodes."""


class ArchState:
    """Architectural registers + data memory + pc."""

    def __init__(self, memory=None):
        self.regs = [0] * NUM_ARCH_REGS
        self.memory = memory if memory is not None else FlatMemory()
        self.pc = 0
        self.halted = False
        self.retired = 0

    def read_reg(self, index):
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index, value):
        if index != 0:
            self.regs[index] = mask(value)


class Interpreter:
    """Steps an :class:`ArchState` through a program."""

    def __init__(self, program, state=None):
        self.program = program
        self.state = state if state is not None else ArchState()

    def step(self):
        """Execute one instruction; returns the instruction executed."""
        state = self.state
        if state.halted:
            return None
        if not 0 <= state.pc < len(self.program):
            raise InterpreterError(f"pc {state.pc} out of program bounds")
        inst = self.program[state.pc]
        op = inst.op
        next_pc = state.pc + 1
        if op is Op.HALT:
            state.halted = True
        elif op in (Op.NOP, Op.FENCE):
            pass
        elif op is Op.RDCYCLE:
            # The golden model has no clock; report retired-instruction
            # count so programs that subtract two readings still work.
            state.write_reg(inst.rd, state.retired)
        elif op is Op.JMP:
            next_pc = inst.target
        elif inst.is_branch:
            if branch_taken(op, state.read_reg(inst.rs1),
                            state.read_reg(inst.rs2)):
                next_pc = inst.target
        elif op is Op.LOAD:
            addr = effective_address(state.read_reg(inst.rs1), inst.imm)
            state.write_reg(inst.rd, state.memory.read(addr, inst.width))
        elif op is Op.STORE:
            addr = effective_address(state.read_reg(inst.rs1), inst.imm)
            state.memory.write(addr, state.read_reg(inst.rs2), inst.width)
        else:
            state.write_reg(inst.rd, alu_result(
                op, state.read_reg(inst.rs1), state.read_reg(inst.rs2),
                inst.imm))
        state.pc = next_pc
        state.retired += 1
        return inst

    def run(self, max_steps=1_000_000):
        """Run until HALT; returns the number of retired instructions."""
        steps = 0
        while not self.state.halted:
            if steps >= max_steps:
                raise InterpreterError(
                    f"program did not halt within {max_steps} steps")
            self.step()
            steps += 1
        return steps


def run_program(program, memory=None, regs=None, max_steps=1_000_000):
    """Convenience one-shot run; returns the final :class:`ArchState`."""
    state = ArchState(memory=memory)
    if regs:
        for index, value in regs.items():
            state.write_reg(index, value)
    Interpreter(program, state).run(max_steps=max_steps)
    return state
