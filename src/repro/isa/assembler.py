"""A tiny builder-style assembler for simulator programs.

Attack gadgets and victim kernels are constructed programmatically::

    asm = Assembler()
    asm.li("x1", 0x1000)
    asm.label("loop")
    asm.load("x2", "x1", 0)
    asm.addi("x1", "x1", 8)
    asm.bne("x2", "x0", "loop")
    asm.halt()
    program = asm.assemble()

Register operands are accepted as ``"x7"`` strings or bare ints.  ``x0``
is hard-wired to zero, as in RISC-V.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

NUM_ARCH_REGS = 32


class AssemblyError(Exception):
    """Raised for malformed programs (bad registers, unresolved labels)."""


def normalize_regions(regions, kind="region"):
    """Validate and canonicalize taint regions.

    Each region is a ``(start, end)`` byte range with an exclusive end,
    mirroring Python slices.  The canonical form — sorted, de-duplicated
    tuple of int pairs — makes region sets comparable across the
    assemble/render/decode round trips regardless of declaration order.
    """
    canonical = set()
    for region in regions:
        try:
            start, end = region
            start, end = int(start), int(end)
        except (TypeError, ValueError) as exc:
            raise AssemblyError(
                f"{kind} {region!r} is not a (start, end) pair") from exc
        if start < 0:
            raise AssemblyError(f"{kind} start {start:#x} is negative")
        if end <= start:
            raise AssemblyError(
                f"{kind} {start:#x}..{end:#x} is empty (end is exclusive)")
        canonical.add((start, end))
    return tuple(sorted(canonical))


def parse_reg(reg):
    """Accept ``'x12'`` or ``12`` and return the architectural index."""
    if isinstance(reg, str):
        if not reg.startswith("x"):
            raise AssemblyError(f"bad register name {reg!r}")
        reg = int(reg[1:])
    if not 0 <= reg < NUM_ARCH_REGS:
        raise AssemblyError(f"register index {reg} out of range")
    return reg


class Program:
    """An assembled program: a list of instructions plus its label map.

    Construction interns every instruction's operand tuple
    (:meth:`Instruction.intern_key`): labels are resolved by now, so the
    semantic key is final, and equal static instructions — across
    programs and trials — share one tuple object.

    ``secret_regions`` / ``public_regions`` carry the ``.secret`` /
    ``.public`` assembler directives: canonicalized ``(start, end)``
    byte ranges (end exclusive) naming which memory the program treats
    as secret-tainted (resp. explicitly attacker-visible).  They seed
    the :mod:`repro.lint` taint analysis and ride the wire encoding, but
    only when non-empty — directive-free programs encode byte-identically
    to pre-directive builds, so engine fingerprints are unaffected.
    """

    def __init__(self, instructions, labels, secret_regions=(),
                 public_regions=()):
        self.instructions = instructions
        self.labels = dict(labels)
        self.secret_regions = normalize_regions(secret_regions, ".secret")
        self.public_regions = normalize_regions(public_regions, ".public")
        for inst in instructions:
            inst.intern_key()

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, pc):
        return self.instructions[pc]

    def __iter__(self):
        return iter(self.instructions)

    def encode(self):
        """Stable byte encoding of the program's semantics.

        Covers every field that affects execution (opcode, registers,
        immediate, width, resolved target) but not annotations; used by
        the experiment engine to content-address simulations.  Taint
        directives append ``.secret,start,end`` / ``.public,start,end``
        records *after* the instruction stream — absent directives the
        encoding is byte-identical to historical builds.
        """
        records = []
        for inst in self.instructions:
            target = -1 if inst.target is None else int(inst.target)
            records.append(f"{inst.op.value},{inst.rd},{inst.rs1},"
                           f"{inst.rs2},{inst.imm},{inst.width},{target}")
        for start, end in self.secret_regions:
            records.append(f".secret,{start},{end}")
        for start, end in self.public_regions:
            records.append(f".public,{start},{end}")
        return "\n".join(records).encode()

    def listing(self):
        """Human-readable disassembly, one line per instruction."""
        pc_to_labels = {}
        for name, pc in self.labels.items():
            pc_to_labels.setdefault(pc, []).append(name)
        lines = []
        for start, end in self.secret_regions:
            lines.append(f".secret {start:#x}..{end:#x}")
        for start, end in self.public_regions:
            lines.append(f".public {start:#x}..{end:#x}")
        for pc, inst in enumerate(self.instructions):
            for name in pc_to_labels.get(pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {pc:4d}  {inst}")
        return "\n".join(lines)


class Assembler:
    """Builds a :class:`Program` one instruction at a time."""

    def __init__(self):
        self._instructions = []
        self._labels = {}
        self._annotation = ""
        self._secret_regions = []
        self._public_regions = []

    def __len__(self):
        return len(self._instructions)

    def annotate(self, text):
        """Attach ``text`` to the next emitted instruction (for traces)."""
        self._annotation = text
        return self

    def label(self, name):
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    # --- taint directives ---------------------------------------------------
    def secret(self, start, end=None, *, length=None):
        """``.secret`` directive: mark ``[start, end)`` as secret memory.

        With neither ``end`` nor ``length`` given, one 8-byte word at
        ``start`` is marked (the machine's natural word).
        """
        return self._region(self._secret_regions, ".secret", start, end,
                            length)

    def public(self, start, end=None, *, length=None):
        """``.public`` directive: declassify ``[start, end)``.

        Public regions override overlapping secret regions, letting a
        program carve attacker-visible windows out of a secret blob.
        """
        return self._region(self._public_regions, ".public", start, end,
                            length)

    def _region(self, bucket, kind, start, end, length):
        if end is not None and length is not None:
            raise AssemblyError(f"{kind}: give end or length, not both")
        start = int(start)
        if length is not None:
            end = start + int(length)
        elif end is None:
            end = start + 8
        bucket.append(normalize_regions([(start, end)], kind)[0])
        return self

    def _emit(self, op, rd=0, rs1=0, rs2=0, imm=0, width=8, target=None):
        inst = Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                           width=width, target=target,
                           pc=len(self._instructions),
                           annotation=self._annotation)
        self._annotation = ""
        self._instructions.append(inst)
        return self

    # --- register-register ALU -------------------------------------------
    def _rr(self, op, rd, rs1, rs2):
        return self._emit(op, rd=parse_reg(rd), rs1=parse_reg(rs1),
                          rs2=parse_reg(rs2))

    def add(self, rd, rs1, rs2):
        return self._rr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._rr(Op.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._rr(Op.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._rr(Op.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._rr(Op.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._rr(Op.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._rr(Op.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        return self._rr(Op.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._rr(Op.SLT, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        return self._rr(Op.SLTU, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._rr(Op.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._rr(Op.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._rr(Op.REM, rd, rs1, rs2)

    # --- register-immediate ALU ------------------------------------------
    def _ri(self, op, rd, rs1, imm):
        return self._emit(op, rd=parse_reg(rd), rs1=parse_reg(rs1),
                          imm=int(imm))

    def addi(self, rd, rs1, imm):
        return self._ri(Op.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        return self._ri(Op.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        return self._ri(Op.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        return self._ri(Op.XORI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        return self._ri(Op.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        return self._ri(Op.SRLI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        return self._ri(Op.SLTI, rd, rs1, imm)

    def li(self, rd, imm):
        """Load a full 64-bit immediate in a single slot."""
        return self._emit(Op.LI, rd=parse_reg(rd), imm=int(imm))

    def mv(self, rd, rs1):
        """Pseudo-instruction: copy ``rs1`` to ``rd``."""
        return self.addi(rd, rs1, 0)

    # --- memory ------------------------------------------------------------
    def load(self, rd, rs1, imm=0, width=8):
        """``rd = memory[rs1 + imm]`` (``width`` bytes, zero-extended)."""
        return self._emit(Op.LOAD, rd=parse_reg(rd), rs1=parse_reg(rs1),
                          imm=int(imm), width=width)

    def store(self, rs2, rs1, imm=0, width=8):
        """``memory[rs1 + imm] = rs2`` (``width`` bytes)."""
        return self._emit(Op.STORE, rs1=parse_reg(rs1), rs2=parse_reg(rs2),
                          imm=int(imm), width=width)

    # --- control flow -------------------------------------------------------
    def _branch(self, op, rs1, rs2, target):
        return self._emit(op, rs1=parse_reg(rs1), rs2=parse_reg(rs2),
                          target=target)

    def beq(self, rs1, rs2, target):
        return self._branch(Op.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        return self._branch(Op.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        return self._branch(Op.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        return self._branch(Op.BGE, rs1, rs2, target)

    def bltu(self, rs1, rs2, target):
        return self._branch(Op.BLTU, rs1, rs2, target)

    def bgeu(self, rs1, rs2, target):
        return self._branch(Op.BGEU, rs1, rs2, target)

    def jmp(self, target):
        return self._emit(Op.JMP, target=target)

    # --- misc ----------------------------------------------------------------
    def rdcycle(self, rd):
        """Read the cycle counter — the receiver's timer (Section II)."""
        return self._emit(Op.RDCYCLE, rd=parse_reg(rd))

    def fence(self):
        """Drain the store queue and in-flight memory before proceeding."""
        return self._emit(Op.FENCE)

    def nop(self):
        return self._emit(Op.NOP)

    def halt(self):
        return self._emit(Op.HALT)

    def assemble(self):
        """Resolve labels and return an immutable :class:`Program`."""
        for inst in self._instructions:
            if inst.target is None:
                continue
            if isinstance(inst.target, str):
                if inst.target not in self._labels:
                    raise AssemblyError(f"unresolved label {inst.target!r}")
                inst.target = self._labels[inst.target]
            if not 0 <= inst.target <= len(self._instructions):
                raise AssemblyError(
                    f"branch target {inst.target} out of range")
        return Program(list(self._instructions), self._labels,
                       secret_regions=self._secret_regions,
                       public_regions=self._public_regions)
