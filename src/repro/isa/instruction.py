"""The static instruction representation shared by all simulator layers."""

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, is_branch, is_load, is_store

#: Process-wide intern table for operand tuples.  Programs are tiny
#: (static instructions, not dynamic ones), so this is bounded by the
#: number of distinct static instructions ever assembled.
_KEY_INTERN = {}


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    Fields unused by a given opcode are left at their defaults.  ``target``
    holds a label name before assembly and the resolved instruction index
    afterwards.  ``pc`` is the instruction's index within its program;
    the machine is word-indexed at the instruction level (one pc per
    instruction) which keeps control flow simple without losing anything
    the paper's experiments need.

    ``key`` is the interned operand tuple (op, rd, rs1, rs2, imm, width,
    target) assigned when the instruction enters a
    :class:`~repro.isa.assembler.Program`.  Two instructions with equal
    semantics share one tuple object, so per-instruction structures
    keyed on semantics (the fast-path decoded-template cache) get
    identity-speed lookups.  It excludes ``pc``/``annotation`` — neither
    affects execution — and never enters equality or the wire encoding.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    width: int = 8
    target: object = None
    pc: int = -1
    annotation: str = ""
    key: object = field(default=None, compare=False, repr=False)

    @property
    def is_load(self):
        return is_load(self.op)

    @property
    def is_store(self):
        return is_store(self.op)

    @property
    def is_branch(self):
        return is_branch(self.op)

    def intern_key(self):
        """Assign (and return) the interned operand tuple for ``self``.

        Called after label resolution: ``target`` must be in its final
        form, since the tuple captures it.
        """
        key = (self.op, self.rd, self.rs1, self.rs2, self.imm,
               self.width, self.target)
        self.key = _KEY_INTERN.setdefault(key, key)
        return self.key

    def __str__(self):
        parts = [self.op.value]
        if self.rd:
            parts.append(f"x{self.rd}")
        if self.op in (Op.LOAD,):
            parts.append(f"{self.imm}(x{self.rs1})")
        elif self.op in (Op.STORE,):
            parts = [self.op.value, f"x{self.rs2}", f"{self.imm}(x{self.rs1})"]
        else:
            if self.rs1:
                parts.append(f"x{self.rs1}")
            if self.rs2:
                parts.append(f"x{self.rs2}")
            if self.imm:
                parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        text = " ".join(parts)
        if self.annotation:
            text += f"  # {self.annotation}"
        return text
