"""The static instruction representation shared by all simulator layers."""

from dataclasses import dataclass

from repro.isa.opcodes import Op, is_branch, is_load, is_store


@dataclass
class Instruction:
    """One static instruction.

    Fields unused by a given opcode are left at their defaults.  ``target``
    holds a label name before assembly and the resolved instruction index
    afterwards.  ``pc`` is the instruction's index within its program;
    the machine is word-indexed at the instruction level (one pc per
    instruction) which keeps control flow simple without losing anything
    the paper's experiments need.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    width: int = 8
    target: object = None
    pc: int = -1
    annotation: str = ""

    @property
    def is_load(self):
        return is_load(self.op)

    @property
    def is_store(self):
        return is_store(self.op)

    @property
    def is_branch(self):
        return is_branch(self.op)

    def __str__(self):
        parts = [self.op.value]
        if self.rd:
            parts.append(f"x{self.rd}")
        if self.op in (Op.LOAD,):
            parts.append(f"{self.imm}(x{self.rs1})")
        elif self.op in (Op.STORE,):
            parts = [self.op.value, f"x{self.rs2}", f"{self.imm}(x{self.rs1})"]
        else:
            if self.rs1:
                parts.append(f"x{self.rs1}")
            if self.rs2:
                parts.append(f"x{self.rs2}")
            if self.imm:
                parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        text = " ".join(parts)
        if self.annotation:
            text += f"  # {self.annotation}"
        return text
