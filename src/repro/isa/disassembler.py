"""Decoder for :meth:`Program.encode` blobs.

:meth:`repro.isa.assembler.Program.encode` is the simulator's stable
wire form — the engine content-addresses simulations by hashing it, and
serialized :class:`~repro.engine.specs.SimSpec` payloads carry programs
in the equivalent field-list form.  This module is its inverse: it
rebuilds a :class:`Program` whose re-encoding is byte-identical, which
is what the property-based round-trip tests pin down.

Label names and annotations are presentation-only and not part of the
encoding (branch targets are resolved instruction indices), so a
decoded program carries an empty label map.  ``.secret`` / ``.public``
taint directives *are* part of the encoding (trailing
``.secret,start,end`` records) and survive the round trip.
"""

from repro.isa.assembler import AssemblyError, Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


class DecodeError(Exception):
    """Raised for malformed encoded programs."""


_OPS_BY_VALUE = {op.value: op for op in Op}
_FIELDS = ("rd", "rs1", "rs2", "imm", "width", "target")


def decode_instruction(record, pc=-1):
    """Decode one ``op,rd,rs1,rs2,imm,width,target`` record."""
    parts = record.split(",")
    if len(parts) != 1 + len(_FIELDS):
        raise DecodeError(
            f"record {record!r} has {len(parts)} fields, "
            f"expected {1 + len(_FIELDS)}")
    op = _OPS_BY_VALUE.get(parts[0])
    if op is None:
        raise DecodeError(f"unknown opcode {parts[0]!r}")
    try:
        rd, rs1, rs2, imm, width, target = (int(part)
                                            for part in parts[1:])
    except ValueError as exc:
        raise DecodeError(f"non-integer field in {record!r}") from exc
    return Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                       width=width,
                       target=None if target == -1 else target, pc=pc)


def _decode_directive(record):
    """Decode a ``.secret,start,end`` / ``.public,start,end`` record."""
    parts = record.split(",")
    if parts[0] not in (".secret", ".public") or len(parts) != 3:
        raise DecodeError(f"unknown directive record {record!r}")
    try:
        start, end = int(parts[1]), int(parts[2])
    except ValueError as exc:
        raise DecodeError(f"non-integer field in {record!r}") from exc
    return parts[0], (start, end)


def decode_program(blob):
    """Rebuild a :class:`Program` from :meth:`Program.encode` output."""
    if isinstance(blob, (bytes, bytearray)):
        blob = bytes(blob).decode()
    if not blob:
        return Program([], {})
    instructions, regions = [], {".secret": [], ".public": []}
    for record in blob.split("\n"):
        if record.startswith("."):
            kind, region = _decode_directive(record)
            regions[kind].append(region)
        elif regions[".secret"] or regions[".public"]:
            raise DecodeError(
                f"instruction record {record!r} after directives")
        else:
            instructions.append(
                decode_instruction(record, pc=len(instructions)))
    try:
        return Program(instructions, {},
                       secret_regions=regions[".secret"],
                       public_regions=regions[".public"])
    except AssemblyError as exc:
        raise DecodeError(str(exc)) from exc
