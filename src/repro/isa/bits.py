"""Bit-level helpers shared by the ISA semantics and the optimizations.

All architectural values in the simulator are 64-bit words stored as
non-negative Python ints.  These helpers centralize masking, signedness
conversion and the significance measures used by pipeline-compression
style optimizations (Section IV-B2 of the paper).
"""

WORD_BITS = 64
WORD_BYTES = WORD_BITS // 8
WORD_MASK = (1 << WORD_BITS) - 1


def mask(value):
    """Truncate ``value`` to an unsigned 64-bit word."""
    return value & WORD_MASK


def to_signed(value, bits=WORD_BITS):
    """Interpret an unsigned ``bits``-wide value as two's complement."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def to_unsigned(value, bits=WORD_BITS):
    """Re-encode a possibly negative int as an unsigned ``bits``-wide value."""
    return value & ((1 << bits) - 1)


def msb_index(value):
    """Index of the most-significant ON bit of ``value`` (-1 for zero).

    This is the ``msb(.)`` convenience function used by the operand-packing
    MLD in Figure 3, Example 4 of the paper.
    """
    if value == 0:
        return -1
    return value.bit_length() - 1


def significant_bytes(value):
    """Number of bytes needed to represent ``value`` (at least 1).

    Significance compression (Canal et al., MICRO'00) treats a word as
    only as wide as its most-significant ON byte.
    """
    return max(1, (value.bit_length() + 7) // 8)


def is_narrow(value, bits=16):
    """True when ``value`` fits in ``bits`` bits.

    Operand packing (Brooks & Martonosi, HPCA'99) packs two arithmetic
    operations into one execution-unit slot when every operand is narrow.
    """
    return mask(value).bit_length() <= bits


def byte_at(value, index):
    """Return byte ``index`` (little-endian) of a 64-bit word."""
    return (mask(value) >> (8 * index)) & 0xFF
