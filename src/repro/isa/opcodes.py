"""Opcode definitions for the simulator's RISC-like ISA.

The ISA is deliberately small: enough to express the attack programs and
victims from the paper (pointer chases, crypto inner loops, covert-channel
receivers) while keeping the out-of-order pipeline model tractable.  It is
modeled after RV64I plus the M extension and a cycle counter.
"""

import enum


class Op(enum.Enum):
    """Every opcode understood by the assembler, interpreter and pipeline."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    # Multi-cycle integer units.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    # Wide immediate load (pseudo-instruction, one slot).
    LI = "li"
    # Memory.
    LOAD = "load"
    STORE = "store"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JMP = "jmp"
    # Misc.
    RDCYCLE = "rdcycle"
    FENCE = "fence"
    NOP = "nop"
    HALT = "halt"


#: Register-register ALU ops (single cycle on the baseline machine).
ALU_RR_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
    Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLTU,
})

#: Register-immediate ALU ops.
ALU_RI_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SLTI,
})

#: Simple integer ops, the "Int simple ops" row of Table I.
SIMPLE_ALU_OPS = ALU_RR_OPS | ALU_RI_OPS | {Op.LI}

#: Multi-cycle arithmetic ops.
MUL_OPS = frozenset({Op.MUL})
DIV_OPS = frozenset({Op.DIV, Op.REM})

#: Conditional branches.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU})

#: All control-flow ops.
CONTROL_OPS = BRANCH_OPS | {Op.JMP, Op.HALT}

MEMORY_OPS = frozenset({Op.LOAD, Op.STORE})


def is_alu(op):
    """True for single-cycle ALU ops (including immediates and LI)."""
    return op in SIMPLE_ALU_OPS


def is_mul(op):
    return op in MUL_OPS


def is_div(op):
    return op in DIV_OPS


def is_load(op):
    return op is Op.LOAD


def is_store(op):
    return op is Op.STORE


def is_branch(op):
    return op in BRANCH_OPS


def is_control(op):
    return op in CONTROL_OPS


def writes_register(op):
    """True when the instruction produces a destination-register value."""
    return (is_alu(op) or is_mul(op) or is_div(op) or is_load(op)
            or op is Op.RDCYCLE)


def reads_rs1(op):
    return op not in (Op.LI, Op.JMP, Op.RDCYCLE, Op.NOP, Op.HALT, Op.FENCE)


def reads_rs2(op):
    return op in ALU_RR_OPS or op in MUL_OPS or op in DIV_OPS \
        or op in BRANCH_OPS or op is Op.STORE
