"""RISC-like ISA: opcodes, assembler, decoder, golden-model interpreter."""

from repro.isa.assembler import (
    Assembler, AssemblyError, Program, normalize_regions, parse_reg,
)
from repro.isa.disassembler import (
    DecodeError, decode_instruction, decode_program,
)
from repro.isa.instruction import Instruction
from repro.isa.interpreter import ArchState, Interpreter, run_program
from repro.isa.opcodes import Op
from repro.isa.text import assemble_file, assemble_source, render_source

__all__ = [
    "Assembler", "AssemblyError", "DecodeError", "Program", "parse_reg",
    "Instruction", "ArchState", "Interpreter", "run_program", "Op",
    "decode_instruction", "decode_program", "normalize_regions",
    "assemble_file", "assemble_source", "render_source",
]
