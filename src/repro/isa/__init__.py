"""RISC-like ISA: opcodes, assembler, decoder, golden-model interpreter."""

from repro.isa.assembler import Assembler, AssemblyError, Program, parse_reg
from repro.isa.disassembler import (
    DecodeError, decode_instruction, decode_program,
)
from repro.isa.instruction import Instruction
from repro.isa.interpreter import ArchState, Interpreter, run_program
from repro.isa.opcodes import Op

__all__ = [
    "Assembler", "AssemblyError", "DecodeError", "Program", "parse_reg",
    "Instruction", "ArchState", "Interpreter", "run_program", "Op",
    "decode_instruction", "decode_program",
]
