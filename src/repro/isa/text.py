"""Text-form assembly: parse ``.s`` source into a :class:`Program`.

The builder API (:class:`~repro.isa.assembler.Assembler`) is how attack
gadgets are constructed in code; this module is the file-facing surface
behind ``python -m repro lint <program.s>``.  The grammar is one
statement per line:

* ``# ...`` — comment (trailing comments become instruction
  annotations, shown in listings and traces);
* ``name:`` — label, optionally followed by an instruction on the same
  line;
* ``.secret <addr>`` / ``.secret <start>..<end>`` /
  ``.secret <start> +<len>`` — mark memory as secret for
  :mod:`repro.lint` (one 8-byte word, an end-exclusive range, or a
  length in bytes); ``.public`` declassifies with the same forms;
* instructions — RISC-style mnemonics with comma- or space-separated
  operands: ``add x1, x2, x3``; ``addi x1, x2, -5``; ``li x1, 0x1000``;
  ``mv x2, x1``; ``load x2, 0(x1)`` and ``store x2, 0(x1)`` with an
  optional ``.N`` width suffix (``load.2 x2, 0(x1)``); branches take a
  label or an absolute instruction index (``bne x1, x0, loop``);
  ``jmp``, ``rdcycle x5``, ``fence``, ``nop``, ``halt``.

:func:`render_source` is the inverse: the rendered text reassembles to
a byte-identical :meth:`Program.encode` with the same label map and
taint regions, which the property suite pins down.
"""

import re

from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.opcodes import Op

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*):(.*)$")
_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))?\((x\d+)\)$")

#: Mnemonics that map straight onto Assembler builder methods.
_RR = ("add", "sub", "sll", "srl", "sra", "slt", "sltu", "mul", "div",
       "rem")
_RI = ("addi", "andi", "ori", "xori", "slli", "srli", "slti")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def _int(token, where):
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"{where}: bad integer {token!r}") from exc


def _split_operands(rest):
    rest = rest.strip()
    if not rest:
        return []
    return [tok for tok in re.split(r"[,\s]+", rest) if tok]


def _parse_directive(asm, mnemonic, operands, where):
    if mnemonic not in (".secret", ".public"):
        raise AssemblyError(f"{where}: unknown directive {mnemonic!r}")
    emit = asm.secret if mnemonic == ".secret" else asm.public
    if len(operands) == 1 and ".." in operands[0]:
        start_text, _, end_text = operands[0].partition("..")
        emit(_int(start_text, where), _int(end_text, where))
    elif len(operands) == 1:
        emit(_int(operands[0], where))
    elif len(operands) == 2 and operands[1].startswith("+"):
        emit(_int(operands[0], where),
             length=_int(operands[1][1:], where))
    else:
        raise AssemblyError(
            f"{where}: {mnemonic} expects <addr>, <start>..<end> or "
            f"<start> +<len>, got {' '.join(operands) or 'nothing'}")


def _parse_mem_operand(token, where):
    """Parse ``imm(xN)`` into ``(base_reg, imm)``."""
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError(
            f"{where}: expected imm(reg) memory operand, got {token!r}")
    imm_text, reg = match.groups()
    return reg, _int(imm_text, where) if imm_text else 0


def _want(operands, count, mnemonic, where):
    if len(operands) != count:
        raise AssemblyError(
            f"{where}: {mnemonic} takes {count} operand(s), "
            f"got {len(operands)}")
    return operands


def _parse_instruction(asm, mnemonic, operands, where):
    base, _, suffix = mnemonic.partition(".")
    width = 8
    if suffix:
        if base not in ("load", "store"):
            raise AssemblyError(
                f"{where}: width suffix only valid on load/store, "
                f"got {mnemonic!r}")
        width = _int(suffix, where)
        if width not in (1, 2, 4, 8):
            raise AssemblyError(f"{where}: bad access width {width}")
    if base in _RR:
        rd, rs1, rs2 = _want(operands, 3, base, where)
        getattr(asm, base)(rd, rs1, rs2)
    elif base in ("and", "or", "xor"):
        rd, rs1, rs2 = _want(operands, 3, base, where)
        # `and`/`or` shadow keywords, so the builder suffixes them.
        method = base if base == "xor" else base + "_"
        getattr(asm, method)(rd, rs1, rs2)
    elif base in _RI:
        rd, rs1, imm = _want(operands, 3, base, where)
        getattr(asm, base)(rd, rs1, _int(imm, where))
    elif base == "li":
        rd, imm = _want(operands, 2, base, where)
        asm.li(rd, _int(imm, where))
    elif base == "mv":
        rd, rs1 = _want(operands, 2, base, where)
        asm.mv(rd, rs1)
    elif base == "load":
        rd, mem = _want(operands, 2, base, where)
        reg, imm = _parse_mem_operand(mem, where)
        asm.load(rd, reg, imm, width=width)
    elif base == "store":
        rs2, mem = _want(operands, 2, base, where)
        reg, imm = _parse_mem_operand(mem, where)
        asm.store(rs2, reg, imm, width=width)
    elif base in _BRANCHES:
        rs1, rs2, target = _want(operands, 3, base, where)
        getattr(asm, base)(rs1, rs2, _target(target))
    elif base == "jmp":
        (target,) = _want(operands, 1, base, where)
        asm.jmp(_target(target))
    elif base == "rdcycle":
        (rd,) = _want(operands, 1, base, where)
        asm.rdcycle(rd)
    elif base in ("fence", "nop", "halt"):
        _want(operands, 0, base, where)
        getattr(asm, base)()
    else:
        raise AssemblyError(f"{where}: unknown mnemonic {mnemonic!r}")


def _target(token):
    """Branch targets are label names or absolute instruction indices."""
    try:
        return int(token, 0)
    except ValueError:
        return token


def assemble_source(text, name="<source>"):
    """Assemble ``.s`` source text into a :class:`Program`."""
    asm = Assembler()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        where = f"{name}:{lineno}"
        line, _, comment = raw.partition("#")
        line = line.strip()
        comment = comment.strip()
        match = _LABEL_RE.match(line)
        if match:
            asm.label(match.group(1))
            line = match.group(2).strip()
        if not line:
            continue
        head = line.split(None, 1)
        mnemonic = head[0].lower()
        rest = head[1] if len(head) > 1 else ""
        operands = _split_operands(rest)
        if comment:
            asm.annotate(comment)
        if mnemonic.startswith("."):
            _parse_directive(asm, mnemonic, operands, where)
        else:
            _parse_instruction(asm, mnemonic, operands, where)
    return asm.assemble()


def assemble_file(path):
    """Assemble a ``.s`` file from disk."""
    with open(path) as handle:
        return assemble_source(handle.read(), name=path)


def _render_instruction(inst, labels_at):
    op = inst.op
    mnemonic = op.value
    if op is Op.LOAD:
        if inst.width != 8:
            mnemonic = f"load.{inst.width}"
        return f"{mnemonic} x{inst.rd}, {inst.imm}(x{inst.rs1})"
    if op is Op.STORE:
        if inst.width != 8:
            mnemonic = f"store.{inst.width}"
        return f"{mnemonic} x{inst.rs2}, {inst.imm}(x{inst.rs1})"
    if op is Op.LI:
        return f"li x{inst.rd}, {inst.imm}"
    if op.value in _RR or op.value in ("and", "or", "xor"):
        return f"{mnemonic} x{inst.rd}, x{inst.rs1}, x{inst.rs2}"
    if op.value in _RI:
        return f"{mnemonic} x{inst.rd}, x{inst.rs1}, {inst.imm}"
    if op.value in _BRANCHES:
        target = labels_at.get(inst.target, [str(inst.target)])[0]
        return f"{mnemonic} x{inst.rs1}, x{inst.rs2}, {target}"
    if op is Op.JMP:
        target = labels_at.get(inst.target, [str(inst.target)])[0]
        return f"jmp {target}"
    if op is Op.RDCYCLE:
        return f"rdcycle x{inst.rd}"
    return mnemonic


def render_instruction(inst, labels_at=None):
    """Render one instruction in parseable ``.s`` form.

    ``labels_at`` optionally maps branch-target pcs to label names so
    control flow renders symbolically.
    """
    return _render_instruction(inst, labels_at or {})


def render_source(program):
    """Render a :class:`Program` back to parseable ``.s`` text.

    Reassembling the result reproduces the program bitwise: same
    :meth:`Program.encode`, same label map, same taint regions.
    Annotations round-trip as trailing comments.
    """
    lines = []
    for start, end in program.secret_regions:
        lines.append(f".secret {start:#x}..{end:#x}")
    for start, end in program.public_regions:
        lines.append(f".public {start:#x}..{end:#x}")
    labels_at = {}
    for name, pc in sorted(program.labels.items()):
        labels_at.setdefault(pc, []).append(name)
    for pc, inst in enumerate(program.instructions):
        for name in labels_at.get(pc, ()):
            lines.append(f"{name}:")
        text = "    " + _render_instruction(inst, labels_at)
        if inst.annotation:
            text += f"  # {inst.annotation}"
        lines.append(text)
    for name in labels_at.get(len(program.instructions), ()):
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"
