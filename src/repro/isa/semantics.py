"""Pure functional semantics shared by the interpreter and the pipeline.

Keeping arithmetic and branch evaluation in one place guarantees that the
out-of-order core and the golden-model interpreter can never diverge on
*what* a program computes — they may only differ on *when*.
"""

from repro.isa.bits import mask, to_signed
from repro.isa.opcodes import Op


class SemanticsError(Exception):
    """Raised for undefined operations (unknown opcode for a helper)."""


def alu_result(op, a, b, imm):
    """Compute the result of an arithmetic instruction.

    ``a`` and ``b`` are the unsigned 64-bit source-register values; ``imm``
    is the (possibly negative) immediate.  Returns the unsigned 64-bit
    result.  Division follows RISC-V M semantics: division by zero yields
    all-ones (DIV) / the dividend (REM) rather than trapping.
    """
    if op is Op.ADD:
        return mask(a + b)
    if op is Op.SUB:
        return mask(a - b)
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.SLL:
        return mask(a << (b & 63))
    if op is Op.SRL:
        return a >> (b & 63)
    if op is Op.SRA:
        return mask(to_signed(a) >> (b & 63))
    if op is Op.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Op.SLTU:
        return 1 if a < b else 0
    if op is Op.MUL:
        return mask(a * b)
    if op is Op.DIV:
        if b == 0:
            return mask(-1)
        q = abs(to_signed(a)) // abs(to_signed(b))
        if (to_signed(a) < 0) != (to_signed(b) < 0):
            q = -q
        return mask(q)
    if op is Op.REM:
        if b == 0:
            return a
        r = abs(to_signed(a)) % abs(to_signed(b))
        if to_signed(a) < 0:
            r = -r
        return mask(r)
    if op is Op.ADDI:
        return mask(a + imm)
    if op is Op.ANDI:
        return a & mask(imm)
    if op is Op.ORI:
        return a | mask(imm)
    if op is Op.XORI:
        return a ^ mask(imm)
    if op is Op.SLLI:
        return mask(a << (imm & 63))
    if op is Op.SRLI:
        return a >> (imm & 63)
    if op is Op.SLTI:
        return 1 if to_signed(a) < imm else 0
    if op is Op.LI:
        return mask(imm)
    raise SemanticsError(f"{op} is not an arithmetic op")


def branch_taken(op, a, b):
    """Evaluate a conditional branch on unsigned source values."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return to_signed(a) < to_signed(b)
    if op is Op.BGE:
        return to_signed(a) >= to_signed(b)
    if op is Op.BLTU:
        return a < b
    if op is Op.BGEU:
        return a >= b
    raise SemanticsError(f"{op} is not a conditional branch")


def effective_address(base, imm):
    """Address of a load/store given its base-register value."""
    return mask(base + imm)
