"""A simple dynamic branch predictor (2-bit counters + BTB).

Branch predictors are themselves a classic leakage channel (Table I,
"Control flow": already Unsafe on the Baseline).  Here the predictor's
job is to keep loop timing stable after warm-up so that the *new*
channels studied by the paper stand out from branch noise.
"""


class BranchPredictor:
    """PC-indexed 2-bit saturating counters with a branch target buffer."""

    TAKEN_THRESHOLD = 2

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._counters = {}
        self._btb = {}
        self.stats = {"lookups": 0, "mispredicts": 0}

    def predict(self, pc):
        """Return ``(taken, target_or_None)`` for the branch at ``pc``."""
        self.stats["lookups"] += 1
        if not self.enabled:
            return False, None
        counter = self._counters.get(pc, 0)
        target = self._btb.get(pc)
        if counter >= self.TAKEN_THRESHOLD and target is not None:
            return True, target
        return False, None

    def update(self, pc, taken, target, mispredicted):
        """Train on a resolved branch."""
        if mispredicted:
            self.stats["mispredicts"] += 1
        counter = self._counters.get(pc, 0)
        if taken:
            self._counters[pc] = min(3, counter + 1)
            self._btb[pc] = target
        else:
            self._counters[pc] = max(0, counter - 1)
